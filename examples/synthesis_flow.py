"""A tour of the full synthesis substrate, stage by stage.

Takes one incompletely specified function through every layer the
reproduction builds: ESPRESSO two-level minimisation, kernel extraction,
algebraic factoring, subject-graph construction, technology mapping,
sizing, timing and power — and cross-validates the area trend with the
AIG ``resyn2rs`` path, as the paper does with ABC.

Run:  python examples/synthesis_flow.py
"""

from repro.benchgen import mcnc_benchmark
from repro.synth.aig import aig_from_network, resyn2rs
from repro.synth.compile_ import compile_network
from repro.synth.library import generic_70nm_library
from repro.synth.mapping import map_graph
from repro.synth.network import LogicNetwork
from repro.synth.optimize import optimize_network
from repro.synth.power import power_analysis
from repro.synth.subject import build_subject_graph
from repro.synth.timing import static_timing, upsize_critical
from repro.espresso.minimize import minimize_spec


def main() -> None:
    spec = mcnc_benchmark("bench")
    print(f"spec: {spec}")

    minimized = minimize_spec(spec)
    print(f"[espresso]   {minimized.total_cubes} cubes, "
          f"{minimized.total_literals} literals")

    network = LogicNetwork.from_covers(
        list(spec.input_names), minimized.covers, list(spec.output_names)
    )
    print(f"[two-level]  {network.num_literals} SOP literals")

    optimize_network(network)
    print(f"[multilevel] {network.num_literals} literals in "
          f"{len(network.nodes)} nodes after kernel/cube extraction")

    graph = build_subject_graph(network)
    print(f"[subject]    {len(graph)} INV/NAND2 vertices")

    library = generic_70nm_library()
    netlist = map_graph(graph, library, mode="area")
    print(f"[mapping]    {netlist.num_gates} cells, area {netlist.area:.1f}")
    print(f"             cells used: {netlist.cell_histogram()}")

    report_before = static_timing(netlist)
    upsize_critical(netlist)
    report_after = static_timing(netlist)
    print(f"[timing]     delay {report_before.delay:.2f} -> "
          f"{report_after.delay:.2f} after critical-path sizing")

    power = power_analysis(netlist)
    print(f"[power]      dynamic {power.dynamic:.1f} + leakage "
          f"{power.leakage:.1f} = {power.total:.1f}")

    assert netlist.implements(spec.assigned(minimized.truth_values()))
    print("[check]      netlist == specification (within the DC set)")

    # Cross-validation through the independent AIG optimiser.
    aig = aig_from_network(network)
    optimized = resyn2rs(aig)
    mapped_aig = compile_network(
        optimized.to_network(), spec, objective="area", optimize=False
    )
    print(f"[resyn2rs]   AIG {aig.num_ands} -> {optimized.num_ands} ANDs; "
          f"mapped area {mapped_aig.area:.1f} "
          f"(primary flow: {netlist.area:.1f})")


if __name__ == "__main__":
    main()
