"""The paper's Sec. 2.1 / Fig. 1 motivating example, worked end to end.

A 4-input function with three DC minterms:

* ``x1`` has two on-set neighbours and one off-set neighbour — assigning
  it to the on-set masks two of its three possible single-bit input
  errors, so reliability-driven assignment puts it at 1;
* ``x2`` has two off-set neighbours and one on-set neighbour — it goes to
  the off-set;
* ``x3`` sees two neighbours of each phase — either choice masks two
  errors, so it stays DC, preserving flexibility for the area optimiser.

Run:  python examples/motivating_example.py
"""

import numpy as np

from repro.core.assignment import Assignment
from repro.core.ranking import rank_dc_minterms
from repro.core.reliability import error_rate, exact_error_bounds
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON


def build_fig1_spec() -> FunctionSpec:
    """The Fig. 1 function (x1 = minterm 0, x2 = minterm 8, x3 = minterm 5)."""
    phases = np.full(16, OFF, dtype=np.uint8)
    phases[[1, 2, 12, 7]] = ON
    phases[[0, 8, 5]] = DC
    return FunctionSpec(phases, name="fig1")


def main() -> None:
    spec = build_fig1_spec()
    print("DC minterms and their neighbourhoods:")
    from repro.core.hamming import neighbor_phase_counts

    on_nb, off_nb, dc_nb = neighbor_phase_counts(spec.phases)
    for label, minterm in (("x1", 0), ("x2", 8), ("x3", 5)):
        print(f"  {label} (minterm {minterm:2d}): "
              f"{on_nb[0, minterm]} on-neighbours, "
              f"{off_nb[0, minterm]} off-neighbours, "
              f"{dc_nb[0, minterm]} DC-neighbours")

    print("\nranking-based assignment decisions (Fig. 3):")
    for minterm, weight, phase in rank_dc_minterms(spec, 0):
        name = {0: "x1", 8: "x2", 5: "x3"}[minterm]
        print(f"  {name}: weight {weight} -> {'on-set' if phase else 'off-set'}")
    print("  x3: weight 0 -> left as DC (ambiguous)")

    # Complete both specs (x3 to the off-set in each) so the measured rates
    # are full implementations inside the achievable band.
    reliability = Assignment({(0, 0): ON, (0, 8): OFF, (0, 5): OFF}).apply(spec)
    adversarial = Assignment({(0, 0): OFF, (0, 8): ON, (0, 5): OFF}).apply(spec)
    bounds = exact_error_bounds(spec)
    print(f"\nerror rates (events per possible single-bit error):")
    print(f"  achievable band:            [{bounds.lo:.4f}, {bounds.hi:.4f}]")
    print(f"  reliability assignment:      {error_rate(reliability, spec=spec):.4f}")
    print(f"  adversarial assignment:      {error_rate(adversarial, spec=spec):.4f}")
    assert bounds.contains(error_rate(reliability, spec=spec))
    assert error_rate(reliability, spec=spec) == bounds.lo
    print("\nreliability-driven assignment masks two extra input errors,")
    print("exactly as the paper's walk-through concludes.")


if __name__ == "__main__":
    main()
