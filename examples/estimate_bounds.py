"""Analytic reliability estimates and the Fig. 8 border-count contrast.

Shows (1) the paper's two estimate families against the exact band on the
Table 1 stand-ins, and (2) why border counts matter: two functions with
identical signal probabilities but different clustering get very different
bands.

Run:  python examples/estimate_bounds.py
"""

import numpy as np

from repro.benchgen import benchmark_names, mcnc_benchmark
from repro.core.estimates import border_counts, estimate_report
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.flows import format_table


def fig8_contrast() -> None:
    """Two 3-input specs, same signal probabilities, different borders."""
    clustered = FunctionSpec(
        np.array([[DC, DC, ON, ON, OFF, OFF, OFF, OFF]], dtype=np.uint8),
        name="clustered",
    )
    scattered = FunctionSpec(
        np.array([[DC, ON, OFF, OFF, OFF, OFF, ON, DC]], dtype=np.uint8),
        name="scattered",
    )
    print("Fig. 8 contrast — identical signal probabilities:")
    rows = []
    for spec in (clustered, scattered):
        b0, b1, bdc = (int(v[0]) for v in border_counts(spec.phases))
        report = estimate_report(spec)
        rows.append([
            spec.name, b0, b1, bdc,
            f"[{report.exact.lo:.3f},{report.exact.hi:.3f}]",
            f"[{report.border.lo:.3f},{report.border.hi:.3f}]",
            f"[{report.signal.lo:.3f},{report.signal.hi:.3f}]",
        ])
    print(format_table(["spec", "b0", "b1", "bDC", "exact", "border", "signal"], rows))
    print("the signal estimate cannot tell the two apart; the border-based "
          "estimate can.\n")


def table3_bands() -> None:
    print("estimate bands on the Table 1 stand-ins:")
    rows = []
    for name in benchmark_names()[:8]:  # the fast ones
        report = estimate_report(mcnc_benchmark(name))
        rows.append([
            name,
            f"[{report.exact.lo:.3f},{report.exact.hi:.3f}]",
            f"[{report.signal.lo:.3f},{report.signal.hi:.3f}]",
            f"[{report.border.lo:.3f},{report.border.hi:.3f}]",
        ])
    print(format_table(["benchmark", "exact", "signal-based", "border-based"], rows))
    print("\nas in Table 3: signal-probability bands overshoot; "
          "border bands track the exact ones.")


def main() -> None:
    fig8_contrast()
    table3_bands()


if __name__ == "__main__":
    main()
