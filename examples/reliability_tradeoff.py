"""Sweep the reliability-overhead tradeoff on one benchmark (Figs. 4-5).

Assigns an increasing fraction of the DC set with the ranking-based
algorithm and synthesises each point under the delay and power objectives,
printing the normalised error rate and overheads.

Run:  python examples/reliability_tradeoff.py [benchmark] [points]
"""

import sys

from repro.benchgen import benchmark_names, mcnc_benchmark
from repro.flows import format_table, relative_metrics, run_flow


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bench"
    points = int(sys.argv[2]) if len(sys.argv) > 2 else 6
    if name not in benchmark_names():
        raise SystemExit(f"pick one of {benchmark_names()}")
    spec = mcnc_benchmark(name)
    fractions = [i / (points - 1) for i in range(points)]

    for objective in ("delay", "power"):
        baseline = run_flow(spec, "ranking", fraction=0.0, objective=objective)
        rows = []
        for fraction in fractions:
            result = (
                baseline
                if fraction == 0.0
                else run_flow(spec, "ranking", fraction=fraction, objective=objective)
            )
            rel = relative_metrics(result, baseline)
            rows.append(
                [fraction, rel["error_rate"], rel["area"], rel["delay"], rel["power"]]
            )
        print(f"\n{name}, {objective}-optimised (normalised to fraction 0):")
        print(format_table(["fraction", "error", "area", "delay", "power"], rows))

    print("\nerror rate falls as more DCs are assigned for reliability;")
    print("area/power overhead grows — the Figs. 4-5 tradeoff.")


if __name__ == "__main__":
    main()
