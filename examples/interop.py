"""Interop tour: PLA in, BLIF/Verilog out, SAT-checked round trip.

Shows the interchange surface of the package: a benchmark is synthesised,
the optimised network is written to BLIF and read back, the two are proven
equivalent with the SAT miter, and the mapped netlist is emitted as
structural Verilog.

Run:  python examples/interop.py
"""

import tempfile
from pathlib import Path

from repro.benchgen import mcnc_benchmark
from repro.espresso.minimize import minimize_spec
from repro.pla import network_to_blif, parse_blif, spec_to_pla, write_blif
from repro.sat import networks_equivalent
from repro.synth.compile_ import compile_spec
from repro.synth.network import LogicNetwork
from repro.synth.optimize import optimize_network
from repro.synth.renode import renode
from repro.synth.verilog import netlist_to_verilog


def main() -> None:
    spec = mcnc_benchmark("fout")
    print(f"benchmark: {spec}")
    print(f"PLA text: {len(spec_to_pla(spec).splitlines())} lines")

    minimized = minimize_spec(spec)
    network = LogicNetwork.from_covers(
        list(spec.input_names), minimized.covers, list(spec.output_names)
    )
    optimize_network(network)
    print(f"optimised network: {len(network.nodes)} nodes, "
          f"{network.num_literals} literals")

    with tempfile.TemporaryDirectory() as tmp:
        blif_path = Path(tmp) / "fout.blif"
        write_blif(network, blif_path, model="fout")
        reread = parse_blif(blif_path.read_text())
        print(f"BLIF round trip: {blif_path.stat().st_size} bytes, "
              f"{len(reread.nodes)} nodes after re-read")
        equivalent = networks_equivalent(network, reread)
        print(f"SAT miter says networks are equivalent: {equivalent}")
        assert equivalent

    coarse = renode(network, 6)
    print(f"renode(6): {len(coarse.nodes)} coarse nodes, still equivalent: "
          f"{networks_equivalent(network, coarse)}")

    result = compile_spec(spec, objective="area")
    verilog = netlist_to_verilog(result.netlist, module_name="fout")
    print(f"mapped netlist: {result.num_gates} cells -> "
          f"{len(verilog.splitlines())} lines of Verilog")
    print("first lines:")
    for line in verilog.splitlines()[:4]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
