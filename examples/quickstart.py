"""Quickstart: reliability-driven DC assignment in five steps.

Loads a benchmark, measures its flexibility, applies both of the paper's
assignment algorithms and compares the synthesised implementations against
the conventional baseline.

Run:  python examples/quickstart.py
"""

from repro.benchgen import mcnc_benchmark
from repro.core.complexity import spec_complexity_factor
from repro.core.reliability import exact_error_bounds
from repro.flows import format_table, relative_metrics, run_flow


def main() -> None:
    # 1. A benchmark: the ex1010 stand-in (10 inputs, 10 outputs, 70% DC).
    spec = mcnc_benchmark("ex1010")
    print(f"benchmark {spec.name}: {spec.num_inputs} inputs, "
          f"{spec.num_outputs} outputs, {spec.dc_fraction():.0%} DC, "
          f"C^f = {spec_complexity_factor(spec):.3f}")

    # 2. What is achievable?  The exact min-max error band over all
    #    possible DC assignments (Sec. 5 of the paper).
    bounds = exact_error_bounds(spec)
    print(f"achievable single-bit input-error rate: "
          f"[{bounds.lo:.3f}, {bounds.hi:.3f}]")

    # 3. The conventional baseline: every DC goes to area minimisation.
    baseline = run_flow(spec, "conventional", objective="power")

    # 4. The paper's two algorithms.
    ranking = run_flow(spec, "ranking", fraction=0.5, objective="power")
    cfactor = run_flow(spec, "cfactor", threshold=0.5, objective="power")
    complete = run_flow(spec, "complete", objective="power")

    # 5. Compare.
    rows = []
    for result in (baseline, ranking, cfactor, complete):
        rel = relative_metrics(result, baseline)
        rows.append([
            result.policy,
            result.error_rate,
            rel["error_improvement_pct"],
            result.area,
            rel["area_improvement_pct"],
            result.gates,
        ])
    print()
    print(format_table(
        ["policy", "error rate", "dErr %", "area", "dArea %", "gates"], rows,
    ))
    print("\n'complete' hits the exact lower bound "
          f"({bounds.lo:.3f}) but pays the largest area overhead;")
    print("the LC^f policy trades a little reliability for much less area.")


if __name__ == "__main__":
    main()
