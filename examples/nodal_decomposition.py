"""Nodal decomposition: reassigning *internal* don't cares (Sec. 4).

Builds a multi-level network, extracts every node's satisfiability and
observability don't cares, reassigns them with the complexity-factor-based
algorithm, and measures the internal error masking improvement — the
paper's extension for scaling the technique to large circuits and internal
errors.

Run:  python examples/nodal_decomposition.py
"""

import numpy as np

from repro.benchgen.synthetic import generate_spec
from repro.espresso.minimize import minimize_spec
from repro.synth.network import LogicNetwork
from repro.synth.odc import internal_error_rate, node_flexibility, reassign_internal_dcs
from repro.synth.optimize import optimize_network


def main() -> None:
    # A mid-complexity benchmark through the multi-level flow.
    spec = generate_spec("nodal", 8, 4, target_cf=0.55, dc_fraction=0.5, seed=3)
    minimized = minimize_spec(spec)
    network = LogicNetwork.from_covers(
        list(spec.input_names), minimized.covers, list(spec.output_names)
    )
    optimize_network(network)
    print(f"multi-level network: {len(network.nodes)} nodes, "
          f"{network.num_literals} literals")

    # Inspect the flexibility of a few nodes.
    shown = 0
    for name in network.topological_order():
        local = node_flexibility(network, name)
        dc_count = int(np.count_nonzero(local.phases == 2))
        if dc_count and shown < 5:
            print(f"  node {name}: {len(network.nodes[name].fanins)} fanins, "
                  f"{dc_count}/{local.num_minterms} local patterns are DC "
                  f"(SDC + ODC)")
            shown += 1

    before = internal_error_rate(network)
    report = reassign_internal_dcs(network, policy="cfactor", threshold=0.6)
    print(f"\ninternal error rate (flip of a random node propagates):")
    print(f"  before reassignment: {report.error_rate_before:.4f}")
    print(f"  after  reassignment: {report.error_rate_after:.4f}")
    print(f"  nodes rewritten: {report.nodes_changed}, "
          f"local DC entries decided: {report.dc_entries_assigned}")
    assert abs(before - report.error_rate_before) < 1e-12
    print("\nprimary-output functions are untouched (checked after every "
          "node rewrite).")


if __name__ == "__main__":
    main()
