"""Tests for algebraic division, kernels and factoring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.espresso.cube import Cover
from repro.synth.factor import expr_literals, good_factor
from repro.synth.kernels import (
    algebraic_divide,
    common_cube,
    cover_to_cubes,
    cube_set_literals,
    cubes_to_cover,
    kernels,
    make_cube_free,
)


def cubes(*texts):
    """Build a cube set from 'ab', "a'c" style strings (letters = signals)."""
    result = set()
    for text in texts:
        cube = set()
        i = 0
        while i < len(text):
            name = text[i]
            if i + 1 < len(text) and text[i + 1] == "'":
                cube.add((name, False))
                i += 2
            else:
                cube.add((name, True))
                i += 1
        result.add(frozenset(cube))
    return frozenset(result)


class TestConversion:
    def test_round_trip(self):
        cover = Cover.from_strings(["01-", "1-0"])
        expr = cover_to_cubes(cover, ["a", "b", "c"])
        back = cubes_to_cover(expr, ["a", "b", "c"])
        np.testing.assert_array_equal(
            np.sort(back.cubes, axis=0), np.sort(cover.cubes, axis=0)
        )

    def test_unknown_signal_rejected(self):
        with pytest.raises(ValueError, match="not among"):
            cubes_to_cover(cubes("ab"), ["a"])


class TestDivision:
    def test_textbook_example(self):
        """(ad + bd + cd + e) / (a + b) = d, remainder cd + e."""
        expr = cubes("ad", "bd", "cd", "e")
        divisor = cubes("a", "b")
        quotient, remainder = algebraic_divide(expr, divisor)
        assert quotient == cubes("d")
        assert remainder == cubes("cd", "e")

    def test_no_division(self):
        quotient, remainder = algebraic_divide(cubes("ab"), cubes("c"))
        assert quotient == frozenset()
        assert remainder == cubes("ab")

    def test_reconstruction_identity(self):
        """expr == quotient * divisor + remainder whenever quotient != 0."""
        expr = cubes("abc", "abd", "ae", "bcd")
        divisor = cubes("c", "d")
        quotient, remainder = algebraic_divide(expr, divisor)
        if quotient:
            product = {q | d for q in quotient for d in divisor}
            assert frozenset(product) | remainder == expr


class TestKernels:
    def test_common_cube(self):
        assert common_cube(cubes("abc", "abd")) == frozenset({("a", True), ("b", True)})

    def test_make_cube_free(self):
        free = make_cube_free(cubes("abc", "abd"))
        assert free == cubes("c", "d")

    def test_kernels_of_textbook_expression(self):
        """f = ace + bce + de + g has kernels {a+b, ac+bc+d, f/1}."""
        expr = cubes("ace", "bce", "de", "g")
        found = kernels(expr)
        assert cubes("a", "b") in found
        assert cubes("ac", "bc", "d") in found
        assert expr in found  # f itself is cube-free

    def test_single_cube_has_no_kernels(self):
        assert kernels(cubes("abc"), include_self=False) == set()

    def test_max_kernels_cap(self):
        expr = cubes("ab", "cd", "ef", "ac", "bd", "ae", "bf", "ce", "df")
        capped = kernels(expr, max_kernels=2)
        assert 0 < len(capped) <= 3  # cap plus possibly the expression itself


class TestFactor:
    def test_factored_literal_count_drops(self):
        """ab + ac + ad -> a(b + c + d): 6 literals down to 4."""
        expr = cubes("ab", "ac", "ad")
        tree = good_factor(expr)
        assert expr_literals(tree) == 4

    def test_factoring_preserves_function(self):
        cover = Cover.from_strings(["110-", "1-10", "0011", "01--"])
        expr = cover_to_cubes(cover, ["a", "b", "c", "d"])
        tree = good_factor(expr)
        # Evaluate the tree and compare against the cover, point by point.
        idx = np.arange(16)
        values = {
            name: ((idx >> pos) & 1).astype(bool)
            for pos, name in enumerate(["a", "b", "c", "d"])
        }

        def eval_tree(node):
            from repro.synth.factor import And, Lit, Or

            if isinstance(node, Lit):
                v = values[node.signal]
                return v if node.polarity else ~v
            parts = [eval_tree(child) for child in node.children]
            result = parts[0]
            for part in parts[1:]:
                result = (result & part) if isinstance(node, And) else (result | part)
            return result

        np.testing.assert_array_equal(eval_tree(tree), cover.evaluate())

    def test_single_cube(self):
        tree = good_factor(cubes("ab'c"))
        assert expr_literals(tree) == 3

    def test_constant_rejected(self):
        with pytest.raises(ValueError, match="constant-0"):
            good_factor(frozenset())

    @given(st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_factoring_random_covers(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        k = int(rng.integers(1, 8))
        rows = rng.choice([0, 1, 2], size=(k, n), p=[0.3, 0.3, 0.4]).astype(np.uint8)
        # Drop the all-FREE cube (constant-1 cannot be factored).
        rows = rows[~np.all(rows == 2, axis=1)]
        if rows.shape[0] == 0:
            return
        cover = Cover(rows, n)
        names = [f"x{i}" for i in range(n)]
        expr = cover_to_cubes(cover, names)
        tree = good_factor(expr)
        back_names = sorted({lit[0] for cube in expr for lit in cube})
        assert expr_literals(tree) <= cube_set_literals(expr)
        del back_names
