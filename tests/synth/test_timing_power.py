"""Tests for static timing, sizing and power analysis."""

import numpy as np
import pytest

from repro.espresso.cube import Cover
from repro.synth.library import generic_70nm_library
from repro.synth.mapping import map_graph
from repro.synth.netlist import GateInstance, MappedNetlist
from repro.synth.network import LogicNetwork
from repro.synth.power import power_analysis
from repro.synth.subject import build_subject_graph
from repro.synth.timing import static_timing, upsize_critical


@pytest.fixture
def lib():
    return generic_70nm_library()


def chain_netlist(lib, length=4) -> MappedNetlist:
    """An inverter chain a -> y of the given length."""
    netlist = MappedNetlist(lib, ["a"])
    inv = lib.cell("INV_X1")
    previous = "a"
    for i in range(length):
        name = f"n{i}"
        netlist.gates.append(GateInstance(inv, name, [previous]))
        previous = name
    netlist.outputs["y"] = previous
    return netlist


class TestNetlist:
    def test_gate_pin_count_checked(self, lib):
        with pytest.raises(ValueError, match="pins"):
            GateInstance(lib.cell("NAND2_X1"), "t", ["a"])

    def test_area_and_gates(self, lib):
        netlist = chain_netlist(lib, 3)
        assert netlist.num_gates == 3
        assert netlist.area == pytest.approx(3.0)

    def test_evaluate_chain(self, lib):
        netlist = chain_netlist(lib, 2)
        values = netlist.evaluate()
        np.testing.assert_array_equal(values["n1"], values["a"])

    def test_loads_include_po(self, lib):
        netlist = chain_netlist(lib, 1)
        loads = netlist.loads()
        assert loads["n0"] == pytest.approx(lib.output_cap)
        assert loads["a"] == pytest.approx(lib.cell("INV_X1").pin_cap + lib.wire_cap)

    def test_cell_histogram(self, lib):
        netlist = chain_netlist(lib, 3)
        assert netlist.cell_histogram() == {"INV_X1": 3}


class TestTiming:
    def test_chain_delay_grows(self, lib):
        short = static_timing(chain_netlist(lib, 2)).delay
        long = static_timing(chain_netlist(lib, 6)).delay
        assert long > short

    def test_critical_path_endpoints(self, lib):
        netlist = chain_netlist(lib, 3)
        report = static_timing(netlist)
        assert report.critical_path[0] == "a"
        assert report.critical_path[-1] == "n2"

    def test_empty_netlist(self, lib):
        netlist = MappedNetlist(lib, ["a"])
        netlist.outputs["y"] = "a"
        report = static_timing(netlist)
        assert report.delay >= 0.0

    def test_upsize_reduces_delay_under_load(self, lib):
        """An X1 inverter driving a heavy load should be upsized."""
        netlist = MappedNetlist(lib, ["a"])
        inv = lib.cell("INV_X1")
        netlist.gates.append(GateInstance(inv, "n0", ["a"]))
        # Fan the signal out to many loads to make the driver critical.
        for i in range(8):
            netlist.gates.append(GateInstance(inv, f"leaf{i}", ["n0"]))
        netlist.outputs["y"] = "leaf0"
        before = static_timing(netlist).delay
        upsize_critical(netlist)
        after = static_timing(netlist).delay
        assert after < before
        assert any(g.cell.name == "INV_X2" for g in netlist.gates)


class TestPower:
    def test_constant_signal_no_activity(self, lib):
        netlist = MappedNetlist(lib, ["a"])
        netlist.constants["const1"] = True
        netlist.outputs["y"] = "const1"
        report = power_analysis(netlist)
        assert report.activities["const1"] == 0.0
        assert report.dynamic == pytest.approx(0.0)

    def test_balanced_signal_max_activity(self, lib):
        netlist = chain_netlist(lib, 1)
        report = power_analysis(netlist)
        assert report.activities["a"] == pytest.approx(0.5)

    def test_leakage_accumulates(self, lib):
        netlist = chain_netlist(lib, 4)
        report = power_analysis(netlist)
        assert report.leakage == pytest.approx(4.0)
        assert report.total == report.dynamic + report.leakage

    def test_skewed_gate_probability(self, lib):
        """AND of two inputs has p=0.25 -> activity 0.375."""
        net = LogicNetwork(["a", "b"])
        net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
        net.set_output("y", "t")
        netlist = map_graph(build_subject_graph(net), lib, mode="area")
        report = power_analysis(netlist)
        out_signal = netlist.outputs["y"]
        assert report.activities[out_signal] == pytest.approx(2 * 0.25 * 0.75)
