"""Cross-process determinism of the synthesis stack.

Checkpoint resume and parallel sweeps promise bit-identical results
across processes, which requires synthesis to be independent of
``PYTHONHASHSEED``: greedy divisor selection must break score ties with
the canonical ``cube_set_key`` instead of set iteration order (see
``synth/kernels.py``).  These tests run the flow under different hash
seeds in fresh interpreters and compare the full result.
"""

import json
import os
import subprocess
import sys

_FLOW_SCRIPT = """
import dataclasses, json
import numpy as np
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.flows.experiment import run_flow

rng = np.random.default_rng(77)
phases = rng.choice(
    np.array([OFF, ON, DC], dtype=np.uint8), size=(3, 128), p=[0.25, 0.25, 0.5]
)
spec = FunctionSpec(phases, name="small")
result = run_flow(spec, "ranking", fraction=0.5, objective="delay")
print(json.dumps(dataclasses.asdict(result), sort_keys=True))
"""


def _flow_under_seed(seed: str) -> dict:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    output = subprocess.run(
        [sys.executable, "-c", _FLOW_SCRIPT],
        env=env, capture_output=True, text=True, check=True, timeout=600,
    ).stdout
    return json.loads(output)


class TestHashSeedIndependence:
    def test_flow_identical_across_hash_seeds(self):
        results = [_flow_under_seed(seed) for seed in ("0", "1", "random")]
        assert results[0] == results[1] == results[2]
