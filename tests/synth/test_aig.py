"""Tests for the AIG optimiser (the ABC resyn2rs stand-in)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import FunctionSpec
from repro.espresso.cube import Cover
from repro.synth.aig import Aig, aig_from_network, resyn2rs
from repro.synth.network import LogicNetwork


def random_network(seed: int, n: int = 4, num_nodes: int = 2) -> LogicNetwork:
    rng = np.random.default_rng(seed)
    names = [f"x{i}" for i in range(n)]
    net = LogicNetwork(names)
    for t in range(num_nodes):
        k = int(rng.integers(1, 6))
        rows = rng.choice([0, 1, 2], size=(k, n), p=[0.3, 0.3, 0.4]).astype(np.uint8)
        net.add_node(f"t{t}", names, Cover(rows, n))
        net.set_output(f"y{t}", f"t{t}")
    return net


class TestLiterals:
    def test_encoding(self):
        aig = Aig(2)
        assert aig.const0 == 0
        assert aig.const1 == 1
        assert aig.pi_lit(0) == 2
        assert Aig.lit_not(2) == 3
        assert Aig.lit_node(5) == 2
        assert Aig.lit_phase(5) == 1

    def test_pi_range_checked(self):
        with pytest.raises(ValueError):
            Aig(2).pi_lit(2)


class TestAndSimplification:
    def test_constants(self):
        aig = Aig(1)
        a = aig.pi_lit(0)
        assert aig.and_(a, aig.const0) == aig.const0
        assert aig.and_(a, aig.const1) == a
        assert aig.and_(a, a) == a
        assert aig.and_(a, Aig.lit_not(a)) == aig.const0
        assert aig.num_ands == 0

    def test_strashing(self):
        aig = Aig(2)
        a, b = aig.pi_lit(0), aig.pi_lit(1)
        assert aig.and_(a, b) == aig.and_(b, a)
        assert aig.num_ands == 1

    def test_or_demorgan(self):
        aig = Aig(2)
        a, b = aig.pi_lit(0), aig.pi_lit(1)
        aig.set_output("y", aig.or_(a, b))
        table = aig.evaluate()["y"]
        np.testing.assert_array_equal(table, [False, True, True, True])


class TestEvaluation:
    def test_xor_structure(self):
        aig = Aig(2)
        a, b = aig.pi_lit(0), aig.pi_lit(1)
        xor = aig.or_(aig.and_(a, Aig.lit_not(b)), aig.and_(Aig.lit_not(a), b))
        aig.set_output("y", xor)
        np.testing.assert_array_equal(aig.evaluate()["y"], [False, True, True, False])

    def test_depth(self):
        aig = Aig(4)
        lits = [aig.pi_lit(i) for i in range(4)]
        chain = lits[0]
        for lit in lits[1:]:
            chain = aig.and_(chain, lit)
        aig.set_output("y", chain)
        assert aig.depth() == 3
        balanced = aig.balanced()
        assert balanced.depth() == 2
        np.testing.assert_array_equal(balanced.evaluate()["y"], aig.evaluate()["y"])


class TestNetworkBridge:
    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_preserves_function(self, seed):
        net = random_network(seed)
        aig = aig_from_network(net)
        np.testing.assert_array_equal(
            np.vstack(list(aig.evaluate().values())), net.output_table()
        )
        back = aig.to_network()
        np.testing.assert_array_equal(back.output_table(), net.output_table())

    def test_constant_outputs(self):
        net = LogicNetwork(["a"])
        net.add_node("zero", ["a"], Cover.empty(1))
        net.set_output("y", "zero")
        aig = aig_from_network(net)
        assert aig.outputs["y"] == aig.const0
        back = aig.to_network()
        np.testing.assert_array_equal(back.output_table()[0], [False, False])


class TestResyn:
    @given(st.integers(0, 10**9))
    @settings(max_examples=15, deadline=None)
    def test_resyn2rs_preserves_function(self, seed):
        net = random_network(seed, n=5, num_nodes=3)
        aig = aig_from_network(net)
        optimized = resyn2rs(aig)
        before = aig.evaluate()
        after = optimized.evaluate()
        for name in before:
            np.testing.assert_array_equal(after[name], before[name])

    def test_resyn2rs_never_grows(self):
        net = random_network(123, n=5, num_nodes=3)
        aig = aig_from_network(net)
        optimized = resyn2rs(aig)
        assert optimized.num_ands <= aig.num_ands + 2  # balancing slack

    def test_collapse_refactor_shares_logic(self):
        """Two identical outputs collapse to shared structure."""
        net = LogicNetwork(["a", "b", "c"])
        cover = Cover.from_strings(["11-", "--1"])
        net.add_node("t0", ["a", "b", "c"], cover)
        net.add_node("t1", ["a", "b", "c"], cover)
        net.set_output("y0", "t0")
        net.set_output("y1", "t1")
        collapsed = aig_from_network(net).collapse_refactor()
        assert collapsed.outputs["y0"] == collapsed.outputs["y1"]
