"""Tests for subject graphs, the library and the technology mapper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import FunctionSpec
from repro.espresso.cube import Cover
from repro.synth.library import generic_70nm_library, pattern_leaves
from repro.synth.mapping import find_matches, map_graph
from repro.synth.network import LogicNetwork
from repro.synth.subject import SubjectGraph, build_subject_graph


@pytest.fixture
def lib():
    return generic_70nm_library()


class TestLibrary:
    def test_pattern_leaves(self):
        assert pattern_leaves(("nand", ("var", "a"), ("inv", ("var", "b")))) == ["a", "b"]

    def test_cell_tables(self, lib):
        nand2 = lib.cell("NAND2_X1")
        np.testing.assert_array_equal(nand2.table, [True, True, True, False])
        xor2 = lib.cell("XOR2_X1")
        np.testing.assert_array_equal(xor2.table, [False, True, True, False])
        aoi = lib.cell("AOI21_X1")
        # AOI21 = ~(a*b + c); pins (a, b, c), pin0 = bit0.
        idx = np.arange(8)
        expected = ~(((idx & 1) & ((idx >> 1) & 1)) | ((idx >> 2) & 1)).astype(bool)
        np.testing.assert_array_equal(aoi.table, expected)

    def test_unknown_cell(self, lib):
        with pytest.raises(KeyError):
            lib.cell("NAND9_X9")

    def test_variants(self, lib):
        names = {c.name for c in lib.variants_of(lib.cell("INV_X1"))}
        assert names == {"INV_X1", "INV_X2"}

    def test_cell_evaluate(self, lib):
        cell = lib.cell("NOR2_X1")
        a = np.array([False, True, False, True])
        b = np.array([False, False, True, True])
        np.testing.assert_array_equal(cell.evaluate([a, b]), ~(a | b))


class TestSubjectGraph:
    def test_strashing(self):
        graph = SubjectGraph()
        a, b = graph.pi("a"), graph.pi("b")
        assert graph.nand(a, b) == graph.nand(b, a)
        assert graph.inv(graph.inv(a)) == a

    def test_constant_folding(self):
        graph = SubjectGraph()
        a = graph.pi("a")
        one = graph.const(True)
        zero = graph.const(False)
        assert graph.nand(a, zero) == one
        assert graph.nand(a, one) == graph.inv(a)
        assert graph.nand(a, a) == graph.inv(a)

    def test_build_from_network(self):
        net = LogicNetwork(["a", "b", "c"])
        net.add_node("t", ["a", "b", "c"], Cover.from_strings(["11-", "--1"]))
        net.set_output("y", "t")
        graph = build_subject_graph(net)
        values = graph.evaluate(
            {
                "a": np.array([0, 1, 0, 1, 0, 1, 0, 1], dtype=bool),
                "b": np.array([0, 0, 1, 1, 0, 0, 1, 1], dtype=bool),
                "c": np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=bool),
            }
        )
        out = values[graph.outputs["y"]]
        idx = np.arange(8)
        expected = (((idx & 1) & ((idx >> 1) & 1)) | ((idx >> 2) & 1)).astype(bool)
        np.testing.assert_array_equal(out, expected)

    def test_constant_cover_nodes(self):
        net = LogicNetwork(["a"])
        net.add_node("zero", ["a"], Cover.empty(1))
        net.add_node("one", ["a"], Cover.universe(1))
        net.set_output("z", "zero")
        net.set_output("o", "one")
        graph = build_subject_graph(net)
        assert graph.nodes[graph.outputs["z"]].kind == "const"
        assert graph.nodes[graph.outputs["o"]].kind == "const"


class TestMatching:
    def test_inv_match(self, lib):
        graph = SubjectGraph()
        a = graph.pi("a")
        ref = graph.inv(a)
        graph.set_output("y", ref)
        matches = find_matches(graph, ref, lib, set())
        assert {cell.name for cell, _ in matches} >= {"INV_X1", "INV_X2"}

    def test_xor_match(self, lib):
        """Build the 4-NAND XOR shape and check the XOR cell matches it."""
        graph = SubjectGraph()
        a, b = graph.pi("a"), graph.pi("b")
        left = graph.nand(a, graph.inv(b))
        right = graph.nand(graph.inv(a), b)
        ref = graph.nand(left, right)
        graph.set_output("y", ref)
        matches = find_matches(graph, ref, lib, set())
        assert "XOR2_X1" in {cell.name for cell, _ in matches}

    def test_root_boundary_blocks_match(self, lib):
        """Internal pattern nodes may not swallow a multi-fanout vertex."""
        graph = SubjectGraph()
        a, b = graph.pi("a"), graph.pi("b")
        inner = graph.nand(a, b)
        ref = graph.inv(inner)
        graph.set_output("y", ref)
        matches_free = find_matches(graph, ref, lib, set())
        matches_blocked = find_matches(graph, ref, lib, {inner})
        free_names = {cell.name for cell, _ in matches_free}
        blocked_names = {cell.name for cell, _ in matches_blocked}
        assert "AND2_X1" in free_names
        assert "AND2_X1" not in blocked_names
        assert "INV_X1" in blocked_names


class TestMapping:
    def _map_network(self, net, lib, mode="area"):
        graph = build_subject_graph(net)
        return map_graph(graph, lib, mode=mode)

    def test_maps_and_implements(self, lib):
        net = LogicNetwork(["a", "b", "c"])
        net.add_node("t", ["a", "b", "c"], Cover.from_strings(["11-", "--1"]))
        net.set_output("y", "t")
        netlist = self._map_network(net, lib)
        assert netlist.num_gates >= 1
        assert netlist.implements(net.to_spec())

    def test_area_mode_not_worse_than_delay_mode_area(self, lib):
        net = LogicNetwork(["a", "b", "c", "d"])
        net.add_node(
            "t", ["a", "b", "c", "d"], Cover.from_strings(["11--", "--11", "1--1"])
        )
        net.set_output("y", "t")
        area_mapped = self._map_network(net, lib, "area")
        delay_mapped = self._map_network(net, lib, "delay")
        assert area_mapped.area <= delay_mapped.area + 1e-9

    def test_constant_outputs(self, lib):
        net = LogicNetwork(["a"])
        net.add_node("zero", ["a"], Cover.empty(1))
        net.set_output("y", "zero")
        netlist = self._map_network(net, lib)
        assert netlist.num_gates == 0
        signal = netlist.outputs["y"]
        assert netlist.constants[signal] is False

    def test_unknown_mode(self, lib):
        net = LogicNetwork(["a"])
        net.add_node("t", ["a"], Cover.from_strings(["0"]))
        net.set_output("y", "t")
        graph = build_subject_graph(net)
        with pytest.raises(ValueError, match="unknown mapping mode"):
            map_graph(graph, lib, mode="turbo")

    @given(st.integers(0, 10**9))
    @settings(max_examples=25, deadline=None)
    def test_mapping_preserves_function(self, seed):
        """End-to-end property: random SOP network -> mapped netlist
        implements exactly the same function."""
        rng = np.random.default_rng(seed)
        lib = generic_70nm_library()
        n = int(rng.integers(2, 6))
        k = int(rng.integers(1, 7))
        rows = rng.choice([0, 1, 2], size=(k, n), p=[0.3, 0.3, 0.4]).astype(np.uint8)
        cover = Cover(rows, n)
        names = [f"x{i}" for i in range(n)]
        net = LogicNetwork(names)
        net.add_node("t", names, cover)
        net.set_output("y", "t")
        netlist = self._map_network(net, lib)
        spec = net.to_spec()
        assert netlist.implements(spec)
