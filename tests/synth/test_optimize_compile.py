"""Tests for divisor extraction and the compile facade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.espresso.cube import Cover
from repro.synth.compile_ import compile_spec
from repro.synth.network import LogicNetwork
from repro.synth.optimize import extract_cubes, extract_kernels, optimize_network


class TestKernelExtraction:
    def test_extracts_shared_kernel(self):
        """Two nodes sharing (a + b): extraction creates a divisor node."""
        net = LogicNetwork(["a", "b", "c", "d"])
        net.add_node("t1", ["a", "b", "c"], Cover.from_strings(["1-1", "-11"]))  # c(a+b)
        net.add_node("t2", ["a", "b", "d"], Cover.from_strings(["1-1", "-11"]))  # d(a+b)
        net.set_output("y1", "t1")
        net.set_output("y2", "t2")
        before = net.to_spec()
        created = extract_kernels(net)
        assert created >= 1
        assert net.to_spec() == before  # function preserved

    def test_literal_count_never_increases(self):
        rng = np.random.default_rng(0)
        net = LogicNetwork([f"x{i}" for i in range(5)])
        for t in range(3):
            rows = rng.choice([0, 1, 2], size=(6, 5), p=[0.3, 0.3, 0.4]).astype(np.uint8)
            net.add_node(f"t{t}", [f"x{i}" for i in range(5)], Cover(rows, 5))
            net.set_output(f"y{t}", f"t{t}")
        before_lits = net.num_literals
        before_spec = net.to_spec()
        optimize_network(net)
        assert net.num_literals <= before_lits
        assert net.to_spec() == before_spec

    def test_cube_extraction(self):
        """Common cube ab in two nodes gets extracted."""
        net = LogicNetwork(["a", "b", "c", "d"])
        net.add_node("t1", ["a", "b", "c"], Cover.from_strings(["111"]))
        net.add_node("t2", ["a", "b", "d"], Cover.from_strings(["111"]))
        net.add_node("t3", ["a", "b", "d"], Cover.from_strings(["110"]))
        net.set_output("y1", "t1")
        net.set_output("y2", "t2")
        net.set_output("y3", "t3")
        before = net.to_spec()
        created = extract_cubes(net)
        assert created >= 1
        assert net.to_spec() == before

    @given(st.integers(0, 10**9))
    @settings(max_examples=15, deadline=None)
    def test_optimization_preserves_function(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 6))
        names = [f"x{i}" for i in range(n)]
        net = LogicNetwork(names)
        for t in range(int(rng.integers(1, 4))):
            k = int(rng.integers(1, 8))
            rows = rng.choice([0, 1, 2], size=(k, n), p=[0.3, 0.3, 0.4]).astype(np.uint8)
            net.add_node(f"t{t}", names, Cover(rows, n))
            net.set_output(f"y{t}", f"t{t}")
        before = net.to_spec()
        optimize_network(net)
        assert net.to_spec() == before


class TestCompile:
    def test_compile_simple_spec(self):
        spec = FunctionSpec.from_sets(4, on_sets=[[0, 1, 2, 3, 15]], dc_sets=[[7, 11]])
        result = compile_spec(spec, objective="area")
        assert result.area > 0
        assert result.num_gates > 0
        assert spec.equivalent_within_dc(result.implemented)

    def test_objectives_tradeoff(self):
        rng = np.random.default_rng(5)
        phases = rng.choice(
            np.array([OFF, ON, DC], np.uint8), size=(3, 256), p=[0.3, 0.3, 0.4]
        )
        spec = FunctionSpec(phases, name="tradeoff")
        delay_result = compile_spec(spec, objective="delay")
        power_result = compile_spec(spec, objective="power")
        assert delay_result.delay <= power_result.delay + 1e-9
        assert power_result.area <= delay_result.area + 1e-9

    def test_unknown_objective(self):
        spec = FunctionSpec.from_sets(2, on_sets=[[1]])
        with pytest.raises(ValueError, match="objective"):
            compile_spec(spec, objective="speed")

    def test_source_spec_error_rate(self):
        """Error rate must be measured against the *original* care set."""
        from repro.core.ranking import ranking_assignment

        rng = np.random.default_rng(6)
        phases = rng.choice(
            np.array([OFF, ON, DC], np.uint8), size=(2, 128), p=[0.3, 0.3, 0.4]
        )
        spec = FunctionSpec(phases, name="orig")
        assigned = ranking_assignment(spec, 1.0).apply(spec)
        result = compile_spec(assigned, objective="area", source_spec=spec)
        baseline = compile_spec(spec, objective="area")
        # Reliability assignment should not hurt, and typically helps.
        assert result.error_rate <= baseline.error_rate + 0.02

    def test_constant_output_spec(self):
        spec = FunctionSpec.from_sets(3, on_sets=[[], list(range(8))])
        result = compile_spec(spec, objective="area")
        assert result.num_gates == 0
        assert spec.equivalent_within_dc(result.implemented)

    def test_multi_output_sharing(self):
        """Identical outputs must share logic through extraction."""
        spec = FunctionSpec.from_sets(
            4, on_sets=[[1, 2, 3, 9], [1, 2, 3, 9]]
        )
        result = compile_spec(spec, objective="area")
        single = compile_spec(spec.single_output(0), objective="area")
        assert result.area < 2 * single.area
