"""Tests for internal-DC extraction and nodal decomposition (Sec. 4)."""

import numpy as np
import pytest

from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.espresso.cube import Cover
from repro.synth.network import LogicNetwork
from repro.obs import metrics as obs_metrics
from repro.synth.odc import (
    MAX_EXHAUSTIVE_FANINS,
    internal_error_rate,
    node_flexibility,
    reassign_internal_dcs,
)


def blocked_network() -> LogicNetwork:
    """t = a & b feeding y = t & c: t is unobservable when c = 0."""
    net = LogicNetwork(["a", "b", "c"])
    net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
    net.add_node("y", ["t", "c"], Cover.from_strings(["11"]))
    net.set_output("out", "y")
    return net


class TestNodeFlexibility:
    def test_observability_dc(self):
        """All of t's local patterns under c=0 are ODC; with c spanning both
        values every reachable fanin pattern of t stays observable, so the
        node t (over fanins a, b) has no DC -- but the downstream node y
        has DC at unreachable patterns only.  Check a sharper case: make c
        constant 0 so t is *never* observable."""
        net = LogicNetwork(["a", "b", "c"])
        net.add_node("czero", ["c"], Cover.empty(1))
        net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("y", ["t", "czero"], Cover.from_strings(["11"]))
        net.set_output("out", "y")
        local = node_flexibility(net, "t")
        assert list(local.dc_set(0)) == [0, 1, 2, 3]  # fully flexible

    def test_satisfiability_dc(self):
        """A node fed by correlated signals never sees some patterns."""
        net = LogicNetwork(["a"])
        net.add_node("p", ["a"], Cover.from_strings(["1"]))  # p = a
        net.add_node("q", ["a"], Cover.from_strings(["0"]))  # q = ~a
        net.add_node("t", ["p", "q"], Cover.from_strings(["11", "00"]))
        net.set_output("out", "t")
        local = node_flexibility(net, "t")
        # patterns 00 (p=0,q=0) and 11 are unreachable -> DC.
        assert 0 in local.dc_set(0)
        assert 3 in local.dc_set(0)
        # patterns 01 (a=0) and 10 (a=1) are reachable and observable.
        assert local.phases[0, 1] != DC
        assert local.phases[0, 2] != DC

    def test_fully_observable_node(self):
        net = blocked_network()
        local = node_flexibility(net, "y")
        # y is a PO: every reachable pattern is observable.
        assert local.phases[0, 3] == ON
        assert local.phases[0, 0] == OFF

    def test_external_dc_extends_flexibility(self):
        net = LogicNetwork(["a", "b"])
        net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
        net.set_output("out", "t")
        external = np.ones((1, 4), dtype=bool)  # everything externally DC
        local = node_flexibility(net, "t", external_dc=external)
        assert list(local.dc_set(0)) == [0, 1, 2, 3]


class TestFaninGuard:
    def _wide_network(self, width: int) -> LogicNetwork:
        names = [f"x{i}" for i in range(width)]
        net = LogicNetwork(names)
        net.add_node("wide", names, Cover.from_strings(["1" * width]))
        net.set_output("out", "wide")
        return net

    def test_wide_node_raises(self):
        net = self._wide_network(MAX_EXHAUSTIVE_FANINS + 1)
        with pytest.raises(ValueError, match="capped at"):
            node_flexibility(net, "wide")

    def test_reassign_skips_wide_nodes_with_counter(self):
        net = self._random_multilevel_with_wide(seed=3)
        reference = net.output_table().copy()
        before = obs_metrics.counter("odc.wide_nodes_skipped").value
        report = reassign_internal_dcs(net, max_fanins=2)
        assert obs_metrics.counter("odc.wide_nodes_skipped").value == before + 2
        np.testing.assert_array_equal(net.output_table(), reference)
        assert report.nodes_changed >= 0

    def test_reassign_routes_wide_nodes_to_sat(self):
        net = self._random_multilevel_with_wide(seed=4)
        reference = net.output_table().copy()
        before = obs_metrics.counter("odc.wide_nodes_skipped").value
        reassign_internal_dcs(net, max_fanins=2, wide_nodes="sat")
        # Both wide nodes fit under the hard cap -> SAT path, no skips.
        assert obs_metrics.counter("odc.wide_nodes_skipped").value == before
        np.testing.assert_array_equal(net.output_table(), reference)

    def test_sat_route_still_skips_beyond_hard_cap(self):
        net = self._wide_network(MAX_EXHAUSTIVE_FANINS + 1)
        before = obs_metrics.counter("odc.wide_nodes_skipped").value
        reassign_internal_dcs(net, wide_nodes="sat")
        assert obs_metrics.counter("odc.wide_nodes_skipped").value == before + 1

    def test_unknown_wide_nodes_mode(self):
        net = self._wide_network(3)
        with pytest.raises(ValueError, match="wide_nodes"):
            reassign_internal_dcs(net, wide_nodes="explode")

    def _random_multilevel_with_wide(self, seed: int) -> LogicNetwork:
        """5 PIs; two 3-fanin nodes (wide when max_fanins=2)."""
        rng = np.random.default_rng(seed)
        names = [f"x{i}" for i in range(5)]
        net = LogicNetwork(names)
        rows = rng.choice([0, 1, 2], size=(3, 3), p=[0.3, 0.3, 0.4]).astype(np.uint8)
        net.add_node("t0", ["x0", "x1", "x2"], Cover(rows, 3))
        rows2 = rng.choice([0, 1, 2], size=(3, 3), p=[0.3, 0.3, 0.4]).astype(np.uint8)
        net.add_node("t1", ["t0", "x3", "x4"], Cover(rows2, 3))
        net.add_node("t2", ["t1", "x0"], Cover.from_strings(["11", "00"]))
        net.set_output("y", "t2")
        return net


class TestWindowLimited:
    def _deep_chain(self) -> LogicNetwork:
        """t = a&b then three AND gates with c, d, e: flips on t are
        masked whenever any later-stage side input is 0."""
        net = LogicNetwork(["a", "b", "c", "d", "e"])
        net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("u", ["t", "c"], Cover.from_strings(["11"]))
        net.add_node("v", ["u", "d"], Cover.from_strings(["11"]))
        net.add_node("w", ["v", "e"], Cover.from_strings(["11"]))
        net.set_output("out", "w")
        return net

    def test_window_dcs_are_subset_of_complete(self):
        net = self._deep_chain()
        complete = node_flexibility(net, "t")
        for levels in (1, 2, 3):
            windowed = node_flexibility(net, "t", window_levels=levels)
            assert set(windowed.dc_set(0)) <= set(complete.dc_set(0))

    def test_window_covering_all_pos_matches_complete(self):
        net = self._deep_chain()
        complete = node_flexibility(net, "t")
        windowed = node_flexibility(net, "t", window_levels=3)
        np.testing.assert_array_equal(windowed.phases, complete.phases)

    def test_shallow_window_is_strictly_conservative(self):
        """Masking two levels down is invisible to a depth-1 window.

        t = a&b.  One level down, u = t & (a|b) masks pattern 00; two
        levels down, v = u & (a'|b) additionally masks pattern (a=1,b=0).
        The depth-1 window sees only the first masking.
        """
        net = LogicNetwork(["a", "b"])
        net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("s1", ["a", "b"], Cover.from_strings(["1-", "-1"]))
        net.add_node("s2", ["a", "b"], Cover.from_strings(["0-", "-1"]))
        net.add_node("u", ["t", "s1"], Cover.from_strings(["11"]))
        net.add_node("v", ["u", "s2"], Cover.from_strings(["11"]))
        net.set_output("out", "v")
        complete = node_flexibility(net, "t")
        windowed = node_flexibility(net, "t", window_levels=1)
        assert set(windowed.dc_set(0)) == {0}
        assert set(complete.dc_set(0)) == {0, 1}
        assert set(windowed.dc_set(0)) < set(complete.dc_set(0))

    def test_window_on_po_node(self):
        net = self._deep_chain()
        complete = node_flexibility(net, "w")
        windowed = node_flexibility(net, "w", window_levels=1)
        np.testing.assert_array_equal(windowed.phases, complete.phases)

    def test_bad_window_depth(self):
        net = self._deep_chain()
        with pytest.raises(ValueError, match="window_levels"):
            node_flexibility(net, "t", window_levels=0)


class TestInternalErrorRate:
    def test_all_observable_chain(self):
        """In an inverter-free single-path chain, every flip propagates."""
        net = LogicNetwork(["a"])
        net.add_node("t1", ["a"], Cover.from_strings(["1"]))
        net.add_node("t2", ["t1"], Cover.from_strings(["1"]))
        net.set_output("out", "t2")
        assert internal_error_rate(net) == pytest.approx(1.0)

    def test_masking_reduces_rate(self):
        net = blocked_network()
        # Flips on t are masked when c=0 (half the vectors).
        rate = internal_error_rate(net)
        assert rate < 1.0

    def test_source_mask(self):
        net = blocked_network()
        only_c1 = np.array([False, False, False, False, True, True, True, True])
        rate = internal_error_rate(net, source_mask=only_c1)
        # With c=1 everywhere, t is always observable; y always observable.
        assert rate == pytest.approx(1.0)


class TestReassignment:
    def _random_multilevel(self, seed: int) -> LogicNetwork:
        rng = np.random.default_rng(seed)
        names = [f"x{i}" for i in range(5)]
        net = LogicNetwork(names)
        rows = rng.choice([0, 1, 2], size=(4, 5), p=[0.3, 0.3, 0.4]).astype(np.uint8)
        net.add_node("t0", names, Cover(rows, 5))
        rows2 = rng.choice([0, 1, 2], size=(3, 3), p=[0.3, 0.3, 0.4]).astype(np.uint8)
        net.add_node("t1", ["t0", "x0", "x1"], Cover(rows2, 3))
        net.set_output("y", "t1")
        return net

    @pytest.mark.parametrize("policy", ["cfactor", "ranking"])
    def test_preserves_outputs(self, policy):
        net = self._random_multilevel(7)
        reference = net.output_table().copy()
        report = reassign_internal_dcs(net, policy=policy)
        np.testing.assert_array_equal(net.output_table(), reference)
        assert report.error_rate_before >= 0.0
        assert report.error_rate_after >= 0.0

    def test_unknown_policy(self):
        net = self._random_multilevel(8)
        with pytest.raises(ValueError, match="unknown policy"):
            reassign_internal_dcs(net, policy="magic")

    def test_reassignment_never_hurts_masking_much(self):
        """Majority-phase internal assignment should not increase the
        internal error rate beyond noise."""
        net = self._random_multilevel(9)
        report = reassign_internal_dcs(net, policy="cfactor", threshold=0.9)
        assert report.error_rate_after <= report.error_rate_before + 0.05
