"""Tests for k-feasible re-noding (the ABC 'renode' stand-in)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.espresso.cube import Cover
from repro.synth.network import LogicNetwork
from repro.synth.renode import enumerate_cuts, renode
from repro.synth.subject import SubjectGraph, build_subject_graph


def random_network(seed: int, n: int = 5, num_nodes: int = 3) -> LogicNetwork:
    rng = np.random.default_rng(seed)
    names = [f"x{i}" for i in range(n)]
    net = LogicNetwork(names)
    for t in range(num_nodes):
        kcubes = int(rng.integers(1, 6))
        rows = rng.choice([0, 1, 2], size=(kcubes, n), p=[0.3, 0.3, 0.4]).astype(np.uint8)
        net.add_node(f"t{t}", names, Cover(rows, n))
        net.set_output(f"y{t}", f"t{t}")
    return net


class TestCutEnumeration:
    def test_trivial_cuts_everywhere(self):
        graph = SubjectGraph()
        a, b = graph.pi("a"), graph.pi("b")
        top = graph.nand(a, b)
        graph.set_output("y", top)
        cuts = enumerate_cuts(graph, 4)
        for ref in (a, b, top):
            assert (frozenset({ref}), 0) in cuts[ref]

    def test_nand_merges_fanin_cuts(self):
        graph = SubjectGraph()
        a, b, c = graph.pi("a"), graph.pi("b"), graph.pi("c")
        inner = graph.nand(a, b)
        top = graph.nand(inner, c)
        cuts = enumerate_cuts(graph, 3)
        leaf_sets = {cut for cut, _ in cuts[top]}
        assert frozenset({a, b, c}) in leaf_sets

    def test_width_bound_respected(self):
        graph = SubjectGraph()
        pis = [graph.pi(f"x{i}") for i in range(6)]
        top = pis[0]
        for pi in pis[1:]:
            top = graph.nand(graph.inv(top), graph.inv(pi))
        graph.set_output("y", top)
        for k in (2, 3, 4):
            cuts = enumerate_cuts(graph, k)
            for per_node in cuts.values():
                for cut, _ in per_node:
                    assert len(cut) <= k

    def test_k_validation(self):
        graph = SubjectGraph()
        graph.pi("a")
        with pytest.raises(ValueError, match=">= 2"):
            enumerate_cuts(graph, 1)


class TestRenode:
    def test_preserves_function(self):
        net = random_network(1)
        for k in (3, 5, 8):
            rn = renode(net, k)
            np.testing.assert_array_equal(rn.output_table(), net.output_table())

    def test_fanin_bound(self):
        net = random_network(2, n=6, num_nodes=2)
        for k in (3, 4, 6):
            rn = renode(net, k)
            assert all(len(node.fanins) <= k for node in rn.nodes.values())

    def test_larger_k_coarsens(self):
        """Bigger cuts swallow more logic: node count must not grow."""
        net = random_network(3, n=6, num_nodes=3)
        sizes = [len(renode(net, k).nodes) for k in (3, 5, 8)]
        assert sizes[-1] <= sizes[0]

    def test_constant_output(self):
        net = LogicNetwork(["a"])
        net.add_node("zero", ["a"], Cover.empty(1))
        net.set_output("y", "zero")
        rn = renode(net, 4)
        np.testing.assert_array_equal(rn.output_table(), net.output_table())

    def test_passthrough_output(self):
        net = LogicNetwork(["a", "b"])
        net.set_output("y", "a")
        rn = renode(net, 4)
        np.testing.assert_array_equal(rn.output_table(), net.output_table())

    @given(st.integers(0, 10**9))
    @settings(max_examples=15, deadline=None)
    def test_random_equivalence(self, seed):
        net = random_network(seed, n=5, num_nodes=2)
        rn = renode(net, 4)
        np.testing.assert_array_equal(rn.output_table(), net.output_table())
        assert all(len(node.fanins) <= 4 for node in rn.nodes.values())

    def test_renode_exposes_internal_dcs(self):
        """Coarse nodes expose flexibility for the Sec. 4 reassignment."""
        from repro.synth.odc import reassign_internal_dcs

        rng = np.random.default_rng(9)
        net = random_network(9, n=7, num_nodes=4)
        rn = renode(net, 5)
        reference = rn.output_table().copy()
        report = reassign_internal_dcs(rn, policy="cfactor", threshold=1.0)
        np.testing.assert_array_equal(rn.output_table(), reference)
        assert report.dc_entries_assigned >= 0
