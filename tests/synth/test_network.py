"""Tests for the Boolean network model."""

import numpy as np
import pytest

from repro.core.spec import FunctionSpec
from repro.espresso.cube import Cover
from repro.synth.network import LogicNetwork


def simple_network() -> LogicNetwork:
    """y = (a & b) | c, built as two nodes."""
    net = LogicNetwork(["a", "b", "c"])
    net.add_node("t1", ["a", "b"], Cover.from_strings(["11"]))
    net.add_node("t2", ["t1", "c"], Cover.from_strings(["1-", "-1"]))
    net.set_output("y", "t2")
    return net


class TestConstruction:
    def test_duplicate_pi_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            LogicNetwork(["a", "a"])

    def test_undefined_fanin_rejected(self):
        net = LogicNetwork(["a"])
        with pytest.raises(ValueError, match="undefined fanin"):
            net.add_node("t", ["zzz"], Cover.from_strings(["1"]))

    def test_duplicate_node_rejected(self):
        net = LogicNetwork(["a"])
        net.add_node("t", ["a"], Cover.from_strings(["1"]))
        with pytest.raises(ValueError, match="already defined"):
            net.add_node("t", ["a"], Cover.from_strings(["0"]))

    def test_arity_mismatch_rejected(self):
        net = LogicNetwork(["a", "b"])
        with pytest.raises(ValueError, match="arity"):
            net.add_node("t", ["a"], Cover.from_strings(["11"]))

    def test_output_requires_signal(self):
        net = LogicNetwork(["a"])
        with pytest.raises(ValueError, match="undefined signal"):
            net.set_output("y", "nope")

    def test_fresh_names_unique(self):
        net = LogicNetwork(["a"])
        names = {net.fresh_name() for _ in range(10)}
        assert len(names) == 10


class TestEvaluation:
    def test_simple_function(self):
        net = simple_network()
        spec = net.to_spec()
        # y = (a & b) | c with a=bit0, b=bit1, c=bit2.
        idx = np.arange(8)
        expected = ((idx & 1) & ((idx >> 1) & 1)) | ((idx >> 2) & 1)
        np.testing.assert_array_equal(spec.phases[0], expected.astype(np.uint8))

    def test_implements(self):
        net = simple_network()
        idx = np.arange(8)
        table = (((idx & 1) & ((idx >> 1) & 1)) | ((idx >> 2) & 1)).astype(bool)
        assert net.implements(FunctionSpec.from_truth_table(table[None, :]))

    def test_pi_passthrough_output(self):
        net = LogicNetwork(["a", "b"])
        net.set_output("y", "a")
        table = net.output_table()
        np.testing.assert_array_equal(table[0], [False, True, False, True])

    def test_cycle_detection(self):
        net = LogicNetwork(["a"])
        net.add_node("t1", ["a"], Cover.from_strings(["1"]))
        net.add_node("t2", ["t1"], Cover.from_strings(["1"]))
        # Manufacture a cycle behind the API's back.
        net.nodes["t1"].fanins = ["t2"]
        with pytest.raises(ValueError, match="cycle"):
            net.topological_order()


class TestHousekeeping:
    def test_from_covers(self):
        covers = [Cover.from_strings(["11"]), Cover.from_strings(["0-"])]
        net = LogicNetwork.from_covers(["a", "b"], covers, ["y0", "y1"])
        assert len(net.outputs) == 2
        table = net.output_table()
        np.testing.assert_array_equal(table[0], [False, False, False, True])
        np.testing.assert_array_equal(table[1], [True, False, True, False])

    def test_sweep_dangling(self):
        net = simple_network()
        net.add_node("dead", ["a"], Cover.from_strings(["1"]))
        assert net.sweep_dangling() == 1
        assert "dead" not in net.nodes
        assert "t1" in net.nodes  # still referenced

    def test_literal_count(self):
        net = simple_network()
        assert net.num_literals == 4

    def test_fanouts(self):
        net = simple_network()
        fanouts = net.fanouts()
        assert fanouts["t1"] == ["t2"]
        assert fanouts["a"] == ["t1"]
