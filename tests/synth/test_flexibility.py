"""Tests for simulation+SAT flexibility extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.espresso.cube import Cover
from repro.synth.flexibility import node_flexibility_sat
from repro.synth.network import LogicNetwork
from repro.synth.odc import node_flexibility


def random_multilevel(seed: int, n: int = 5) -> LogicNetwork:
    rng = np.random.default_rng(seed)
    names = [f"x{i}" for i in range(n)]
    net = LogicNetwork(names)
    rows = rng.choice([0, 1, 2], size=(3, n), p=[0.3, 0.3, 0.4]).astype(np.uint8)
    net.add_node("t0", names, Cover(rows, n))
    rows2 = rng.choice([0, 1, 2], size=(2, 3), p=[0.3, 0.3, 0.4]).astype(np.uint8)
    net.add_node("t1", ["t0", "x0", "x1"], Cover(rows2, 3))
    rows3 = rng.choice([0, 1, 2], size=(2, 2), p=[0.35, 0.35, 0.3]).astype(np.uint8)
    net.add_node("t2", ["t1", "x2"], Cover(rows3, 2))
    net.set_output("y", "t2")
    net.set_output("z", "t0")
    return net


class TestAgainstExhaustive:
    @given(st.integers(0, 10**9))
    @settings(max_examples=12, deadline=None)
    def test_matches_exhaustive_odc(self, seed):
        """SAT-based flexibility equals the exhaustive computation."""
        net = random_multilevel(seed)
        for name in list(net.nodes):
            exact = node_flexibility(net, name)
            via_sat = node_flexibility_sat(
                net, name, simulation_vectors=64, rng=np.random.default_rng(seed)
            )
            np.testing.assert_array_equal(via_sat.phases, exact.phases, err_msg=name)

    def test_few_simulation_vectors_still_exact(self):
        """Even with almost no simulation, SAT confirmation keeps the
        result exact (simulation is only an accelerator)."""
        net = random_multilevel(3)
        for name in list(net.nodes):
            exact = node_flexibility(net, name)
            via_sat = node_flexibility_sat(
                net, name, simulation_vectors=2, rng=np.random.default_rng(0)
            )
            np.testing.assert_array_equal(via_sat.phases, exact.phases)


class TestKnownCases:
    def test_blocked_node_fully_flexible(self):
        """t feeding an AND with constant 0 is never observable."""
        net = LogicNetwork(["a", "b", "c"])
        net.add_node("czero", ["c"], Cover.empty(1))
        net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("y", ["t", "czero"], Cover.from_strings(["11"]))
        net.set_output("out", "y")
        local = node_flexibility_sat(net, "t")
        assert list(local.dc_set(0)) == [0, 1, 2, 3]

    def test_po_node_fully_observable(self):
        net = LogicNetwork(["a", "b"])
        net.add_node("t", ["a", "b"], Cover.from_strings(["1-", "-1"]))
        net.set_output("out", "t")
        local = node_flexibility_sat(net, "t")
        assert local.dc_set(0).size == 0

    def test_sdc_detected(self):
        """Complementary fanins make patterns 00 and 11 unreachable."""
        net = LogicNetwork(["a"])
        net.add_node("p", ["a"], Cover.from_strings(["1"]))
        net.add_node("q", ["a"], Cover.from_strings(["0"]))
        net.add_node("t", ["p", "q"], Cover.from_strings(["11", "00"]))
        net.set_output("out", "t")
        local = node_flexibility_sat(net, "t")
        assert 0 in local.dc_set(0)
        assert 3 in local.dc_set(0)

    def test_unknown_node(self):
        net = LogicNetwork(["a"])
        with pytest.raises(KeyError):
            node_flexibility_sat(net, "missing")
