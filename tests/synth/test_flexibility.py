"""Tests for simulation+SAT flexibility extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.truthtable import DC
from repro.espresso.cube import Cover
from repro.obs import metrics as obs_metrics
from repro.synth.flexibility import (
    CompleteFlexibilityOracle,
    node_flexibility_sat,
    reassign_complete_dcs,
)
from repro.synth.network import LogicNetwork
from repro.synth.odc import (
    MAX_EXHAUSTIVE_FANINS,
    node_flexibility,
    reassign_internal_dcs,
)


def random_multilevel(seed: int, n: int = 5) -> LogicNetwork:
    rng = np.random.default_rng(seed)
    names = [f"x{i}" for i in range(n)]
    net = LogicNetwork(names)
    rows = rng.choice([0, 1, 2], size=(3, n), p=[0.3, 0.3, 0.4]).astype(np.uint8)
    net.add_node("t0", names, Cover(rows, n))
    rows2 = rng.choice([0, 1, 2], size=(2, 3), p=[0.3, 0.3, 0.4]).astype(np.uint8)
    net.add_node("t1", ["t0", "x0", "x1"], Cover(rows2, 3))
    rows3 = rng.choice([0, 1, 2], size=(2, 2), p=[0.35, 0.35, 0.3]).astype(np.uint8)
    net.add_node("t2", ["t1", "x2"], Cover(rows3, 2))
    net.set_output("y", "t2")
    net.set_output("z", "t0")
    return net


class TestAgainstExhaustive:
    @given(st.integers(0, 10**9))
    @settings(max_examples=12, deadline=None)
    def test_matches_exhaustive_odc(self, seed):
        """SAT-based flexibility equals the exhaustive computation."""
        net = random_multilevel(seed)
        for name in list(net.nodes):
            exact = node_flexibility(net, name)
            via_sat = node_flexibility_sat(
                net, name, simulation_vectors=64, rng=np.random.default_rng(seed)
            )
            np.testing.assert_array_equal(via_sat.phases, exact.phases, err_msg=name)

    def test_few_simulation_vectors_still_exact(self):
        """Even with almost no simulation, SAT confirmation keeps the
        result exact (simulation is only an accelerator)."""
        net = random_multilevel(3)
        for name in list(net.nodes):
            exact = node_flexibility(net, name)
            via_sat = node_flexibility_sat(
                net, name, simulation_vectors=2, rng=np.random.default_rng(0)
            )
            np.testing.assert_array_equal(via_sat.phases, exact.phases)


class TestOracle:
    @given(st.integers(0, 10**9))
    @settings(max_examples=10, deadline=None)
    def test_shared_oracle_matches_exhaustive(self, seed):
        """One oracle across every node of a network — learned clauses
        accumulate in the shared solver — still agrees with the
        exhaustive extractor node for node."""
        net = random_multilevel(seed)
        oracle = CompleteFlexibilityOracle(
            net, simulation_vectors=64, rng=np.random.default_rng(seed)
        )
        for name in list(net.nodes):
            exact = node_flexibility(net, name)
            shared = oracle.node_flexibility(name)
            np.testing.assert_array_equal(shared.phases, exact.phases, err_msg=name)

    def test_query_budget_triggers_fallback(self):
        net = random_multilevel(11)
        oracle = CompleteFlexibilityOracle(
            net, simulation_vectors=2, query_budget=1
        )
        before = obs_metrics.counter("sat.fallbacks").value
        results = [oracle.node_flexibility(name) for name in net.nodes]
        assert None in results  # some node needed more than one query
        assert obs_metrics.counter("sat.fallbacks").value > before

    def test_conflict_budget_triggers_fallback(self):
        net = random_multilevel(12)
        oracle = CompleteFlexibilityOracle(
            net, simulation_vectors=2, conflict_budget=0
        )
        results = [oracle.node_flexibility(name) for name in net.nodes]
        # With a zero conflict budget any non-trivial query gives up.
        assert None in results

    def test_notify_rewrite_resynchronises(self):
        """After a cover rewrite the oracle must answer for the *new*
        network, not the stale encoding."""
        net = LogicNetwork(["a", "b", "c"])
        net.add_node("g", ["c"], Cover.from_strings(["1"]))
        net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("y", ["t", "g"], Cover.from_strings(["11"]))
        net.set_output("out", "y")
        oracle = CompleteFlexibilityOracle(net, simulation_vectors=16)
        assert oracle.node_flexibility("t").dc_set(0).size == 0
        # Kill the AND gate: g becomes constant 0, masking t entirely.
        net.nodes["g"].cover = Cover.empty(1)
        net.invalidate_structure_caches()
        oracle.notify_rewrite("g")
        assert list(oracle.node_flexibility("t").dc_set(0)) == [0, 1, 2, 3]

    def test_wide_node_raises(self):
        width = MAX_EXHAUSTIVE_FANINS + 1
        names = [f"x{i}" for i in range(width)]
        net = LogicNetwork(names)
        net.add_node("wide", names, Cover.from_strings(["1" * width]))
        net.set_output("out", "wide")
        with pytest.raises(ValueError, match="capped at"):
            node_flexibility_sat(net, "wide")


class TestReassignComplete:
    @pytest.mark.parametrize("policy", ["cfactor", "ranking"])
    @pytest.mark.parametrize("seed", [0, 1, 5, 9])
    def test_preserves_outputs(self, policy, seed):
        net = random_multilevel(seed)
        reference = net.output_table().copy()
        report = reassign_complete_dcs(net, policy=policy)
        np.testing.assert_array_equal(net.output_table(), reference)
        assert report.complete_dc_minterms >= report.window_dc_minterms
        assert report.dc_delta >= 0
        assert report.sat_fallback_nodes == 0

    @pytest.mark.parametrize("policy", ["cfactor", "ranking"])
    def test_total_dcs_match_exhaustive_reassign(self, policy):
        """Processed in the same order with the same policy, the SAT
        pass must confirm exactly the DC minterms the exhaustive pass
        sees (both are complete over the PI space)."""
        for seed in (2, 3, 7):
            sat_net = random_multilevel(seed)
            exact_net = random_multilevel(seed)
            sat_report = reassign_complete_dcs(sat_net, policy=policy)
            exact_report = reassign_internal_dcs(exact_net, policy=policy)
            assert sat_report.nodes_changed == exact_report.nodes_changed
            assert (
                sat_report.dc_entries_assigned
                == exact_report.dc_entries_assigned
            )
            for name in sat_net.nodes:
                np.testing.assert_array_equal(
                    sat_net.nodes[name].cover.evaluate(),
                    exact_net.nodes[name].cover.evaluate(),
                    err_msg=f"seed {seed} node {name}",
                )

    def test_budget_exhaustion_falls_back_to_window(self):
        net = random_multilevel(4)
        reference = net.output_table().copy()
        report = reassign_complete_dcs(net, query_budget=0)
        # Nodes that needed any SAT query at all fell back; ones whose
        # patterns were all simulation-proven cares complete query-free.
        assert report.sat_fallback_nodes >= 1
        np.testing.assert_array_equal(net.output_table(), reference)

    def test_unknown_policy(self):
        net = random_multilevel(6)
        with pytest.raises(ValueError, match="unknown policy"):
            reassign_complete_dcs(net, policy="magic")

    def test_counters_recorded(self):
        net = random_multilevel(8)
        queries = obs_metrics.counter("sat.queries").value
        nodes = obs_metrics.counter("complete_dc.nodes").value
        report = reassign_complete_dcs(net)
        assert obs_metrics.counter("sat.queries").value > queries
        assert (
            obs_metrics.counter("complete_dc.nodes").value
            == nodes + report.nodes_considered
        )


class TestKnownCases:
    def test_blocked_node_fully_flexible(self):
        """t feeding an AND with constant 0 is never observable."""
        net = LogicNetwork(["a", "b", "c"])
        net.add_node("czero", ["c"], Cover.empty(1))
        net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("y", ["t", "czero"], Cover.from_strings(["11"]))
        net.set_output("out", "y")
        local = node_flexibility_sat(net, "t")
        assert list(local.dc_set(0)) == [0, 1, 2, 3]

    def test_po_node_fully_observable(self):
        net = LogicNetwork(["a", "b"])
        net.add_node("t", ["a", "b"], Cover.from_strings(["1-", "-1"]))
        net.set_output("out", "t")
        local = node_flexibility_sat(net, "t")
        assert local.dc_set(0).size == 0

    def test_sdc_detected(self):
        """Complementary fanins make patterns 00 and 11 unreachable."""
        net = LogicNetwork(["a"])
        net.add_node("p", ["a"], Cover.from_strings(["1"]))
        net.add_node("q", ["a"], Cover.from_strings(["0"]))
        net.add_node("t", ["p", "q"], Cover.from_strings(["11", "00"]))
        net.set_output("out", "t")
        local = node_flexibility_sat(net, "t")
        assert 0 in local.dc_set(0)
        assert 3 in local.dc_set(0)

    def test_unknown_node(self):
        net = LogicNetwork(["a"])
        with pytest.raises(KeyError):
            node_flexibility_sat(net, "missing")
