"""Tests for simulation+SAT flexibility extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.truthtable import DC
from repro.espresso.cube import Cover
from repro.obs import metrics as obs_metrics
from repro.synth.flexibility import (
    CompleteFlexibilityOracle,
    node_flexibility_sat,
    reassign_complete_dcs,
)
from repro.synth.network import LogicNetwork
from repro.synth.odc import (
    MAX_EXHAUSTIVE_FANINS,
    node_flexibility,
    reassign_internal_dcs,
)


def random_multilevel(seed: int, n: int = 5) -> LogicNetwork:
    rng = np.random.default_rng(seed)
    names = [f"x{i}" for i in range(n)]
    net = LogicNetwork(names)
    rows = rng.choice([0, 1, 2], size=(3, n), p=[0.3, 0.3, 0.4]).astype(np.uint8)
    net.add_node("t0", names, Cover(rows, n))
    rows2 = rng.choice([0, 1, 2], size=(2, 3), p=[0.3, 0.3, 0.4]).astype(np.uint8)
    net.add_node("t1", ["t0", "x0", "x1"], Cover(rows2, 3))
    rows3 = rng.choice([0, 1, 2], size=(2, 2), p=[0.35, 0.35, 0.3]).astype(np.uint8)
    net.add_node("t2", ["t1", "x2"], Cover(rows3, 2))
    net.set_output("y", "t2")
    net.set_output("z", "t0")
    return net


class TestAgainstExhaustive:
    @given(st.integers(0, 10**9))
    @settings(max_examples=12, deadline=None)
    def test_matches_exhaustive_odc(self, seed):
        """SAT-based flexibility equals the exhaustive computation."""
        net = random_multilevel(seed)
        for name in list(net.nodes):
            exact = node_flexibility(net, name)
            via_sat = node_flexibility_sat(
                net, name, simulation_vectors=64, rng=np.random.default_rng(seed)
            )
            np.testing.assert_array_equal(via_sat.phases, exact.phases, err_msg=name)

    def test_few_simulation_vectors_still_exact(self):
        """Even with almost no simulation, SAT confirmation keeps the
        result exact (simulation is only an accelerator)."""
        net = random_multilevel(3)
        for name in list(net.nodes):
            exact = node_flexibility(net, name)
            via_sat = node_flexibility_sat(
                net, name, simulation_vectors=2, rng=np.random.default_rng(0)
            )
            np.testing.assert_array_equal(via_sat.phases, exact.phases)


class TestOracle:
    @given(st.integers(0, 10**9))
    @settings(max_examples=10, deadline=None)
    def test_shared_oracle_matches_exhaustive(self, seed):
        """One oracle across every node of a network — learned clauses
        accumulate in the shared solver — still agrees with the
        exhaustive extractor node for node."""
        net = random_multilevel(seed)
        oracle = CompleteFlexibilityOracle(
            net, simulation_vectors=64, rng=np.random.default_rng(seed)
        )
        for name in list(net.nodes):
            exact = node_flexibility(net, name)
            shared = oracle.node_flexibility(name)
            np.testing.assert_array_equal(shared.phases, exact.phases, err_msg=name)

    def test_query_budget_triggers_fallback(self):
        net = random_multilevel(11)
        oracle = CompleteFlexibilityOracle(
            net, simulation_vectors=2, query_budget=1
        )
        before = obs_metrics.counter("sat.fallbacks").value
        results = [oracle.node_flexibility(name) for name in net.nodes]
        assert None in results  # some node needed more than one query
        assert obs_metrics.counter("sat.fallbacks").value > before

    def test_conflict_budget_triggers_fallback(self):
        net = random_multilevel(12)
        oracle = CompleteFlexibilityOracle(
            net, simulation_vectors=2, conflict_budget=0
        )
        results = [oracle.node_flexibility(name) for name in net.nodes]
        # With a zero conflict budget any non-trivial query gives up.
        assert None in results

    def test_notify_rewrite_resynchronises(self):
        """After a cover rewrite the oracle must answer for the *new*
        network, not the stale encoding."""
        net = LogicNetwork(["a", "b", "c"])
        net.add_node("g", ["c"], Cover.from_strings(["1"]))
        net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("y", ["t", "g"], Cover.from_strings(["11"]))
        net.set_output("out", "y")
        oracle = CompleteFlexibilityOracle(net, simulation_vectors=16)
        assert oracle.node_flexibility("t").dc_set(0).size == 0
        # Kill the AND gate: g becomes constant 0, masking t entirely.
        net.nodes["g"].cover = Cover.empty(1)
        net.invalidate_structure_caches()
        oracle.notify_rewrite("g")
        assert list(oracle.node_flexibility("t").dc_set(0)) == [0, 1, 2, 3]

    def test_wide_node_raises(self):
        width = MAX_EXHAUSTIVE_FANINS + 1
        names = [f"x{i}" for i in range(width)]
        net = LogicNetwork(names)
        net.add_node("wide", names, Cover.from_strings(["1" * width]))
        net.set_output("out", "wide")
        with pytest.raises(ValueError, match="capped at"):
            node_flexibility_sat(net, "wide")


class TestReassignComplete:
    @pytest.mark.parametrize("policy", ["cfactor", "ranking"])
    @pytest.mark.parametrize("seed", [0, 1, 5, 9])
    def test_preserves_outputs(self, policy, seed):
        net = random_multilevel(seed)
        reference = net.output_table().copy()
        report = reassign_complete_dcs(net, policy=policy)
        np.testing.assert_array_equal(net.output_table(), reference)
        assert report.complete_dc_minterms >= report.window_dc_minterms
        assert report.dc_delta >= 0
        assert report.sat_fallback_nodes == 0

    @pytest.mark.parametrize("policy", ["cfactor", "ranking"])
    def test_total_dcs_match_exhaustive_reassign(self, policy):
        """Processed in the same order with the same policy, the SAT
        pass must confirm exactly the DC minterms the exhaustive pass
        sees (both are complete over the PI space)."""
        for seed in (2, 3, 7):
            sat_net = random_multilevel(seed)
            exact_net = random_multilevel(seed)
            sat_report = reassign_complete_dcs(sat_net, policy=policy)
            exact_report = reassign_internal_dcs(exact_net, policy=policy)
            assert sat_report.nodes_changed == exact_report.nodes_changed
            assert (
                sat_report.dc_entries_assigned
                == exact_report.dc_entries_assigned
            )
            for name in sat_net.nodes:
                np.testing.assert_array_equal(
                    sat_net.nodes[name].cover.evaluate(),
                    exact_net.nodes[name].cover.evaluate(),
                    err_msg=f"seed {seed} node {name}",
                )

    def test_budget_exhaustion_falls_back_to_window(self):
        net = random_multilevel(4)
        reference = net.output_table().copy()
        report = reassign_complete_dcs(net, query_budget=0)
        # Nodes that needed any SAT query at all fell back; ones whose
        # patterns were all simulation-proven cares complete query-free.
        assert report.sat_fallback_nodes >= 1
        np.testing.assert_array_equal(net.output_table(), reference)

    def test_unknown_policy(self):
        net = random_multilevel(6)
        with pytest.raises(ValueError, match="unknown policy"):
            reassign_complete_dcs(net, policy="magic")

    def test_counters_recorded(self):
        net = random_multilevel(8)
        queries = obs_metrics.counter("sat.queries").value
        nodes = obs_metrics.counter("complete_dc.nodes").value
        report = reassign_complete_dcs(net)
        assert obs_metrics.counter("sat.queries").value > queries
        assert (
            obs_metrics.counter("complete_dc.nodes").value
            == nodes + report.nodes_considered
        )


def _network_snapshot(net: LogicNetwork) -> dict:
    return {
        name: (tuple(node.fanins), node.cover.cubes.tobytes())
        for name, node in net.nodes.items()
    }


class TestBatching:
    @given(st.integers(0, 10**9))
    @settings(max_examples=8, deadline=None)
    def test_batched_matches_single_query(self, seed):
        """One-hot selector batching is a pure query-plan change: the
        confirmed flexibility must equal the one-cube-per-solve path."""
        single_net = random_multilevel(seed)
        batched_net = random_multilevel(seed)
        single = CompleteFlexibilityOracle(
            single_net, simulation_vectors=16,
            rng=np.random.default_rng(seed), batch_size=1,
        )
        batched = CompleteFlexibilityOracle(
            batched_net, simulation_vectors=16,
            rng=np.random.default_rng(seed), batch_size=16,
        )
        for name in list(single_net.nodes):
            np.testing.assert_array_equal(
                batched.node_flexibility(name).phases,
                single.node_flexibility(name).phases,
                err_msg=name,
            )

    def test_batch_queries_counted(self):
        net = random_multilevel(13)
        before = obs_metrics.counter("sat.batch_queries").value
        oracle = CompleteFlexibilityOracle(
            net, simulation_vectors=4, batch_size=8
        )
        for name in list(net.nodes):
            oracle.node_flexibility(name)
        assert obs_metrics.counter("sat.batch_queries").value > before


def _ballasted_network() -> LogicNetwork:
    """g,t,y,u plus a large ballast SOP.

    The ballast keeps the fresh encoding big enough that one extra flip
    copy stays under the compaction threshold, so the flip-cone cache's
    hit/evict behaviour is observable instead of being reset by GC.
    """
    net = LogicNetwork(["a", "b", "c", "d", "e"])
    net.add_node("g", ["c"], Cover.from_strings(["1"]))
    net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
    net.add_node("y", ["t", "g"], Cover.from_strings(["11"]))
    net.add_node("u", ["d", "e"], Cover.from_strings(["11"]))
    rng = np.random.default_rng(0)
    rows = rng.choice([0, 1, 2], size=(48, 4), p=[0.4, 0.4, 0.2])
    net.add_node("ballast", ["a", "b", "c", "d"],
                 Cover(rows.astype(np.uint8), 4))
    net.set_output("out", "y")
    net.set_output("aux", "u")
    net.set_output("bal", "ballast")
    return net


class TestConeCache:
    def test_rewrite_evicts_only_dirty_cones(self):
        """notify_rewrite must invalidate the cached flip-cone encodings
        of the rewritten node's fanout cone — and nothing else."""
        net = _ballasted_network()
        oracle = CompleteFlexibilityOracle(net, simulation_vectors=2)
        misses = obs_metrics.counter("sat.cone_cache_misses").value
        for name in ("t", "u"):
            oracle.node_flexibility(name)
        assert obs_metrics.counter("sat.cone_cache_misses").value > misses
        evictions = obs_metrics.counter("sat.cone_cache_evictions").value
        hits = obs_metrics.counter("sat.cone_cache_hits").value
        net.nodes["g"].cover = Cover.empty(1)
        net.invalidate_structure_caches()
        oracle.notify_rewrite("g")
        # t's flip cone reads g (through y) — evicted; u's does not.
        assert obs_metrics.counter("sat.cone_cache_evictions").value > evictions
        assert list(oracle.node_flexibility("t").dc_set(0)) == [0, 1, 2, 3]
        oracle.node_flexibility("u")
        assert obs_metrics.counter("sat.cone_cache_hits").value > hits

    def test_cache_hit_on_repeat_query(self):
        net = _ballasted_network()
        oracle = CompleteFlexibilityOracle(net, simulation_vectors=2)
        misses = obs_metrics.counter("sat.cone_cache_misses").value
        first = oracle.node_flexibility("t")
        assert obs_metrics.counter("sat.cone_cache_misses").value > misses
        hits = obs_metrics.counter("sat.cone_cache_hits").value
        again = oracle.node_flexibility("t")
        assert obs_metrics.counter("sat.cone_cache_hits").value > hits
        np.testing.assert_array_equal(first.phases, again.phases)


class TestParallelReassign:
    @pytest.mark.parametrize(
        "policy", ["conventional", "ranking", "cfactor", "complete"]
    )
    def test_parallel_bit_identical_to_serial(self, policy):
        """jobs=2 must produce byte-for-byte the networks (and counts)
        of the serial pass, for every assignment policy."""
        serial_net = random_multilevel(21)
        parallel_net = random_multilevel(21)
        serial = reassign_complete_dcs(
            serial_net, policy=policy, rng=np.random.default_rng(7)
        )
        parallel = reassign_complete_dcs(
            parallel_net, policy=policy, rng=np.random.default_rng(7), jobs=2
        )
        assert _network_snapshot(serial_net) == _network_snapshot(parallel_net)
        assert (
            serial.complete_dc_minterms,
            serial.window_dc_minterms,
            serial.nodes_changed,
            serial.dc_entries_assigned,
        ) == (
            parallel.complete_dc_minterms,
            parallel.window_dc_minterms,
            parallel.nodes_changed,
            parallel.dc_entries_assigned,
        )

    def test_progress_callback_reports_completion(self):
        net = random_multilevel(22)
        calls: list[tuple[int, int]] = []
        reassign_complete_dcs(net, progress=lambda d, t: calls.append((d, t)))
        assert calls
        done, total = calls[-1]
        assert done == total == len(
            [n for n in net.nodes if len(net.nodes[n].fanins) <= 10]
        )


class TestKnownCases:
    def test_blocked_node_fully_flexible(self):
        """t feeding an AND with constant 0 is never observable."""
        net = LogicNetwork(["a", "b", "c"])
        net.add_node("czero", ["c"], Cover.empty(1))
        net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
        net.add_node("y", ["t", "czero"], Cover.from_strings(["11"]))
        net.set_output("out", "y")
        local = node_flexibility_sat(net, "t")
        assert list(local.dc_set(0)) == [0, 1, 2, 3]

    def test_po_node_fully_observable(self):
        net = LogicNetwork(["a", "b"])
        net.add_node("t", ["a", "b"], Cover.from_strings(["1-", "-1"]))
        net.set_output("out", "t")
        local = node_flexibility_sat(net, "t")
        assert local.dc_set(0).size == 0

    def test_sdc_detected(self):
        """Complementary fanins make patterns 00 and 11 unreachable."""
        net = LogicNetwork(["a"])
        net.add_node("p", ["a"], Cover.from_strings(["1"]))
        net.add_node("q", ["a"], Cover.from_strings(["0"]))
        net.add_node("t", ["p", "q"], Cover.from_strings(["11", "00"]))
        net.set_output("out", "t")
        local = node_flexibility_sat(net, "t")
        assert 0 in local.dc_set(0)
        assert 3 in local.dc_set(0)

    def test_unknown_node(self):
        net = LogicNetwork(["a"])
        with pytest.raises(KeyError):
            node_flexibility_sat(net, "missing")
