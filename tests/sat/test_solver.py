"""Tests for the CNF SAT solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.solver import SatSolver, luby


def check_model(clauses, model) -> bool:
    return all(
        any(model[abs(l)] == (l > 0) for l in clause) for clause in clauses
    )


class TestBasics:
    def test_empty_formula_is_sat(self):
        sat, model = SatSolver().solve()
        assert sat

    def test_unit_clauses(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-2])
        sat, model = solver.solve()
        assert sat
        assert model[1] is True
        assert model[2] is False

    def test_simple_unsat(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1])
        sat, _ = solver.solve()
        assert not sat

    def test_requires_propagation(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        solver.add_clause([1, -2])
        sat, model = solver.solve()
        assert sat
        assert model[1] and model[2]

    def test_three_var_unsat(self):
        """All eight sign combinations of (x1, x2, x3): unsatisfiable."""
        solver = SatSolver()
        for mask in range(8):
            clause = [(1 if (mask >> i) & 1 else -1) * (i + 1) for i in range(3)]
            solver.add_clause(clause)
        sat, _ = solver.solve()
        assert not sat

    def test_tautological_clause_ignored(self):
        solver = SatSolver()
        solver.add_clause([1, -1])
        solver.add_clause([2])
        sat, model = solver.solve()
        assert sat and model[2]

    def test_bad_clauses_rejected(self):
        solver = SatSolver()
        with pytest.raises(ValueError, match="empty"):
            solver.add_clause([])
        with pytest.raises(ValueError, match="literal 0"):
            solver.add_clause([0])


class TestAssumptions:
    def test_assumptions_restrict(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        sat, model = solver.solve(assumptions=[-1])
        assert sat
        assert model[2] is True
        sat, _ = solver.solve(assumptions=[-1, -2])
        assert not sat


class TestAssumptionSoundness:
    """Clauses learned under assumptions must stay sound for later calls.

    The pre-fix solver enqueued assumptions at level 0; ``analyze``
    drops level-0 literals, so a clause learned under one assumption set
    silently conditioned on it and — persisted into ``self.clauses`` —
    made later calls with contradictory assumptions wrongly UNSAT.
    """

    def test_contradictory_assumption_sets(self):
        # Only constrains assignments where 1, 2, 3 are all true:
        # then 4 must be both true and false.
        solver = SatSolver()
        solver.add_clause([-1, -2, -3, 4])
        solver.add_clause([-1, -2, -3, -4])
        sat, _ = solver.solve(assumptions=[1])
        assert sat  # e.g. 1=T, 2=F; forces a conflict + learned clause first
        # Pre-fix the learned clause was [-2, -3] (assumption -1 dropped),
        # making this wrongly UNSAT.  2 ∧ 3 with 1 false is fine.
        sat, model = solver.solve(assumptions=[-1, 2, 3])
        assert sat
        assert model[1] is False and model[2] and model[3]

    def test_flipped_single_assumption(self):
        solver = SatSolver()
        solver.add_clause([-1, 2, 3])
        solver.add_clause([-1, 2, -3])
        solver.add_clause([-1, -2, 3])
        solver.add_clause([-1, -2, -3])
        sat, _ = solver.solve(assumptions=[1])
        assert not sat  # assuming 1 forces the 4-way contradiction
        sat, model = solver.solve(assumptions=[-1])
        assert sat
        assert model[1] is False
        sat, model = solver.solve()
        assert sat
        assert model[1] is False  # 1 is genuinely forced false

    def test_conflicting_assumptions_rejected(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        sat, _ = solver.solve(assumptions=[3, -3])
        assert not sat
        sat, _ = solver.solve(assumptions=[3])
        assert sat  # the contradiction above must not poison var 3


class TestConflictBudget:
    def test_budget_exhaustion_returns_unknown(self):
        solver = SatSolver()
        # PHP(5 -> 4): small but needs many conflicts.
        def var(p, h):
            return p * 4 + h + 1
        for p in range(5):
            solver.add_clause([var(p, h) for h in range(4)])
        for h in range(4):
            for p1 in range(5):
                for p2 in range(p1 + 1, 5):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        sat, model = solver.solve(max_conflicts=1)
        assert sat is None
        assert model == {}
        # A fresh unbudgeted call still gets the right answer.
        sat, _ = solver.solve()
        assert sat is False

    def test_budget_keeps_solver_sound(self):
        solver = SatSolver()
        solver.add_clause([-1, -2, -3, 4])
        solver.add_clause([-1, -2, -3, -4])
        solver.solve(assumptions=[1], max_conflicts=1)
        sat, _ = solver.solve(assumptions=[-1, 2, 3])
        assert sat


class TestRestartsAndPhases:
    def test_luby_sequence(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]
        with pytest.raises(ValueError):
            luby(0)

    def _php(self, pigeons, holes):
        solver = SatSolver()
        def var(p, h):
            return p * holes + h + 1
        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        return solver

    def test_restarts_fire_and_stay_correct(self):
        solver = self._php(7, 6)
        sat, _ = solver.solve()
        assert sat is False
        # PHP(7 -> 6) needs well over RESTART_BASE conflicts, so at
        # least one Luby restart must have fired without changing the
        # verdict.
        assert solver.total_restarts >= 1
        assert solver.total_conflicts > 64

    def test_restart_preserves_max_conflicts_budget(self):
        solver = self._php(7, 6)
        sat, model = solver.solve(max_conflicts=70)
        # The budget is a global conflict count, not per-restart: 70
        # conflicts exceed the first restart limit (64) but are nowhere
        # near enough for PHP(7 -> 6).
        assert sat is None
        assert model == {}
        sat, _ = solver.solve()
        assert sat is False

    def test_phase_saving_records_last_polarity(self):
        solver = SatSolver()
        solver.add_clause([-1, -2])
        sat, model = solver.solve(assumptions=[1])
        assert sat and model[1] is True and model[2] is False
        assert solver._saved_phase[2] is False
        # Unassumed, decisions re-use the saved phases.
        sat, model = solver.solve()
        assert sat
        assert model[2] is False


class TestPigeonhole:
    def test_php_3_into_2_unsat(self):
        """Three pigeons, two holes: classic small UNSAT instance."""
        solver = SatSolver()
        def var(p, h):
            return p * 2 + h + 1
        for p in range(3):
            solver.add_clause([var(p, 0), var(p, 1)])
        for h in range(2):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        sat, _ = solver.solve()
        assert not sat


class TestRandomFormulas:
    @given(st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        num_vars = int(rng.integers(2, 8))
        num_clauses = int(rng.integers(1, 24))
        clauses = []
        for _ in range(num_clauses):
            width = int(rng.integers(1, min(4, num_vars + 1)))
            variables = rng.choice(num_vars, size=width, replace=False) + 1
            clause = [int(v) * (1 if rng.random() < 0.5 else -1) for v in variables]
            clauses.append(clause)
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        sat, model = solver.solve()
        brute = any(
            all(
                any(((assignment >> (abs(l) - 1)) & 1) == (l > 0) for l in clause)
                for clause in clauses
            )
            for assignment in range(1 << num_vars)
        )
        assert sat == brute
        if sat:
            assert check_model(clauses, model)

    @given(st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_incremental_assumption_sequences(self, seed):
        """One solver, many assumption sets: every answer must match
        brute force over (clauses + assumptions-as-units)."""
        rng = np.random.default_rng(seed)
        num_vars = int(rng.integers(2, 7))
        num_clauses = int(rng.integers(2, 20))
        clauses = []
        for _ in range(num_clauses):
            width = int(rng.integers(1, min(4, num_vars + 1)))
            variables = rng.choice(num_vars, size=width, replace=False) + 1
            clause = [int(v) * (1 if rng.random() < 0.5 else -1) for v in variables]
            clauses.append(clause)
        solver = SatSolver()
        for clause in clauses:
            solver.add_clause(clause)
        for _ in range(int(rng.integers(2, 6))):
            width = int(rng.integers(0, num_vars + 1))
            variables = rng.choice(num_vars, size=width, replace=False) + 1
            assumptions = [
                int(v) * (1 if rng.random() < 0.5 else -1) for v in variables
            ]
            sat, model = solver.solve(assumptions=assumptions)
            extended = clauses + [[l] for l in assumptions]
            brute = any(
                all(
                    any(
                        ((assignment >> (abs(l) - 1)) & 1) == (l > 0)
                        for l in clause
                    )
                    for clause in extended
                )
                for assignment in range(1 << num_vars)
            )
            assert sat == brute, (clauses, assumptions)
            if sat:
                assert check_model(extended, model)
