"""Tests for Tseitin encoding and SAT-based equivalence checking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.espresso.cube import Cover
from repro.sat.encode import CnfBuilder, encode_aig, encode_network, networks_equivalent
from repro.synth.aig import aig_from_network
from repro.synth.network import LogicNetwork
from repro.synth.optimize import optimize_network
from repro.synth.renode import renode


def random_network(seed: int, n: int = 4, num_nodes: int = 2) -> LogicNetwork:
    rng = np.random.default_rng(seed)
    names = [f"x{i}" for i in range(n)]
    net = LogicNetwork(names)
    for t in range(num_nodes):
        k = int(rng.integers(1, 6))
        rows = rng.choice([0, 1, 2], size=(k, n), p=[0.3, 0.3, 0.4]).astype(np.uint8)
        net.add_node(f"t{t}", names, Cover(rows, n))
        net.set_output(f"y{t}", f"t{t}")
    return net


class TestSopEncoding:
    def _solve_against_table(self, cover: Cover, fanins: list[str]):
        """Check the encoding agrees with dense evaluation on every input."""
        table = cover.evaluate()
        for minterm in range(table.shape[0]):
            builder = CnfBuilder()
            builder.encode_sop("out", fanins, cover)
            assumptions = []
            for pos, name in enumerate(fanins):
                variable = builder.var(name)
                assumptions.append(variable if (minterm >> pos) & 1 else -variable)
            out_var = builder.var("out")
            expected = bool(table[minterm])
            assumptions.append(out_var if expected else -out_var)
            sat, _ = builder.solver.solve(assumptions)
            assert sat, f"minterm {minterm} disagreed"
            sat, _ = builder.solver.solve(
                assumptions[:-1] + [-out_var if expected else out_var]
            )
            assert not sat

    def test_and_cover(self):
        self._solve_against_table(Cover.from_strings(["11"]), ["a", "b"])

    def test_or_cover(self):
        self._solve_against_table(Cover.from_strings(["1-", "-1"]), ["a", "b"])

    def test_constant_covers(self):
        self._solve_against_table(Cover.empty(2), ["a", "b"])
        self._solve_against_table(Cover.universe(2), ["a", "b"])

    @given(st.integers(0, 10**9))
    @settings(max_examples=15, deadline=None)
    def test_random_covers(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 4))
        k = int(rng.integers(1, 5))
        rows = rng.choice([0, 1, 2], size=(k, n), p=[0.3, 0.3, 0.4]).astype(np.uint8)
        self._solve_against_table(Cover(rows, n), [f"x{i}" for i in range(n)])


class TestEquivalence:
    def test_network_equals_itself(self):
        net = random_network(1)
        assert networks_equivalent(net, net)

    def test_detects_difference(self):
        left = LogicNetwork(["a", "b"])
        left.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
        left.set_output("y", "t")
        right = LogicNetwork(["a", "b"])
        right.add_node("t", ["a", "b"], Cover.from_strings(["1-", "-1"]))
        right.set_output("y", "t")
        assert not networks_equivalent(left, right)

    def test_interface_mismatch(self):
        left = LogicNetwork(["a"])
        left.set_output("y", "a")
        right = LogicNetwork(["b"])
        right.set_output("y", "b")
        with pytest.raises(ValueError, match="primary input"):
            networks_equivalent(left, right)

    def test_optimization_equivalence(self):
        """SAT confirms kernel extraction preserves the function."""
        net = random_network(7, n=5, num_nodes=3)
        optimized = random_network(7, n=5, num_nodes=3)
        optimize_network(optimized)
        assert networks_equivalent(net, optimized)

    def test_renode_equivalence(self):
        net = random_network(8, n=5, num_nodes=3)
        assert networks_equivalent(net, renode(net, 4))

    @given(st.integers(0, 10**9))
    @settings(max_examples=10, deadline=None)
    def test_agrees_with_dense_comparison(self, seed):
        left = random_network(seed, n=4, num_nodes=2)
        right = random_network(seed + 1, n=4, num_nodes=2)
        dense_equal = bool(np.array_equal(left.output_table(), right.output_table()))
        assert networks_equivalent(left, right) == dense_equal


class TestAigEncoding:
    def test_outputs_match_evaluation(self):
        net = random_network(4, n=4, num_nodes=2)
        aig = aig_from_network(net)
        tables = aig.evaluate()
        builder = CnfBuilder()
        outputs = encode_aig(builder, aig)
        for minterm in range(1 << 4):
            assumptions = []
            for pos, name in enumerate(aig.pi_names):
                variable = builder.var(name)
                assumptions.append(variable if (minterm >> pos) & 1 else -variable)
            sat, model = builder.solver.solve(assumptions)
            assert sat
            for out_name, out_var in outputs.items():
                assert model[out_var] == bool(tables[out_name][minterm])
