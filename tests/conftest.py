"""Shared fixtures for the whole suite."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the telemetry ledger at a per-test temporary file.

    Many tests drive ``repro.cli.main`` in-process from the repository
    working directory; without this, every such call would append to a
    real ``.repro/ledger.sqlite`` in the source tree.
    """
    monkeypatch.setenv("REPRO_LEDGER_PATH", str(tmp_path / "ledger.sqlite"))
