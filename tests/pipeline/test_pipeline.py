"""Equivalence tests: the declarative pipeline reproduces the legacy flows.

The acceptance bar of the stage-graph refactor is bit-identity: running
``Pipeline.from_config(default_config(...))`` must produce the same
``FlowResult`` as :func:`repro.flows.run_flow` for every policy, and the
stage bodies must match an independent, hand-spelled rendition of the
seed recipe.
"""

import numpy as np
import pytest

from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.flows.experiment import flow_result, run_flow
from repro.pipeline import DEFAULT_STAGES, POLICIES, Pipeline, default_config


@pytest.fixture(scope="module")
def spec() -> FunctionSpec:
    rng = np.random.default_rng(77)
    phases = rng.choice(
        np.array([OFF, ON, DC], dtype=np.uint8), size=(3, 128), p=[0.25, 0.25, 0.5]
    )
    return FunctionSpec(phases, name="small")


def run_config(config, spec, **kwargs):
    pipe = Pipeline.from_config(config, **kwargs)
    return flow_result(pipe.run(spec=spec))


class TestRunFlowEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_matches_run_flow(self, spec, policy):
        via_flow = run_flow(spec, policy, fraction=0.5, objective="area")
        via_pipeline = run_config(
            default_config(policy, fraction=0.5, objective="area"), spec
        )
        assert via_pipeline == via_flow

    def test_matches_run_flow_delay_objective(self, spec):
        via_flow = run_flow(spec, "ranking", fraction=0.75, objective="delay")
        via_pipeline = run_config(
            default_config("ranking", fraction=0.75, objective="delay"), spec
        )
        assert via_pipeline == via_flow

    def test_matches_run_flow_threshold(self, spec):
        via_flow = run_flow(spec, "cfactor", threshold=0.6, objective="area")
        via_pipeline = run_config(
            default_config("cfactor", threshold=0.6, objective="area"), spec
        )
        assert via_pipeline == via_flow


class TestManualRecipeEquivalence:
    def test_conventional_area_matches_hand_spelled_recipe(self, spec):
        """The stage bodies equal the seed recipe, spelled out by hand."""
        from repro.core.reliability import error_rate
        from repro.espresso.minimize import minimize_spec
        from repro.synth.library import generic_70nm_library
        from repro.synth.mapping import map_graph
        from repro.synth.network import LogicNetwork
        from repro.synth.optimize import optimize_network
        from repro.synth.power import power_analysis
        from repro.synth.subject import build_subject_graph
        from repro.synth.timing import static_timing

        minimized = minimize_spec(spec)
        network = LogicNetwork.from_covers(
            list(spec.input_names), minimized.covers, list(spec.output_names)
        )
        optimize_network(network)
        graph = build_subject_graph(network)
        netlist = map_graph(graph, generic_70nm_library(), mode="area")
        implemented = netlist.to_spec(name=f"{spec.name}/impl")

        result = run_flow(spec, "conventional", objective="area")
        assert result.area == netlist.area
        assert result.gates == netlist.num_gates
        assert result.literals == network.num_literals
        assert result.delay == static_timing(netlist).delay
        assert result.power == power_analysis(netlist).total
        assert result.error_rate == error_rate(implemented, spec=spec)


class TestCompileDrivers:
    def test_compile_spec_matches_pipeline(self, spec):
        from repro.synth.compile_ import compile_spec

        synthesis = compile_spec(spec, objective="area")
        pipe = Pipeline(
            ["espresso", "optimize", "map", "tune", "measure"],
            params={"objective": "area", "library": None, "optimize": True},
        )
        ctx = pipe.run(spec=spec, assigned_spec=spec)
        via_pipeline = ctx.require("synthesis")
        assert synthesis.area == via_pipeline.area
        assert synthesis.delay == via_pipeline.delay
        assert synthesis.power == via_pipeline.power
        assert synthesis.error_rate == via_pipeline.error_rate

    def test_compile_network_still_validates_objective(self, spec):
        from repro.synth.compile_ import compile_spec

        with pytest.raises(ValueError, match="objective must be one of"):
            compile_spec(spec, objective="speed")


class TestRunSemantics:
    def test_stop_after_leaves_partial_context(self, spec):
        pipe = Pipeline.from_config(default_config())
        ctx = pipe.run(spec=spec, stop_after="espresso")
        assert "network" in ctx
        assert "netlist" not in ctx
        assert "synthesis" not in ctx

    def test_stop_after_unknown_stage(self, spec):
        pipe = Pipeline.from_config(default_config())
        with pytest.raises(ValueError, match="stop_after"):
            pipe.run(spec=spec, stop_after="teleport")

    def test_ctx_and_artifacts_are_exclusive(self, spec):
        pipe = Pipeline.from_config(default_config())
        ctx = pipe.build_context(spec=spec)
        with pytest.raises(ValueError, match="not both"):
            pipe.run(ctx, spec=spec)

    def test_overlay_params_apply_to_one_stage_only(self, spec):
        config = {
            "name": "overlay",
            "params": {"policy": "conventional", "objective": "area"},
            "stages": [
                {"stage": "assign", "params": {"policy": "complete"}},
                *DEFAULT_STAGES[1:],
            ],
        }
        overlaid = Pipeline.from_config(config)
        result = flow_result(overlaid.run(spec=spec))
        complete = run_flow(spec, "complete", objective="area")
        # The overlay switched only the assign stage's policy; measured
        # numbers match the complete run while the packaging still reports
        # the flow-level policy.
        assert result.fraction_assigned == complete.fraction_assigned
        assert result.area == complete.area
        assert result.error_rate == complete.error_rate
        assert result.policy == "conventional"
