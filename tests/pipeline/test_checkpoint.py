"""Tests for content-addressed stage checkpointing and resume."""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.flows.experiment import run_flow
from repro.flows.sweep import fraction_sweep
from repro.obs import metrics as obs_metrics
from repro.pipeline import CheckpointStore, Pipeline, default_config
from repro.pipeline.pipeline import DEFAULT_STAGES


@pytest.fixture(scope="module")
def spec() -> FunctionSpec:
    rng = np.random.default_rng(11)
    phases = rng.choice(
        np.array([OFF, ON, DC], dtype=np.uint8), size=(3, 128), p=[0.25, 0.25, 0.5]
    )
    return FunctionSpec(phases, name="ckpt")


def counter(name: str) -> float:
    return obs_metrics.counter(name).value


class TestStore:
    def test_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.store("demo", "abc123", {"x": [1, 2, 3]})
        assert path.name == "demo-abc123.ckpt"
        assert store.load("demo", "abc123") == {"x": [1, 2, 3]}
        assert len(store) == 1
        assert store.entries() == ["demo-abc123.ckpt"]

    def test_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load("demo", "nope") is None

    def test_truncated_entry_is_a_miss_and_removed(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.store("demo", "abc123", {"x": 1})
        path.write_bytes(path.read_bytes()[:10])
        corrupt_before = counter("cache.checkpoint_corrupt")
        assert store.load("demo", "abc123") is None
        assert counter("cache.checkpoint_corrupt") == corrupt_before + 1
        assert not path.exists()

    def test_key_mismatch_is_corrupt(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.store("demo", "key-a", {"x": 1})
        os.rename(path, tmp_path / "demo-key-b.ckpt")
        corrupt_before = counter("cache.checkpoint_corrupt")
        assert store.load("demo", "key-b") is None
        assert counter("cache.checkpoint_corrupt") == corrupt_before + 1

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.store("demo", "abc", {"x": 1})
        store.clear()
        assert len(store) == 0


class TestResume:
    def test_rerun_skips_every_stage_with_identical_result(self, spec, tmp_path):
        run_before = counter("pipeline.stages_run")
        first = run_flow(
            spec, "ranking", fraction=0.5, objective="area",
            checkpoint_dir=tmp_path,
        )
        assert counter("pipeline.stages_run") == run_before + len(DEFAULT_STAGES)
        assert len(CheckpointStore(tmp_path)) == len(DEFAULT_STAGES)

        run_before = counter("pipeline.stages_run")
        skip_before = counter("pipeline.stages_skipped")
        hits_before = counter("cache.checkpoint_hits")
        second = run_flow(
            spec, "ranking", fraction=0.5, objective="area",
            checkpoint_dir=tmp_path,
        )
        assert second == first
        assert counter("pipeline.stages_run") == run_before
        assert counter("pipeline.stages_skipped") == skip_before + len(DEFAULT_STAGES)
        assert counter("cache.checkpoint_hits") == hits_before + len(DEFAULT_STAGES)

    def test_reparameterised_run_resumes_from_divergence(self, spec, tmp_path):
        run_flow(spec, "ranking", fraction=0.5, objective="area",
                 checkpoint_dir=tmp_path)
        run_before = counter("pipeline.stages_run")
        skip_before = counter("pipeline.stages_skipped")
        # Only `tune` and `measure` depend on the objective: the four
        # upstream stages load from the previous run's checkpoints.
        retuned = run_flow(spec, "ranking", fraction=0.5, objective="delay",
                           checkpoint_dir=tmp_path)
        assert counter("pipeline.stages_run") == run_before + 2
        assert counter("pipeline.stages_skipped") == skip_before + 4
        assert retuned == run_flow(spec, "ranking", fraction=0.5,
                                   objective="delay")

    def test_different_spec_shares_nothing(self, spec, tmp_path):
        run_flow(spec, "conventional", objective="area", checkpoint_dir=tmp_path)
        phases = spec.phases.copy()
        phases[0, 0] = ON if phases[0, 0] != ON else OFF
        other = FunctionSpec(phases, name="ckpt")
        skip_before = counter("pipeline.stages_skipped")
        run_flow(other, "conventional", objective="area", checkpoint_dir=tmp_path)
        assert counter("pipeline.stages_skipped") == skip_before

    def test_corrupt_checkpoint_recomputes_cleanly(self, spec, tmp_path):
        first = run_flow(spec, "complete", objective="area",
                         checkpoint_dir=tmp_path)
        store = CheckpointStore(tmp_path)
        victim = tmp_path / [e for e in store.entries()
                             if e.startswith("espresso-")][0]
        victim.write_bytes(b"not a pickle")
        second = run_flow(spec, "complete", objective="area",
                          checkpoint_dir=tmp_path)
        assert second == first

    def test_stop_after_then_full_run_resumes(self, spec, tmp_path):
        pipe = Pipeline.from_config(
            default_config("ranking", fraction=0.5, objective="area"),
            checkpoint=tmp_path,
        )
        pipe.run(spec=spec, stop_after="espresso")
        assert len(CheckpointStore(tmp_path)) == 2

        run_before = counter("pipeline.stages_run")
        skip_before = counter("pipeline.stages_skipped")
        resumed = run_flow(spec, "ranking", fraction=0.5, objective="area",
                           checkpoint_dir=tmp_path)
        assert counter("pipeline.stages_run") == run_before + 4
        assert counter("pipeline.stages_skipped") == skip_before + 2
        assert resumed == run_flow(spec, "ranking", fraction=0.5,
                                   objective="area")


class TestCheckpointedSweeps:
    def test_parallel_checkpointed_sweep_matches_serial(self, spec, tmp_path):
        serial = fraction_sweep(spec, [0.0, 0.6], objective="area")
        parallel = fraction_sweep(
            spec, [0.0, 0.6], objective="area", jobs=2,
            checkpoint_dir=str(tmp_path),
        )
        assert parallel == serial
        # Both points persisted their stages into the shared directory.
        assert len(CheckpointStore(tmp_path)) == 2 * len(DEFAULT_STAGES)


_KILL_SCRIPT = """
import sys
from repro.benchgen.synthetic import generate_spec
from repro.flows.experiment import run_flow

spec = generate_spec("killme", 8, 4, target_cf=0.6, dc_fraction=0.5, seed=5)
run_flow(spec, "ranking", fraction=0.5, objective="area",
         checkpoint_dir=sys.argv[1])
"""


class TestKillResume:
    def test_sigkill_mid_flow_then_resume(self, tmp_path):
        """A flow killed with SIGKILL resumes to the identical result."""
        from repro.benchgen.synthetic import generate_spec

        proc = subprocess.Popen(
            [sys.executable, "-c", _KILL_SCRIPT, str(tmp_path)],
            env=dict(os.environ),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        deadline = time.monotonic() + 120
        try:
            # Kill as soon as the first stage has checkpointed; if the
            # flow finishes first the resume below simply skips everything.
            while time.monotonic() < deadline:
                if list(tmp_path.glob("*.ckpt")) or proc.poll() is not None:
                    break
                time.sleep(0.05)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
        finally:
            stderr = proc.communicate()[1]
        assert list(tmp_path.glob("*.ckpt")), (
            f"flow produced no checkpoints; stderr:\n{stderr.decode()}"
        )

        spec = generate_spec("killme", 8, 4, target_cf=0.6, dc_fraction=0.5,
                             seed=5)
        fresh = run_flow(spec, "ranking", fraction=0.5, objective="area")
        hits_before = counter("cache.checkpoint_hits")
        resumed = run_flow(spec, "ranking", fraction=0.5, objective="area",
                           checkpoint_dir=tmp_path)
        assert resumed == fresh
        assert counter("cache.checkpoint_hits") > hits_before
