"""Tests for the typed FlowContext artefact store."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.pipeline import ARTIFACT_KEYS, FlowContext


@pytest.fixture
def spec():
    rng = np.random.default_rng(3)
    phases = rng.choice(
        np.array([OFF, ON, DC], dtype=np.uint8), size=(2, 64), p=[0.3, 0.3, 0.4]
    )
    return FunctionSpec(phases, name="ctx")


class TestStore:
    def test_set_get_require(self, spec):
        ctx = FlowContext(spec=spec)
        assert ctx.get("spec") is spec
        assert ctx.require("spec") is spec
        assert "spec" in ctx
        assert ctx.keys() == ["spec"]

    def test_unknown_key_rejected(self, spec):
        ctx = FlowContext()
        with pytest.raises(KeyError, match="unknown context key"):
            ctx.set("mystery", spec)

    def test_wrong_type_rejected(self):
        ctx = FlowContext()
        with pytest.raises(TypeError, match="expects FunctionSpec"):
            ctx.set("spec", "not a spec")

    def test_missing_artifact_named_in_error(self):
        ctx = FlowContext()
        with pytest.raises(KeyError, match="netlist"):
            ctx.require("netlist")

    def test_known_keys_catalogued(self):
        ctx = FlowContext()
        # Every enforced key is documented and vice versa.
        assert set(ctx._types) == set(ARTIFACT_KEYS)

    def test_assignment_key(self):
        ctx = FlowContext()
        ctx.set("assignment", Assignment({(0, 3): ON}))
        assert len(ctx.require("assignment")) == 1


class TestParams:
    def test_param_default(self):
        ctx = FlowContext({"policy": "ranking"})
        assert ctx.param("policy") == "ranking"
        assert ctx.param("fraction", 1.0) == 1.0


class TestFingerprint:
    def test_identical_content_same_fingerprint(self, spec):
        twin = FunctionSpec(spec.phases.copy(), name="ctx")
        assert FlowContext(spec=spec).fingerprint() == \
            FlowContext(spec=twin).fingerprint()

    def test_name_changes_fingerprint(self, spec):
        renamed = FunctionSpec(spec.phases.copy(), name="other")
        assert FlowContext(spec=spec).fingerprint() != \
            FlowContext(spec=renamed).fingerprint()

    def test_content_changes_fingerprint(self, spec):
        phases = spec.phases.copy()
        phases[0, 0] = ON if phases[0, 0] != ON else OFF
        changed = FunctionSpec(phases, name="ctx")
        assert FlowContext(spec=spec).fingerprint() != \
            FlowContext(spec=changed).fingerprint()

    def test_assignment_affects_fingerprint(self, spec):
        base = FlowContext(spec=spec)
        with_assignment = FlowContext(spec=spec)
        with_assignment.set("assignment", Assignment({(0, 3): ON}))
        assert base.fingerprint() != with_assignment.fingerprint()
