"""Tests for the opt-in ``complete_dc`` pipeline stage.

The stage's contract: it is absent from the default recipe, it never
changes the network's primary outputs when enabled, it is bit-identical
to not running it when disabled via the ``complete_dc`` flow parameter,
and its report artefact survives checkpoint round-trips.
"""

import math

import numpy as np
import pytest

from repro.benchgen.synthetic import generate_spec
from repro.pipeline import DEFAULT_STAGES, Pipeline, default_config, get_stage
from repro.synth.flexibility import CompleteDcReport


@pytest.fixture(scope="module")
def spec():
    return generate_spec("dcstage", 7, 3, target_cf=0.6, dc_fraction=0.4, seed=11)


def _stages_with_complete_dc():
    stages = list(DEFAULT_STAGES)
    stages.insert(stages.index("optimize") + 1, "complete_dc")
    return stages


class TestRegistration:
    def test_registered_but_not_default(self):
        stage = get_stage("complete_dc")
        assert stage.inputs == ("network",)
        assert stage.outputs == ("network", "complete_dc_report")
        assert "complete_dc" not in DEFAULT_STAGES

    def test_describe_lists_params(self):
        pipe = Pipeline(_stages_with_complete_dc())
        entry = next(e for e in pipe.describe() if e["name"] == "complete_dc")
        assert "dc_policy" in entry["params"]
        assert "dc_window" in entry["params"]
        assert entry["summary"]  # docstring first line survives


class TestPrimaryOutputsPreserved:
    def test_implemented_spec_bit_identical(self, spec):
        """The measured implementation is the same function either way."""
        config = default_config("cfactor", objective="area")
        baseline = Pipeline.from_config(config).run(spec=spec)

        config = dict(config, stages=_stages_with_complete_dc())
        with_dc = Pipeline.from_config(config).run(spec=spec)

        report = with_dc.require("complete_dc_report")
        assert report.nodes_considered > 0
        assert report.dc_delta >= 0
        assert np.array_equal(
            baseline.require("implemented").phases,
            with_dc.require("implemented").phases,
        )

    def test_network_outputs_unchanged_at_stage_boundary(self, spec):
        config = dict(
            default_config("cfactor", objective="area"),
            stages=_stages_with_complete_dc(),
        )
        pipe = Pipeline.from_config(config)
        before = pipe.run(spec=spec, stop_after="optimize")
        after = pipe.run(spec=spec)
        assert np.array_equal(
            before.require("network").to_spec().phases,
            after.require("network").to_spec().phases,
        )


class TestDisabled:
    def test_param_disables_to_zeroed_report(self, spec):
        config = dict(
            default_config("cfactor", objective="area"),
            stages=_stages_with_complete_dc(),
        )
        config["params"] = dict(config["params"], complete_dc=False)
        ctx = Pipeline.from_config(config).run(spec=spec)
        report = ctx.require("complete_dc_report")
        assert report.nodes_considered == 0
        assert report.nodes_changed == 0
        assert math.isnan(report.error_rate_before)

    def test_disabled_matches_pipeline_without_stage(self, spec):
        config = default_config("ranking", fraction=0.5, objective="area")
        without = Pipeline.from_config(config).run(spec=spec)

        disabled = dict(config, stages=_stages_with_complete_dc())
        disabled["params"] = dict(disabled["params"], complete_dc=False)
        with_disabled = Pipeline.from_config(disabled).run(spec=spec)

        assert (
            with_disabled.require("synthesis").area
            == without.require("synthesis").area
        )
        assert np.array_equal(
            with_disabled.require("implemented").phases,
            without.require("implemented").phases,
        )
        # The node covers themselves are untouched, not just the POs.
        left = without.require("network")
        right = with_disabled.require("network")
        assert list(left.nodes) == list(right.nodes)
        for name in left.nodes:
            assert np.array_equal(
                left.nodes[name].cover.cubes, right.nodes[name].cover.cubes
            )


class TestCheckpointRoundTrip:
    def test_report_survives_resume(self, spec, tmp_path):
        config = dict(
            default_config("cfactor", objective="area"),
            stages=_stages_with_complete_dc(),
        )
        store = str(tmp_path / "ckpt")
        first = Pipeline.from_config(config, checkpoint=store).run(spec=spec)
        fresh = Pipeline.from_config(config, checkpoint=store)
        second = fresh.run(spec=spec)
        assert isinstance(second.require("complete_dc_report"), CompleteDcReport)
        assert second.require("complete_dc_report") == first.require(
            "complete_dc_report"
        )
        assert np.array_equal(
            first.require("implemented").phases,
            second.require("implemented").phases,
        )
