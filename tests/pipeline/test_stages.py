"""Tests for the stage registry and pipeline wiring validation."""

import pytest

from repro.pipeline import (
    DEFAULT_STAGES,
    Pipeline,
    default_config,
    get_stage,
    register_stage,
    registered_stages,
    stage_names,
    validate_objective,
)
from repro.pipeline.stage import Stage


class TestRegistry:
    def test_default_stages_registered(self):
        names = stage_names()
        for name in DEFAULT_STAGES:
            assert name in names

    def test_stages_satisfy_protocol(self):
        for stage in registered_stages().values():
            assert isinstance(stage, Stage)
            assert isinstance(stage.inputs, tuple)
            assert isinstance(stage.outputs, tuple)
            assert isinstance(stage.params, tuple)
            assert stage.version

    def test_unknown_stage_lists_registry(self):
        with pytest.raises(KeyError, match="registered stages"):
            get_stage("mystery")

    def test_reregistering_same_class_is_idempotent(self):
        cls = type(get_stage("assign"))
        assert register_stage(cls) is cls
        assert type(get_stage("assign")) is cls

    def test_conflicting_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_stage
            class _Impostor:
                name = "assign"
                inputs = ()
                outputs = ()
                params = ()
                version = "1"

                def run(self, ctx):
                    pass


class TestWiring:
    def test_default_chain_is_well_wired(self):
        pipe = Pipeline(DEFAULT_STAGES)
        pipe.validate(["spec"])  # must not raise

    def test_missing_input_names_stage(self):
        # `assign` never produces the network that `map` consumes.
        pipe = Pipeline(["assign", "map"])
        with pytest.raises(ValueError, match="'map' is missing inputs"):
            pipe.validate(["spec"])

    def test_missing_initial_artifact(self):
        pipe = Pipeline(DEFAULT_STAGES)
        with pytest.raises(ValueError, match="'assign' is missing inputs"):
            pipe.validate([])

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            Pipeline([])

    def test_duplicate_stage_rejected(self):
        with pytest.raises(ValueError, match="appears twice"):
            Pipeline(["assign", "assign"])

    def test_describe(self):
        pipe = Pipeline(DEFAULT_STAGES)
        described = pipe.describe()
        assert [entry["name"] for entry in described] == list(DEFAULT_STAGES)
        assert described[0]["inputs"] == ["spec"]
        assert described[-1]["outputs"] == ["implemented", "synthesis"]


class TestFromConfig:
    def test_default_config_shape(self):
        config = default_config("ranking", fraction=0.5)
        pipe = Pipeline.from_config(config)
        assert pipe.name == "default-flow"
        assert pipe.params["policy"] == "ranking"
        assert pipe.params["fraction"] == 0.5
        assert [s.name for s in pipe.stages] == list(DEFAULT_STAGES)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="must be a dict"):
            Pipeline.from_config(["assign"])

    def test_missing_stages_rejected(self):
        with pytest.raises(ValueError, match="non-empty 'stages'"):
            Pipeline.from_config({"name": "empty"})

    def test_bad_entry_rejected(self):
        with pytest.raises(ValueError, match="bad stage entry"):
            Pipeline.from_config({"stages": [42]})

    def test_unknown_stage_name(self):
        with pytest.raises(KeyError, match="unknown stage"):
            Pipeline.from_config({"stages": ["assign", "transmogrify"]})

    def test_per_stage_param_overlay(self):
        config = {
            "name": "overlay",
            "params": {"policy": "conventional", "objective": "area"},
            "stages": [
                {"stage": "assign", "params": {"policy": "complete"}},
                "espresso",
            ],
        }
        pipe = Pipeline.from_config(config)
        assert pipe.stages[0].name == "assign"
        assert pipe.stages[0].overrides == {"policy": "complete"}
        # Plain entries resolve to the shared registry instance.
        assert pipe.stages[1] is get_stage("espresso")


class TestObjectives:
    def test_validate_objective(self):
        validate_objective("area")
        with pytest.raises(ValueError, match="objective must be one of"):
            validate_objective("speed")
