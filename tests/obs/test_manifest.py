"""Tests for run manifests, the ObsSession glue, and artefact validation."""

import json

import pytest

from repro.obs import ObsSession, collect_manifest, validate_manifest
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, git_revision
from repro.obs.validate import main as validate_main, validate_file


class TestManifest:
    def test_collect_fills_environment(self):
        manifest = collect_manifest(
            "sweep", argv=["sweep", "bench"], parameters={"points": 5}, seed=7
        )
        assert manifest.command == "sweep"
        assert manifest.parameters == {"points": 5}
        assert manifest.seed == 7
        assert manifest.python_version.count(".") == 2
        assert manifest.numpy_version
        assert manifest.schema_version == MANIFEST_SCHEMA_VERSION
        assert manifest.started_at.endswith("Z")

    def test_git_revision_in_repo(self):
        # The test suite runs inside the repository, so a rev must resolve.
        rev = git_revision()
        assert rev is None or len(rev) == 40

    def test_roundtrip_validates(self, tmp_path):
        manifest = collect_manifest("info", parameters={"benchmark": "bench"})
        manifest.duration_seconds = 0.5
        manifest.exit_status = 0
        path = tmp_path / "manifest.json"
        manifest.write(path)
        data = json.loads(path.read_text())
        assert validate_manifest(data) == []

    def test_validate_rejects_malformed(self):
        assert validate_manifest([]) != []
        assert any(
            "command" in problem for problem in validate_manifest({})
        )
        bad = collect_manifest("x").to_dict()
        bad["metrics"] = {"m": {"no_type": True}}
        assert any("lacks a type" in problem for problem in validate_manifest(bad))
        versioned = collect_manifest("x").to_dict()
        versioned["schema_version"] = 999
        assert any("schema_version" in p for p in validate_manifest(versioned))


class TestObsSession:
    def test_session_writes_all_artifacts(self, tmp_path):
        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.json"
        manifest_path = tmp_path / "r.json"
        session = ObsSession(
            "demo",
            parameters={"k": 1},
            trace_path=str(trace_path),
            metrics_path=str(metrics_path),
            manifest_path=str(manifest_path),
        )
        from repro.obs import span

        with session:
            with span("demo.work"):
                pass
            session.exit_status = 0
        assert validate_file(trace_path) == []
        assert validate_file(metrics_path) == []
        assert validate_file(manifest_path) == []
        document = json.loads(metrics_path.read_text())
        assert document["manifest"]["command"] == "demo"
        assert document["manifest"]["exit_status"] == 0
        assert document["manifest"]["duration_seconds"] >= 0

    def test_session_writes_on_failure(self, tmp_path):
        manifest_path = tmp_path / "fail.json"
        session = ObsSession("demo", manifest_path=str(manifest_path))
        with pytest.raises(RuntimeError):
            with session:
                raise RuntimeError("boom")
        data = json.loads(manifest_path.read_text())
        assert data["exit_status"] == 1

    def test_progress_reporter_only_when_enabled(self):
        session = ObsSession("demo", progress=False)
        assert session.progress_reporter(total=3) is None
        session = ObsSession("demo", progress=True)
        reporter = session.progress_reporter(total=3)
        assert reporter is not None


class TestValidateCli:
    def test_main_ok_and_failure_paths(self, tmp_path, capsys):
        good = tmp_path / "manifest.json"
        collect_manifest("x").write(good)
        assert validate_main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert validate_main([str(bad)]) == 1
        missing = tmp_path / "missing.json"
        assert validate_main([str(missing)]) == 2
        assert validate_main([]) == 2
        capsys.readouterr()
