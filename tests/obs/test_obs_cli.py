"""End-to-end tests for the telemetry ledger CLI (`repro obs ...`)."""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.store import LedgerStore

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _ledger_path():
    return Path(os.environ["REPRO_LEDGER_PATH"])


def _store():
    return LedgerStore(_ledger_path())


def _seed_run(store, run_id, *, duration=1.0, error_rate=0.02, area=70.0,
              command="synth", git_rev="feedc0ffee00"):
    return store.record_run(
        command=command,
        manifest={"command": command, "git_rev": git_rev},
        metrics={},
        quality=[{
            "benchmark": "bench", "policy": "ranking", "parameter": 0.5,
            "objective": "area", "error_rate": error_rate, "area": area,
            "literals": 69,
        }],
        duration_seconds=duration,
        exit_status=0,
        run_id=run_id,
    )


class TestLedgerRecording:
    def test_synth_appends_a_run_with_quality(self, capsys):
        assert main(["synth", "bench"]) == 0
        capsys.readouterr()
        with _store() as store:
            records = store.runs()
            assert len(records) == 1
            record = records[0]
            assert record.command == "synth"
            assert record.exit_status == 0
            assert not record.interrupted
            assert len(record.quality) == 1
            assert record.quality[0]["benchmark"] == "bench"
            assert record.stage_timings  # pipeline stages were timed

    def test_obs_queries_do_not_append(self, capsys):
        assert main(["synth", "bench"]) == 0
        assert main(["obs", "runs"]) == 0
        assert main(["obs", "runs"]) == 0
        capsys.readouterr()
        with _store() as store:
            assert store.run_count() == 1

    def test_disable_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DISABLE", "1")
        assert main(["synth", "bench"]) == 0
        capsys.readouterr()
        assert not _ledger_path().exists()

    def test_profile_flag_writes_folded_and_ledger_summary(
        self, capsys, tmp_path
    ):
        folded = tmp_path / "synth.folded"
        assert main(["synth", "bench", "--profile", str(folded)]) == 0
        capsys.readouterr()
        assert folded.exists()
        assert folded.read_text().strip(), "collapsed stacks are empty"
        with _store() as store:
            record = store.runs()[0]
            assert record.profile is not None
            assert record.profile["samples"] > 0
            assert record.profile["folded_path"] == str(folded)
            assert record.profile["top"], "no top-functions table"


class TestObsRunsAndShow:
    def test_runs_lists_and_filters(self, capsys):
        with _store() as store:
            _seed_run(store, "20260101T000000-aaaa0001")
            _seed_run(store, "20260102T000000-bbbb0002", command="sweep")
        assert main(["obs", "runs"]) == 0
        out = capsys.readouterr().out
        assert "aaaa0001" in out and "bbbb0002" in out
        assert main(["obs", "runs", "--command", "sweep"]) == 0
        out = capsys.readouterr().out
        assert "bbbb0002" in out and "aaaa0001" not in out
        assert main(["obs", "runs", "--rev", "feedc0"]) == 0
        assert "bbbb0002" in capsys.readouterr().out

    def test_runs_json(self, capsys):
        with _store() as store:
            _seed_run(store, "20260101T000000-aaaa0001")
        assert main(["obs", "runs", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["run_id"] == "20260101T000000-aaaa0001"

    def test_show_by_prefix(self, capsys):
        with _store() as store:
            _seed_run(store, "20260101T000000-aaaa0001")
        assert main(["obs", "show", "20260101T000000-aaaa"]) == 0
        out = capsys.readouterr().out
        assert "aaaa0001" in out
        assert "ranking" in out  # quality table rendered

    def test_show_unknown_run(self, capsys):
        with _store() as store:
            _seed_run(store, "20260101T000000-aaaa0001")
        assert main(["obs", "show", "zzzz"]) == 2

    def test_missing_ledger_reports_cleanly(self, capsys):
        assert main(["obs", "runs"]) == 0
        assert "no telemetry ledger" in capsys.readouterr().err
        assert main(["obs", "show", "anything"]) == 2


class TestCompareAndRegressions:
    def test_equal_runs_pass(self, capsys):
        with _store() as store:
            _seed_run(store, "20260101T000000-aaaa0001")
            _seed_run(store, "20260102T000000-bbbb0002")
        assert main(["obs", "compare", "20260101T000000-aaaa0001",
                     "20260102T000000-bbbb0002"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_seeded_slowdown_fails_with_named_metric(self, capsys):
        with _store() as store:
            _seed_run(store, "20260101T000000-aaaa0001", duration=1.0)
            _seed_run(store, "20260102T000000-bbbb0002", duration=1.3)
        assert main(["obs", "compare", "20260101T000000-aaaa0001",
                     "20260102T000000-bbbb0002"]) == 1
        out = capsys.readouterr().out
        assert "duration_seconds" in out
        assert "REGRESSIONS" in out

    def test_seeded_quality_delta_fails_with_named_metric(self, capsys):
        with _store() as store:
            _seed_run(store, "20260101T000000-aaaa0001")
            _seed_run(store, "20260102T000000-bbbb0002", error_rate=0.08)
        assert main(["obs", "regressions",
                     "--baseline", "20260101T000000-aaaa0001"]) == 1
        out = capsys.readouterr().out
        assert "error_rate" in out

    def test_regressions_latest_candidate_passes_when_equal(self, capsys):
        with _store() as store:
            _seed_run(store, "20260101T000000-aaaa0001")
            _seed_run(store, "20260102T000000-bbbb0002")
        assert main(["obs", "regressions",
                     "--baseline", "20260101T000000-aaaa0001"]) == 0

    def test_regressions_baseline_by_git_rev(self, capsys):
        with _store() as store:
            _seed_run(store, "20260101T000000-aaaa0001",
                      git_rev="0123abcd0000")
            _seed_run(store, "20260102T000000-bbbb0002", area=95.0,
                      git_rev="4567efff1111")
        assert main(["obs", "regressions", "--baseline", "0123abcd"]) == 1
        assert "area" in capsys.readouterr().out

    def test_tolerance_flags(self, capsys):
        with _store() as store:
            _seed_run(store, "20260101T000000-aaaa0001", duration=1.0)
            _seed_run(store, "20260102T000000-bbbb0002", duration=1.3)
        assert main(["obs", "compare", "20260101T000000-aaaa0001",
                     "20260102T000000-bbbb0002",
                     "--wall-tolerance", "0.5"]) == 0

    def test_json_output(self, capsys):
        with _store() as store:
            _seed_run(store, "20260101T000000-aaaa0001")
            _seed_run(store, "20260102T000000-bbbb0002", error_rate=0.5)
        assert main(["obs", "regressions", "--json",
                     "--baseline", "20260101T000000-aaaa0001"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["regressions"][0]["kind"] == "quality"


class TestExportAndInfo:
    def test_export_jsonl_validates(self, capsys, tmp_path):
        from repro.obs.validate import validate_file

        with _store() as store:
            _seed_run(store, "20260101T000000-aaaa0001")
        out = tmp_path / "ledger.jsonl"
        assert main(["obs", "export", str(out)]) == 0
        capsys.readouterr()
        assert validate_file(out) == []

    def test_info_json_reports_ledger(self, capsys):
        with _store() as store:
            _seed_run(store, "20260101T000000-aaaa0001")
        assert main(["info", "bench", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ledger"]["runs"] == 1
        assert data["ledger"]["schema_version"] == 1
        assert data["ledger"]["path"] == str(_ledger_path())

    def test_ledger_sqlite_validates(self, capsys):
        from repro.obs.validate import validate_file

        assert main(["synth", "bench"]) == 0
        capsys.readouterr()
        assert validate_file(_ledger_path()) == []


class TestInterruptedRuns:
    def _run_script(self, body, tmp_path):
        script = tmp_path / "victim.py"
        script.write_text(body)
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env["REPRO_LEDGER_PATH"] = str(_ledger_path())
        return subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, env=env, timeout=60,
        )

    def test_sigterm_flushes_partial_telemetry(self, tmp_path):
        manifest_out = tmp_path / "victim-manifest.json"
        proc = self._run_script(
            "import os, signal, time\n"
            "from repro.obs.session import ObsSession\n"
            "session = ObsSession('victim', argv=[],\n"
            f"                     manifest_path={str(manifest_out)!r})\n"
            "with session:\n"
            "    os.kill(os.getpid(), signal.SIGTERM)\n"
            "    time.sleep(30)\n",
            tmp_path,
        )
        assert proc.returncode == -signal.SIGTERM, proc.stderr
        with _store() as store:
            records = store.runs(command="victim")
            assert len(records) == 1
            assert records[0].interrupted
        manifest = json.loads(manifest_out.read_text())
        assert manifest["command"] == "victim"

    def test_atexit_flushes_unclosed_session(self, tmp_path):
        proc = self._run_script(
            "from repro.obs.session import ObsSession\n"
            "session = ObsSession('victim2', argv=[])\n"
            "session.__enter__()\n"
            "# interpreter exits without __exit__: atexit must flush\n",
            tmp_path,
        )
        assert proc.returncode == 0, proc.stderr
        with _store() as store:
            records = store.runs(command="victim2")
            assert len(records) == 1
            assert records[0].interrupted

    def test_normal_exit_finalises_single_row(self, capsys):
        assert main(["synth", "bench"]) == 0
        capsys.readouterr()
        with _store() as store:
            records = store.runs()
            assert len(records) == 1
            assert not records[0].interrupted
