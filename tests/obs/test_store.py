"""Tests for the telemetry ledger (repro.obs.store)."""

import json
import sqlite3

import pytest

from repro.obs.store import (
    LEDGER_SCHEMA_VERSION,
    LedgerStore,
    default_ledger_path,
    ledger_enabled,
    open_ledger,
)


@pytest.fixture
def store(tmp_path):
    with LedgerStore(tmp_path / "ledger.sqlite") as ledger:
        yield ledger


def _record(store, **overrides):
    kwargs = dict(
        command="sweep",
        manifest={"command": "sweep", "git_rev": "abc123def456"},
        metrics={"pool.dispatched_tasks": {"type": "counter", "value": 10}},
        duration_seconds=1.5,
        exit_status=0,
    )
    kwargs.update(overrides)
    return store.record_run(**kwargs)


class TestRecordAndRead:
    def test_round_trip(self, store):
        run_id = _record(
            store,
            quality=[{"benchmark": "bench", "policy": "ranking",
                      "parameter": 0.5, "objective": "area",
                      "error_rate": 0.01, "area": 70.0, "literals": 69}],
            stage_timings={"assign": {"seconds": 0.2, "runs": 1}},
        )
        record = store.get(run_id)
        assert record is not None
        assert record.command == "sweep"
        assert record.git_rev == "abc123def456"
        assert record.duration_seconds == 1.5
        assert record.exit_status == 0
        assert not record.interrupted
        assert record.schema_version == LEDGER_SCHEMA_VERSION
        assert record.quality[0]["area"] == 70.0
        assert record.stage_timings["assign"]["runs"] == 1

    def test_get_by_unique_prefix(self, store):
        run_id = _record(store)
        assert store.get(run_id[:12]).run_id == run_id

    def test_ambiguous_prefix_returns_none(self, store):
        a = _record(store)
        b = _record(store)
        common = ""
        for x, y in zip(a, b):
            if x != y:
                break
            common += x
        if common:  # ids share at least the timestamp prefix
            assert store.get(common) is None

    def test_runs_filters_by_command_and_rev(self, store):
        _record(store, command="sweep")
        _record(store, command="synth",
                manifest={"command": "synth", "git_rev": "fff000"})
        assert [r.command for r in store.runs(command="synth")] == ["synth"]
        assert len(store.runs(git_rev="abc123")) == 1
        assert len(store.runs(limit=1)) == 1

    def test_latest_excludes(self, store):
        first = _record(store)
        second = _record(store)
        latest = store.latest(exclude=second)
        assert latest is not None and latest.run_id == first

    def test_replace_finalises_partial_row(self, store):
        run_id = _record(store, interrupted=True, exit_status=None)
        assert store.get(run_id).interrupted
        _record(store, run_id=run_id, interrupted=False, exit_status=0)
        record = store.get(run_id)
        assert not record.interrupted
        assert record.exit_status == 0
        assert store.run_count() == 1

    def test_export_jsonl(self, store, tmp_path):
        _record(store)
        _record(store, command="synth")
        out = tmp_path / "export.jsonl"
        assert store.export_jsonl(out) == 2
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert {line["command"] for line in lines} == {"sweep", "synth"}

    def test_describe(self, store):
        _record(store)
        info = store.describe()
        assert info["runs"] == 1
        assert info["schema_version"] == LEDGER_SCHEMA_VERSION


class TestRecovery:
    def test_corrupt_file_moved_aside(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        path.write_bytes(b"this is not a sqlite database, not even close!")
        with LedgerStore(path) as store:
            run_id = _record(store)
            assert store.get(run_id) is not None
        aside = list(tmp_path.glob("ledger.sqlite.corrupt-*"))
        assert len(aside) == 1
        assert aside[0].read_bytes().startswith(b"this is not")

    def test_corrupt_row_skipped_not_fatal(self, store):
        good = _record(store)
        store._conn.execute(
            "UPDATE runs SET manifest = ? WHERE id != ?",
            ("{broken json", "none"),
        )
        store._conn.commit()
        bad = _record(store, command="synth")
        store._conn.execute(
            "UPDATE runs SET metrics = ? WHERE id = ?", ("{nope", bad)
        )
        store._conn.commit()
        records = store.runs()
        assert records == []
        assert store.run_count() == 2  # rows exist, just unreadable

    def test_partially_corrupt_ledger_keeps_good_rows(self, store):
        good = _record(store)
        bad = _record(store, command="synth")
        store._conn.execute(
            "UPDATE runs SET quality = ? WHERE id = ?", ("[oops", bad)
        )
        store._conn.commit()
        survivors = store.runs()
        assert [r.run_id for r in survivors] == [good]


class TestEnvironment:
    def test_default_path_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(tmp_path / "l.sqlite"))
        assert default_ledger_path() == tmp_path / "l.sqlite"

    def test_disable_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_DISABLE", "1")
        assert not ledger_enabled()
        assert open_ledger() is None

    def test_open_ledger_uses_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER_PATH", str(tmp_path / "l.sqlite"))
        store = open_ledger()
        assert store is not None
        with store:
            assert store.run_count() == 0
