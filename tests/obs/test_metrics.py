"""Tests for the metrics registry: instruments, snapshots, merging."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics,
    diff_snapshots,
    global_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter(self, registry):
        counter = registry.counter("calls")
        counter.inc()
        counter.inc(4)
        assert registry.counter("calls").value == 5
        assert registry.counter("calls") is counter

    def test_gauge(self, registry):
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.set(7)
        assert registry.gauge("depth").value == 7

    def test_histogram_buckets(self, registry):
        histogram = registry.histogram("iters", bounds=(1, 5, 10))
        for value in (0.5, 1, 4, 11, 100):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 0, 2]  # <=1, <=5, <=10, overflow
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(116.5)

    def test_kind_mismatch_raises(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_empty_histogram_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())


class TestDisabled:
    def test_disabled_registry_hands_out_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("a").inc()
        registry.gauge("b").set(2)
        registry.histogram("c").observe(1)
        assert registry.snapshot() == {}

    def test_configure_global_registry(self):
        configure_metrics(enabled=False)
        try:
            before = global_registry.snapshot(include_collectors=False)
            global_registry.counter("tmp.disabled_test").inc()
            after = global_registry.snapshot(include_collectors=False)
            assert before == after
        finally:
            configure_metrics(enabled=True)


class TestSnapshotsAndMerge:
    def test_snapshot_shape(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", bounds=(1,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {"type": "counter", "value": 2}
        assert snapshot["g"] == {"type": "gauge", "value": 1.5}
        assert snapshot["h"]["type"] == "histogram"
        assert snapshot["h"]["counts"] == [1, 0]

    def test_merge_adds_counters_and_histograms(self, registry):
        registry.counter("c").inc(1)
        registry.histogram("h", bounds=(1, 2)).observe(0.5)
        other = MetricsRegistry()
        other.counter("c").inc(10)
        other.gauge("g").set(4)
        other.histogram("h", bounds=(1, 2)).observe(1.5)
        registry.merge_snapshot(other.snapshot())
        snapshot = registry.snapshot()
        assert snapshot["c"]["value"] == 11
        assert snapshot["g"]["value"] == 4
        assert snapshot["h"]["counts"] == [1, 1, 0]
        assert snapshot["h"]["count"] == 2

    def test_diff_snapshots_attributes_only_new_work(self, registry):
        registry.counter("c").inc(5)
        registry.histogram("h", bounds=(1,)).observe(0.5)
        start = registry.snapshot()
        registry.counter("c").inc(2)
        registry.histogram("h", bounds=(1,)).observe(3)
        delta = diff_snapshots(registry.snapshot(), start)
        assert delta["c"]["value"] == 2
        assert delta["h"]["count"] == 1
        assert delta["h"]["counts"] == [0, 1]

    def test_diff_drops_unchanged_counters(self, registry):
        registry.counter("quiet").inc(3)
        start = registry.snapshot()
        delta = diff_snapshots(registry.snapshot(), start)
        assert "quiet" not in delta

    def test_collector_counters_combine_with_instruments(self, registry):
        # Instruments hold worker-merged totals; the collector reports the
        # local component — the snapshot is their sum, not a clobber.
        registry.register_collector(
            lambda: {"cache.hits": {"type": "counter", "value": 7}}
        )
        registry.counter("cache.hits").inc(3)  # e.g. merged from a worker
        assert registry.snapshot()["cache.hits"]["value"] == 10

    def test_collector_registration_is_idempotent(self, registry):
        collector = lambda: {"x": {"type": "counter", "value": 1}}
        registry.register_collector(collector)
        registry.register_collector(collector)
        assert registry.snapshot()["x"]["value"] == 1

    def test_reset_keeps_collectors(self, registry):
        registry.register_collector(
            lambda: {"k": {"type": "gauge", "value": 2}}
        )
        registry.counter("c").inc()
        registry.reset()
        snapshot = registry.snapshot()
        assert "c" not in snapshot
        assert snapshot["k"]["value"] == 2


class TestGlobalCacheCollector:
    def test_cache_counters_absorbed_into_snapshots(self):
        from repro.espresso.cube import Cover
        from repro.espresso.minimize import espresso
        from repro.perf import reset_cache

        reset_cache()
        on = Cover.from_minterms(4, [1, 2, 3])
        espresso(on)
        espresso(on)  # hit
        snapshot = global_registry.snapshot()
        assert snapshot["cache.hits"]["value"] >= 1
        assert snapshot["cache.misses"]["value"] >= 1
        reset_cache()
