"""Tests for cross-run comparison and regression gating (repro.obs.regress)."""

from repro.obs.regress import (
    DEFAULT_STAGE_TOLERANCE,
    DEFAULT_WALL_TOLERANCE,
    compare_runs,
    format_comparison,
    quality_key,
)
from repro.obs.store import RunRecord


def _run(run_id="run-a", duration=1.0, quality=None, stages=None):
    return RunRecord(
        run_id=run_id,
        created_at="2026-08-08T00:00:00Z",
        command="sweep",
        duration_seconds=duration,
        quality=quality if quality is not None else [_point()],
        stage_timings=stages or {},
    )


def _point(**overrides):
    point = {
        "benchmark": "bench", "policy": "ranking", "parameter": 0.5,
        "objective": "area", "error_rate": 0.02, "area": 70.0,
        "delay": 1.1, "power": 2.2, "gates": 30, "literals": 69,
    }
    point.update(overrides)
    return point


class TestEqualRuns:
    def test_identical_runs_pass(self):
        comparison = compare_runs(_run(), _run(run_id="run-b"))
        assert comparison.ok
        assert comparison.regressions == []
        assert "no regressions" in format_comparison(comparison)

    def test_small_noise_within_tolerance_passes(self):
        baseline = _run(duration=1.0)
        candidate = _run(run_id="run-b",
                         duration=1.0 + 0.5 * DEFAULT_WALL_TOLERANCE)
        assert compare_runs(baseline, candidate).ok


class TestWallClock:
    def test_twenty_percent_slowdown_fails_with_named_metric(self):
        comparison = compare_runs(
            _run(duration=1.0), _run(run_id="run-b", duration=1.25)
        )
        assert not comparison.ok
        (regression,) = comparison.regressions
        assert regression.kind == "wall"
        assert regression.name == "duration_seconds"
        assert "duration_seconds" in format_comparison(comparison)

    def test_speedup_never_fails(self):
        assert compare_runs(
            _run(duration=1.0), _run(run_id="run-b", duration=0.3)
        ).ok

    def test_sub_noise_floor_durations_not_compared(self):
        # 10ms -> 40ms is 4x but under the noise floor: not judged.
        assert compare_runs(
            _run(duration=0.010), _run(run_id="run-b", duration=0.040)
        ).ok

    def test_custom_tolerance(self):
        baseline = _run(duration=1.0)
        candidate = _run(run_id="run-b", duration=1.25)
        assert compare_runs(baseline, candidate, wall_tolerance=0.5).ok


def _stages(seconds, stage="complete_dc", runs=1):
    return {stage: {"seconds": seconds, "runs": runs}}


class TestStageTimings:
    def test_stage_slowdown_fails_with_named_stage(self):
        baseline = _run(stages=_stages(1.0))
        candidate = _run(run_id="run-b",
                         stages=_stages(1.0 + 2 * DEFAULT_STAGE_TOLERANCE))
        comparison = compare_runs(baseline, candidate)
        assert not comparison.ok
        (regression,) = comparison.regressions
        assert regression.kind == "stage"
        assert regression.name == "stage_seconds [complete_dc]"
        assert "complete_dc" in format_comparison(comparison)

    def test_slowdown_within_tolerance_passes(self):
        baseline = _run(stages=_stages(1.0))
        candidate = _run(run_id="run-b",
                         stages=_stages(1.0 + 0.5 * DEFAULT_STAGE_TOLERANCE))
        assert compare_runs(baseline, candidate).ok

    def test_stage_speedup_never_fails(self):
        comparison = compare_runs(
            _run(stages=_stages(2.0)), _run(run_id="run-b",
                                            stages=_stages(0.5))
        )
        assert comparison.ok
        assert comparison.stages["complete_dc"]["ratio"] == 0.25

    def test_sub_noise_floor_stages_not_compared(self):
        assert compare_runs(
            _run(stages=_stages(0.010)),
            _run(run_id="run-b", stages=_stages(0.040)),
        ).ok

    def test_stage_absent_from_candidate_ignored(self):
        # The candidate not running a stage (e.g. restored from a
        # checkpoint) is not a timing regression.
        assert compare_runs(
            _run(stages=_stages(1.0)), _run(run_id="run-b")
        ).ok

    def test_only_shared_stages_compared(self):
        baseline = _run(stages={**_stages(1.0), **_stages(1.0, "map")})
        candidate = _run(run_id="run-b",
                         stages={**_stages(1.0), **_stages(5.0, "map")})
        comparison = compare_runs(baseline, candidate)
        (regression,) = comparison.regressions
        assert regression.name == "stage_seconds [map]"
        assert set(comparison.stages) == {"complete_dc", "map"}

    def test_custom_stage_tolerance(self):
        baseline = _run(stages=_stages(1.0))
        candidate = _run(run_id="run-b", stages=_stages(2.0))
        assert compare_runs(baseline, candidate, stage_tolerance=1.5).ok


class TestQuality:
    def test_error_rate_regression_fails_with_named_metric(self):
        baseline = _run(quality=[_point()])
        candidate = _run(run_id="run-b",
                         quality=[_point(error_rate=0.09)])
        comparison = compare_runs(baseline, candidate)
        assert not comparison.ok
        (regression,) = comparison.regressions
        assert regression.kind == "quality"
        assert regression.name.startswith("error_rate")
        assert "bench ranking 0.5 area" in regression.name

    def test_area_and_literal_regressions_each_named(self):
        baseline = _run(quality=[_point()])
        candidate = _run(run_id="run-b",
                         quality=[_point(area=90.0, literals=100)])
        names = {r.name.split(" ")[0]
                 for r in compare_runs(baseline, candidate).regressions}
        assert names == {"area", "literals"}

    def test_improvement_never_fails(self):
        baseline = _run(quality=[_point()])
        candidate = _run(run_id="run-b",
                         quality=[_point(error_rate=0.001, area=50.0)])
        assert compare_runs(baseline, candidate).ok

    def test_missing_point_is_a_regression(self):
        baseline = _run(quality=[_point(), _point(parameter=1.0)])
        candidate = _run(run_id="run-b", quality=[_point()])
        comparison = compare_runs(baseline, candidate)
        assert not comparison.ok
        (regression,) = comparison.regressions
        assert regression.kind == "missing"

    def test_extra_candidate_points_ignored(self):
        baseline = _run(quality=[_point()])
        candidate = _run(run_id="run-b",
                         quality=[_point(), _point(parameter=0.75)])
        assert compare_runs(baseline, candidate).ok

    def test_points_matched_by_key_not_order(self):
        a, b = _point(parameter=0.25), _point(parameter=0.75)
        baseline = _run(quality=[a, b])
        candidate = _run(run_id="run-b", quality=[b, a])
        assert compare_runs(baseline, candidate).ok

    def test_quality_key(self):
        assert quality_key(_point()) == ("bench", "ranking", 0.5, "area")


class TestReport:
    def test_to_dict_round_trips(self):
        comparison = compare_runs(
            _run(duration=1.0), _run(run_id="run-b", duration=2.0)
        )
        data = comparison.to_dict()
        assert data["ok"] is False
        assert data["baseline"] == "run-a"
        assert data["regressions"][0]["kind"] == "wall"
        assert data["regressions"][0]["ratio"] == 2.0
