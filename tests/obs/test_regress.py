"""Tests for cross-run comparison and regression gating (repro.obs.regress)."""

from repro.obs.regress import (
    DEFAULT_WALL_TOLERANCE,
    compare_runs,
    format_comparison,
    quality_key,
)
from repro.obs.store import RunRecord


def _run(run_id="run-a", duration=1.0, quality=None):
    return RunRecord(
        run_id=run_id,
        created_at="2026-08-08T00:00:00Z",
        command="sweep",
        duration_seconds=duration,
        quality=quality if quality is not None else [_point()],
    )


def _point(**overrides):
    point = {
        "benchmark": "bench", "policy": "ranking", "parameter": 0.5,
        "objective": "area", "error_rate": 0.02, "area": 70.0,
        "delay": 1.1, "power": 2.2, "gates": 30, "literals": 69,
    }
    point.update(overrides)
    return point


class TestEqualRuns:
    def test_identical_runs_pass(self):
        comparison = compare_runs(_run(), _run(run_id="run-b"))
        assert comparison.ok
        assert comparison.regressions == []
        assert "no regressions" in format_comparison(comparison)

    def test_small_noise_within_tolerance_passes(self):
        baseline = _run(duration=1.0)
        candidate = _run(run_id="run-b",
                         duration=1.0 + 0.5 * DEFAULT_WALL_TOLERANCE)
        assert compare_runs(baseline, candidate).ok


class TestWallClock:
    def test_twenty_percent_slowdown_fails_with_named_metric(self):
        comparison = compare_runs(
            _run(duration=1.0), _run(run_id="run-b", duration=1.25)
        )
        assert not comparison.ok
        (regression,) = comparison.regressions
        assert regression.kind == "wall"
        assert regression.name == "duration_seconds"
        assert "duration_seconds" in format_comparison(comparison)

    def test_speedup_never_fails(self):
        assert compare_runs(
            _run(duration=1.0), _run(run_id="run-b", duration=0.3)
        ).ok

    def test_sub_noise_floor_durations_not_compared(self):
        # 10ms -> 40ms is 4x but under the noise floor: not judged.
        assert compare_runs(
            _run(duration=0.010), _run(run_id="run-b", duration=0.040)
        ).ok

    def test_custom_tolerance(self):
        baseline = _run(duration=1.0)
        candidate = _run(run_id="run-b", duration=1.25)
        assert compare_runs(baseline, candidate, wall_tolerance=0.5).ok


class TestQuality:
    def test_error_rate_regression_fails_with_named_metric(self):
        baseline = _run(quality=[_point()])
        candidate = _run(run_id="run-b",
                         quality=[_point(error_rate=0.09)])
        comparison = compare_runs(baseline, candidate)
        assert not comparison.ok
        (regression,) = comparison.regressions
        assert regression.kind == "quality"
        assert regression.name.startswith("error_rate")
        assert "bench ranking 0.5 area" in regression.name

    def test_area_and_literal_regressions_each_named(self):
        baseline = _run(quality=[_point()])
        candidate = _run(run_id="run-b",
                         quality=[_point(area=90.0, literals=100)])
        names = {r.name.split(" ")[0]
                 for r in compare_runs(baseline, candidate).regressions}
        assert names == {"area", "literals"}

    def test_improvement_never_fails(self):
        baseline = _run(quality=[_point()])
        candidate = _run(run_id="run-b",
                         quality=[_point(error_rate=0.001, area=50.0)])
        assert compare_runs(baseline, candidate).ok

    def test_missing_point_is_a_regression(self):
        baseline = _run(quality=[_point(), _point(parameter=1.0)])
        candidate = _run(run_id="run-b", quality=[_point()])
        comparison = compare_runs(baseline, candidate)
        assert not comparison.ok
        (regression,) = comparison.regressions
        assert regression.kind == "missing"

    def test_extra_candidate_points_ignored(self):
        baseline = _run(quality=[_point()])
        candidate = _run(run_id="run-b",
                         quality=[_point(), _point(parameter=0.75)])
        assert compare_runs(baseline, candidate).ok

    def test_points_matched_by_key_not_order(self):
        a, b = _point(parameter=0.25), _point(parameter=0.75)
        baseline = _run(quality=[a, b])
        candidate = _run(run_id="run-b", quality=[b, a])
        assert compare_runs(baseline, candidate).ok

    def test_quality_key(self):
        assert quality_key(_point()) == ("bench", "ranking", 0.5, "area")


class TestReport:
    def test_to_dict_round_trips(self):
        comparison = compare_runs(
            _run(duration=1.0), _run(run_id="run-b", duration=2.0)
        )
        data = comparison.to_dict()
        assert data["ok"] is False
        assert data["baseline"] == "run-a"
        assert data["regressions"][0]["kind"] == "wall"
        assert data["regressions"][0]["ratio"] == 2.0
