"""Tests for the tracing layer: spans, nesting, exports, merging."""

import json

import pytest

from repro.obs import (
    NULL_SPAN,
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    is_enabled,
    span,
    tracing,
)
from repro.obs.validate import validate_trace_events, validate_trace_jsonl


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    disable_tracing()
    yield
    disable_tracing()


class TestDisabled:
    def test_span_is_null_when_disabled(self):
        assert not is_enabled()
        handle = span("anything", x=1)
        assert handle is NULL_SPAN
        with handle as sp:
            sp.set(y=2)  # must be accepted and ignored

    def test_null_span_swallows_nothing(self):
        with pytest.raises(ValueError):
            with span("oops"):
                raise ValueError("propagates")


class TestEnabled:
    def test_span_records_name_duration_attrs(self):
        with tracing() as tracer:
            with span("work", items=3) as sp:
                sp.set(result=7)
        assert len(tracer) == 1
        record = tracer.records[0]
        assert record["name"] == "work"
        assert record["ph"] == "X"
        assert record["dur"] >= 0
        assert record["args"] == {"items": 3, "result": 7}

    def test_name_attribute_does_not_collide(self):
        # The span's positional name and a `name=` attribute must coexist.
        with tracing() as tracer:
            with span("outer", name="attr-value"):
                pass
        assert tracer.records[0]["name"] == "outer"
        assert tracer.records[0]["args"]["name"] == "attr-value"

    def test_nesting_parent_child(self):
        with tracing() as tracer:
            with span("parent"):
                with span("child"):
                    pass
                with span("sibling"):
                    pass
        by_name = {record["name"]: record for record in tracer.records}
        assert by_name["child"]["parent"] == by_name["parent"]["sid"]
        assert by_name["sibling"]["parent"] == by_name["parent"]["sid"]
        assert by_name["parent"]["parent"] == 0

    def test_exception_marks_span_and_propagates(self):
        with tracing() as tracer:
            with pytest.raises(RuntimeError):
                with span("failing"):
                    raise RuntimeError("boom")
        assert tracer.records[0]["args"]["error"] == "RuntimeError"

    def test_enable_disable_roundtrip(self):
        tracer = enable_tracing()
        assert current_tracer() is tracer
        with span("one"):
            pass
        disable_tracing()
        with span("two"):
            pass
        assert [record["name"] for record in tracer.records] == ["one"]

    def test_nested_tracing_scopes_restore(self):
        with tracing() as outer:
            with tracing() as inner:
                with span("inner-work"):
                    pass
            assert current_tracer() is outer
        assert not is_enabled()
        assert len(inner) == 1
        assert len(outer) == 0


class TestExports:
    def _traced(self):
        with tracing() as tracer:
            with span("a", k=1):
                with span("b"):
                    pass
        return tracer

    def test_jsonl_export_validates(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(path)
        assert validate_trace_jsonl(path) == []
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert {line["name"] for line in lines} == {"a", "b"}

    def test_chrome_export_validates(self, tmp_path):
        tracer = self._traced()
        path = tmp_path / "trace.json"
        tracer.write(path)  # .json extension -> Chrome object format
        document = json.loads(path.read_text())
        assert "traceEvents" in document
        assert validate_trace_events(document["traceEvents"]) == []
        phases = {event["ph"] for event in document["traceEvents"]}
        assert "M" in phases  # process_name metadata present
        assert "X" in phases

    def test_snapshot_clear_and_ingest(self):
        worker = Tracer()
        with tracing(worker):
            with span("task"):
                pass
        records = worker.snapshot(clear=True)
        assert len(records) == 1
        assert len(worker) == 0  # reused worker won't double-report
        parent = Tracer()
        parent.ingest(records)
        assert parent.records[0]["name"] == "task"

    def test_numpy_attrs_serialise(self, tmp_path):
        numpy = pytest.importorskip("numpy")
        with tracing() as tracer:
            with span("np", count=numpy.int64(5)):
                pass
        path = tmp_path / "np.jsonl"
        tracer.export_jsonl(path)
        assert json.loads(path.read_text())["args"]["count"] == 5
