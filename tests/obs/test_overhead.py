"""Regression guard: disabled instrumentation must stay (nearly) free.

The ESPRESSO loop carries spans and counters after the observability PR;
with tracing off those must cost < 5% on the n=9 random-function
benchmark (the same function ``bench_substrate_perf.py`` times).  The
control strips the instrumentation by monkeypatching the ``span`` symbol
inside :mod:`repro.espresso.minimize` to a free no-op factory and
disabling the metrics registry, then both variants are timed
interleaved (min-of-N, so scheduler noise mostly cancels).
"""

import time

import numpy as np
import pytest

from repro.espresso import minimize as minimize_module
from repro.espresso.cube import Cover
from repro.espresso.minimize import espresso
from repro.obs import NULL_SPAN, configure_metrics, disable_tracing, is_enabled
from repro.perf import configure_cache

MAX_OVERHEAD = 1.05  # the ISSUE's acceptance bound: < 5%


@pytest.fixture
def n9_problem():
    rng = np.random.default_rng(0)
    n = 9
    phases = rng.choice(np.array([0, 1, 2], np.uint8), size=1 << n,
                        p=[0.3, 0.3, 0.4])
    on = Cover.from_minterms(n, np.flatnonzero(phases == 1))
    dc = Cover.from_minterms(n, np.flatnonzero(phases == 2))
    return on, dc


def _min_time(fn, reps):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_tracing_overhead_under_5_percent(n9_problem, monkeypatch):
    on, dc = n9_problem
    disable_tracing()
    assert not is_enabled()
    configure_cache(enabled=False)  # time the cold path every rep
    try:
        def instrumented():
            return espresso(on, dc)

        def measure(reps):
            # Interleaved min-of-N: strip -> measure control, restore ->
            # measure instrumented, repeatedly, so drift hits both sides.
            control_time = instrumented_time = float("inf")
            for _ in range(reps):
                with monkeypatch.context() as patch:
                    patch.setattr(
                        minimize_module, "span",
                        lambda name, /, **attrs: NULL_SPAN,
                    )
                    configure_metrics(enabled=False)
                    try:
                        control_time = min(
                            control_time, _min_time(instrumented, 1)
                        )
                    finally:
                        configure_metrics(enabled=True)
                instrumented_time = min(
                    instrumented_time, _min_time(instrumented, 1)
                )
            return instrumented_time, control_time

        instrumented(), instrumented()  # warm caches/allocator before timing
        instrumented_time, control_time = measure(reps=5)
        ratio = instrumented_time / control_time
        if ratio > MAX_OVERHEAD:
            # One noisy rep can poison a 5-sample min on a loaded box;
            # decide on a deeper re-measurement before failing.
            instrumented_time, control_time = measure(reps=10)
            ratio = instrumented_time / control_time
        assert ratio <= MAX_OVERHEAD, (
            f"disabled instrumentation costs {100 * (ratio - 1):.1f}% on the "
            f"n=9 espresso benchmark ({instrumented_time * 1e3:.1f} ms vs "
            f"{control_time * 1e3:.1f} ms control); budget is 5%"
        )
    finally:
        configure_metrics(enabled=True)
        configure_cache(enabled=True)


def test_instrumented_espresso_matches_recorded_baseline(n9_problem):
    """With all obs flags off, stay within the PR-1 recorded timing.

    Skips when BENCH_substrate.json has no espresso entry for this
    machine (e.g. a fresh clone before the perf suite ever ran).
    """
    import json
    from pathlib import Path

    bench_file = Path(__file__).resolve().parents[2] / "BENCH_substrate.json"
    if not bench_file.exists():
        pytest.skip("no BENCH_substrate.json on this machine")
    recorded = json.loads(bench_file.read_text()).get("espresso_n9")
    if not recorded or "min_seconds" not in recorded:
        pytest.skip("BENCH_substrate.json lacks an espresso_n9 timing")
    on, dc = n9_problem
    disable_tracing()
    configure_cache(enabled=False)
    try:
        espresso(on, dc)  # warm-up
        measured = _min_time(lambda: espresso(on, dc), reps=5)
    finally:
        configure_cache(enabled=True)
    # Cross-run wall-clock comparisons need headroom beyond the 5%
    # in-run bound: the recorded number may come from a different load
    # regime.  2x still catches an accidentally-hot disabled path.
    assert measured <= max(recorded["min_seconds"] * 2.0, 0.002), (
        f"espresso n=9 now takes {measured * 1e3:.1f} ms vs recorded "
        f"{recorded['min_seconds'] * 1e3:.1f} ms"
    )


def test_enabled_tracing_records_espresso_passes(n9_problem):
    from repro.obs import tracing

    on, dc = n9_problem
    configure_cache(enabled=False)
    try:
        with tracing() as tracer:
            espresso(on, dc)
    finally:
        configure_cache(enabled=True)
    names = {record["name"] for record in tracer.records}
    assert {"espresso", "espresso.expand", "espresso.irredundant"} <= names
    top = [r for r in tracer.records if r["name"] == "espresso"]
    assert top[0]["args"]["cubes_in"] == on.num_cubes
    assert top[0]["args"]["iterations"] >= 1
