"""Tests for the sampling profiler (repro.obs.profile)."""

import time

import pytest

from repro.obs import profile as obs_profile
from repro.obs.profile import StackSampler, top_functions


@pytest.fixture(autouse=True)
def _no_global_sampler():
    """Profiler module state must not leak between tests."""
    obs_profile.disable_profiling()
    yield
    obs_profile.disable_profiling()


def _busy_loop(deadline: float) -> int:
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestStackSampler:
    def test_samples_the_calling_thread(self):
        sampler = StackSampler(interval=0.001).start()
        _busy_loop(time.perf_counter() + 0.2)
        counts = sampler.stop()
        assert sampler.samples > 0
        assert counts
        joined = "\n".join(counts)
        assert "_busy_loop" in joined

    def test_stop_is_idempotent_and_start_restarts(self):
        sampler = StackSampler(interval=0.001).start()
        sampler.stop()
        first = sampler.samples
        sampler.stop()
        assert sampler.samples == first
        sampler.start()
        _busy_loop(time.perf_counter() + 0.05)
        sampler.stop()
        assert sampler.samples >= first

    def test_merge_accumulates(self):
        sampler = StackSampler()
        sampler.merge({"a;b": 3, "a;c": 2})
        sampler.merge({"a;b": 1})
        assert sampler.counts == {"a;b": 4, "a;c": 2}
        assert sampler.samples == 6

    def test_folded_lines_and_write(self, tmp_path):
        sampler = StackSampler()
        sampler.merge({"mod:f;mod:g": 5, "mod:f": 2})
        assert sampler.folded_lines() == ["mod:f 2", "mod:f;mod:g 5"]
        out = tmp_path / "out.folded"
        sampler.write_folded(out)
        assert out.read_text().splitlines() == ["mod:f 2", "mod:f;mod:g 5"]

    def test_summary_shape(self):
        sampler = StackSampler()
        sampler.merge({"m:a;m:b": 4})
        summary = sampler.summary(top=5)
        assert summary["samples"] == 4
        assert summary["distinct_stacks"] == 1
        assert summary["top"][0]["function"] == "m:b"


class TestTopFunctions:
    def test_self_vs_total(self):
        counts = {"a;b": 10, "a;c": 5, "a": 1}
        table = {row["function"]: row for row in top_functions(counts)}
        # 'a' is on every stack (total=16) but a leaf only once (self=1).
        assert table["a"]["total_samples"] == 16
        assert table["a"]["self_samples"] == 1
        assert table["b"]["self_samples"] == 10
        assert table["b"]["total_samples"] == 10

    def test_recursive_stack_counted_once(self):
        # The same function twice in one stack contributes its count once.
        assert top_functions({"f;f": 7})[0]["total_samples"] == 7

    def test_limit(self):
        counts = {f"fn{i}": 1 for i in range(30)}
        assert len(top_functions(counts, limit=10)) == 10


class TestModuleState:
    def test_enable_disable(self):
        assert not obs_profile.is_profiling()
        sampler = obs_profile.enable_profiling(interval=0.001)
        assert obs_profile.is_profiling()
        assert obs_profile.current_sampler() is sampler
        assert obs_profile.enable_profiling() is sampler  # idempotent
        _busy_loop(time.perf_counter() + 0.05)
        counts = obs_profile.disable_profiling()
        assert not obs_profile.is_profiling()
        assert counts  # captured something while busy
        assert obs_profile.disable_profiling() == {}  # idempotent
