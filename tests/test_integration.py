"""Cross-module integration tests: the full pipeline, end to end."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.bdd import BddManager
from repro.benchgen.synthetic import generate_spec
from repro.core.ranking import complete_assignment
from repro.core.reliability import exact_error_bounds
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.espresso.minimize import minimize_spec
from repro.flows import run_flow
from repro.pla import parse_pla, spec_to_pla
from repro.synth.aig import aig_from_network, resyn2rs
from repro.synth.compile_ import compile_spec
from repro.synth.network import LogicNetwork


class TestPublicApi:
    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__


class TestPlaToSilicon:
    """PLA text in, measured netlist out — the full paper flow."""

    PLA = """\
.i 5
.o 2
.type fd
.p 8
00000 1-
00001 1-
0001- -1
01--- 10
10--- 01
11111 11
11110 --
00110 -0
.e
"""

    def test_full_flow(self):
        spec = parse_pla(self.PLA, name="integration")
        result = compile_spec(spec, objective="delay")
        assert spec.equivalent_within_dc(result.implemented)
        assert result.area > 0
        assert result.delay > 0
        bounds = exact_error_bounds(spec)
        assert bounds.lo - 1e-12 <= result.error_rate <= bounds.hi + 1e-12

    def test_round_trip_through_pla(self):
        spec = parse_pla(self.PLA)
        again = parse_pla(spec_to_pla(spec))
        assert again == spec


class TestBddEquivalenceCheck:
    """Verify a mapped netlist against the spec through the BDD engine
    (an independent check from the dense truth-table comparison)."""

    @given(st.integers(0, 10**9))
    @settings(max_examples=10, deadline=None)
    def test_netlist_equals_spec_via_bdds(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 6))
        phases = rng.choice(
            np.array([OFF, ON, DC], np.uint8), size=(2, 1 << n), p=[0.3, 0.3, 0.4]
        )
        spec = FunctionSpec(phases)
        result = compile_spec(spec, objective="area")
        manager = BddManager(n)
        impl_tables = result.implemented.truth_values()
        for out in range(spec.num_outputs):
            impl_ref = manager.from_truth_table(impl_tables[out])
            on_ref = manager.from_truth_table(spec.phases[out] == ON)
            dc_ref = manager.from_truth_table(spec.phases[out] == DC)
            # impl must contain the on-set and avoid the off-set:
            # on <= impl <= on + dc.
            assert manager.apply_and(on_ref, manager.apply_not(impl_ref)) == manager.zero
            allowed = manager.apply_or(on_ref, dc_ref)
            assert manager.apply_and(impl_ref, manager.apply_not(allowed)) == manager.zero


class TestPolicyInvariants:
    @given(st.integers(0, 10**9))
    @settings(max_examples=8, deadline=None)
    def test_complete_policy_hits_exact_floor(self, seed):
        rng = np.random.default_rng(seed)
        phases = rng.choice(
            np.array([OFF, ON, DC], np.uint8), size=(2, 64), p=[0.3, 0.3, 0.4]
        )
        spec = FunctionSpec(phases)
        result = run_flow(spec, "complete", objective="area")
        assert result.error_rate == pytest.approx(exact_error_bounds(spec).lo)

    def test_policies_on_generated_benchmark(self):
        spec = generate_spec("integ", 8, 3, target_cf=0.55, dc_fraction=0.6, seed=9)
        conventional = run_flow(spec, "conventional", objective="power")
        complete = run_flow(spec, "complete", objective="power")
        ranked = run_flow(spec, "ranking", fraction=0.5, objective="power")
        lcf = run_flow(spec, "cfactor", threshold=0.55, objective="power")
        # Reliability ordering: complete is the floor; partial policies sit
        # between complete and conventional (up to minimiser noise).
        assert complete.error_rate <= ranked.error_rate + 1e-9
        assert complete.error_rate <= lcf.error_rate + 1e-9
        assert ranked.error_rate <= conventional.error_rate + 0.02
        assert lcf.error_rate <= conventional.error_rate + 0.02


class TestOptimizerAgreement:
    def test_sop_and_aig_flows_agree_on_function(self):
        spec = generate_spec("agree", 7, 2, target_cf=0.5, dc_fraction=0.5, seed=10)
        minimized = minimize_spec(spec)
        network = LogicNetwork.from_covers(
            list(spec.input_names), minimized.covers, list(spec.output_names)
        )
        aig = resyn2rs(aig_from_network(network))
        aig_tables = np.vstack(list(aig.evaluate().values()))
        np.testing.assert_array_equal(aig_tables, network.output_table())


class TestEstimatesOnPipelineOutputs:
    def test_bands_bracket_every_policy(self):
        spec = generate_spec("bands", 8, 2, target_cf=0.6, dc_fraction=0.6, seed=11)
        exact = exact_error_bounds(spec)
        for policy in ("conventional", "complete"):
            result = run_flow(spec, policy, objective="area")
            assert exact.lo - 1e-12 <= result.error_rate <= exact.hi + 1e-12
        border = repro.border_bounds(spec)
        # The border estimate tracks the exact band within a neighbour of
        # slack (Sec. 5 / Table 3 behaviour).
        slack = 1.5 / spec.num_inputs
        assert border.lo <= exact.lo + slack
        assert border.hi >= exact.hi - slack
