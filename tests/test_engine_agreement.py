"""Cross-engine agreement: dense tables, BDDs, SAT, and covers must all
tell the same story about the same functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager
from repro.espresso.cube import Cover
from repro.espresso.unate import complement, is_tautology
from repro.sat.encode import CnfBuilder
from repro.sat.solver import SatSolver


def random_cover(rng, n, k):
    rows = rng.choice([0, 1, 2], size=(k, n), p=[0.3, 0.3, 0.4]).astype(np.uint8)
    return Cover(rows, n)


class TestCoverVsBdd:
    @given(st.integers(0, 10**9))
    @settings(max_examples=25, deadline=None)
    def test_cover_tautology_equals_bdd_one(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        cover = random_cover(rng, n, int(rng.integers(1, 8)))
        manager = BddManager(n)
        ref = manager.from_truth_table(cover.evaluate())
        assert is_tautology(cover) == (ref == manager.one)

    @given(st.integers(0, 10**9))
    @settings(max_examples=25, deadline=None)
    def test_cover_complement_equals_bdd_not(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        cover = random_cover(rng, n, int(rng.integers(0, 6)))
        manager = BddManager(n)
        direct = manager.from_truth_table(complement(cover).evaluate())
        via_not = manager.apply_not(manager.from_truth_table(cover.evaluate()))
        assert direct == via_not


class TestCoverVsSat:
    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_cover_emptiness_equals_unsat(self, seed):
        """A cover evaluates to constant 0 iff its CNF encoding forbids the
        output from being 1."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 5))
        cover = random_cover(rng, n, int(rng.integers(0, 5)))
        builder = CnfBuilder()
        builder.encode_sop("out", [f"x{i}" for i in range(n)], cover)
        sat, _ = builder.solver.solve([builder.var("out")])
        assert sat == bool(cover.evaluate().any())

    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_tautology_equals_not_out_unsat(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 5))
        cover = random_cover(rng, n, int(rng.integers(1, 8)))
        builder = CnfBuilder()
        builder.encode_sop("out", [f"x{i}" for i in range(n)], cover)
        sat, _ = builder.solver.solve([-builder.var("out")])
        assert (not sat) == is_tautology(cover)


class TestBddVsSat:
    @given(st.integers(0, 10**9))
    @settings(max_examples=15, deadline=None)
    def test_model_count_consistency(self, seed):
        """BDD satcount equals brute-force CNF model count over the
        function variables (projected)."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 5))
        cover = random_cover(rng, n, int(rng.integers(1, 5)))
        table = cover.evaluate()
        manager = BddManager(n)
        assert manager.sat_count(manager.from_truth_table(table)) == int(table.sum())
        builder = CnfBuilder()
        builder.encode_sop("out", [f"x{i}" for i in range(n)], cover)
        out_var = builder.var("out")
        count = 0
        for minterm in range(1 << n):
            assumptions = [
                builder.var(f"x{i}") if (minterm >> i) & 1 else -builder.var(f"x{i}")
                for i in range(n)
            ]
            sat, _ = builder.solver.solve(assumptions + [out_var])
            count += int(sat)
        assert count == int(table.sum())
