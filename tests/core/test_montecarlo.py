"""Tests for Monte-Carlo error-rate estimation."""

import numpy as np
import pytest

from repro.core.montecarlo import MonteCarloEstimate, estimate_error_rate
from repro.core.reliability import error_rate
from repro.core.spec import FunctionSpec
from repro.espresso.cube import Cover
from repro.synth.network import LogicNetwork


def spec_evaluator(spec: FunctionSpec):
    tables = spec.truth_values()

    def evaluate(vectors: np.ndarray) -> np.ndarray:
        indices = np.zeros(vectors.shape[0], dtype=np.int64)
        for j in range(spec.num_inputs):
            indices |= vectors[:, j].astype(np.int64) << j
        return tables[:, indices]

    return evaluate


class TestAgainstExact:
    def test_parity(self):
        idx = np.arange(16)
        bits = sum(((idx >> b) & 1 for b in range(4)), np.zeros(16, np.int64))
        spec = FunctionSpec.from_truth_table((bits % 2 == 1)[None, :])
        estimate = estimate_error_rate(
            spec_evaluator(spec), 4, samples=2000, rng=np.random.default_rng(1)
        )
        assert estimate.rate == pytest.approx(1.0)
        assert estimate.stderr < 0.01

    def test_random_function_within_ci(self):
        rng = np.random.default_rng(2)
        spec = FunctionSpec.from_truth_table(rng.random((3, 256)) < 0.5)
        exact = error_rate(spec)
        estimate = estimate_error_rate(
            spec_evaluator(spec), 8, samples=40_000, rng=np.random.default_rng(3)
        )
        lo, hi = estimate.confidence_interval(z=4.0)
        assert lo <= exact <= hi

    def test_constant(self):
        spec = FunctionSpec.from_truth_table(np.ones((1, 32)))
        estimate = estimate_error_rate(
            spec_evaluator(spec), 5, samples=1000, rng=np.random.default_rng(4)
        )
        assert estimate.rate == 0.0


class TestSourceFilter:
    def test_restricting_sources(self):
        """f = x0 with sources restricted to x1 = 1."""
        spec = FunctionSpec.from_truth_table(np.array([[0, 1, 0, 1]]))

        def only_x1(vectors):
            return vectors[:, 1]

        estimate = estimate_error_rate(
            spec_evaluator(spec), 2, samples=4000,
            rng=np.random.default_rng(5), source_filter=only_x1,
        )
        # Flipping x0 propagates, flipping x1 does not: rate ~ 0.5.
        assert estimate.rate == pytest.approx(0.5, abs=0.05)

    def test_empty_source_set(self):
        spec = FunctionSpec.from_truth_table(np.array([[0, 1, 0, 1]]))
        estimate = estimate_error_rate(
            spec_evaluator(spec), 2, samples=100,
            rng=np.random.default_rng(6),
            source_filter=lambda vectors: np.zeros(vectors.shape[0], dtype=bool),
        )
        assert estimate.samples == 0
        assert estimate.rate == 0.0


class TestWideNetwork:
    def test_24_input_network(self):
        """Dense enumeration of 2^24 is infeasible; sampling is not."""
        n = 24
        names = [f"x{i}" for i in range(n)]
        net = LogicNetwork(names)
        # y = AND of the first 3 inputs XOR-ish chain on the rest is
        # unnecessary; a sparse AND keeps the exact rate computable by hand:
        # output flips iff the flipped pin is among the first 3 AND the
        # other two of those are 1 -> rate = (3/24) * (1/4) = 1/32.
        net.add_node("t", names[:3], Cover.from_strings(["111"]))
        net.set_output("y", "t")

        def evaluate(vectors):
            values = net.evaluate_vectors(vectors)
            return values["t"][None, :]

        estimate = estimate_error_rate(
            evaluate, n, samples=60_000, rng=np.random.default_rng(7)
        )
        assert estimate.rate == pytest.approx(1 / 32, abs=0.005)


class TestBatchAccounting:
    """A source filter must not silently shrink the trial budget."""

    def test_sparse_filter_still_reaches_target(self):
        """A filter admitting ~25% of draws: replacement batches are drawn
        until exactly `samples` admissible trials are used."""
        spec = FunctionSpec.from_truth_table(np.array([[0, 1, 0, 1]]))
        estimate = estimate_error_rate(
            spec_evaluator(spec), 2, samples=1500,
            rng=np.random.default_rng(10),
            source_filter=lambda vectors: vectors[:, 0] & vectors[:, 1],
        )
        assert estimate.samples == 1500

    def test_whole_batch_rejection_makes_progress(self):
        """Batches rejected outright used to vanish from the budget; now
        they are redrawn."""
        spec = FunctionSpec.from_truth_table(np.array([[0, 1, 0, 1]]))
        calls = []

        def reject_first_batches(vectors):
            calls.append(vectors.shape[0])
            if len(calls) <= 2:
                return np.zeros(vectors.shape[0], dtype=bool)
            return np.ones(vectors.shape[0], dtype=bool)

        estimate = estimate_error_rate(
            spec_evaluator(spec), 2, samples=200, batch=64,
            rng=np.random.default_rng(11),
            source_filter=reject_first_batches,
        )
        assert estimate.samples == 200
        assert len(calls) > 2

    def test_draw_budget_bounds_unsatisfiable_filter(self):
        """An unsatisfiable filter terminates after max_draw_factor *
        samples raw draws with a zero estimate."""
        spec = FunctionSpec.from_truth_table(np.array([[0, 1, 0, 1]]))
        calls = []

        def never(vectors):
            calls.append(vectors.shape[0])
            return np.zeros(vectors.shape[0], dtype=bool)

        estimate = estimate_error_rate(
            spec_evaluator(spec), 2, samples=100, batch=50,
            rng=np.random.default_rng(12),
            source_filter=never, max_draw_factor=4,
        )
        assert estimate.samples == 0
        assert estimate.rate == 0.0
        assert sum(calls) <= 4 * 100

    def test_pathologically_tight_filter_returns_fewer_samples(self):
        """Admissibility below 1/max_draw_factor: the draw budget runs
        out first, and the estimate honestly reports the shortfall."""
        spec = FunctionSpec.from_truth_table(np.ones((1, 64)))

        def only_all_ones(vectors):  # 1 vector in 64 is admissible
            return np.all(vectors, axis=1)

        estimate = estimate_error_rate(
            spec_evaluator(spec), 6, samples=1000, batch=500,
            rng=np.random.default_rng(14),
            source_filter=only_all_ones, max_draw_factor=16,
        )
        assert 0 < estimate.samples < 1000

    def test_no_filter_uses_exactly_samples(self):
        spec = FunctionSpec.from_truth_table(np.array([[0, 1, 0, 1]]))
        estimate = estimate_error_rate(
            spec_evaluator(spec), 2, samples=777, rng=np.random.default_rng(13)
        )
        assert estimate.samples == 777


class TestFaultModelParameter:
    def test_explicit_single_bit_is_bit_identical(self):
        """The default inline draw and SingleBitInput consume the RNG
        identically, so seeded estimates are unchanged."""
        from repro.faults import SingleBitInput

        spec = FunctionSpec.from_truth_table(
            np.random.default_rng(20).random((2, 64)) < 0.5
        )
        kwargs = dict(samples=3000)
        legacy = estimate_error_rate(
            spec_evaluator(spec), 6, rng=np.random.default_rng(21), **kwargs
        )
        explicit = estimate_error_rate(
            spec_evaluator(spec), 6, rng=np.random.default_rng(21),
            fault_model=SingleBitInput(), **kwargs
        )
        assert explicit == legacy

    def test_declarative_spec_accepted(self):
        spec = FunctionSpec.from_truth_table(np.array([[0, 1, 0, 1]]))
        estimate = estimate_error_rate(
            spec_evaluator(spec), 2, samples=500,
            rng=np.random.default_rng(22),
            fault_model={"model": "multibit", "k": 2},
        )
        # Both pins flip on every trial; f = x0 always changes.
        assert estimate.rate == 1.0

    def test_node_scope_model_rejected(self):
        from repro.faults import StuckAtNode

        spec = FunctionSpec.from_truth_table(np.array([[0, 1, 0, 1]]))
        with pytest.raises(ValueError, match="scope"):
            estimate_error_rate(
                spec_evaluator(spec), 2, samples=10,
                fault_model=StuckAtNode(0),
            )


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError, match="num_inputs"):
            estimate_error_rate(lambda v: v.T, 0, samples=10)
        with pytest.raises(ValueError, match="samples"):
            estimate_error_rate(lambda v: v.T, 3, samples=0)

    def test_requires_an_evaluator(self):
        with pytest.raises(ValueError, match="evaluator"):
            estimate_error_rate(None, 3, samples=10)

    def test_confidence_interval_clamped(self):
        estimate = MonteCarloEstimate(rate=0.001, stderr=0.01, samples=10)
        lo, hi = estimate.confidence_interval()
        assert lo == 0.0
        assert hi <= 1.0
