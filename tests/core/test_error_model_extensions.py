"""Tests for the generalised error models (weighted and multi-bit)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reliability import error_rate, multibit_error_rate, weighted_error_rate
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON

from .conftest import random_spec


def completed(seed: int, n: int = 5) -> FunctionSpec:
    spec = random_spec(seed, num_inputs=n, num_outputs=2, dc_fraction=0.0)
    return spec


class TestWeighted:
    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_uniform_weights_match_error_rate(self, seed):
        spec = completed(seed)
        uniform = weighted_error_rate(spec, [1.0] * spec.num_inputs)
        assert uniform == pytest.approx(error_rate(spec))

    def test_weight_scaling_invariance(self):
        spec = completed(3)
        a = weighted_error_rate(spec, [1, 2, 3, 4, 5])
        b = weighted_error_rate(spec, [2, 4, 6, 8, 10])
        assert a == pytest.approx(b)

    def test_isolating_one_input(self):
        """Weighting a single input measures only that pin's derating."""
        spec = FunctionSpec.from_truth_table(np.array([[0, 1, 0, 1]]))  # f = x0
        only_x0 = weighted_error_rate(spec, [1.0, 0.0])
        only_x1 = weighted_error_rate(spec, [0.0, 1.0])
        assert only_x0 == pytest.approx(1.0)  # flipping x0 always propagates
        assert only_x1 == pytest.approx(0.0)  # x1 is irrelevant

    def test_validation(self):
        spec = completed(4)
        with pytest.raises(ValueError, match="weights"):
            weighted_error_rate(spec, [1.0])
        with pytest.raises(ValueError, match="non-negative"):
            weighted_error_rate(spec, [0.0] * spec.num_inputs)
        with pytest.raises(ValueError, match="non-negative"):
            weighted_error_rate(spec, [1.0, 1.0, -1.0, 1.0, 1.0])


class TestMultiBit:
    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_distance_one_matches_error_rate(self, seed):
        spec = completed(seed)
        assert multibit_error_rate(spec, 1) == pytest.approx(error_rate(spec))

    def test_parity_detects_odd_flips(self):
        """Parity flips on every odd-weight error and never on even."""
        idx = np.arange(16)
        bits = sum(((idx >> b) & 1 for b in range(4)), np.zeros(16, np.int64))
        spec = FunctionSpec.from_truth_table((bits % 2 == 1)[None, :])
        assert multibit_error_rate(spec, 1) == pytest.approx(1.0)
        assert multibit_error_rate(spec, 2) == pytest.approx(0.0)
        assert multibit_error_rate(spec, 3) == pytest.approx(1.0)

    def test_constant_function_immune(self):
        spec = FunctionSpec.from_truth_table(np.ones((1, 32)))
        for distance in (1, 2, 3):
            assert multibit_error_rate(spec, distance) == 0.0

    def test_sources_respect_spec(self):
        base = random_spec(11, num_inputs=4, num_outputs=1, dc_fraction=0.4)
        values = np.where(base.phases == DC, 0, base.phases == ON).astype(bool)
        full = base.assigned(values)
        restricted = multibit_error_rate(full, 2, spec=base)
        unrestricted = multibit_error_rate(full, 2)
        assert 0.0 <= restricted <= 1.0
        assert 0.0 <= unrestricted <= 1.0

    def test_distance_validation(self):
        spec = completed(5)
        with pytest.raises(ValueError, match="distance"):
            multibit_error_rate(spec, 0)
        with pytest.raises(ValueError, match="distance"):
            multibit_error_rate(spec, spec.num_inputs + 1)
