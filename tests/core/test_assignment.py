"""Tests for the Assignment record type."""

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON


@pytest.fixture
def spec():
    return FunctionSpec.from_sets(3, on_sets=[[0]], dc_sets=[[3, 5, 6]])


class TestSet:
    def test_set_and_len(self, spec):
        a = Assignment()
        a.set(0, 3, ON)
        a.set(0, 5, OFF)
        assert len(a) == 2

    def test_idempotent_set(self):
        a = Assignment()
        a.set(0, 3, ON)
        a.set(0, 3, ON)
        assert len(a) == 1

    def test_conflict_rejected(self):
        a = Assignment()
        a.set(0, 3, ON)
        with pytest.raises(ValueError, match="conflicting"):
            a.set(0, 3, OFF)

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError, match="ON or OFF"):
            Assignment().set(0, 3, DC)


class TestApply:
    def test_apply(self, spec):
        a = Assignment({(0, 3): ON, (0, 5): OFF})
        out = a.apply(spec)
        assert out.phases[0, 3] == ON
        assert out.phases[0, 5] == OFF
        assert out.phases[0, 6] == DC  # untouched
        assert spec.phases[0, 3] == DC  # original unchanged

    def test_apply_rejects_care_targets(self, spec):
        a = Assignment({(0, 0): OFF})
        with pytest.raises(ValueError, match="care minterm"):
            a.apply(spec)


class TestMergeAndFraction:
    def test_merged(self, spec):
        a = Assignment({(0, 3): ON})
        b = Assignment({(0, 5): OFF})
        merged = a.merged(b)
        assert merged.decisions == {(0, 3): ON, (0, 5): OFF}
        assert a.decisions == {(0, 3): ON}  # inputs untouched

    def test_merged_conflict(self):
        a = Assignment({(0, 3): ON})
        b = Assignment({(0, 3): OFF})
        with pytest.raises(ValueError, match="conflicting"):
            a.merged(b)

    def test_merged_conflict_names_location_and_values(self):
        a = Assignment({(2, 7): ON})
        b = Assignment({(2, 7): OFF})
        with pytest.raises(
            ValueError,
            match=rf"output 2, minterm 7: already decided {ON}, now {OFF}",
        ):
            a.merged(b)

    def test_merged_conflict_leaves_operands_untouched(self):
        a = Assignment({(0, 3): ON, (0, 5): ON})
        b = Assignment({(0, 3): OFF})
        with pytest.raises(ValueError):
            a.merged(b)
        assert a.decisions == {(0, 3): ON, (0, 5): ON}
        assert b.decisions == {(0, 3): OFF}

    def test_merged_agreeing_overlap_is_fine(self):
        a = Assignment({(0, 3): ON})
        b = Assignment({(0, 3): ON, (1, 4): OFF})
        merged = a.merged(b)
        assert merged.decisions == {(0, 3): ON, (1, 4): OFF}

    def test_set_conflict_names_previous_value(self):
        a = Assignment()
        a.set(1, 9, OFF)
        with pytest.raises(
            ValueError, match=rf"already decided {OFF}, now {ON}"
        ):
            a.set(1, 9, ON)

    def test_fraction_of(self, spec):
        a = Assignment({(0, 3): ON})
        assert a.fraction_of(spec) == pytest.approx(1 / 3)

    def test_fraction_of_fully_specified_spec(self):
        full = FunctionSpec.from_truth_table(np.array([[0, 1, 0, 1]]))
        assert Assignment().fraction_of(full) == 0.0
