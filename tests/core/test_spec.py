"""Unit tests for FunctionSpec."""

import numpy as np
import pytest

from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON


class TestConstruction:
    def test_from_sets(self):
        spec = FunctionSpec.from_sets(3, on_sets=[[1, 2]], dc_sets=[[7]])
        assert spec.num_inputs == 3
        assert spec.num_outputs == 1
        assert list(spec.on_set(0)) == [1, 2]
        assert list(spec.dc_set(0)) == [7]
        assert list(spec.off_set(0)) == [0, 3, 4, 5, 6]

    def test_from_sets_overlap_rejected(self):
        with pytest.raises(ValueError, match="both"):
            FunctionSpec.from_sets(3, on_sets=[[1]], dc_sets=[[1]])

    def test_from_sets_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            FunctionSpec.from_sets(3, on_sets=[[8]])

    def test_from_truth_table(self):
        spec = FunctionSpec.from_truth_table(np.array([0, 1, 1, 0]))
        assert spec.is_fully_specified
        assert list(spec.on_set(0)) == [1, 2]

    def test_default_names(self):
        spec = FunctionSpec.from_sets(2, on_sets=[[0], [1]])
        assert spec.input_names == ("x0", "x1")
        assert spec.output_names == ("y0", "y1")

    def test_name_length_validation(self):
        with pytest.raises(ValueError, match="input names"):
            FunctionSpec(np.zeros((1, 4), np.uint8), input_names=("a",))

    def test_phases_are_read_only(self):
        spec = FunctionSpec.from_sets(2, on_sets=[[0]])
        with pytest.raises(ValueError):
            spec.phases[0, 0] = ON


class TestQueries:
    def test_dc_fraction(self):
        spec = FunctionSpec.from_sets(2, on_sets=[[0]], dc_sets=[[1, 2]])
        assert spec.dc_fraction() == pytest.approx(0.5)

    def test_signal_probabilities(self):
        spec = FunctionSpec.from_sets(2, on_sets=[[0]], dc_sets=[[1, 2]])
        f0, f1, fdc = spec.signal_probabilities()
        assert float(f0[0]) == pytest.approx(0.25)
        assert float(f1[0]) == pytest.approx(0.25)
        assert float(fdc[0]) == pytest.approx(0.5)

    def test_evaluate(self):
        spec = FunctionSpec.from_sets(2, on_sets=[[0], []], dc_sets=[[], [3]])
        np.testing.assert_array_equal(spec.evaluate(0), [ON, OFF])
        np.testing.assert_array_equal(spec.evaluate(3), [OFF, DC])

    def test_single_output(self):
        spec = FunctionSpec.from_sets(2, on_sets=[[0], [1]])
        sub = spec.single_output(1)
        assert sub.num_outputs == 1
        assert list(sub.on_set(0)) == [1]


class TestAssignment:
    def test_assigned_completes_dcs(self):
        spec = FunctionSpec.from_sets(2, on_sets=[[0]], dc_sets=[[3]])
        values = np.array([[1, 0, 0, 1]], dtype=bool)
        full = spec.assigned(values)
        assert full.is_fully_specified
        assert list(full.on_set(0)) == [0, 3]

    def test_assigned_rejects_care_flip(self):
        spec = FunctionSpec.from_sets(2, on_sets=[[0]], dc_sets=[[3]])
        values = np.array([[0, 0, 0, 1]], dtype=bool)
        with pytest.raises(ValueError, match="care"):
            spec.assigned(values)

    def test_truth_values_requires_full(self):
        spec = FunctionSpec.from_sets(2, on_sets=[[0]], dc_sets=[[3]])
        with pytest.raises(ValueError, match="don't-care"):
            spec.truth_values()

    def test_equivalent_within_dc(self):
        spec = FunctionSpec.from_sets(2, on_sets=[[0]], dc_sets=[[3]])
        impl_a = FunctionSpec.from_truth_table(np.array([[1, 0, 0, 1]]))
        impl_b = FunctionSpec.from_truth_table(np.array([[1, 0, 0, 0]]))
        impl_c = FunctionSpec.from_truth_table(np.array([[0, 0, 0, 0]]))
        assert spec.equivalent_within_dc(impl_a)
        assert spec.equivalent_within_dc(impl_b)
        assert not spec.equivalent_within_dc(impl_c)

    def test_equality_and_hash(self):
        spec_a = FunctionSpec.from_sets(2, on_sets=[[0]])
        spec_b = FunctionSpec.from_sets(2, on_sets=[[0]])
        spec_c = FunctionSpec.from_sets(2, on_sets=[[1]])
        assert spec_a == spec_b
        assert hash(spec_a) == hash(spec_b)
        assert spec_a != spec_c
