"""Tests for Hamming utilities."""

import numpy as np
import pytest

from repro.core.hamming import (
    flip_bit,
    hamming_distance,
    neighbor_phase_counts,
    neighbors,
    same_phase_neighbor_counts,
)
from repro.core.truthtable import DC, OFF, ON


class TestScalars:
    def test_flip_bit(self):
        assert flip_bit(0b0100, 1) == 0b0110
        assert flip_bit(0b0110, 1) == 0b0100

    def test_neighbors(self):
        assert sorted(neighbors(0, 3)) == [1, 2, 4]
        assert sorted(neighbors(5, 3)) == [1, 4, 7]

    def test_hamming_distance(self):
        assert hamming_distance(0b1010, 0b1010) == 0
        assert hamming_distance(0b1010, 0b0101) == 4
        assert hamming_distance(0, 0b111) == 3


class TestNeighborPhaseCounts:
    def test_counts_sum_to_n(self):
        rng = np.random.default_rng(0)
        phases = rng.integers(0, 3, size=(3, 32)).astype(np.uint8)
        on_nb, off_nb, dc_nb = neighbor_phase_counts(phases)
        np.testing.assert_array_equal(on_nb + off_nb + dc_nb, 5)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(1)
        n = 4
        phases = rng.integers(0, 3, size=1 << n).astype(np.uint8)
        on_nb, off_nb, dc_nb = neighbor_phase_counts(phases)
        for x in range(1 << n):
            nbs = [phases[x ^ (1 << b)] for b in range(n)]
            assert on_nb[x] == sum(1 for v in nbs if v == ON)
            assert off_nb[x] == sum(1 for v in nbs if v == OFF)
            assert dc_nb[x] == sum(1 for v in nbs if v == DC)

    def test_same_phase_counts(self):
        phases = np.array([ON, ON, OFF, OFF], dtype=np.uint8)
        # minterm 0: neighbours 1 (ON, same), 2 (OFF, diff) -> 1
        np.testing.assert_array_equal(
            same_phase_neighbor_counts(phases), [1, 1, 1, 1]
        )
