"""Tests for the exact reliability model (Sec. 5 formulas)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import Assignment
from repro.core.ranking import complete_assignment
from repro.core.reliability import (
    ErrorBounds,
    base_error_count,
    error_events,
    error_rate,
    exact_error_bounds,
    max_dc_error_count,
    min_dc_error_count,
    spec_error_rate,
)
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON

from .conftest import random_spec


class TestBaseError:
    def test_counts_both_directions(self):
        """One on-off neighbour pair -> base error 2 (paper's factor of 2)."""
        phases = np.array([OFF, ON, DC, DC], dtype=np.uint8)
        assert base_error_count(phases) == 2

    def test_constant_function_has_zero(self):
        assert base_error_count(np.full(16, ON, np.uint8)) == 0

    def test_parity_has_all(self):
        idx = np.arange(16)
        bits = sum(((idx >> b) & 1 for b in range(4)), np.zeros(16, np.int64))
        phases = np.where(bits % 2 == 1, ON, OFF).astype(np.uint8)
        assert base_error_count(phases) == 4 * 16  # every neighbour pair flips

    def test_dc_pairs_do_not_count(self):
        phases = np.full(8, DC, dtype=np.uint8)
        assert base_error_count(phases) == 0


class TestDcErrorBounds:
    def test_min_max_single_dc(self):
        """DC at 0 (2 inputs): neighbours 1 (ON) and 2 (OFF)."""
        phases = np.array([DC, ON, OFF, OFF], dtype=np.uint8)
        assert min_dc_error_count(phases) == 1
        assert max_dc_error_count(phases) == 1

    def test_min_max_unbalanced(self):
        """DC at 0 (3 inputs): neighbours 1, 2 ON; 4 OFF."""
        phases = np.array([DC, ON, ON, OFF, OFF, OFF, OFF, OFF], dtype=np.uint8)
        assert min_dc_error_count(phases) == 1  # assign ON, off-neighbour errs
        assert max_dc_error_count(phases) == 2  # assign OFF, on-neighbours err

    def test_fully_specified_has_zero_dc_terms(self):
        phases = np.array([OFF, ON, ON, OFF], dtype=np.uint8)
        assert min_dc_error_count(phases) == 0
        assert max_dc_error_count(phases) == 0


class TestDecomposition:
    """error(g) == base(f) + per-DC contributions, for any completion g."""

    @given(st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_any_completion_lies_in_exact_bounds(self, seed):
        spec = random_spec(seed, num_inputs=5, num_outputs=1, dc_fraction=0.5)
        rng = np.random.default_rng(seed + 1)
        values = np.where(
            spec.phases == DC, rng.integers(0, 2, spec.phases.shape), spec.phases == ON
        ).astype(bool)
        full = spec.assigned(values)
        bounds = exact_error_bounds(spec)
        rate = error_rate(full, spec=spec)
        assert bounds.lo - 1e-12 <= rate <= bounds.hi + 1e-12

    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_complete_assignment_achieves_minimum(self, seed):
        """Majority-phase assignment of every DC hits the exact lower bound."""
        spec = random_spec(seed, num_inputs=5, num_outputs=2, dc_fraction=0.4)
        assigned = complete_assignment(spec).apply(spec)
        assert assigned.is_fully_specified
        rate = error_rate(assigned, spec=spec)
        assert rate == pytest.approx(exact_error_bounds(spec).lo, abs=1e-12)

    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_minority_assignment_achieves_maximum(self, seed):
        from repro.core.hamming import neighbor_phase_counts

        spec = random_spec(seed, num_inputs=5, num_outputs=1, dc_fraction=0.4)
        assignment = Assignment()
        phases = spec.output_phases(0)
        on_nb, off_nb, _ = neighbor_phase_counts(phases)
        for m in np.flatnonzero(phases == DC):
            minority = OFF if on_nb[m] > off_nb[m] else ON
            assignment.set(0, int(m), minority)
        assigned = assignment.apply(spec)
        rate = error_rate(assigned, spec=spec)
        assert rate == pytest.approx(exact_error_bounds(spec).hi, abs=1e-12)


class TestErrorEvents:
    def test_sources_restricted_to_spec_care_set(self):
        """Errors originating in the original DC set never count."""
        spec = FunctionSpec.from_sets(2, on_sets=[[1]], dc_sets=[[0]])
        full = spec.assigned(np.array([[0, 1, 0, 0]], dtype=bool))
        # Care sources: 1 (ON), 2 (OFF), 3 (OFF).
        # 1 -> 0 (OFF): event. 1 -> 3 (OFF): event. 2 -> 0: no. 2 -> 3: no.
        # 3 -> 1 (ON): event. 3 -> 2: no. 0 is not a source.
        events = error_events(full.phases, source_mask=spec.care_mask())
        assert int(events[0]) == 3

    def test_all_sources_when_unrestricted(self):
        phases = np.array([OFF, ON, ON, OFF], dtype=np.uint8)
        assert error_events(phases) == 8  # every one of the 2*4 flips toggles

    def test_shape_mismatch_rejected(self):
        phases = np.array([OFF, ON, ON, OFF], dtype=np.uint8)
        with pytest.raises(ValueError, match="mismatch"):
            error_events(phases, source_mask=np.ones((2, 4), dtype=bool))


class TestErrorRate:
    def test_rate_units(self):
        """Parity on 2 inputs: every flip propagates -> rate 1.0."""
        spec = FunctionSpec.from_truth_table(np.array([[0, 1, 1, 0]]))
        assert error_rate(spec) == pytest.approx(1.0)

    def test_constant_rate_zero(self):
        spec = FunctionSpec.from_truth_table(np.array([[1, 1, 1, 1]]))
        assert error_rate(spec) == pytest.approx(0.0)

    def test_spec_error_rate_partial(self, motivating_spec):
        rate = spec_error_rate(motivating_spec)
        base = base_error_count(motivating_spec.phases)
        assert rate == pytest.approx(int(base[0]) / (4 * 16))

    def test_multi_output_mean(self):
        spec = FunctionSpec.from_truth_table(
            np.array([[0, 1, 1, 0], [1, 1, 1, 1]])
        )
        assert error_rate(spec) == pytest.approx(0.5)


class TestErrorBoundsClass:
    def test_contains(self):
        band = ErrorBounds(0.1, 0.3)
        assert band.contains(0.2)
        assert not band.contains(0.35)
        assert band.contains(0.35, slack=0.1)

    def test_width(self):
        assert ErrorBounds(0.1, 0.3).width == pytest.approx(0.2)
