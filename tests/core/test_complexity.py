"""Tests for complexity-factor metrics against the paper's anchor points."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.complexity import (
    complexity_factor,
    expected_complexity_factor,
    local_complexity,
    local_complexity_factor,
    spec_complexity_factor,
    spec_expected_complexity_factor,
)
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON


def parity_phases(n: int) -> np.ndarray:
    idx = np.arange(1 << n)
    bits = np.zeros(1 << n, dtype=np.int64)
    for b in range(n):
        bits += (idx >> b) & 1
    return np.where(bits % 2 == 1, ON, OFF).astype(np.uint8)


class TestComplexityFactor:
    def test_constant_function_is_one(self):
        """A constant function has C^f = 1 (paper, Sec. 2.2)."""
        assert complexity_factor(np.full(32, ON, np.uint8)) == pytest.approx(1.0)
        assert complexity_factor(np.full(32, OFF, np.uint8)) == pytest.approx(1.0)

    def test_parity_is_zero(self):
        """A perfect XOR has C^f = 0 (paper, Sec. 2.2)."""
        for n in (2, 4, 6):
            assert complexity_factor(parity_phases(n)) == pytest.approx(0.0)

    def test_single_variable_function(self):
        """f = x0 on 2 inputs: each minterm has 1 same-phase neighbour of 2."""
        phases = np.array([OFF, ON, OFF, ON], dtype=np.uint8)
        assert complexity_factor(phases) == pytest.approx(0.5)

    def test_all_dc_is_one(self):
        assert complexity_factor(np.full(16, DC, np.uint8)) == pytest.approx(1.0)

    def test_multi_output_returns_per_output(self):
        phases = np.stack([np.full(8, ON, np.uint8), parity_phases(3)])
        values = complexity_factor(phases)
        np.testing.assert_allclose(values, [1.0, 0.0])

    @given(st.integers(0, 10**9))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        phases = rng.integers(0, 3, size=1 << n).astype(np.uint8)
        count = 0
        for x in range(1 << n):
            for b in range(n):
                if phases[x] == phases[x ^ (1 << b)]:
                    count += 1
        assert complexity_factor(phases) == pytest.approx(count / (n * (1 << n)))


class TestExpectedComplexityFactor:
    def test_formula(self):
        spec = FunctionSpec.from_sets(2, on_sets=[[0]], dc_sets=[[1, 2]])
        # f0 = f1 = 0.25, fdc = 0.5 -> 0.0625 + 0.0625 + 0.25 = 0.375
        assert expected_complexity_factor(spec.phases[0]) == pytest.approx(0.375)

    def test_bounds(self):
        rng = np.random.default_rng(5)
        phases = rng.integers(0, 3, size=64).astype(np.uint8)
        value = expected_complexity_factor(phases)
        assert 1.0 / 3.0 <= value <= 1.0

    def test_random_function_cf_near_expected(self):
        """For i.i.d. random phases, C^f concentrates near E[C^f]."""
        rng = np.random.default_rng(8)
        phases = rng.choice(
            np.array([OFF, ON, DC], np.uint8), size=1 << 12, p=[0.25, 0.25, 0.5]
        )
        cf = complexity_factor(phases)
        expected = expected_complexity_factor(phases)
        assert abs(cf - expected) < 0.02


class TestLocalComplexity:
    def test_mean_local_equals_global(self):
        rng = np.random.default_rng(9)
        phases = rng.integers(0, 3, size=64).astype(np.uint8)
        np.testing.assert_allclose(
            local_complexity(phases).mean(), complexity_factor(phases)
        )

    def test_lcf_matches_definition(self):
        """LC^f(x) by the paper's pair-counting definition, brute force."""
        rng = np.random.default_rng(10)
        n = 4
        phases = rng.integers(0, 3, size=1 << n).astype(np.uint8)
        lcf = local_complexity_factor(phases)
        for x in range(1 << n):
            pairs = 0
            for b in range(n):
                xj = x ^ (1 << b)
                for b2 in range(n):
                    xk = xj ^ (1 << b2)
                    if phases[xj] == phases[xk]:
                        pairs += 1
            assert lcf[x] == pytest.approx(pairs / n**2)

    def test_constant_function_lcf_is_one(self):
        lcf = local_complexity_factor(np.full(16, ON, np.uint8))
        np.testing.assert_allclose(lcf, 1.0)

    def test_mean_lcf_equals_global_cf(self):
        """Averaging LC^f over all minterms recovers C^f (double counting)."""
        rng = np.random.default_rng(11)
        phases = rng.integers(0, 3, size=128).astype(np.uint8)
        np.testing.assert_allclose(
            local_complexity_factor(phases).mean(), complexity_factor(phases)
        )


class TestSpecLevel:
    def test_spec_helpers_average_outputs(self):
        phases = np.stack([np.full(8, ON, np.uint8), parity_phases(3)])
        spec = FunctionSpec(phases)
        assert spec_complexity_factor(spec) == pytest.approx(0.5)
        assert spec_expected_complexity_factor(spec) == pytest.approx(
            float(np.mean(expected_complexity_factor(phases)))
        )
