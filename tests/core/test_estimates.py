"""Tests for the Sec. 5 analytic estimators."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimates import (
    EstimateReport,
    border_bounds,
    border_counts,
    estimate_report,
    signal_probability_bounds,
)
from repro.core.estimates import _folded_normal_mean, _poisson_pmf
from repro.core.reliability import exact_error_bounds
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON

from .conftest import random_spec


class TestBorderCounts:
    def test_fig8_style_contrast(self):
        """Two specs with identical signal probabilities but different
        clustering have different border counts (Fig. 8's point)."""
        # Clustered: DCs form a face of the cube.
        clustered = np.array([DC, DC, ON, ON, OFF, OFF, OFF, OFF], dtype=np.uint8)
        # Scattered: same (2 DC, 2 ON, 4 OFF) multiset, interleaved.
        scattered = np.array([DC, ON, OFF, OFF, OFF, OFF, ON, DC], dtype=np.uint8)
        b0c, b1c, bdcc = border_counts(clustered)
        b0s, b1s, bdcs = border_counts(scattered)
        assert (int(b0c), int(b1c), int(bdcc)) != (int(b0s), int(b1s), int(bdcs))
        assert int(bdcs) > int(bdcc)

    def test_counts_match_brute_force(self):
        rng = np.random.default_rng(12)
        n = 4
        phases = rng.integers(0, 3, size=1 << n).astype(np.uint8)
        b0, b1, bdc = border_counts(phases)
        expect = {OFF: 0, ON: 0, DC: 0}
        for x in range(1 << n):
            for b in range(n):
                if phases[x] != phases[x ^ (1 << b)]:
                    expect[int(phases[x])] += 1
        assert (int(b0), int(b1), int(bdc)) == (expect[OFF], expect[ON], expect[DC])

    def test_constant_function_no_borders(self):
        b0, b1, bdc = border_counts(np.full(16, ON, np.uint8))
        assert (int(b0), int(b1), int(bdc)) == (0, 0, 0)


class TestFoldedNormal:
    def test_zero_mean(self):
        sigma = 2.0
        assert _folded_normal_mean(0.0, sigma) == pytest.approx(
            sigma * math.sqrt(2 / math.pi)
        )

    def test_large_mean_dominates(self):
        assert _folded_normal_mean(100.0, 1.0) == pytest.approx(100.0, rel=1e-6)

    def test_zero_sigma(self):
        assert _folded_normal_mean(-3.0, 0.0) == pytest.approx(3.0)

    @given(
        st.floats(-5, 5),
        st.floats(0.1, 5),
        st.integers(0, 10**6),
    )
    @settings(max_examples=20, deadline=None)
    def test_against_monte_carlo(self, mu, sigma, seed):
        rng = np.random.default_rng(seed)
        samples = rng.normal(mu, sigma, size=200_000)
        assert _folded_normal_mean(mu, sigma) == pytest.approx(
            float(np.abs(samples).mean()), abs=0.05
        )


class TestPoissonPmf:
    def test_sums_to_one(self):
        lam = 2.5
        total = sum(_poisson_pmf(k, lam) for k in range(100))
        assert total == pytest.approx(1.0)

    def test_zero_lambda(self):
        assert _poisson_pmf(0, 0.0) == 1.0
        assert _poisson_pmf(3, 0.0) == 0.0

    def test_matches_scipy(self):
        from scipy.stats import poisson

        for k in range(10):
            assert _poisson_pmf(k, 3.3) == pytest.approx(poisson.pmf(k, 3.3))


class TestSignalBounds:
    def test_fully_specified_band_is_point(self):
        spec = FunctionSpec.from_truth_table(np.array([[0, 1, 1, 0]]))
        band = signal_probability_bounds(spec)
        assert band.lo == pytest.approx(band.hi)
        assert band.lo == pytest.approx(2 * 0.5 * 0.5)

    def test_constant_function_zero(self):
        spec = FunctionSpec.from_truth_table(np.ones((1, 16)))
        band = signal_probability_bounds(spec)
        assert band.lo == pytest.approx(0.0)
        assert band.hi == pytest.approx(0.0)

    def test_band_ordering(self):
        spec = random_spec(20, num_inputs=8, num_outputs=3, dc_fraction=0.5)
        band = signal_probability_bounds(spec)
        assert 0.0 <= band.lo <= band.hi <= 1.0

    def test_overshoots_exact_on_structured_function(self):
        """Table 3: the signal estimate ignores clustering, so on structured
        (clustered) functions its band overshoots the exact one."""
        # A well-clustered function: one DC face, one ON face.
        phases = np.full((1, 256), OFF, dtype=np.uint8)
        phases[0, :64] = ON
        phases[0, 64:128] = DC
        spec = FunctionSpec(phases)
        exact = exact_error_bounds(spec)
        signal = signal_probability_bounds(spec)
        assert signal.lo > exact.lo
        assert signal.hi > exact.hi


class TestBorderBounds:
    def test_band_ordering(self):
        spec = random_spec(21, num_inputs=8, num_outputs=3, dc_fraction=0.5)
        band = border_bounds(spec)
        assert 0.0 <= band.lo <= band.hi + 1e-12

    def test_fully_specified_reduces_to_base(self):
        spec = FunctionSpec.from_truth_table(np.array([[0, 1, 1, 0]]))
        band = border_bounds(spec)
        assert band.lo == pytest.approx(band.hi)
        assert band.lo == pytest.approx(1.0)  # parity: everything flips

    def test_tracks_clustering(self):
        """On clustered functions the border band is much tighter than the
        signal band (the Table 3 contrast)."""
        phases = np.full((1, 256), OFF, dtype=np.uint8)
        phases[0, :64] = ON
        phases[0, 64:128] = DC
        spec = FunctionSpec(phases)
        border = border_bounds(spec)
        signal = signal_probability_bounds(spec)
        assert border.width < signal.width
        assert border.lo < signal.lo

    @given(st.integers(0, 10**9))
    @settings(max_examples=15, deadline=None)
    def test_border_band_contains_or_brackets_exact(self, seed):
        """The border estimate is built to bracket the exact band: its floor
        never exceeds the exact minimum by much and its ceiling is not far
        below the exact maximum.  (Table 3 reports containment on the MCNC
        set; we assert the bracketing with a small tolerance on random
        functions.)"""
        spec = random_spec(seed, num_inputs=7, num_outputs=1, dc_fraction=0.5)
        exact = exact_error_bounds(spec)
        border = border_bounds(spec)
        n = spec.num_inputs
        slack = 1.5 / n  # one neighbour of slack per DC minterm
        assert border.lo <= exact.lo + slack
        assert border.hi >= exact.hi - slack


class TestEstimateReport:
    def test_report_bundles_all_three(self):
        spec = random_spec(22, num_inputs=6, num_outputs=2, dc_fraction=0.5)
        report = estimate_report(spec)
        assert isinstance(report, EstimateReport)
        assert report.exact.lo <= report.exact.hi
        assert report.signal.lo <= report.signal.hi
        assert report.border.lo <= report.border.hi + 1e-12
