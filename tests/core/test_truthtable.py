"""Unit tests for the dense phase-array primitives."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.truthtable import (
    DC,
    OFF,
    ON,
    care_mask,
    neighbor_view,
    num_inputs_of,
    phase_counts,
    phase_fractions,
    random_phases,
    validate_phases,
)


class TestNumInputs:
    def test_power_of_two_lengths(self):
        for n in range(0, 8):
            arr = np.zeros(1 << n, dtype=np.uint8)
            assert num_inputs_of(arr) == n

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            num_inputs_of(np.zeros(6, dtype=np.uint8))

    def test_uses_last_axis(self):
        assert num_inputs_of(np.zeros((3, 16), dtype=np.uint8)) == 4


class TestValidate:
    def test_accepts_valid_codes(self):
        arr = np.array([OFF, ON, DC, ON], dtype=np.uint8)
        assert validate_phases(arr) is not None

    def test_rejects_bad_code(self):
        with pytest.raises(ValueError, match="invalid code 3"):
            validate_phases(np.array([0, 1, 2, 3], dtype=np.uint8))

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            validate_phases(np.zeros(5, dtype=np.uint8))


class TestNeighborView:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_matches_xor_indexing(self, n):
        rng = np.random.default_rng(7 * n)
        arr = rng.integers(0, 3, size=1 << n).astype(np.uint8)
        idx = np.arange(1 << n)
        for bit in range(n):
            expected = arr[idx ^ (1 << bit)]
            np.testing.assert_array_equal(neighbor_view(arr, bit), expected)

    def test_multi_output(self):
        rng = np.random.default_rng(3)
        arr = rng.integers(0, 3, size=(4, 8)).astype(np.uint8)
        idx = np.arange(8)
        for bit in range(3):
            expected = arr[:, idx ^ (1 << bit)]
            np.testing.assert_array_equal(neighbor_view(arr, bit), expected)

    def test_is_an_involution(self):
        rng = np.random.default_rng(11)
        arr = rng.integers(0, 3, size=32).astype(np.uint8)
        for bit in range(5):
            np.testing.assert_array_equal(
                neighbor_view(neighbor_view(arr, bit), bit), arr
            )

    def test_rejects_out_of_range_bit(self):
        arr = np.zeros(8, dtype=np.uint8)
        with pytest.raises(ValueError, match="out of range"):
            neighbor_view(arr, 3)
        with pytest.raises(ValueError, match="out of range"):
            neighbor_view(arr, -1)

    @given(st.integers(min_value=1, max_value=7), st.integers(min_value=0, max_value=10**9))
    def test_property_neighbor_view_is_bit_flip(self, n, seed):
        rng = np.random.default_rng(seed)
        arr = rng.integers(0, 3, size=1 << n).astype(np.uint8)
        bit = seed % n
        idx = np.arange(1 << n)
        np.testing.assert_array_equal(neighbor_view(arr, bit), arr[idx ^ (1 << bit)])


class TestStatistics:
    def test_phase_counts(self):
        arr = np.array([OFF, ON, DC, DC], dtype=np.uint8)
        assert phase_counts(arr) == (1, 1, 2)

    def test_phase_fractions_sum_to_one(self):
        rng = np.random.default_rng(0)
        arr = rng.integers(0, 3, size=(5, 64)).astype(np.uint8)
        f0, f1, fdc = phase_fractions(arr)
        np.testing.assert_allclose(f0 + f1 + fdc, 1.0)

    def test_care_mask(self):
        arr = np.array([OFF, ON, DC, ON], dtype=np.uint8)
        np.testing.assert_array_equal(care_mask(arr), [True, True, False, True])


class TestRandomPhases:
    def test_shape_and_codes(self):
        rng = np.random.default_rng(1)
        arr = random_phases(5, 3, (0.3, 0.3, 0.4), rng)
        assert arr.shape == (3, 32)
        assert set(np.unique(arr)) <= {OFF, ON, DC}

    def test_respects_probabilities(self):
        rng = np.random.default_rng(2)
        arr = random_phases(12, 1, (0.2, 0.2, 0.6), rng)
        _, _, fdc = phase_fractions(arr)
        assert abs(float(fdc[0]) - 0.6) < 0.05

    def test_rejects_bad_probabilities(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError, match="sum"):
            random_phases(4, 1, (0.5, 0.5, 0.5), rng)
