"""Shared fixtures for core tests, including the paper's worked examples."""

import numpy as np
import pytest

from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON


@pytest.fixture
def motivating_spec() -> FunctionSpec:
    """A 4-input function with the structure of the paper's Fig. 1 example.

    Three DC minterms with the properties described in Sec. 2.1:

    * ``x1`` (minterm 0): two on-set neighbours, one off-set neighbour and
      one DC neighbour (``x2``) -> reliability-driven assignment puts it in
      the on-set;
    * ``x2`` (minterm 8): two off-set neighbours, one on-set neighbour and
      one DC neighbour (``x1``) -> assigned to the off-set;
    * ``x3`` (minterm 5): two neighbours in each care phase -> ambiguous,
      left unassigned.
    """
    phases = np.full(16, OFF, dtype=np.uint8)
    phases[[1, 2, 12, 7]] = ON
    phases[[0, 8, 5]] = DC
    return FunctionSpec(phases, name="fig1")


def random_spec(seed: int, num_inputs: int = 6, num_outputs: int = 2,
                dc_fraction: float = 0.4) -> FunctionSpec:
    """Deterministic random incompletely specified function for tests."""
    rng = np.random.default_rng(seed)
    care = (1.0 - dc_fraction) / 2.0
    phases = rng.choice(
        np.array([OFF, ON, DC], dtype=np.uint8),
        size=(num_outputs, 1 << num_inputs),
        p=[care, care, dc_fraction],
    )
    return FunctionSpec(phases, name=f"rand{seed}")
