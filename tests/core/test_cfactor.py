"""Tests for complexity-factor-based DC assignment (Fig. 7)."""

import numpy as np
import pytest

from repro.core.cfactor import (
    DEFAULT_THRESHOLD,
    THRESHOLD_RANGE,
    cfactor_assignment,
    cfactor_selected_minterms,
)
from repro.core.complexity import local_complexity_factor
from repro.core.ranking import ranking_assignment
from repro.core.reliability import error_rate, exact_error_bounds
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON

from .conftest import random_spec


class TestSelection:
    def test_threshold_zero_selects_nothing(self):
        spec = random_spec(1, num_inputs=6, dc_fraction=0.5)
        assert len(cfactor_assignment(spec, threshold=0.0)) == 0

    def test_threshold_one_selects_everything(self):
        """LC^f < 1 except in fully uniform 2-balls."""
        spec = random_spec(2, num_inputs=6, num_outputs=1, dc_fraction=0.5)
        selected = cfactor_selected_minterms(spec, 0, 1.0)
        phases = spec.output_phases(0)
        lcf = local_complexity_factor(phases)
        expected = np.flatnonzero((phases == DC) & (lcf < 1.0))
        np.testing.assert_array_equal(selected, expected)

    def test_selection_respects_threshold(self):
        spec = random_spec(3, num_inputs=6, num_outputs=1, dc_fraction=0.5)
        threshold = 0.55
        lcf = local_complexity_factor(spec.output_phases(0))
        for m in cfactor_selected_minterms(spec, 0, threshold):
            assert lcf[m] < threshold

    def test_only_dc_minterms_selected(self):
        spec = random_spec(4, num_inputs=6, num_outputs=1, dc_fraction=0.3)
        dc = set(spec.dc_set(0).tolist())
        assignment = cfactor_assignment(spec, 0.9)
        assert all(m in dc for (_, m) in assignment)

    def test_threshold_validation(self):
        spec = random_spec(5, num_inputs=4)
        with pytest.raises(ValueError, match="threshold"):
            cfactor_assignment(spec, threshold=1.5)


class TestAssignmentSemantics:
    def test_majority_phase_decisions(self):
        spec = random_spec(6, num_inputs=6, num_outputs=1, dc_fraction=0.5)
        from repro.core.hamming import neighbor_phase_counts

        on_nb, off_nb, _ = neighbor_phase_counts(spec.output_phases(0))
        assignment = cfactor_assignment(spec, threshold=0.8)
        for (_, m), value in assignment.items():
            if on_nb[m] > off_nb[m]:
                assert value == ON
            else:
                assert value == OFF  # ties go to the off-set, per Fig. 7

    def test_monotone_in_threshold(self):
        """Raising the threshold can only select more minterms."""
        spec = random_spec(7, num_inputs=7, num_outputs=2, dc_fraction=0.6)
        previous: set = set()
        for threshold in (0.3, 0.45, 0.55, 0.65, 0.8):
            current = set(cfactor_assignment(spec, threshold).decisions)
            assert previous <= current
            previous = current

    def test_partial_error_rate_within_bounds(self):
        spec = random_spec(8, num_inputs=7, num_outputs=2, dc_fraction=0.6)
        assigned = cfactor_assignment(spec, DEFAULT_THRESHOLD).apply(spec)
        rate = error_rate(assigned, spec=spec)
        bounds = exact_error_bounds(spec)
        # Partial majority-phase assignment stays at or below the spec's
        # achievable maximum and above the base-error floor.
        assert rate <= bounds.hi + 1e-12

    def test_defers_on_high_complexity_functions(self):
        """On a near-constant (very high C^f) function, most DC minterms sit
        in uniform neighbourhoods, so a mid-range threshold selects little —
        the random3/t4 behaviour of Table 2."""
        phases = np.full((1, 256), ON, dtype=np.uint8)
        phases[0, :24] = DC  # a DC cluster in an otherwise constant function
        spec = FunctionSpec(phases)
        assignment = cfactor_assignment(spec, threshold=0.55)
        assert len(assignment) < 24  # defers at least the interior minterms

    def test_threshold_range_constant(self):
        lo, hi = THRESHOLD_RANGE
        assert lo == pytest.approx(0.45)
        assert hi == pytest.approx(0.65)
        assert lo <= DEFAULT_THRESHOLD <= hi


class TestAgainstRanking:
    def test_same_fraction_comparison_hookup(self):
        """Table 2 compares LC^f-based and ranking-based at equal fractions."""
        spec = random_spec(9, num_inputs=7, num_outputs=1, dc_fraction=0.6)
        cf = cfactor_assignment(spec, DEFAULT_THRESHOLD)
        fraction = cf.fraction_of(spec)
        ranked = ranking_assignment(spec, min(1.0, fraction))
        # Both produce valid partial assignments of comparable size.
        assert abs(len(ranked) - len(cf)) <= max(10, 0.5 * max(len(cf), 1))
