"""Tests for ranking-based DC assignment (Fig. 3), incl. the Fig. 1 example."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranking import complete_assignment, rank_dc_minterms, ranking_assignment
from repro.core.reliability import error_rate, exact_error_bounds
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON

from .conftest import random_spec


class TestMotivatingExample:
    """The Sec. 2.1 walk-through, reconstructed as a concrete function."""

    def test_ranking_order_and_phases(self, motivating_spec):
        ranked = rank_dc_minterms(motivating_spec, 0)
        assert [(m, phase) for m, _, phase in ranked] == [(0, ON), (8, OFF)]

    def test_ambiguous_minterm_left_out(self, motivating_spec):
        ranked = rank_dc_minterms(motivating_spec, 0)
        assert 5 not in {m for m, _, _ in ranked}

    def test_full_fraction_assigns_both(self, motivating_spec):
        assignment = ranking_assignment(motivating_spec, 1.0)
        assert assignment.decisions == {(0, 0): ON, (0, 8): OFF}

    def test_half_fraction_assigns_first(self, motivating_spec):
        assignment = ranking_assignment(motivating_spec, 0.5)
        assert assignment.decisions == {(0, 0): ON}

    def test_zero_fraction_assigns_nothing(self, motivating_spec):
        assert len(ranking_assignment(motivating_spec, 0.0)) == 0

    def test_assignment_masks_errors(self, motivating_spec):
        """Reliability assignment of x1, x2 masks 2+2 of the border errors."""
        reliability = ranking_assignment(motivating_spec, 1.0).apply(motivating_spec)
        # Adversarial assignment: both minterms to the minority phase.
        from repro.core.assignment import Assignment

        adversarial = Assignment({(0, 0): OFF, (0, 8): ON}).apply(motivating_spec)
        good = error_rate(reliability, spec=motivating_spec)
        bad = error_rate(adversarial, spec=motivating_spec)
        assert good < bad


class TestRankingProperties:
    def test_fraction_out_of_range(self, motivating_spec):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            ranking_assignment(motivating_spec, 1.5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            ranking_assignment(motivating_spec, -0.1)

    def test_weights_sorted_descending(self):
        spec = random_spec(42, num_inputs=6, num_outputs=1, dc_fraction=0.5)
        ranked = rank_dc_minterms(spec, 0)
        weights = [w for _, w, _ in ranked]
        assert weights == sorted(weights, reverse=True)

    def test_only_dc_minterms_ranked(self):
        spec = random_spec(43, num_inputs=5, num_outputs=1, dc_fraction=0.3)
        dc = set(spec.dc_set(0).tolist())
        assert all(m in dc for m, _, _ in rank_dc_minterms(spec, 0))

    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_assignments_nest_with_fraction(self, seed):
        """A larger fraction extends (never contradicts) a smaller one."""
        spec = random_spec(seed, num_inputs=5, num_outputs=1, dc_fraction=0.5)
        small = ranking_assignment(spec, 0.3).decisions
        large = ranking_assignment(spec, 0.9).decisions
        assert set(small) <= set(large)
        assert all(large[key] == value for key, value in small.items())

    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_spec_error_monotone_in_fraction(self, seed):
        """Assigning more DCs for reliability only adds minority-side events,
        so the spec-level error floor grows monotonically with fraction."""
        from repro.core.reliability import spec_error_rate

        spec = random_spec(seed, num_inputs=5, num_outputs=1, dc_fraction=0.5)
        rates = []
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            assigned = ranking_assignment(spec, fraction).apply(spec)
            rates.append(error_rate(assigned, spec=spec))
        assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))


class TestCompleteAssignment:
    def test_covers_every_dc(self):
        spec = random_spec(44, num_inputs=5, num_outputs=2, dc_fraction=0.4)
        full = complete_assignment(spec).apply(spec)
        assert full.is_fully_specified

    def test_achieves_exact_minimum(self):
        spec = random_spec(45, num_inputs=6, num_outputs=3, dc_fraction=0.6)
        full = complete_assignment(spec).apply(spec)
        assert error_rate(full, spec=spec) == pytest.approx(
            exact_error_bounds(spec).lo
        )

    def test_ranking_decisions_are_optimal(self):
        """Every ranking decision agrees with the error-minimising complete
        assignment (majority phase w.r.t. the original care neighbours), so
        ranking never closes off the exact minimum."""
        spec = random_spec(46, num_inputs=6, num_outputs=1, dc_fraction=0.5)
        ranked = ranking_assignment(spec, 1.0).decisions
        optimal = complete_assignment(spec).decisions
        assert set(ranked) <= set(optimal)
        assert all(optimal[key] == value for key, value in ranked.items())

    def test_partial_spec_rate_is_a_floor(self):
        """Unassigned (ambiguous) DCs mask at spec level, so the partially
        assigned spec measures at or below any full completion."""
        spec = random_spec(46, num_inputs=6, num_outputs=1, dc_fraction=0.5)
        ranked = ranking_assignment(spec, 1.0).apply(spec)
        complete = complete_assignment(spec).apply(spec)
        assert error_rate(ranked, spec=spec) <= error_rate(complete, spec=spec) + 1e-12
