"""Tests for PLA parsing and writing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.pla import PlaError, parse_pla, read_pla, spec_to_pla, write_pla

SIMPLE_FD = """\
# a comment
.i 3
.o 2
.ilb a b c
.ob f g
.type fd
.p 3
01- 1-
111 01
000 -0
.e
"""


class TestParser:
    def test_fd_semantics(self):
        spec = parse_pla(SIMPLE_FD)
        assert spec.num_inputs == 3
        assert spec.num_outputs == 2
        assert spec.input_names == ("a", "b", "c")
        # cube 01- covers minterms with a=0,b=1: indices 0b010=2 and 0b110=6.
        assert spec.phases[0, 2] == ON and spec.phases[0, 6] == ON
        assert spec.phases[1, 2] == DC and spec.phases[1, 6] == DC
        assert spec.phases[0, 7] == OFF  # 111 -> 01: no info for f under fd
        assert spec.phases[1, 7] == ON
        assert spec.phases[0, 0] == DC  # 000 -0
        assert spec.phases[1, 0] == OFF

    def test_input_cube_expansion(self):
        spec = parse_pla(".i 2\n.o 1\n-- 1\n.e\n")
        assert list(spec.on_set(0)) == [0, 1, 2, 3]

    def test_f_type_ignores_dash_outputs(self):
        spec = parse_pla(".i 2\n.o 1\n.type f\n11 1\n00 1\n")
        assert list(spec.on_set(0)) == [0, 3]
        assert spec.is_fully_specified

    def test_fr_type(self):
        spec = parse_pla(".i 2\n.o 1\n.type fr\n11 1\n00 0\n")
        assert spec.phases[0, 3] == ON
        assert spec.phases[0, 0] == OFF
        assert spec.phases[0, 1] == DC
        assert spec.phases[0, 2] == DC

    def test_fr_conflict(self):
        with pytest.raises(PlaError, match="both"):
            parse_pla(".i 2\n.o 1\n.type fr\n11 1\n11 0\n")

    def test_fdr_requires_cover(self):
        with pytest.raises(PlaError, match="not covered"):
            parse_pla(".i 2\n.o 1\n.type fdr\n11 1\n00 0\n")

    def test_missing_io(self):
        with pytest.raises(PlaError, match="missing"):
            parse_pla("11 1\n")
        with pytest.raises(PlaError, match="before .i"):
            parse_pla("111\n.i 2\n.o 1\n")

    def test_bad_width(self):
        with pytest.raises(PlaError, match="wrong width"):
            parse_pla(".i 3\n.o 1\n11 1\n")

    def test_bad_characters(self):
        with pytest.raises(PlaError, match="bad input"):
            parse_pla(".i 2\n.o 1\nx1 1\n")
        with pytest.raises(PlaError, match="bad output"):
            parse_pla(".i 2\n.o 1\n11 x\n")

    def test_unknown_type(self):
        with pytest.raises(PlaError, match="unsupported .type"):
            parse_pla(".i 2\n.o 1\n.type q\n")

    def test_joined_planes(self):
        spec = parse_pla(".i 2\n.o 1\n111\n.e\n")
        assert list(spec.on_set(0)) == [3]


class TestWriter:
    def test_round_trip(self):
        spec = parse_pla(SIMPLE_FD, name="demo")
        again = parse_pla(spec_to_pla(spec), name="demo")
        assert again == spec
        assert again.input_names == spec.input_names

    def test_file_round_trip(self, tmp_path):
        spec = parse_pla(SIMPLE_FD)
        path = tmp_path / "demo.pla"
        write_pla(spec, path)
        assert read_pla(path) == spec
        assert read_pla(path).name == "demo"

    @given(st.integers(0, 10**9))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_random(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        m = int(rng.integers(1, 4))
        phases = rng.integers(0, 3, size=(m, 1 << n)).astype(np.uint8)
        spec = FunctionSpec(phases)
        assert parse_pla(spec_to_pla(spec)) == spec
