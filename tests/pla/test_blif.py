"""Tests for BLIF network I/O."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.espresso.cube import Cover
from repro.pla.blif import (
    BlifError,
    network_to_blif,
    parse_blif,
    read_blif,
    write_blif,
)
from repro.synth.network import LogicNetwork

SIMPLE = """\
# a two-node network
.model demo
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
"""


class TestParser:
    def test_simple_network(self):
        net = parse_blif(SIMPLE)
        assert net.primary_inputs == ["a", "b", "c"]
        assert set(net.outputs) == {"y"}
        idx = np.arange(8)
        expected = (((idx & 1) & ((idx >> 1) & 1)) | ((idx >> 2) & 1)).astype(bool)
        np.testing.assert_array_equal(net.output_table()[0], expected)

    def test_forward_references(self):
        """.names blocks may appear in any order."""
        text = """\
.inputs a b
.outputs y
.names t a y
11 1
.names a b t
11 1
.end
"""
        net = parse_blif(text)
        assert "t" in net.nodes

    def test_off_set_block_complemented(self):
        """Output column 0 describes the off-set (SIS convention)."""
        text = ".inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
        net = parse_blif(text)
        np.testing.assert_array_equal(
            net.output_table()[0], [True, True, True, False]
        )

    def test_constant_nodes(self):
        text = ".inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end\n"
        net = parse_blif(text)
        table = net.output_table()
        assert table[0].all()
        assert not table[1].any()

    def test_line_continuation(self):
        text = ".inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n"
        net = parse_blif(text)
        assert net.primary_inputs == ["a", "b"]

    def test_errors(self):
        with pytest.raises(BlifError, match="unsupported construct"):
            parse_blif(".inputs a\n.latch a b\n.end\n")
        with pytest.raises(BlifError, match="wrong width"):
            parse_blif(".inputs a b\n.outputs y\n.names a y\n11 1\n.end\n")
        with pytest.raises(BlifError, match="mixed"):
            parse_blif(".inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n")
        with pytest.raises(BlifError, match="undefined or cyclic"):
            parse_blif(".inputs a\n.outputs y\n.names zzz y\n1 1\n.end\n")
        with pytest.raises(BlifError, match="outside"):
            parse_blif(".inputs a\n11 1\n.end\n")


class TestWriter:
    def test_round_trip_simple(self):
        net = parse_blif(SIMPLE)
        again = parse_blif(network_to_blif(net))
        np.testing.assert_array_equal(again.output_table(), net.output_table())

    def test_file_round_trip(self, tmp_path):
        net = parse_blif(SIMPLE)
        path = tmp_path / "demo.blif"
        write_blif(net, path, model="demo")
        again = read_blif(path)
        np.testing.assert_array_equal(again.output_table(), net.output_table())
        assert ".model demo" in path.read_text()

    def test_buffer_for_renamed_output(self):
        net = LogicNetwork(["a", "b"])
        net.add_node("t", ["a", "b"], Cover.from_strings(["11"]))
        net.set_output("y", "t")
        text = network_to_blif(net)
        again = parse_blif(text)
        np.testing.assert_array_equal(again.output_table(), net.output_table())

    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_random(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        names = [f"x{i}" for i in range(n)]
        net = LogicNetwork(names)
        for t in range(int(rng.integers(1, 4))):
            k = int(rng.integers(1, 5))
            rows = rng.choice([0, 1, 2], size=(k, n), p=[0.3, 0.3, 0.4]).astype(np.uint8)
            net.add_node(f"t{t}", names, Cover(rows, n))
            net.set_output(f"y{t}", f"t{t}")
        again = parse_blif(network_to_blif(net))
        np.testing.assert_array_equal(again.output_table(), net.output_table())
        assert list(again.outputs) == list(net.outputs)
