"""Tests for cubes and covers."""

import numpy as np
import pytest

from repro.espresso.cube import (
    FREE,
    V0,
    V1,
    Cover,
    cube_contains,
    cube_intersection,
    cube_string,
    cubes_intersect,
    supercube,
)


def cube(text: str) -> np.ndarray:
    return Cover.from_strings([text]).cubes[0]


class TestCubeOps:
    def test_cube_string_round_trip(self):
        assert cube_string(cube("01-")) == "01-"

    def test_containment(self):
        assert cube_contains(cube("-1-"), cube("01-"))
        assert cube_contains(cube("01-"), cube("011"))
        assert not cube_contains(cube("01-"), cube("-1-"))
        assert cube_contains(cube("---"), cube("000"))

    def test_intersection(self):
        result = cube_intersection(cube("0--"), cube("-1-"))
        assert cube_string(result) == "01-"
        assert cube_intersection(cube("0--"), cube("1--")) is None

    def test_intersects(self):
        assert cubes_intersect(cube("0--"), cube("--1"))
        assert not cubes_intersect(cube("01-"), cube("00-"))

    def test_supercube(self):
        cubes = Cover.from_strings(["001", "011"]).cubes
        assert cube_string(supercube(cubes)) == "0-1"
        assert cube_string(supercube(Cover.from_strings(["111"]).cubes)) == "111"

    def test_supercube_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            supercube(np.empty((0, 3), dtype=np.uint8))


class TestCoverConstruction:
    def test_empty_and_universe(self):
        empty = Cover.empty(4)
        universe = Cover.universe(4)
        assert empty.num_cubes == 0
        assert not empty
        assert universe.num_cubes == 1
        assert universe.evaluate().all()

    def test_from_minterms(self):
        cover = Cover.from_minterms(3, [0, 5])
        assert cover.cube_strings() == ["000", "101"]

    def test_from_strings_validation(self):
        with pytest.raises(ValueError, match="width"):
            Cover.from_strings(["01", "011"])
        with pytest.raises(ValueError, match="at least one"):
            Cover.from_strings([])

    def test_bad_codes_rejected(self):
        with pytest.raises(ValueError, match="literal code"):
            Cover(np.full((1, 2), 7, dtype=np.uint8), 2)


class TestCoverQueries:
    def test_cost(self):
        cover = Cover.from_strings(["01-", "1--"])
        assert cover.num_cubes == 2
        assert cover.num_literals == 3
        assert cover.cost() == (2, 3)

    def test_evaluate(self):
        cover = Cover.from_strings(["1--"])  # x0
        table = cover.evaluate()
        idx = np.arange(8)
        np.testing.assert_array_equal(table, (idx & 1) == 1)

    def test_covers_minterm(self):
        cover = Cover.from_strings(["01-"])
        assert cover.covers_minterm(0b010)
        assert cover.covers_minterm(0b110)
        assert not cover.covers_minterm(0b011)

    def test_minterms(self):
        cover = Cover.from_strings(["01-"])
        assert list(cover.minterms()) == [0b010, 0b110]


class TestCoverOps:
    def test_union(self):
        a = Cover.from_strings(["000"])
        b = Cover.from_strings(["111"])
        assert a.union(b).num_cubes == 2

    def test_union_width_mismatch(self):
        with pytest.raises(ValueError, match="different input counts"):
            Cover.empty(2).union(Cover.empty(3))

    def test_cofactor(self):
        cover = Cover.from_strings(["01-", "1-1", "00-"])
        c = cube("0--")
        result = cover.cofactor(c)
        assert result.cube_strings() == ["-1-", "-0-"]

    def test_var_cofactor(self):
        cover = Cover.from_strings(["1-1"])
        assert cover.var_cofactor(0, V1).cube_strings() == ["--1"]
        assert cover.var_cofactor(0, V0).num_cubes == 0

    def test_single_cube_containment(self):
        cover = Cover.from_strings(["011", "01-", "01-"])
        result = cover.single_cube_containment()
        assert result.cube_strings() == ["01-"]

    def test_without_cube(self):
        cover = Cover.from_strings(["000", "111"])
        assert cover.without_cube(0).cube_strings() == ["111"]
