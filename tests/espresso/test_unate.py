"""Property tests for tautology and complement via the URP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.espresso.cube import Cover
from repro.espresso.unate import (
    complement,
    cover_contains_cube,
    covers_cover,
    is_tautology,
)


def random_cover(rng: np.random.Generator, num_inputs: int, num_cubes: int) -> Cover:
    cubes = rng.choice(
        np.array([0, 1, 2], dtype=np.uint8),
        size=(num_cubes, num_inputs),
        p=[0.25, 0.25, 0.5],
    )
    return Cover(cubes, num_inputs)


class TestTautology:
    def test_empty_cover(self):
        assert not is_tautology(Cover.empty(3))

    def test_universe(self):
        assert is_tautology(Cover.universe(3))

    def test_x_plus_not_x(self):
        assert is_tautology(Cover.from_strings(["1--", "0--"]))

    def test_single_literal_not_tautology(self):
        assert not is_tautology(Cover.from_strings(["1--"]))

    def test_all_minterms(self):
        cover = Cover.from_minterms(3, range(8))
        assert is_tautology(cover)
        assert not is_tautology(Cover.from_minterms(3, range(7)))

    @given(st.integers(0, 10**9))
    @settings(max_examples=60, deadline=None)
    def test_matches_dense_evaluation(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 10))
        k = int(rng.integers(1, 24))
        cover = random_cover(rng, n, k)
        assert is_tautology(cover) == bool(cover.evaluate().all())


class TestComplement:
    def test_empty(self):
        comp = complement(Cover.empty(3))
        assert comp.evaluate().all()

    def test_universe(self):
        comp = complement(Cover.universe(3))
        assert not comp.evaluate().any()

    def test_single_cube(self):
        comp = complement(Cover.from_strings(["01-"]))
        expected = ~Cover.from_strings(["01-"]).evaluate()
        np.testing.assert_array_equal(comp.evaluate(), expected)

    @given(st.integers(0, 10**9))
    @settings(max_examples=60, deadline=None)
    def test_complement_is_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 10))
        k = int(rng.integers(0, 20))
        cover = random_cover(rng, n, k)
        comp = complement(cover)
        np.testing.assert_array_equal(comp.evaluate(), ~cover.evaluate())

    @given(st.integers(0, 10**9))
    @settings(max_examples=25, deadline=None)
    def test_double_complement_is_identity(self, seed):
        rng = np.random.default_rng(seed)
        cover = random_cover(rng, 7, 10)
        twice = complement(complement(cover))
        np.testing.assert_array_equal(twice.evaluate(), cover.evaluate())


class TestContainment:
    def test_cover_contains_cube(self):
        cover = Cover.from_strings(["1--", "01-"])
        assert cover_contains_cube(cover, Cover.from_strings(["11-"]).cubes[0])
        assert cover_contains_cube(cover, Cover.from_strings(["01-"]).cubes[0])
        assert not cover_contains_cube(cover, Cover.from_strings(["0--"]).cubes[0])

    def test_covers_cover(self):
        big = Cover.from_strings(["1--", "0--"])
        small = Cover.from_strings(["-01", "11-"])
        assert covers_cover(big, small)
        assert not covers_cover(small, big)

    @given(st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_containment_matches_dense(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 8))
        cover = random_cover(rng, n, int(rng.integers(1, 10)))
        probe = random_cover(rng, n, 1)
        dense = bool(np.all(cover.evaluate()[probe.evaluate()]))
        assert cover_contains_cube(cover, probe.cubes[0]) == dense
