"""Tests for multi-output exact minimisation (shared AND plane)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.espresso.minimize import minimize_spec
from repro.espresso.multi import minimize_multi_output


class TestSharing:
    def test_identical_outputs_share_rows(self):
        """Two identical outputs need no more rows than one."""
        spec = FunctionSpec.from_sets(3, on_sets=[[3, 7], [3, 7]])
        result = minimize_multi_output(spec)
        assert result.proven_optimal
        assert result.num_product_terms == 1  # cube 11- tagged to both
        assert result.implements(spec)

    def test_textbook_sharing(self):
        """f0 = ab, f1 = ab + c: the ab row is shared."""
        idx = np.arange(8)
        f0 = ((idx & 1) & ((idx >> 1) & 1)).astype(bool)
        f1 = f0 | ((idx >> 2) & 1).astype(bool)
        spec = FunctionSpec.from_truth_table(np.vstack([f0, f1]))
        result = minimize_multi_output(spec)
        assert result.proven_optimal
        assert result.num_product_terms == 2
        assert result.implements(spec)

    def test_sharing_beats_independent(self):
        """A function engineered so the shared cover needs fewer distinct
        rows than the per-output minima summed."""
        rng = np.random.default_rng(3)
        base = rng.random(16) < 0.4
        spec = FunctionSpec.from_truth_table(np.vstack([base, base, base]))
        shared = minimize_multi_output(spec)
        independent = minimize_spec(spec)
        assert shared.num_product_terms <= independent.total_cubes
        assert shared.num_product_terms * 3 >= independent.total_cubes

    def test_dc_exploited(self):
        spec = FunctionSpec.from_sets(
            2, on_sets=[[3], [3]], dc_sets=[[1, 2], [2]]
        )
        result = minimize_multi_output(spec)
        assert result.implements(spec)
        assert result.num_product_terms == 1


class TestEdgeCases:
    def test_constant_zero_outputs(self):
        spec = FunctionSpec.from_sets(2, on_sets=[[], []])
        result = minimize_multi_output(spec)
        assert result.num_product_terms == 0
        assert result.implements(spec)

    def test_too_many_outputs_rejected(self):
        spec = FunctionSpec(np.zeros((11, 4), dtype=np.uint8))
        with pytest.raises(ValueError, match="outputs exceeds"):
            minimize_multi_output(spec)

    def test_single_output_matches_qm(self):
        from repro.espresso.qm import quine_mccluskey

        rng = np.random.default_rng(5)
        table = rng.random(16) < 0.5
        spec = FunctionSpec.from_truth_table(table[None, :])
        multi = minimize_multi_output(spec)
        exact, optimal = quine_mccluskey(4, np.flatnonzero(table))
        assert optimal and multi.proven_optimal
        assert multi.num_product_terms == exact.num_cubes


class TestRandomCorrectness:
    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_implements_spec(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        m = int(rng.integers(1, 4))
        phases = rng.choice(
            np.array([OFF, ON, DC], dtype=np.uint8), size=(m, 1 << n),
            p=[0.4, 0.35, 0.25],
        )
        spec = FunctionSpec(phases)
        result = minimize_multi_output(spec)
        assert result.implements(spec)

    @given(st.integers(0, 10**9))
    @settings(max_examples=15, deadline=None)
    def test_never_more_rows_than_independent(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        m = int(rng.integers(2, 4))
        phases = rng.choice(
            np.array([OFF, ON], dtype=np.uint8), size=(m, 1 << n), p=[0.6, 0.4]
        )
        spec = FunctionSpec(phases)
        shared = minimize_multi_output(spec)
        independent = minimize_spec(spec)
        if shared.proven_optimal:
            assert shared.num_product_terms <= independent.total_cubes
