"""Correctness and quality tests for EXPAND/IRREDUNDANT/REDUCE/ESPRESSO."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.espresso.cube import FREE, Cover
from repro.espresso.expand import expand
from repro.espresso.irredundant import irredundant
from repro.espresso.minimize import espresso, minimize_spec
from repro.espresso.reduce_ import reduce_cover
from repro.espresso.unate import complement, covers_cover, is_tautology


def random_function(seed: int, num_inputs: int, dc_fraction: float = 0.3):
    """Random (on, dc, off) covers plus dense masks for checking."""
    rng = np.random.default_rng(seed)
    care = (1.0 - dc_fraction) / 2.0
    phases = rng.choice(
        np.array([OFF, ON, DC], dtype=np.uint8),
        size=1 << num_inputs,
        p=[care, care, dc_fraction],
    )
    on = Cover.from_minterms(num_inputs, np.flatnonzero(phases == ON))
    dc = Cover.from_minterms(num_inputs, np.flatnonzero(phases == DC))
    return phases, on, dc


def check_valid(phases: np.ndarray, cover: Cover) -> None:
    """cover must include the on-set and exclude the off-set."""
    table = cover.evaluate()
    assert bool(np.all(table[phases == ON])), "cover misses on-set minterms"
    assert not bool(np.any(table[phases == OFF])), "cover hits off-set minterms"


class TestExpand:
    def test_expands_to_primes(self):
        """f = on {11}, dc {01}: single prime -1 (x1)."""
        on = Cover.from_minterms(2, [3])
        dc = Cover.from_minterms(2, [1])
        off = complement(on.union(dc))
        result = expand(on, off)
        assert result.cube_strings() == ["1-"]

    def test_drops_covered_cubes(self):
        on = Cover.from_minterms(2, [0, 1, 2, 3])
        off = Cover.empty(2)
        result = expand(on, off)
        assert result.num_cubes == 1
        assert result.cube_strings() == ["--"]

    def test_inconsistent_cover_rejected(self):
        on = Cover.from_minterms(2, [3])
        off = Cover.from_minterms(2, [3])
        with pytest.raises(ValueError, match="inconsistent"):
            expand(on, off)

    @given(st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_result_is_prime_and_valid(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        phases, on, dc = random_function(seed, n)
        if on.num_cubes == 0:
            return
        off = complement(on.union(dc))
        result = expand(on, off)
        check_valid(phases, result)
        # Primality: raising any literal of any cube must hit the off-set.
        off_table = off.evaluate()
        for cube in result.cubes:
            for j in range(n):
                if cube[j] == FREE:
                    continue
                raised = cube.copy()
                raised[j] = FREE
                raised_cover = Cover(raised.reshape(1, -1), n)
                assert bool(np.any(off_table & raised_cover.evaluate()))


class TestIrredundant:
    def test_removes_redundant_cube(self):
        cover = Cover.from_strings(["1--", "0--", "-1-"])
        result = irredundant(cover, Cover.empty(3))
        assert result.num_cubes == 2

    def test_keeps_needed_cubes(self):
        cover = Cover.from_strings(["1--", "0-1"])
        result = irredundant(cover, Cover.empty(3))
        assert result.num_cubes == 2

    def test_uses_dont_cares(self):
        """A cube fully inside the DC set is redundant."""
        cover = Cover.from_strings(["11-", "00-"])
        dc = Cover.from_strings(["00-"])
        result = irredundant(cover, dc)
        assert result.cube_strings() == ["11-"]

    @given(st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_preserves_function_within_dc(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        phases, on, dc = random_function(seed, n)
        if on.num_cubes == 0:
            return
        result = irredundant(on, dc)
        # Every on-minterm still covered (possibly via DC), off never hit.
        table = result.evaluate()
        dc_table = dc.evaluate()
        assert bool(np.all(table[phases == ON] | dc_table[phases == ON]))
        # irredundant only removes cubes, so off-set can't become covered.
        assert not bool(np.any(table[phases == OFF]))


class TestReduce:
    def test_shrinks_overlapping_cubes(self):
        """Cover {1-, -1} of OR: reduce shrinks the second cube to 01."""
        cover = Cover.from_strings(["1-", "-1"])
        result = reduce_cover(cover, Cover.empty(2))
        table = result.evaluate()
        expected = Cover.from_strings(["1-", "-1"]).evaluate()
        np.testing.assert_array_equal(table, expected)
        assert result.num_literals > cover.num_literals  # actually reduced

    @given(st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_preserves_cover_validity(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        phases, on, dc = random_function(seed, n)
        if on.num_cubes == 0:
            return
        result = reduce_cover(on, dc)
        check_valid(phases, result)


class TestEspresso:
    def test_classic_example(self):
        """f = sum m(0,1,2,5,6,7) on 3 inputs: minimal SOP has 3 cubes."""
        on = Cover.from_minterms(3, [0, 1, 2, 5, 6, 7])
        result = espresso(on)
        assert result.num_cubes == 3
        table = result.evaluate()
        np.testing.assert_array_equal(
            table, Cover.from_minterms(3, [0, 1, 2, 5, 6, 7]).evaluate()
        )

    def test_dc_enables_smaller_cover(self):
        """on {3}, dc {1, 2}: espresso can cover with fewer literals."""
        on = Cover.from_minterms(2, [3])
        dc = Cover.from_minterms(2, [1, 2])
        result = espresso(on, dc)
        assert result.num_cubes == 1
        assert result.num_literals == 1

    def test_empty_on_set(self):
        result = espresso(Cover.empty(3), Cover.universe(3))
        assert result.num_cubes == 0

    def test_tautology_function(self):
        result = espresso(Cover.from_minterms(2, [0, 1, 2, 3]))
        assert result.cube_strings() == ["--"]

    @given(st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_valid_on_random_functions(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 8))
        phases, on, dc = random_function(seed, n, dc_fraction=0.4)
        if on.num_cubes == 0:
            return
        result = espresso(on, dc)
        check_valid(phases, result)

    @given(st.integers(0, 10**9))
    @settings(max_examples=25, deadline=None)
    def test_no_worse_than_input(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        phases, on, dc = random_function(seed, n)
        if on.num_cubes == 0:
            return
        result = espresso(on, dc)
        assert result.num_cubes <= on.num_cubes


class TestMinimizeSpec:
    def test_multi_output(self):
        spec = FunctionSpec.from_sets(
            3, on_sets=[[3, 7], [0]], dc_sets=[[1, 2], [4]]
        )
        minimized = minimize_spec(spec)
        assert len(minimized.covers) == 2
        completed = minimized.completed_spec()
        assert completed.is_fully_specified
        assert spec.equivalent_within_dc(completed)

    def test_completed_spec_self_check(self):
        spec = FunctionSpec.from_sets(2, on_sets=[[0, 3]])
        minimized = minimize_spec(spec)
        completed = minimized.completed_spec()
        np.testing.assert_array_equal(completed.phases, spec.phases)

    def test_totals(self):
        spec = FunctionSpec.from_sets(3, on_sets=[[3, 7], [0]])
        minimized = minimize_spec(spec)
        assert minimized.total_cubes == sum(c.num_cubes for c in minimized.covers)
        assert minimized.total_literals == sum(c.num_literals for c in minimized.covers)
