"""Randomized equivalence tests for the bit-parallel packed kernels.

Every packed kernel is checked against a straightforward dense reference
implementation (the pre-packing per-literal loops) on seeded random covers
across n in 1..10, plus the empty and universe edge cases.
"""

import numpy as np
import pytest

from repro.espresso.cube import (
    FREE,
    Cover,
    cube_contains,
    cube_tables,
    cubes_intersect,
    pack_cubes,
    unpack_cubes,
)

# ----------------------------------------------------------------- references


def ref_cube_contains(outer: np.ndarray, inner: np.ndarray) -> bool:
    return bool(np.all((outer == FREE) | (outer == inner)))


def ref_cubes_intersect(a: np.ndarray, b: np.ndarray) -> bool:
    return not bool(np.any((a != FREE) & (b != FREE) & (a != b)))


def ref_evaluate(cover: Cover) -> np.ndarray:
    n = cover.num_inputs
    size = 1 << n
    result = np.zeros(size, dtype=bool)
    idx = np.arange(size, dtype=np.int64)
    for cube in cover.cubes:
        match = np.ones(size, dtype=bool)
        for j in range(n):
            if cube[j] != FREE:
                match &= ((idx >> j) & 1) == cube[j]
        result |= match
    return result


def ref_covers_minterm(cover: Cover, minterm: int) -> bool:
    for cube in cover.cubes:
        hit = True
        for j in range(cover.num_inputs):
            if cube[j] != FREE and int((minterm >> j) & 1) != cube[j]:
                hit = False
                break
        if hit:
            return True
    return False


def ref_cofactor(cover: Cover, cube: np.ndarray) -> Cover:
    if cover.num_cubes == 0:
        return Cover.empty(cover.num_inputs)
    bound = cube != FREE
    conflict = (cover.cubes != FREE) & bound & (cover.cubes != cube)
    keep = ~np.any(conflict, axis=1)
    rows = cover.cubes[keep].copy()
    rows[:, bound] = FREE
    return Cover(rows, cover.num_inputs)


def ref_single_cube_containment(cover: Cover) -> Cover:
    k = cover.num_cubes
    if k <= 1:
        return cover
    cubes = cover.cubes
    contains = np.all(
        (cubes[:, None, :] == FREE) | (cubes[:, None, :] == cubes[None, :, :]),
        axis=2,
    )
    np.fill_diagonal(contains, False)
    keep = np.ones(k, dtype=bool)
    for i in range(k):
        for j in np.flatnonzero(contains[:, i]):
            if not keep[j]:
                continue
            if contains[i, j] and i < j:
                continue
            keep[i] = False
            break
    return Cover(cubes[keep], cover.num_inputs)


def random_cover(rng: np.random.Generator, n: int, k: int) -> Cover:
    cubes = rng.choice(
        np.array([0, 1, 2], dtype=np.uint8), size=(k, n), p=[0.3, 0.3, 0.4]
    )
    return Cover(cubes, n)


# ---------------------------------------------------------------------- tests


@pytest.mark.parametrize("n", range(1, 11))
def test_pack_unpack_roundtrip(n):
    rng = np.random.default_rng(100 + n)
    cover = random_cover(rng, n, 17)
    masks, values = pack_cubes(cover.cubes)
    assert masks.dtype == np.uint64 and values.dtype == np.uint64
    assert np.array_equal(unpack_cubes(masks, values, n), cover.cubes)


@pytest.mark.parametrize("n", range(1, 11))
def test_evaluate_matches_reference(n):
    rng = np.random.default_rng(200 + n)
    for k in (0, 1, 2, 7, 23):
        cover = random_cover(rng, n, k)
        assert np.array_equal(cover.evaluate(), ref_evaluate(cover))


def test_evaluate_empty_and_universe():
    for n in range(1, 11):
        empty = Cover.empty(n)
        assert not empty.evaluate().any()
        assert not empty.covers_minterm(0)
        universe = Cover.universe(n)
        assert universe.evaluate().all()
        assert universe.covers_minterm((1 << n) - 1)


@pytest.mark.parametrize("n", range(1, 11))
def test_covers_minterm_matches_reference(n):
    rng = np.random.default_rng(300 + n)
    cover = random_cover(rng, n, 9)
    for minterm in rng.integers(0, 1 << n, size=32):
        minterm = int(minterm)
        assert cover.covers_minterm(minterm) == ref_covers_minterm(cover, minterm)


@pytest.mark.parametrize("n", range(1, 11))
def test_cube_predicates_match_reference(n):
    rng = np.random.default_rng(400 + n)
    cubes = random_cover(rng, n, 40).cubes
    for _ in range(60):
        a = cubes[rng.integers(len(cubes))]
        b = cubes[rng.integers(len(cubes))]
        assert cube_contains(a, b) == ref_cube_contains(a, b)
        assert cubes_intersect(a, b) == ref_cubes_intersect(a, b)
    free = np.full(n, FREE, dtype=np.uint8)
    assert cube_contains(free, cubes[0])
    assert cubes_intersect(free, cubes[0])


@pytest.mark.parametrize("n", range(1, 11))
def test_cofactor_matches_reference(n):
    rng = np.random.default_rng(500 + n)
    cover = random_cover(rng, n, 13)
    for _ in range(10):
        cube = rng.choice(np.array([0, 1, 2], dtype=np.uint8), size=n, p=[0.25, 0.25, 0.5])
        got = cover.cofactor(cube)
        want = ref_cofactor(cover, cube)
        assert np.array_equal(got.cubes, want.cubes)


@pytest.mark.parametrize("n", range(1, 11))
def test_single_cube_containment_matches_reference(n):
    rng = np.random.default_rng(600 + n)
    for k in (0, 1, 2, 5, 21):
        cover = random_cover(rng, n, k)
        got = cover.single_cube_containment()
        want = ref_single_cube_containment(cover)
        assert np.array_equal(got.cubes, want.cubes)


@pytest.mark.parametrize("n", range(1, 11))
def test_cube_tables_match_per_cube_evaluate(n):
    rng = np.random.default_rng(700 + n)
    cover = random_cover(rng, n, 8)
    tables = cube_tables(cover.cubes, n)
    for i in range(cover.num_cubes):
        single = Cover(cover.cubes[i : i + 1], n)
        assert np.array_equal(tables[i], ref_evaluate(single))


def test_packed_wide_cover_crosses_word_boundary():
    # 70 inputs exercises the multi-word mask/value path.
    n = 70
    rng = np.random.default_rng(42)
    cover = random_cover(rng, n, 12)
    masks, values = pack_cubes(cover.cubes)
    assert masks.shape == (12, 2)
    assert np.array_equal(unpack_cubes(masks, values, n), cover.cubes)
    for _ in range(40):
        a = cover.cubes[rng.integers(12)]
        b = cover.cubes[rng.integers(12)]
        assert cube_contains(a, b) == ref_cube_contains(a, b)
        assert cubes_intersect(a, b) == ref_cubes_intersect(a, b)


# ----------------------------------------------------------- input validation


def test_from_minterms_rejects_out_of_range():
    with pytest.raises(ValueError, match="out of range"):
        Cover.from_minterms(3, [0, 8])
    with pytest.raises(ValueError, match="out of range"):
        Cover.from_minterms(3, [-1])
    cover = Cover.from_minterms(3, [0, 7])
    assert cover.num_cubes == 2


def test_from_strings_rejects_bad_literals():
    with pytest.raises(ValueError, match="invalid literal character"):
        Cover.from_strings(["01x"])
    with pytest.raises(ValueError, match="wrong width"):
        Cover.from_strings(["01", "011"])
    with pytest.raises(ValueError, match="at least one"):
        Cover.from_strings([])
    cover = Cover.from_strings(["01-", "2-1"])
    assert cover.num_cubes == 2
