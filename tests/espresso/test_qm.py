"""Tests for Quine–McCluskey and espresso-vs-exact cross-checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.espresso.cube import Cover
from repro.espresso.minimize import espresso
from repro.espresso.qm import prime_implicants, quine_mccluskey


class TestPrimes:
    def test_textbook_example(self):
        """f = sum m(4,8,10,11,12,15) + d(9,14): classic K-map exercise."""
        primes = prime_implicants(4, [4, 8, 10, 11, 12, 15], [9, 14])
        strings = set(primes.cube_strings())
        # Known primes (input 0 = LSB): m(8..11)+d -> "00-1"? enumerate by table.
        # Verify instead by semantics: every prime covers only on+dc,
        # and every on-minterm is covered by some prime.
        table = primes.evaluate()
        allowed = np.zeros(16, dtype=bool)
        allowed[[4, 8, 10, 11, 12, 15, 9, 14]] = True
        assert not np.any(table & ~allowed)
        for m in [4, 8, 10, 11, 12, 15]:
            assert table[m]
        assert len(strings) == len(primes.cube_strings())  # no duplicates

    def test_empty(self):
        assert prime_implicants(3, []).num_cubes == 0

    def test_full(self):
        primes = prime_implicants(2, [0, 1, 2, 3])
        assert primes.cube_strings() == ["--"]

    @given(st.integers(0, 10**9))
    @settings(max_examples=30, deadline=None)
    def test_primes_are_prime_and_exhaustive(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        size = 1 << n
        on = [m for m in range(size) if rng.random() < 0.35]
        dc = [m for m in range(size) if m not in on and rng.random() < 0.2]
        primes = prime_implicants(n, on, dc)
        allowed = np.zeros(size, dtype=bool)
        allowed[on] = True
        allowed[dc] = True
        table = primes.evaluate()
        assert not np.any(table & ~allowed)
        if on:
            assert bool(np.all(table[on]))


class TestQuineMcCluskey:
    def test_known_minimum(self):
        cover, optimal = quine_mccluskey(3, [0, 1, 2, 5, 6, 7])
        assert optimal
        assert cover.num_cubes == 3

    def test_with_dc(self):
        cover, optimal = quine_mccluskey(2, [3], [1, 2])
        assert optimal
        assert cover.num_cubes == 1
        assert cover.num_literals == 1

    def test_empty_on(self):
        cover, optimal = quine_mccluskey(3, [])
        assert optimal
        assert cover.num_cubes == 0

    def test_greedy_fallback_flag(self):
        cover, optimal = quine_mccluskey(4, list(range(0, 16, 3)), node_limit=1)
        assert not optimal
        table = cover.evaluate()
        assert bool(np.all(table[list(range(0, 16, 3))]))


class TestEspressoVsExact:
    @given(st.integers(0, 10**9))
    @settings(max_examples=25, deadline=None)
    def test_espresso_matches_exact_cube_count_small(self, seed):
        """On <=5-input functions, the heuristic loop should land within one
        cube of the exact minimum (it usually matches)."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 6))
        size = 1 << n
        on = [m for m in range(size) if rng.random() < 0.4]
        dc = [m for m in range(size) if m not in on and rng.random() < 0.2]
        if not on:
            return
        exact, optimal = quine_mccluskey(n, on, dc)
        if not optimal:
            return
        heur = espresso(Cover.from_minterms(n, on), Cover.from_minterms(n, dc))
        assert heur.num_cubes <= exact.num_cubes + 1
