"""Tests for the experiment flows."""

import numpy as np
import pytest

from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.flows.experiment import POLICIES, apply_policy, relative_metrics, run_flow
from repro.flows.report import format_table
from repro.flows.sweep import (
    fraction_sweep,
    table2_row,
    table3_row,
    threshold_sweep,
)


@pytest.fixture(scope="module")
def small_spec() -> FunctionSpec:
    rng = np.random.default_rng(77)
    phases = rng.choice(
        np.array([OFF, ON, DC], dtype=np.uint8), size=(3, 128), p=[0.25, 0.25, 0.5]
    )
    return FunctionSpec(phases, name="small")


class TestApplyPolicy:
    def test_conventional_is_identity(self, small_spec):
        assigned, assignment = apply_policy(small_spec, "conventional")
        assert assigned == small_spec
        assert len(assignment) == 0

    def test_complete_assigns_everything(self, small_spec):
        assigned, assignment = apply_policy(small_spec, "complete")
        assert assigned.is_fully_specified
        assert assignment.fraction_of(small_spec) == pytest.approx(1.0)

    def test_ranking_fraction(self, small_spec):
        half, _ = apply_policy(small_spec, "ranking", fraction=0.5)
        full, _ = apply_policy(small_spec, "ranking", fraction=1.0)
        remaining_half = int(np.count_nonzero(half.phases == DC))
        remaining_full = int(np.count_nonzero(full.phases == DC))
        assert remaining_full < remaining_half

    def test_unknown_policy(self, small_spec):
        with pytest.raises(ValueError, match="unknown policy"):
            apply_policy(small_spec, "mystery")

    def test_policy_roster(self):
        assert POLICIES == ("conventional", "ranking", "cfactor", "complete")


class TestRunFlow:
    def test_complete_reaches_exact_minimum(self, small_spec):
        from repro.core.reliability import exact_error_bounds

        result = run_flow(small_spec, "complete", objective="area")
        assert result.error_rate == pytest.approx(
            exact_error_bounds(small_spec).lo, abs=1e-12
        )

    def test_error_rate_ordering(self, small_spec):
        """Complete <= cfactor/ranking <= within exact bounds."""
        from repro.core.reliability import exact_error_bounds

        bounds = exact_error_bounds(small_spec)
        complete = run_flow(small_spec, "complete", objective="area")
        conventional = run_flow(small_spec, "conventional", objective="area")
        assert complete.error_rate <= conventional.error_rate + 1e-12
        assert bounds.lo - 1e-12 <= conventional.error_rate <= bounds.hi + 1e-12

    def test_fields_populated(self, small_spec):
        result = run_flow(small_spec, "ranking", fraction=0.5, objective="delay")
        assert result.policy == "ranking"
        assert result.parameter == 0.5
        assert result.area > 0
        assert result.delay > 0
        assert result.power > 0
        assert 0 <= result.fraction_assigned <= 1

    def test_relative_metrics(self, small_spec):
        base = run_flow(small_spec, "conventional", objective="area")
        rel = relative_metrics(base, base)
        assert rel["area"] == pytest.approx(1.0)
        assert rel["error_improvement_pct"] == pytest.approx(0.0)


class TestSweeps:
    def test_fraction_sweep_monotone_error(self, small_spec):
        results = fraction_sweep(small_spec, [0.0, 0.5, 1.0], objective="area")
        rates = [r.error_rate for r in results]
        # More reliability assignment should not increase the error rate
        # beyond minimiser noise.
        assert rates[-1] <= rates[0] + 0.02

    def test_threshold_sweep_fraction_monotone(self, small_spec):
        results = threshold_sweep(small_spec, [0.3, 0.6, 0.9], objective="area")
        fractions = [r.fraction_assigned for r in results]
        assert fractions == sorted(fractions)

    def test_table2_row(self, small_spec):
        row = table2_row(small_spec)
        assert row.benchmark == "small"
        # Complete assignment is the reliability ceiling.
        assert row.complete_error >= row.lcf_error - 5.0

    def test_table3_row(self, small_spec):
        row = table3_row(small_spec)
        assert row.exact.lo <= row.conventional_rate + 1e-9
        assert row.conventional_diff_pct >= -1e-9
        assert row.lcf_rate <= row.conventional_rate + 0.02
        assert row.gates > 0


class TestSampledErrorRate:
    def test_inverter_chain_always_propagates(self):
        from repro.flows.experiment import sampled_error_rate
        from repro.synth.library import generic_70nm_library
        from repro.synth.netlist import GateInstance, MappedNetlist

        lib = generic_70nm_library()
        netlist = MappedNetlist(lib, ["a"])
        inv = lib.cell("INV_X1")
        netlist.gates.append(GateInstance(inv, "n0", ["a"]))
        netlist.gates.append(GateInstance(inv, "n1", ["n0"]))
        netlist.outputs["y"] = "n1"
        estimate = sampled_error_rate(netlist, samples=500)
        # The only pin is the single input of a buffer: every flip shows.
        assert estimate.rate == pytest.approx(1.0)
        assert estimate.samples == 500

    def test_matches_exhaustive_on_synthesised_circuit(self, small_spec):
        from repro.flows.experiment import sampled_error_rate
        from repro.synth.compile_ import compile_spec

        result = compile_spec(small_spec, objective="area")
        netlist = result.netlist
        estimate = sampled_error_rate(
            netlist, samples=30_000, rng=np.random.default_rng(21)
        )
        # An unfiltered sampled rate over the uniform input distribution
        # must sit near the per-pin average propagation probability; the
        # synthesised netlist is small enough that the estimate is tight.
        lo, hi = estimate.confidence_interval(z=5.0)
        assert 0.0 <= lo <= hi <= 1.0
        assert estimate.samples == 30_000


class TestReport:
    def test_format_table(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.23456], ["b", 7]],
            precision=2,
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in lines[2]
        assert "7" in lines[3]

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text
