"""Tests for the plain-text table renderer behind benchmark/CLI reports."""

from repro.flows.report import format_table


class TestFormatTable:
    def test_precision(self):
        text = format_table(["k", "v"], [["pi", 3.14159]], precision=4)
        assert "3.1416" in text
        text = format_table(["k", "v"], [["pi", 3.14159]], precision=1)
        assert "3.1" in text
        assert "3.14" not in text

    def test_non_float_values_via_str(self):
        text = format_table(["k", "v"], [["count", 7], ["flag", True]])
        assert "7" in text
        assert "True" in text

    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["long-name", 2.0]])
        lines = text.splitlines()
        # First column left-aligned: the short name is padded on the right.
        assert lines[2].startswith("a ")
        # Other columns right-aligned: values end each line flush.
        assert lines[2].endswith("1.000")
        assert lines[3].endswith("2.000")

    def test_separator_matches_column_widths(self):
        text = format_table(["name", "v"], [["alpha", 12.5]])
        header, separator = text.splitlines()[:2]
        assert len(separator) == len(header)
        assert set(separator) == {"-", " "}

    def test_wide_value_expands_column(self):
        text = format_table(["v"], [[123456789.0]], precision=2)
        header = text.splitlines()[0]
        assert len(header) == len("123456789.00")

    def test_empty_rows(self):
        text = format_table(["a", "bb"], [])
        lines = text.splitlines()
        assert lines == ["a  bb", "-  --"]

    def test_negative_floats(self):
        text = format_table(["v"], [[-2.5]], precision=1)
        assert "-2.5" in text
