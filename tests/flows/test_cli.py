"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.pla import read_pla, write_pla


@pytest.fixture
def pla_file(tmp_path):
    rng = np.random.default_rng(5)
    phases = rng.choice(
        np.array([OFF, ON, DC], dtype=np.uint8), size=(2, 64), p=[0.3, 0.3, 0.4]
    )
    spec = FunctionSpec(phases, name="clitest")
    path = tmp_path / "clitest.pla"
    write_pla(spec, path)
    return str(path)


class TestCli:
    def test_info(self, pla_file, capsys):
        assert main(["info", pla_file]) == 0
        out = capsys.readouterr().out
        assert "inputs" in out
        assert "C^f" in out

    def test_info_registry_name(self, capsys):
        assert main(["info", "bench"]) == 0
        out = capsys.readouterr().out
        assert "inputs" in out
        assert "6" in out  # bench has 6 inputs

    def test_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["info", "does-not-exist"])

    def test_assign_writes_pla(self, pla_file, tmp_path, capsys):
        out_path = str(tmp_path / "assigned.pla")
        assert main([
            "assign", pla_file, "--policy", "ranking", "--fraction", "0.5",
            "-o", out_path,
        ]) == 0
        original = read_pla(pla_file)
        assigned = read_pla(out_path)
        assert np.count_nonzero(assigned.phases == DC) < np.count_nonzero(
            original.phases == DC
        )
        # The partial assignment only decides DC entries: care sets agree.
        care = original.care_mask()
        assert bool(np.all(assigned.phases[care] == original.phases[care]))
        assert "decided" in capsys.readouterr().out

    def test_synth(self, pla_file, capsys):
        assert main(["synth", pla_file, "--objective", "area"]) == 0
        out = capsys.readouterr().out
        assert "area" in out
        assert "error rate" in out

    def test_estimate(self, pla_file, capsys):
        assert main(["estimate", pla_file]) == 0
        out = capsys.readouterr().out
        assert "border/Poisson" in out
        assert "signal-probability" in out

    def test_sweep(self, pla_file, capsys):
        assert main(["sweep", pla_file, "--points", "3", "--objective", "area"]) == 0
        out = capsys.readouterr().out
        assert "fraction" in out
        assert out.count("\n") >= 4

    def test_gen(self, tmp_path, capsys):
        out_path = str(tmp_path / "gen.pla")
        assert main([
            "gen", "--inputs", "7", "--outputs", "2", "--cf", "0.6",
            "--dc", "0.5", "-o", out_path,
        ]) == 0
        spec = read_pla(out_path)
        assert spec.num_inputs == 7
        assert spec.num_outputs == 2
        assert "generated" in capsys.readouterr().out


class TestCliObservability:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_info_json(self, pla_file, capsys):
        import json

        assert main(["info", pla_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "clitest"
        assert payload["inputs"] == 6
        assert payload["outputs"] == 2
        assert 0.0 <= payload["dc_fraction"] <= 1.0

    def test_sweep_writes_obs_artifacts(self, pla_file, tmp_path, capsys):
        import json

        from repro.obs.validate import validate_file

        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        manifest = tmp_path / "manifest.json"
        assert main([
            "sweep", pla_file, "--points", "2", "--objective", "area",
            "--trace", str(trace), "--metrics-out", str(metrics),
            "--manifest", str(manifest),
        ]) == 0
        capsys.readouterr()
        for path in (trace, metrics, manifest):
            assert path.exists()
            assert validate_file(path) == [], path.name
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        assert "sweep.fraction" in {event["name"] for event in events}
        document = json.loads(metrics.read_text())
        assert document["metrics"]["flow.runs"]["value"] == 2
        assert "cache.hits" in document["metrics"]
        mani = json.loads(manifest.read_text())
        assert mani["command"] == "sweep"
        assert mani["exit_status"] == 0
        assert mani["parameters"]["points"] == 2

    def test_sweep_progress_renders_to_stderr(self, pla_file, capsys):
        assert main([
            "sweep", pla_file, "--points", "2", "--objective", "area",
            "--progress",
        ]) == 0
        err = capsys.readouterr().err
        assert "2/2" in err

    def test_commands_run_clean_without_obs_flags(self, pla_file, capsys):
        # The obs plumbing must stay invisible when no flag is passed.
        assert main(["info", pla_file]) == 0
        assert capsys.readouterr().err == ""


class TestCliPipeline:
    def test_stages_table(self, capsys):
        assert main(["pipeline", "stages"]) == 0
        out = capsys.readouterr().out
        for name in ("assign", "espresso", "optimize", "map", "tune", "measure"):
            assert name in out

    def test_stages_json(self, capsys):
        import json

        assert main(["pipeline", "stages", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["assign"]["inputs"] == ["spec"]
        assert payload["measure"]["outputs"] == ["implemented", "synthesis"]

    def test_info_json_lists_stages(self, pla_file, capsys):
        import json

        assert main(["info", pla_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        for name in ("assign", "espresso", "measure"):
            assert name in payload["pipeline_stages"]

    def test_run_table(self, pla_file, capsys):
        assert main(["pipeline", "run", pla_file, "--objective", "area"]) == 0
        out = capsys.readouterr().out
        assert "error rate" in out
        assert "6 stage(s) run, 0 restored" in out

    def test_run_checkpointed_twice(self, pla_file, tmp_path, capsys):
        import json

        ckpt = str(tmp_path / "ckpt")
        argv = ["pipeline", "run", pla_file, "--objective", "area",
                "--checkpoint-dir", ckpt, "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["pipeline"]["stages_run"] == 6
        assert first["pipeline"]["stages_skipped"] == 0
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["pipeline"]["stages_run"] == 0
        assert second["pipeline"]["stages_skipped"] == 6
        assert second["result"] == first["result"]

    def test_run_stop_after(self, pla_file, capsys):
        assert main(["pipeline", "run", pla_file, "--stop-after",
                     "espresso"]) == 0
        out = capsys.readouterr().out
        assert "stopped with artefacts" in out
        assert "network" in out

    def test_run_config_file(self, pla_file, tmp_path, capsys):
        import json

        config = {
            "name": "cli-config",
            "params": {"policy": "complete", "objective": "area"},
            "stages": ["assign", "espresso", "optimize", "map", "tune",
                       "measure"],
        }
        path = tmp_path / "flow.json"
        path.write_text(json.dumps(config))
        assert main(["pipeline", "run", pla_file, "--config", str(path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pipeline"]["name"] == "cli-config"
        assert payload["result"]["policy"] == "complete"

    def test_run_complete_dc_flag(self, pla_file, capsys):
        import json

        argv = ["pipeline", "run", pla_file, "--objective", "area", "--json"]
        assert main(argv) == 0
        baseline = json.loads(capsys.readouterr().out)
        assert "complete_dc" not in baseline["pipeline"]

        assert main(argv + ["--complete-dc"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pipeline"]["stages_run"] == 7
        report = payload["pipeline"]["complete_dc"]
        assert report["nodes_considered"] > 0
        assert report["dc_delta"] >= 0
        # POs are preserved, so the measured reliability is unchanged.
        assert (
            payload["result"]["error_rate"] == baseline["result"]["error_rate"]
        )

    def test_sweep_checkpoint_dir(self, pla_file, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(["sweep", pla_file, "--points", "2", "--objective",
                     "area", "--checkpoint-dir", str(ckpt)]) == 0
        capsys.readouterr()
        assert list(ckpt.glob("*.ckpt"))


class TestCliExtensions:
    def test_nodal(self, pla_file, capsys):
        assert main(["nodal", pla_file, "--policy", "cfactor"]) == 0
        out = capsys.readouterr().out
        assert "internal error before" in out

    def test_nodal_with_renode(self, pla_file, capsys):
        assert main(["nodal", pla_file, "--renode", "--k", "4"]) == 0
        assert "nodes" in capsys.readouterr().out

    def test_nodal_sat(self, pla_file, capsys):
        assert main(["nodal", pla_file, "--sat", "--dc-window", "1"]) == 0
        out = capsys.readouterr().out
        assert "complete DC minterms" in out
        assert "SAT fallback nodes" in out
        assert "internal error before" in out

    def test_synth_verilog(self, pla_file, tmp_path, capsys):
        out_v = str(tmp_path / "out.v")
        assert main(["synth", pla_file, "--objective", "area",
                     "--verilog", out_v]) == 0
        text = open(out_v).read()
        assert "module" in text and "endmodule" in text
