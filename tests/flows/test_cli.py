"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.pla import read_pla, write_pla


@pytest.fixture
def pla_file(tmp_path):
    rng = np.random.default_rng(5)
    phases = rng.choice(
        np.array([OFF, ON, DC], dtype=np.uint8), size=(2, 64), p=[0.3, 0.3, 0.4]
    )
    spec = FunctionSpec(phases, name="clitest")
    path = tmp_path / "clitest.pla"
    write_pla(spec, path)
    return str(path)


class TestCli:
    def test_info(self, pla_file, capsys):
        assert main(["info", pla_file]) == 0
        out = capsys.readouterr().out
        assert "inputs" in out
        assert "C^f" in out

    def test_info_registry_name(self, capsys):
        assert main(["info", "bench"]) == 0
        out = capsys.readouterr().out
        assert "inputs" in out
        assert "6" in out  # bench has 6 inputs

    def test_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["info", "does-not-exist"])

    def test_assign_writes_pla(self, pla_file, tmp_path, capsys):
        out_path = str(tmp_path / "assigned.pla")
        assert main([
            "assign", pla_file, "--policy", "ranking", "--fraction", "0.5",
            "-o", out_path,
        ]) == 0
        original = read_pla(pla_file)
        assigned = read_pla(out_path)
        assert np.count_nonzero(assigned.phases == DC) < np.count_nonzero(
            original.phases == DC
        )
        # The partial assignment only decides DC entries: care sets agree.
        care = original.care_mask()
        assert bool(np.all(assigned.phases[care] == original.phases[care]))
        assert "decided" in capsys.readouterr().out

    def test_synth(self, pla_file, capsys):
        assert main(["synth", pla_file, "--objective", "area"]) == 0
        out = capsys.readouterr().out
        assert "area" in out
        assert "error rate" in out

    def test_estimate(self, pla_file, capsys):
        assert main(["estimate", pla_file]) == 0
        out = capsys.readouterr().out
        assert "border/Poisson" in out
        assert "signal-probability" in out

    def test_sweep(self, pla_file, capsys):
        assert main(["sweep", pla_file, "--points", "3", "--objective", "area"]) == 0
        out = capsys.readouterr().out
        assert "fraction" in out
        assert out.count("\n") >= 4

    def test_gen(self, tmp_path, capsys):
        out_path = str(tmp_path / "gen.pla")
        assert main([
            "gen", "--inputs", "7", "--outputs", "2", "--cf", "0.6",
            "--dc", "0.5", "-o", out_path,
        ]) == 0
        spec = read_pla(out_path)
        assert spec.num_inputs == 7
        assert spec.num_outputs == 2
        assert "generated" in capsys.readouterr().out


class TestCliExtensions:
    def test_nodal(self, pla_file, capsys):
        assert main(["nodal", pla_file, "--policy", "cfactor"]) == 0
        out = capsys.readouterr().out
        assert "internal error before" in out

    def test_nodal_with_renode(self, pla_file, capsys):
        assert main(["nodal", pla_file, "--renode", "--k", "4"]) == 0
        assert "nodes" in capsys.readouterr().out

    def test_synth_verilog(self, pla_file, tmp_path, capsys):
        out_v = str(tmp_path / "out.v")
        assert main(["synth", pla_file, "--objective", "area",
                     "--verilog", out_v]) == 0
        text = open(out_v).read()
        assert "module" in text and "endmodule" in text
