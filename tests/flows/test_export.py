"""Tests for CSV export of figure/table data."""

import csv

import pytest

from repro.cli import main
from repro.flows.export import (
    export_all,
    export_fraction_sweep,
    export_table1,
    export_table2,
    export_table3,
)


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestExport:
    def test_table1(self, tmp_path):
        path = export_table1(tmp_path, ["bench", "fout"])
        rows = read_csv(path)
        assert rows[0][0] == "name"
        assert {row[0] for row in rows[1:]} == {"bench", "fout"}
        assert all(len(row) == 6 for row in rows)

    def test_fraction_sweep(self, tmp_path):
        path = export_fraction_sweep(tmp_path, ["bench"], [0.0, 1.0], "area")
        rows = read_csv(path)
        assert len(rows) == 3  # header + 2 fractions
        assert float(rows[1][2]) == pytest.approx(1.0)  # fraction 0 baseline

    def test_table2_roundtrip(self, tmp_path):
        """The exported CSV carries exactly the table2_row measurements."""
        from repro.benchgen import mcnc_benchmark
        from repro.flows.sweep import table2_row

        path = export_table2(tmp_path, ["bench"])
        rows = read_csv(path)
        assert rows[0] == [
            "name", "cf", "lcf_area_pct", "lcf_error_pct",
            "ranking_area_pct", "ranking_error_pct",
            "complete_area_pct", "complete_error_pct",
        ]
        data = dict(zip(rows[0], rows[1]))
        row = table2_row(mcnc_benchmark("bench"))
        assert data["name"] == "bench"
        assert float(data["cf"]) == pytest.approx(row.cf, abs=1e-4)
        assert float(data["lcf_area_pct"]) == pytest.approx(row.lcf_area, abs=0.01)
        assert float(data["complete_error_pct"]) == pytest.approx(
            row.complete_error, abs=0.01
        )

    def test_table3(self, tmp_path):
        path = export_table3(tmp_path, ["bench"])
        rows = read_csv(path)
        header = rows[0]
        data = dict(zip(header, rows[1]))
        assert float(data["exact_lo"]) <= float(data["conv_rate"]) + 1e-9

    def test_export_all(self, tmp_path):
        paths = export_all(tmp_path, names=["bench"], fractions=[0.0, 1.0])
        assert len(paths) == 4
        for path in paths:
            assert path.exists()
            assert len(read_csv(path)) >= 2

    def test_cli_export(self, tmp_path, capsys):
        assert main(["export", str(tmp_path), "--benchmarks", "bench"]) == 0
        out = capsys.readouterr().out
        assert out.count("wrote") == 4
