"""Tests for the parallel sweep executor."""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.benchgen import mcnc_benchmark
from repro.flows.sweep import (
    SweepPointError,
    _run_flow_task,
    fraction_sweep,
    parallel_map,
    threshold_sweep,
)
from repro.obs import disable_tracing, metrics_snapshot, reset_metrics, tracing


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    if x == 3:
        raise ValueError(f"cannot process {x}")
    return x


def _staggered_square(x: int) -> int:
    # Early tasks sleep longest, so completion order inverts input order.
    time.sleep(0.05 if x < 2 else 0.0)
    return x * x


def _touch_and_square(task) -> int:
    directory, x = task
    if x == 2:
        raise ValueError(f"cannot process {x}")
    (Path(directory) / f"ran_{x}").touch()
    return x * x


class TestParallelMap:
    def test_serial_and_parallel_agree(self):
        tasks = list(range(10))
        assert parallel_map(_square, tasks, 1) == parallel_map(_square, tasks, 3)

    def test_order_is_deterministic(self):
        assert parallel_map(_square, [3, 1, 2], 2) == [9, 1, 4]

    def test_single_task_stays_in_process(self):
        assert parallel_map(_square, [4], 8) == [16]

    def test_progress_callback_serial(self):
        seen = []
        parallel_map(_square, [1, 2, 3], 1, progress=lambda d, t: seen.append((d, t)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_progress_callback_parallel(self):
        seen = []
        parallel_map(_square, [1, 2, 3, 4], 2, progress=lambda d, t: seen.append((d, t)))
        assert [d for d, _ in seen] == [1, 2, 3, 4]
        assert all(t == 4 for _, t in seen)

    def test_progress_monotonic_under_out_of_order_completion(self):
        # The first tasks are the slowest, so later chunks complete first;
        # the reported ``done`` count must still only ever increase and
        # cover every task exactly once.
        seen = []
        tasks = list(range(12))
        results = parallel_map(
            _staggered_square, tasks, 3,
            progress=lambda d, t: seen.append(d),
        )
        assert results == [x * x for x in tasks]
        assert seen == list(range(1, len(tasks) + 1))

    def test_warm_pool_reuse_matches_serial(self):
        # Two successive maps on the same (now warm) pool both agree with
        # the serial path bit-for-bit.
        tasks = list(range(20))
        serial = parallel_map(_square, tasks, 1)
        assert parallel_map(_square, tasks, 4) == serial
        assert parallel_map(_square, tasks, 4) == serial

    def test_jobs_auto_resolves(self):
        tasks = [1, 2, 3]
        assert parallel_map(_square, tasks, "auto") == [1, 4, 9]
        with pytest.raises(ValueError):
            parallel_map(_square, tasks, "lots")


class TestWorkerFailures:
    def test_exception_carries_failing_point(self):
        with pytest.raises(SweepPointError) as excinfo:
            parallel_map(_boom, [1, 2, 3, 4], 2)
        error = excinfo.value
        assert error.index == 2
        assert error.point == 3
        assert "ValueError: cannot process 3" in str(error)
        assert "raise ValueError" in error.worker_traceback

    def test_mid_sweep_error_cancels_pending_work(self, tmp_path):
        # A failure near the front of a long sweep must not let the pool
        # grind through the remaining points: queued chunks are cancelled,
        # so most sentinel files are never written.
        total = 50
        tasks = [(str(tmp_path), x) for x in range(total)]
        with pytest.raises(SweepPointError) as excinfo:
            parallel_map(_touch_and_square, tasks, 2)
        assert excinfo.value.index == 2
        assert excinfo.value.point == tasks[2]
        time.sleep(0.5)  # let in-flight chunks settle before counting
        executed = len(list(tmp_path.glob("ran_*")))
        assert executed < total

    def test_serial_path_raises_plain_exception(self):
        # jobs=1 never crosses a process boundary; the original error
        # (with its real traceback) must surface untouched.
        with pytest.raises(ValueError, match="cannot process 3"):
            parallel_map(_boom, [1, 2, 3], 1)

    def test_flow_point_description_names_parameters(self):
        spec = mcnc_benchmark("fout")
        from repro.flows.sweep import _describe_point

        text = _describe_point((spec, "ranking", {"fraction": 0.5}))
        assert "benchmark=fout" in text
        assert "policy=ranking" in text
        assert "fraction=0.5" in text


class TestCrossProcessTelemetry:
    def test_parallel_sweep_merges_worker_spans_and_metrics(self):
        spec = mcnc_benchmark("fout")
        disable_tracing()
        reset_metrics()
        try:
            with tracing() as tracer:
                fraction_sweep(spec, [0.0, 0.5, 1.0], objective="area", jobs=2)
            merged = metrics_snapshot()
        finally:
            reset_metrics()
        pids = {record["pid"] for record in tracer.records}
        assert len(pids) >= 2  # parent plus at least one worker
        names = {record["name"] for record in tracer.records}
        assert "sweep.fraction" in names  # parent-side span
        assert "flow.run" in names  # worker-side span, merged back
        assert "espresso" in names
        # Worker counters reached the parent registry.
        assert merged["flow.runs"]["value"] == 3
        assert merged["espresso.calls"]["value"] > 0
        # Parent/child links survive the merge: every non-root parent id
        # resolves to a span shipped from the same process.
        by_pid_sid = {(r["pid"], r["sid"]) for r in tracer.records}
        for record in tracer.records:
            if record["parent"]:
                assert (record["pid"], record["parent"]) in by_pid_sid

    def test_serial_sweep_also_counts_runs(self):
        spec = mcnc_benchmark("fout")
        reset_metrics()
        try:
            fraction_sweep(spec, [0.0, 1.0], objective="area", jobs=1)
            merged = metrics_snapshot()
        finally:
            reset_metrics()
        assert merged["flow.runs"]["value"] == 2


class TestParallelSweeps:
    def test_fraction_sweep_parallel_matches_serial(self):
        spec = mcnc_benchmark("fout")
        fractions = [0.0, 0.5, 1.0]
        serial = fraction_sweep(spec, fractions, objective="area", jobs=1)
        parallel = fraction_sweep(spec, fractions, objective="area", jobs=2)
        assert serial == parallel  # FlowResult is a frozen dataclass
        assert [r.parameter for r in parallel] == fractions

    def test_threshold_sweep_parallel_matches_serial(self):
        spec = mcnc_benchmark("fout")
        thresholds = [0.4, 0.8]
        serial = threshold_sweep(spec, thresholds, objective="area", jobs=1)
        parallel = threshold_sweep(spec, thresholds, objective="area", jobs=2)
        assert serial == parallel

    def test_all_policies_parallel_match_serial(self):
        # Bit-identical results across the pool for every assignment
        # policy, not just the ranking sweeps the other tests exercise.
        spec = mcnc_benchmark("fout")
        tasks = [
            (spec, "conventional", {"objective": "area"}),
            (spec, "ranking", {"fraction": 0.5, "objective": "area"}),
            (spec, "cfactor", {"threshold": 0.55, "objective": "area"}),
            (spec, "complete", {"objective": "area"}),
        ]
        serial = parallel_map(_run_flow_task, tasks, 1)
        parallel = parallel_map(_run_flow_task, tasks, 2)
        assert serial == parallel
        assert [r.policy for r in parallel] == [
            "conventional", "ranking", "cfactor", "complete",
        ]

    def test_run_flow_task_trampoline(self):
        spec = mcnc_benchmark("fout")
        result = _run_flow_task((spec, "ranking", {"fraction": 0.5, "objective": "area"}))
        assert result.policy == "ranking"
        assert result.parameter == 0.5
