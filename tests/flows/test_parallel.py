"""Tests for the parallel sweep executor."""

import numpy as np
import pytest

from repro.benchgen import mcnc_benchmark
from repro.flows.sweep import (
    SweepPointError,
    _run_flow_task,
    fraction_sweep,
    parallel_map,
    threshold_sweep,
)
from repro.obs import disable_tracing, metrics_snapshot, reset_metrics, tracing


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    if x == 3:
        raise ValueError(f"cannot process {x}")
    return x


class TestParallelMap:
    def test_serial_and_parallel_agree(self):
        tasks = list(range(10))
        assert parallel_map(_square, tasks, 1) == parallel_map(_square, tasks, 3)

    def test_order_is_deterministic(self):
        assert parallel_map(_square, [3, 1, 2], 2) == [9, 1, 4]

    def test_single_task_stays_in_process(self):
        assert parallel_map(_square, [4], 8) == [16]

    def test_progress_callback_serial(self):
        seen = []
        parallel_map(_square, [1, 2, 3], 1, progress=lambda d, t: seen.append((d, t)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_progress_callback_parallel(self):
        seen = []
        parallel_map(_square, [1, 2, 3, 4], 2, progress=lambda d, t: seen.append((d, t)))
        assert [d for d, _ in seen] == [1, 2, 3, 4]
        assert all(t == 4 for _, t in seen)


class TestWorkerFailures:
    def test_exception_carries_failing_point(self):
        with pytest.raises(SweepPointError) as excinfo:
            parallel_map(_boom, [1, 2, 3, 4], 2)
        error = excinfo.value
        assert error.index == 2
        assert error.point == 3
        assert "ValueError: cannot process 3" in str(error)
        assert "raise ValueError" in error.worker_traceback

    def test_serial_path_raises_plain_exception(self):
        # jobs=1 never crosses a process boundary; the original error
        # (with its real traceback) must surface untouched.
        with pytest.raises(ValueError, match="cannot process 3"):
            parallel_map(_boom, [1, 2, 3], 1)

    def test_flow_point_description_names_parameters(self):
        spec = mcnc_benchmark("fout")
        from repro.flows.sweep import _describe_point

        text = _describe_point((spec, "ranking", {"fraction": 0.5}))
        assert "benchmark=fout" in text
        assert "policy=ranking" in text
        assert "fraction=0.5" in text


class TestCrossProcessTelemetry:
    def test_parallel_sweep_merges_worker_spans_and_metrics(self):
        spec = mcnc_benchmark("fout")
        disable_tracing()
        reset_metrics()
        try:
            with tracing() as tracer:
                fraction_sweep(spec, [0.0, 0.5, 1.0], objective="area", jobs=2)
            merged = metrics_snapshot()
        finally:
            reset_metrics()
        pids = {record["pid"] for record in tracer.records}
        assert len(pids) >= 2  # parent plus at least one worker
        names = {record["name"] for record in tracer.records}
        assert "sweep.fraction" in names  # parent-side span
        assert "flow.run" in names  # worker-side span, merged back
        assert "espresso" in names
        # Worker counters reached the parent registry.
        assert merged["flow.runs"]["value"] == 3
        assert merged["espresso.calls"]["value"] > 0
        # Parent/child links survive the merge: every non-root parent id
        # resolves to a span shipped from the same process.
        by_pid_sid = {(r["pid"], r["sid"]) for r in tracer.records}
        for record in tracer.records:
            if record["parent"]:
                assert (record["pid"], record["parent"]) in by_pid_sid

    def test_serial_sweep_also_counts_runs(self):
        spec = mcnc_benchmark("fout")
        reset_metrics()
        try:
            fraction_sweep(spec, [0.0, 1.0], objective="area", jobs=1)
            merged = metrics_snapshot()
        finally:
            reset_metrics()
        assert merged["flow.runs"]["value"] == 2


class TestParallelSweeps:
    def test_fraction_sweep_parallel_matches_serial(self):
        spec = mcnc_benchmark("fout")
        fractions = [0.0, 0.5, 1.0]
        serial = fraction_sweep(spec, fractions, objective="area", jobs=1)
        parallel = fraction_sweep(spec, fractions, objective="area", jobs=2)
        assert serial == parallel  # FlowResult is a frozen dataclass
        assert [r.parameter for r in parallel] == fractions

    def test_threshold_sweep_parallel_matches_serial(self):
        spec = mcnc_benchmark("fout")
        thresholds = [0.4, 0.8]
        serial = threshold_sweep(spec, thresholds, objective="area", jobs=1)
        parallel = threshold_sweep(spec, thresholds, objective="area", jobs=2)
        assert serial == parallel

    def test_run_flow_task_trampoline(self):
        spec = mcnc_benchmark("fout")
        result = _run_flow_task((spec, "ranking", {"fraction": 0.5, "objective": "area"}))
        assert result.policy == "ranking"
        assert result.parameter == 0.5
