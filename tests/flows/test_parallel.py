"""Tests for the parallel sweep executor."""

import numpy as np

from repro.benchgen import mcnc_benchmark
from repro.flows.sweep import (
    _run_flow_task,
    fraction_sweep,
    parallel_map,
    threshold_sweep,
)


def _square(x: int) -> int:
    return x * x


class TestParallelMap:
    def test_serial_and_parallel_agree(self):
        tasks = list(range(10))
        assert parallel_map(_square, tasks, 1) == parallel_map(_square, tasks, 3)

    def test_order_is_deterministic(self):
        assert parallel_map(_square, [3, 1, 2], 2) == [9, 1, 4]

    def test_single_task_stays_in_process(self):
        assert parallel_map(_square, [4], 8) == [16]


class TestParallelSweeps:
    def test_fraction_sweep_parallel_matches_serial(self):
        spec = mcnc_benchmark("fout")
        fractions = [0.0, 0.5, 1.0]
        serial = fraction_sweep(spec, fractions, objective="area", jobs=1)
        parallel = fraction_sweep(spec, fractions, objective="area", jobs=2)
        assert serial == parallel  # FlowResult is a frozen dataclass
        assert [r.parameter for r in parallel] == fractions

    def test_threshold_sweep_parallel_matches_serial(self):
        spec = mcnc_benchmark("fout")
        thresholds = [0.4, 0.8]
        serial = threshold_sweep(spec, thresholds, objective="area", jobs=1)
        parallel = threshold_sweep(spec, thresholds, objective="area", jobs=2)
        assert serial == parallel

    def test_run_flow_task_trampoline(self):
        spec = mcnc_benchmark("fout")
        result = _run_flow_task((spec, "ranking", {"fraction": 0.5, "objective": "area"}))
        assert result.policy == "ranking"
        assert result.parameter == 0.5
