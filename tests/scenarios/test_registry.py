"""Tests for the scenario data model and registry."""

import pytest

from repro.scenarios import (
    Scenario,
    describe_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
    scenario_specs,
)


class TestBuiltinRoster:
    def test_builtins_registered(self):
        names = scenario_names()
        for expected in ("paper-single-bit", "multibit-k2", "burst-w2",
                         "stuck-at-smoke", "synthetic-single-bit"):
            assert expected in names

    def test_paper_scenario_covers_all_policies(self):
        scenario = get_scenario("paper-single-bit")
        assert {point["policy"] for point in scenario.policies} == {
            "conventional", "ranking", "cfactor", "complete"
        }
        assert scenario.num_points() == 8

    def test_describe_is_json_ready(self):
        listing = describe_scenarios()
        by_name = {entry["name"]: entry for entry in listing}
        entry = by_name["multibit-k2"]
        assert entry["fault_model"] == {"model": "multibit", "k": 2}
        assert entry["points"] == 4
        assert entry["benchmarks"] == ["bench", "fout"]

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")


class TestValidationAtRegistration:
    def test_bad_policy(self):
        with pytest.raises(ValueError, match="policy"):
            register_scenario(Scenario(
                name="bad-policy", description="", benchmarks=("bench",),
                policies=({"policy": "yolo"},),
            ))

    def test_bad_objective(self):
        with pytest.raises(ValueError, match="objective"):
            register_scenario(Scenario(
                name="bad-objective", description="", benchmarks=("bench",),
                objective="vibes",
            ))

    def test_bad_fault_model(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            register_scenario(Scenario(
                name="bad-fault", description="", benchmarks=("bench",),
                fault_model="cosmic_ray",
            ))

    def test_no_benchmarks(self):
        with pytest.raises(ValueError, match="no benchmarks"):
            register_scenario(Scenario(
                name="empty", description="",
            ))

    def test_duplicate_name_with_different_content(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(Scenario(
                name="paper-single-bit", description="impostor",
                benchmarks=("bench",),
            ))

    def test_reregistering_identical_scenario_is_idempotent(self):
        scenario = get_scenario("multibit-k2")
        assert register_scenario(scenario) is scenario


class TestSpecLoading:
    def test_registry_benchmarks_load(self):
        specs = scenario_specs(get_scenario("multibit-k2"))
        assert [spec.name for spec in specs] == ["bench", "fout"]

    def test_generated_benchmarks_load(self):
        specs = scenario_specs(get_scenario("synthetic-single-bit"))
        assert [spec.name for spec in specs] == ["syn8a", "syn8b"]
        assert all(spec.num_inputs == 8 for spec in specs)

    def test_unknown_token(self):
        scenario = Scenario(
            name="unregistered", description="", benchmarks=("wat",),
        )
        with pytest.raises(ValueError, match="unknown benchmark"):
            scenario_specs(scenario)

    def test_pla_path_loading(self, tmp_path):
        from repro.benchgen import generate_spec
        from repro.pla import write_pla

        path = tmp_path / "tiny.pla"
        write_pla(
            generate_spec("tiny", 4, 2, target_cf=0.6, dc_fraction=0.4), path
        )
        scenario = Scenario(
            name="unregistered-pla", description="", benchmarks=(str(path),),
        )
        specs = scenario_specs(scenario)
        assert specs[0].num_inputs == 4
