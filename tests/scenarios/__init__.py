"""Tests for the declarative scenario registry and runner."""
