"""CLI tests for ``repro bench``, ``repro report`` and the info listings."""

import json

import pytest

from repro.cli import main
from repro.scenarios import Scenario, register_scenario

# Registered once per test process; registration is idempotent.
register_scenario(Scenario(
    name="cli-tiny",
    description="tiny CLI test scenario",
    benchmarks=("bench",),
    fault_model={"model": "multibit", "k": 2},
    policies=({"policy": "conventional"},),
    objective="area",
))


class TestBench:
    def test_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "paper-single-bit" in out
        assert "stuck-at-smoke" in out
        assert "cli-tiny" in out

    def test_no_scenario_prints_registry_and_fails(self, capsys):
        assert main(["bench"]) == 2
        captured = capsys.readouterr()
        assert "no scenario named" in captured.err
        assert "paper-single-bit" in captured.out

    def test_unknown_scenario(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["bench", "definitely-not-registered"])

    def test_run_writes_matrix(self, tmp_path, capsys):
        out = tmp_path / "BENCH_scenarios.json"
        assert main(["bench", "cli-tiny", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "cli-tiny" in stdout
        matrix = json.loads(out.read_text())
        entry = matrix["scenarios"]["cli-tiny"]
        assert entry["fault_model"] == {"model": "multibit", "k": 2}
        assert len(entry["rows"]) == 1

    def test_run_json_output(self, tmp_path, capsys):
        out = tmp_path / "m.json"
        assert main(["bench", "cli-tiny", "--out", str(out), "--json"]) == 0
        matrix = json.loads(capsys.readouterr().out)
        assert "cli-tiny" in matrix["scenarios"]


class TestReport:
    def test_table(self, capsys):
        assert main(["report", "bench", "--policy", "cfactor",
                     "--burst", "2", "--samples", "2000"]) == 0
        out = capsys.readouterr().out
        assert "single_bit (exact)" in out
        assert "multibit k=2 (exact)" in out
        assert "burst w=2 (exact)" in out
        assert "monte-carlo" in out

    def test_json(self, capsys):
        assert main(["report", "bench", "--distances", "2", "3",
                     "--samples", "2000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        models = [row["model"] for row in payload["error_models"]]
        assert "single_bit (exact)" in models
        assert "multibit k=3 (exact)" in models
        sampled = [row for row in payload["error_models"]
                   if "stderr" in row]
        assert sampled and sampled[0]["samples"] == 2000

    def test_report_matches_synth_error(self, capsys):
        """The exact single-bit row is the flow's own error-rate figure."""
        from repro.benchgen import mcnc_benchmark
        from repro.flows.experiment import run_flow

        direct = run_flow(mcnc_benchmark("bench"), "conventional",
                          objective="area")
        assert main(["report", "bench", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        single_bit = payload["error_models"][0]
        assert single_bit["rate"] == direct.error_rate


class TestInfoListings:
    def test_info_json_lists_fault_models_and_scenarios(self, capsys):
        assert main(["info", "bench", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        model_names = [m["name"] for m in payload["fault_models"]]
        assert "single_bit" in model_names
        assert "stuck_at" in model_names
        scenario_names = [s["name"] for s in payload["scenarios"]]
        assert "paper-single-bit" in scenario_names
