"""Tests for scenario execution and the BENCH_scenarios.json matrix."""

import json

import pytest

from repro.flows.experiment import run_flow
from repro.scenarios import (
    SCENARIO_MATRIX_SCHEMA_VERSION,
    Scenario,
    run_scenario,
    scenario_specs,
    write_scenario_matrix,
)

TINY = Scenario(
    name="tiny-single-bit",
    description="one benchmark, two policies",
    benchmarks=("bench",),
    fault_model="single_bit",
    policies=(
        {"policy": "conventional"},
        {"policy": "cfactor", "threshold": 0.55},
    ),
    objective="area",
)

TINY_STUCK = Scenario(
    name="tiny-stuck-at",
    description="stuck-at-1 on one benchmark",
    benchmarks=("bench",),
    fault_model={"model": "stuck_at", "value": 1},
    policies=({"policy": "conventional"},),
    objective="area",
)


@pytest.fixture(scope="module")
def tiny_result():
    return run_scenario(TINY)


class TestRunScenario:
    def test_points_and_ordering(self, tiny_result):
        assert [(p.benchmark, p.policy) for p in tiny_result.points] == [
            ("bench", "conventional"), ("bench", "cfactor"),
        ]
        assert tiny_result.fault_model == {"model": "single_bit"}

    def test_single_bit_point_matches_run_flow(self, tiny_result):
        """The scenario path reproduces the direct flow bit-identically."""
        spec = scenario_specs(TINY)[0]
        direct = run_flow(spec, "conventional", objective="area")
        point = tiny_result.points[0]
        assert point.error_rate == direct.error_rate
        assert point.area == direct.area
        assert point.literals == direct.literals

    def test_quality_dict_is_scenario_prefixed(self, tiny_result):
        quality = tiny_result.points[0].quality_dict()
        assert quality["benchmark"] == "tiny-single-bit:bench"
        assert quality["policy"] == "conventional"
        assert "error_rate" in quality

    def test_node_scope_scenario_runs(self, tiny_result):
        result = run_scenario(TINY_STUCK)
        (point,) = result.points
        assert 0.0 <= point.error_rate <= 1.0
        # The stuck-at rate is a different quantity from the input rate.
        assert point.error_rate != tiny_result.points[0].error_rate

    def test_parallel_matches_serial(self, tiny_result):
        parallel = run_scenario(TINY, jobs=2)
        assert [p.error_rate for p in parallel.points] == [
            p.error_rate for p in tiny_result.points
        ]

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_scenario("not-a-scenario")


class TestMatrixFile:
    def test_write_and_merge(self, tmp_path, tiny_result):
        path = tmp_path / "BENCH_scenarios.json"
        first = write_scenario_matrix(path, [tiny_result])
        assert first["schema_version"] == SCENARIO_MATRIX_SCHEMA_VERSION
        assert set(first["scenarios"]) == {"tiny-single-bit"}

        stuck = run_scenario(TINY_STUCK)
        merged = write_scenario_matrix(path, [stuck])
        assert set(merged["scenarios"]) == {"tiny-single-bit", "tiny-stuck-at"}
        on_disk = json.loads(path.read_text())
        assert on_disk == merged

    def test_entry_shape(self, tmp_path, tiny_result):
        path = tmp_path / "m.json"
        matrix = write_scenario_matrix(path, [tiny_result])
        entry = matrix["scenarios"]["tiny-single-bit"]
        assert entry["fault_model"] == {"model": "single_bit"}
        assert entry["points"] == 2
        assert len(entry["rows"]) == 2
        row = entry["rows"][0]
        assert {"benchmark", "policy", "error_rate", "area"} <= set(row)
        assert "repro_version" in entry["manifest"]
        assert entry["manifest"]["benchmarks"] == ["bench"]

    def test_replaces_same_scenario(self, tmp_path, tiny_result):
        path = tmp_path / "m.json"
        write_scenario_matrix(path, [tiny_result])
        again = write_scenario_matrix(path, [tiny_result])
        assert len(again["scenarios"]) == 1

    def test_schema_mismatch_starts_fresh(self, tmp_path, tiny_result):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"schema_version": 999, "scenarios": {
            "stale": {}
        }}))
        matrix = write_scenario_matrix(path, [tiny_result])
        assert set(matrix["scenarios"]) == {"tiny-single-bit"}

    def test_corrupt_file_starts_fresh(self, tmp_path, tiny_result):
        path = tmp_path / "m.json"
        path.write_text("{nope")
        matrix = write_scenario_matrix(path, [tiny_result])
        assert set(matrix["scenarios"]) == {"tiny-single-bit"}
