"""Edge-case tests across modules (degenerate functions, tiny shapes)."""

import numpy as np
import pytest

from repro.core.estimates import border_bounds, signal_probability_bounds
from repro.core.ranking import ranking_assignment
from repro.core.reliability import exact_error_bounds
from repro.core.spec import FunctionSpec
from repro.core.truthtable import DC, OFF, ON
from repro.espresso.cube import Cover
from repro.synth.compile_ import compile_spec
from repro.synth.network import LogicNetwork


class TestAllDcFunction:
    """A fully unspecified function: every metric must stay defined."""

    @pytest.fixture
    def spec(self):
        return FunctionSpec(np.full((2, 16), DC, dtype=np.uint8), name="alldc")

    def test_bounds_are_zero(self, spec):
        band = exact_error_bounds(spec)
        assert band.lo == 0.0
        assert band.hi == 0.0  # no care neighbours anywhere

    def test_estimates_defined(self, spec):
        # The border estimate sees zero borders and reports the true zero;
        # the signal estimate overshoots (its min/max identity assumes all
        # n neighbours are care minterms — the paper's documented failure
        # mode), but must stay finite and in range.
        border = border_bounds(spec)
        assert border.lo == pytest.approx(0.0, abs=1e-9)
        assert border.hi == pytest.approx(0.0, abs=1e-9)
        signal = signal_probability_bounds(spec)
        assert 0.0 <= signal.lo <= signal.hi <= 1.0

    def test_assignment_policies(self, spec):
        assignment = ranking_assignment(spec, 1.0)
        assert len(assignment) == 0  # every DC is ambiguous (weight 0)

    def test_synthesis(self, spec):
        result = compile_spec(spec, objective="area")
        assert result.num_gates == 0
        assert result.error_rate == 0.0


class TestOneInputFunctions:
    def test_identity(self):
        spec = FunctionSpec.from_truth_table(np.array([[0, 1]]))
        assert exact_error_bounds(spec).lo == pytest.approx(1.0)
        result = compile_spec(spec, objective="area")
        assert result.error_rate == pytest.approx(1.0)

    def test_single_dc(self):
        spec = FunctionSpec.from_sets(1, on_sets=[[1]], dc_sets=[[0]])
        band = exact_error_bounds(spec)
        # One DC with one on-neighbour: min 0 (assign ON), max 1 events /2.
        assert band.lo == pytest.approx(0.0)
        assert band.hi == pytest.approx(0.5)


class TestEvaluateVectors:
    def test_matches_dense_evaluation(self):
        net = LogicNetwork(["a", "b", "c"])
        net.add_node("t", ["a", "b", "c"], Cover.from_strings(["1-0", "-11"]))
        net.set_output("y", "t")
        dense = net.evaluate()["t"]
        idx = np.arange(8)
        vectors = np.stack([(idx >> j) & 1 for j in range(3)], axis=1).astype(bool)
        sampled = net.evaluate_vectors(vectors)["t"]
        np.testing.assert_array_equal(sampled, dense)

    def test_shape_validation(self):
        net = LogicNetwork(["a", "b"])
        with pytest.raises(ValueError, match="inputs"):
            net.evaluate_vectors(np.zeros((4, 3), dtype=bool))


class TestAigDepthProperties:
    def test_balance_never_increases_depth(self):
        from repro.synth.aig import aig_from_network

        rng = np.random.default_rng(12)
        names = [f"x{i}" for i in range(5)]
        net = LogicNetwork(names)
        rows = rng.choice([0, 1, 2], size=(6, 5), p=[0.3, 0.3, 0.4]).astype(np.uint8)
        net.add_node("t", names, Cover(rows, 5))
        net.set_output("y", "t")
        aig = aig_from_network(net)
        balanced = aig.balanced()
        assert balanced.depth() <= aig.depth()


class TestLibrarySizing:
    def test_upsize_with_no_variants_is_noop(self):
        """A library with only X1 cells: sizing terminates immediately."""
        from repro.synth.library import Cell, Library
        from repro.synth.netlist import GateInstance, MappedNetlist
        from repro.synth.timing import static_timing, upsize_critical

        inv = Cell("INV_X1", ("inv", ("var", "a")), area=1, pin_cap=1,
                   resistance=1, intrinsic=1, leakage=1)
        library = Library(cells=(inv,))
        netlist = MappedNetlist(library, ["a"])
        netlist.gates.append(GateInstance(inv, "n0", ["a"]))
        netlist.outputs["y"] = "n0"
        before = static_timing(netlist).delay
        upsize_critical(netlist)
        assert static_timing(netlist).delay == before
