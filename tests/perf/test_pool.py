"""Tests for the warm worker pool (repro.perf.pool)."""

import os

import numpy as np
import pytest

from repro.perf import get_pool, shutdown_pool
from repro.perf.pool import (
    MAX_CHUNK_TASKS,
    MIN_SHARED_BUFFER_BYTES,
    WorkerTaskError,
    available_cpus,
    executor_config,
    plan_chunks,
    resolve_jobs,
)


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Pool lifecycle is under test here: isolate every test from pools
    other tests (or other modules) left warm."""
    shutdown_pool()
    yield
    shutdown_pool()


# Worker-side callables must be module-level to pickle.


def _pid(_: int) -> int:
    return os.getpid()


def _sum_task(task) -> float:
    array, offset = task
    return float(array.sum()) + offset


def _boom_at_three(x: int) -> int:
    if x == 3:
        raise ValueError(f"cannot process {x}")
    return x


def _identity(x: int) -> int:
    return x


def _probe_cache_entries(_: int) -> int:
    from repro.perf import cache_stats

    return cache_stats()["entries"]


class TestResolveJobs:
    def test_auto_resolves_to_cpu_count(self):
        assert resolve_jobs("auto") == available_cpus()

    def test_numeric_strings_parse(self):
        assert resolve_jobs("4") == 4
        assert resolve_jobs(" 2 ") == 2

    def test_capped_by_points(self):
        assert resolve_jobs(8, points=3) == 3
        assert resolve_jobs("auto", points=1) == 1

    def test_floored_at_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-5) == 1
        assert resolve_jobs(4, points=0) == 1

    def test_invalid_string_raises(self):
        with pytest.raises(ValueError, match="auto"):
            resolve_jobs("many")
        with pytest.raises(ValueError):
            resolve_jobs("4.5")


class TestPlanChunks:
    @pytest.mark.parametrize("total,workers", [(1, 1), (7, 2), (50, 4), (1000, 8)])
    def test_plan_covers_every_task_once(self, total, workers):
        chunks = plan_chunks(total, workers)
        covered = []
        for start, size in chunks:
            assert size >= 1
            covered.extend(range(start, start + size))
        assert covered == list(range(total))

    def test_chunk_sizes_decay_to_one(self):
        chunks = plan_chunks(200, 4)
        sizes = [size for _, size in chunks]
        assert all(size <= MAX_CHUNK_TASKS for size in sizes)
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] == 1  # the long tail is scheduled point-by-point

    def test_empty_plan(self):
        assert plan_chunks(0, 4) == []


class TestWarmPoolLifecycle:
    def test_workers_persist_across_map_calls(self):
        pool = get_pool(2)
        first = set(pool.map(_pid, list(range(8)), 2))
        second = set(pool.map(_pid, list(range(8)), 2))
        assert first  # ran in worker processes...
        assert os.getpid() not in first
        assert second <= first  # ...and the same ones served both calls

    def test_get_pool_reuses_and_grows(self):
        pool = get_pool(1)
        assert get_pool(1) is pool
        grown = get_pool(2)
        assert grown is pool
        assert grown.size == 2

    def test_shutdown_then_get_respawns(self):
        pool = get_pool(1)
        shutdown_pool()
        assert pool.closed
        fresh = get_pool(1)
        assert fresh is not pool
        assert fresh.map(_identity, [1, 2, 3], 1) == [1, 2, 3]


class TestZeroCopyTransfer:
    def test_shared_buffer_interned_once(self):
        # Six tasks all carrying the same big array: its bytes must cross
        # into shared memory exactly once, not once per task.
        array = np.arange(65536, dtype=np.float64)
        assert array.nbytes >= MIN_SHARED_BUFFER_BYTES
        pool = get_pool(2)
        tasks = [(array, offset) for offset in range(6)]
        expected = [float(array.sum()) + offset for offset in range(6)]
        assert pool.map(_sum_task, tasks, 2) == expected
        assert pool._shm.segment_count == 1
        assert pool._shm.total_bytes == array.nbytes

    def test_distinct_buffers_get_distinct_segments(self):
        a = np.arange(4096, dtype=np.float64)
        b = a + 1.0
        pool = get_pool(2)
        pool.map(_sum_task, [(a, 0), (b, 0), (a, 1)], 2)
        assert pool._shm.segment_count == 2

    def test_small_payloads_skip_shared_memory(self):
        pool = get_pool(2)
        assert pool.map(_identity, list(range(8)), 2) == list(range(8))
        assert pool._shm.segment_count == 0


class TestErrorHandling:
    def test_error_cancels_queued_and_pool_survives(self):
        pool = get_pool(2)
        with pytest.raises(WorkerTaskError) as excinfo:
            pool.map(_boom_at_three, list(range(60)), 2)
        assert excinfo.value.index == 3
        assert "ValueError" in excinfo.value.message
        # The pool stays usable: the next map drains stale results and
        # returns correct, complete output.
        assert pool.map(_identity, list(range(10)), 2) == list(range(10))
        assert not pool.closed


class TestBoundedWindow:
    def test_in_flight_chunks_stay_within_window(self):
        pool = get_pool(2)
        pool.map(_identity, list(range(300)), 2)
        assert 0 < pool.last_max_in_flight <= max(2, 2 * 2)


class TestCacheSeeding:
    def test_workers_start_with_parent_cache_entries(self):
        from repro.benchgen import mcnc_benchmark
        from repro.espresso.minimize import minimize_spec
        from repro.perf import cache_stats, reset_cache

        shutdown_pool()  # seed is captured at spawn: force a fresh spawn
        reset_cache()
        minimize_spec(mcnc_benchmark("fout"))
        assert cache_stats()["entries"] > 0
        try:
            pool = get_pool(1)
            entries = pool.map(_probe_cache_entries, [0], 1)[0]
            assert entries > 0
        finally:
            reset_cache()


class TestExecutorConfig:
    def test_reports_resolved_configuration(self):
        config = executor_config("auto")
        assert config["enabled"] is True
        assert config["cpus"] == available_cpus()
        assert config["resolved_jobs"] == available_cpus()
        assert config["chunking"]["schedule"] == "guided"
        assert config["zero_copy"]["shared_memory"] is True

    def test_reports_live_worker_count(self):
        assert executor_config()["workers"] is None
        get_pool(2)
        assert executor_config()["workers"] == 2
