"""Worker health, stall detection and profile merging in the warm pool."""

import time

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.perf import get_pool, shutdown_pool
from repro.perf.pool import (
    DEFAULT_STALL_SECONDS,
    WorkerHealth,
    health_snapshot,
    stall_threshold_seconds,
)


@pytest.fixture(autouse=True)
def _fresh_pool():
    shutdown_pool()
    obs_profile.disable_profiling()
    yield
    obs_profile.disable_profiling()
    shutdown_pool()


# Worker-side callables must be module-level to pickle.


def _identity(x: int) -> int:
    return x


def _sleepy(task) -> int:
    index, seconds = task
    time.sleep(seconds)
    return index


def _spin(seconds: float) -> int:
    total = 0
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        total += sum(range(100))
    return total


class _Progress:
    """A progress callable that records the notes the pool attaches."""

    def __init__(self):
        self.calls = []
        self.notes = []

    def __call__(self, done, total=None):
        self.calls.append((done, total))

    def set_note(self, note):
        self.notes.append(note)


class TestStallThreshold:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_POOL_STALL_SECONDS", raising=False)
        assert stall_threshold_seconds() == DEFAULT_STALL_SECONDS

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_STALL_SECONDS", "2.5")
        assert stall_threshold_seconds() == 2.5

    def test_bad_values_fall_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_STALL_SECONDS", "banana")
        assert stall_threshold_seconds() == DEFAULT_STALL_SECONDS
        monkeypatch.setenv("REPRO_POOL_STALL_SECONDS", "-1")
        assert stall_threshold_seconds() == DEFAULT_STALL_SECONDS


class TestWorkerHealth:
    def test_to_dict_shape(self):
        entry = WorkerHealth(pid=42, rss_bytes=1000, tasks_done=3)
        data = entry.to_dict()
        assert data["pid"] == 42
        assert data["rss_bytes"] == 1000
        assert data["stalled"] is False
        assert data["stall_count"] == 0

    def test_health_snapshot_none_without_pool(self):
        assert health_snapshot() is None

    def test_result_health_updates_gauges(self):
        pool = get_pool(2)
        assert pool.map(_identity, list(range(8))) == list(range(8))
        assert pool.health  # every chunk result carries worker health
        snapshot = obs_metrics.metrics_snapshot()
        pids = list(pool.health)
        for pid in pids:
            assert snapshot[f"pool.worker.{pid}.last_seen"]["value"] > 0
            assert snapshot[f"pool.worker.{pid}.tasks_done"]["type"] == "gauge"
        report = health_snapshot()
        assert report is not None
        assert {w["pid"] for w in report["workers"]} == set(pids)
        assert report["stall_events"] == []


class TestStallDetection:
    def test_injected_stall_detected_without_hanging(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_STALL_SECONDS", "0.3")
        stalls_before = obs_metrics.counter("pool.worker_stalls").value
        pool = get_pool(2)
        progress = _Progress()
        # One task sleeps well past the threshold; the detector must
        # flag it while the map still completes with correct results.
        tasks = [(0, 1.6), (1, 0.0), (2, 0.0), (3, 0.0)]
        start = time.perf_counter()
        results = pool.map(_sleepy, tasks, progress=progress)
        elapsed = time.perf_counter() - start
        assert results == [0, 1, 2, 3]
        assert elapsed < 10  # finished, did not hang
        assert pool.stall_events, "stall was not detected"
        event = pool.stall_events[0]
        assert event["busy_seconds"] >= 0.3
        assert event["threshold_seconds"] == 0.3
        assert obs_metrics.counter("pool.worker_stalls").value > stalls_before
        # Surfaced on the progress line...
        stall_notes = [n for n in progress.notes if n and "stalled" in n]
        assert stall_notes, f"no stall note in {progress.notes!r}"
        # ...and cleared once the worker recovered.
        assert not any(entry.stalled for entry in pool.health.values())
        # The ledger-facing snapshot carries the event.
        report = health_snapshot()
        assert report["stall_events"] == pool.stall_events
        assert any(w["stall_count"] >= 1 for w in report["workers"])

    def test_fast_map_records_no_stalls(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_STALL_SECONDS", "5.0")
        pool = get_pool(2)
        assert pool.map(_identity, list(range(16))) == list(range(16))
        assert pool.stall_events == []


class TestProfileMerging:
    def test_worker_samples_merged_into_parent(self):
        sampler = obs_profile.enable_profiling(interval=0.002)
        pool = get_pool(2)
        pool.map(_spin, [0.4, 0.4])
        counts = obs_profile.disable_profiling()
        joined = "\n".join(counts)
        assert "_spin" in joined, "no worker frames in merged profile"
        assert sampler.samples > 0

    def test_unprofiled_map_ships_no_samples(self):
        pool = get_pool(2)
        pool.map(_spin, [0.05, 0.05])
        assert obs_profile.current_sampler() is None
