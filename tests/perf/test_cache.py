"""Tests for the content-addressed minimization cache."""

import numpy as np
import pytest

from repro.core.spec import FunctionSpec
from repro.espresso.cube import Cover
from repro.espresso.minimize import espresso, minimize_spec
from repro.perf import (
    CacheStats,
    MinimizationCache,
    cache_stats,
    configure_cache,
    cover_key,
    global_cache,
    reset_cache,
    spec_key,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_cache()
    yield
    reset_cache()
    configure_cache(enabled=True, maxsize=4096)


class TestKeys:
    def test_cover_key_is_content_addressed(self):
        on1 = Cover.from_minterms(4, [1, 3, 5])
        on2 = Cover.from_minterms(4, [1, 3, 5])
        dc = Cover.empty(4)
        assert cover_key(on1.cubes, dc.cubes, 4) == cover_key(on2.cubes, dc.cubes, 4)

    def test_cover_key_separates_on_and_dc(self):
        a = Cover.from_minterms(3, [1])
        b = Cover.from_minterms(3, [2])
        empty = Cover.empty(3)
        assert cover_key(a.cubes, b.cubes, 3) != cover_key(b.cubes, a.cubes, 3)
        assert cover_key(a.cubes, empty.cubes, 3) != cover_key(empty.cubes, a.cubes, 3)

    def test_spec_key_ignores_name_but_not_phases(self):
        s1 = FunctionSpec.from_sets(3, on_sets=[[1, 2]], dc_sets=[[5]], name="x")
        s2 = FunctionSpec.from_sets(3, on_sets=[[1, 2]], dc_sets=[[5]], name="y")
        s3 = FunctionSpec.from_sets(3, on_sets=[[1, 2]], dc_sets=[[6]], name="x")
        assert spec_key(s1.phases) == spec_key(s2.phases)
        assert spec_key(s1.phases) != spec_key(s3.phases)

    def test_spec_key_options_digest(self):
        s = FunctionSpec.from_sets(3, on_sets=[[1]])
        assert spec_key(s.phases, ("a",)) != spec_key(s.phases, ("b",))


class TestCacheMechanics:
    def test_lru_eviction(self):
        cache = MinimizationCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_disabled_cache_is_inert(self):
        cache = MinimizationCache(enabled=False)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0

    def test_stats_shape(self):
        stats = cache_stats()
        for field in ("enabled", "entries", "hits", "misses", "evictions", "hit_rate"):
            assert field in stats

    def test_stats_is_typed_dataclass(self):
        cache = MinimizationCache(maxsize=8)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert isinstance(stats, CacheStats)
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.entries == 1
        assert stats.maxsize == 8
        assert stats.hit_rate == pytest.approx(0.5)

    def test_stats_dict_compat(self):
        # Pre-existing callers index stats like a dict; both views agree.
        stats = MinimizationCache().stats()
        as_dict = stats.asdict()
        assert as_dict["hits"] == stats.hits == stats["hits"]
        assert set(as_dict) == {
            "enabled", "entries", "maxsize", "hits", "misses",
            "evictions", "hit_rate",
        }
        assert dict(stats) == {key: stats[key] for key in as_dict}
        with pytest.raises(KeyError):
            stats["nope"]
        assert "hit_rate" in stats

    def test_stats_reports_into_global_metrics(self):
        from repro.obs import metrics_snapshot

        on = Cover.from_minterms(4, [1, 2, 3])
        espresso(on)
        espresso(on)
        snapshot = metrics_snapshot()
        assert snapshot["cache.hits"]["value"] >= 1
        assert snapshot["cache.misses"]["value"] >= 1
        assert snapshot["cache.entries"]["type"] == "gauge"


class TestSeedTransfer:
    """export_entries/seed: how the warm pool warms its workers."""

    def test_export_then_seed_roundtrip(self):
        source = MinimizationCache(maxsize=16)
        source.put("a", 1)
        source.put("b", 2)
        target = MinimizationCache(maxsize=16)
        target.seed(source.export_entries())
        assert target.get("a") == 1
        assert target.get("b") == 2

    def test_export_limit_keeps_most_recent(self):
        cache = MinimizationCache(maxsize=16)
        for index in range(6):
            cache.put(f"k{index}", index)
        exported = dict(cache.export_entries(2))
        assert set(exported) == {"k4", "k5"}

    def test_seed_does_not_touch_counters(self):
        cache = MinimizationCache(maxsize=16)
        cache.seed([("a", 1), ("b", 2)])
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.hits == 0
        assert stats.misses == 0
        assert stats.evictions == 0

    def test_seed_never_overwrites_existing_entries(self):
        cache = MinimizationCache(maxsize=16)
        cache.put("a", "local")
        cache.seed([("a", "remote"), ("b", "remote")])
        assert cache.get("a") == "local"
        assert cache.get("b") == "remote"

    def test_seed_respects_maxsize(self):
        cache = MinimizationCache(maxsize=2)
        cache.seed([(f"k{index}", index) for index in range(5)])
        assert len(cache) == 2

    def test_seed_on_disabled_cache_is_inert(self):
        cache = MinimizationCache(enabled=False)
        cache.seed([("a", 1)])
        assert len(cache) == 0


class TestEspressoMemo:
    def test_espresso_hits_on_identical_problem(self):
        on = Cover.from_minterms(5, [1, 3, 7, 12, 19])
        dc = Cover.from_minterms(5, [4, 9])
        first = espresso(on, dc)
        before = cache_stats()["hits"]
        second = espresso(on, dc)
        assert cache_stats()["hits"] == before + 1
        assert second is first  # shared, read-only result
        assert not second.cubes.flags.writeable

    def test_cached_result_is_correct_for_rebuilt_inputs(self):
        on1 = Cover.from_minterms(4, [0, 5, 10])
        dc1 = Cover.from_minterms(4, [2])
        result1 = espresso(on1, dc1)
        on2 = Cover.from_minterms(4, [0, 5, 10])
        dc2 = Cover.from_minterms(4, [2])
        result2 = espresso(on2, dc2)
        assert np.array_equal(result1.cubes, result2.cubes)

    def test_minimize_spec_memoises_on_phases(self):
        spec_a = FunctionSpec.from_sets(
            4, on_sets=[[1, 3], [0, 2]], dc_sets=[[5], []], name="a"
        )
        spec_b = FunctionSpec.from_sets(
            4, on_sets=[[1, 3], [0, 2]], dc_sets=[[5], []], name="b"
        )
        first = minimize_spec(spec_a)
        hits_before = cache_stats()["hits"]
        second = minimize_spec(spec_b)
        assert cache_stats()["hits"] > hits_before
        # Memoised covers, but the caller's spec identity is preserved.
        assert second.spec is spec_b
        assert spec_b.equivalent_within_dc(second.completed_spec())
        assert first.total_cubes == second.total_cubes

    def test_disabled_global_cache_still_correct(self):
        configure_cache(enabled=False)
        on = Cover.from_minterms(4, [1, 2, 3])
        result1 = espresso(on)
        result2 = espresso(on)
        assert np.array_equal(result1.cubes, result2.cubes)
        assert cache_stats()["hits"] == 0
        assert len(global_cache) == 0
