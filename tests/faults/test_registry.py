"""Tests for the fault-model registry and declarative resolution."""

import pytest

from repro.core.reliability import multibit_error_rate
from repro.faults import (
    MultiBitInput,
    SingleBitInput,
    create_fault_model,
    describe_fault_models,
    fault_model_names,
    registered_fault_models,
)

from ..core.conftest import random_spec


class TestResolution:
    def test_name_resolution(self):
        model = create_fault_model("single_bit")
        assert isinstance(model, SingleBitInput)

    def test_dict_resolution_with_params(self):
        model = create_fault_model({"model": "multibit", "k": 3})
        assert isinstance(model, MultiBitInput)
        assert model.k == 3

    def test_instance_passthrough(self):
        model = MultiBitInput(2)
        assert create_fault_model(model) is model

    def test_spec_dict_round_trip(self):
        for name, cls in registered_fault_models().items():
            model = cls()
            assert model.spec_dict()["model"] == name
            assert create_fault_model(model.spec_dict()) == model

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            create_fault_model("cosmic_ray")

    def test_bad_parameters(self):
        with pytest.raises(ValueError, match="bad parameters"):
            create_fault_model({"model": "multibit", "wat": 1})

    def test_dict_without_model_key(self):
        with pytest.raises(ValueError, match="'model'"):
            create_fault_model({"k": 2})

    def test_rejects_other_types(self):
        with pytest.raises(ValueError, match="spec must be"):
            create_fault_model(42)


class TestListing:
    def test_expected_roster(self):
        names = fault_model_names()
        for expected in ("single_bit", "multibit", "burst", "node_flip",
                         "stuck_at"):
            assert expected in names

    def test_describe_shape(self):
        listing = describe_fault_models()
        by_name = {entry["name"]: entry for entry in listing}
        assert by_name["single_bit"]["scope"] == "input"
        assert by_name["stuck_at"]["scope"] == "node"
        assert by_name["multibit"]["params"] == ["k"]
        assert all(entry["summary"] for entry in listing)


class TestDeprecatedShim:
    def test_multibit_error_rate_warns_and_matches(self):
        spec = random_spec(4, num_inputs=5, num_outputs=2, dc_fraction=0.0)
        with pytest.warns(DeprecationWarning, match="MultiBitInput"):
            legacy = multibit_error_rate(spec, 2)
        assert legacy == MultiBitInput(2).error_rate(spec)

    def test_shim_keeps_validation(self):
        spec = random_spec(4, num_inputs=5, num_outputs=2, dc_fraction=0.0)
        with pytest.raises(ValueError, match="distance"):
            multibit_error_rate(spec, 0)
        with pytest.raises(ValueError, match="distance"):
            multibit_error_rate(spec, spec.num_inputs + 1)
