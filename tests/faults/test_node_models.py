"""Tests for the node-scope fault models (internal flip, stuck-at)."""

import numpy as np
import pytest

from repro.espresso.minimize import minimize_spec
from repro.faults import NodeFlip, StuckAtNode
from repro.synth.network import LogicNetwork
from repro.synth.odc import internal_error_rate
from repro.synth.optimize import optimize_network

from ..core.conftest import random_spec


@pytest.fixture(scope="module")
def network() -> LogicNetwork:
    spec = random_spec(21, num_inputs=5, num_outputs=2, dc_fraction=0.3)
    minimized = minimize_spec(spec)
    net = LogicNetwork.from_covers(
        list(spec.input_names), minimized.covers, list(spec.output_names)
    )
    optimize_network(net)
    return net


def forced_reference_rate(network: LogicNetwork, value: bool) -> float:
    """Brute-force stuck-at rate: byte-per-vector, full re-evaluation."""
    size = 1 << len(network.primary_inputs)
    idx = np.arange(size, dtype=np.int64)

    def evaluate(forced: str | None) -> np.ndarray:
        values: dict[str, np.ndarray] = {}
        for position, name in enumerate(network.primary_inputs):
            values[name] = ((idx >> position) & 1).astype(bool)
        for name in network.topological_order():
            node = network.nodes[name]
            table = node.cover.evaluate()
            pattern = np.zeros(size, dtype=np.int64)
            for position, fanin in enumerate(node.fanins):
                pattern |= values[fanin].astype(np.int64) << position
            values[name] = table[pattern]
            if name == forced:
                values[name] = np.full(size, value, dtype=bool)
        return np.array(
            [values[signal] for signal in network.outputs.values()]
        )

    base = evaluate(None)
    node_names = list(network.nodes)
    total = 0
    for name in node_names:
        diff = np.any(base != evaluate(name), axis=0)
        total += int(np.count_nonzero(diff))
    return total / (len(node_names) * size)


class TestStuckAt:
    @pytest.mark.parametrize("value", [0, 1])
    def test_matches_brute_force(self, network, value):
        fast = StuckAtNode(value).network_error_rate(network)
        assert fast == pytest.approx(forced_reference_rate(network, bool(value)))

    def test_value_validation(self):
        with pytest.raises(ValueError, match="stuck-at value"):
            StuckAtNode(2)

    def test_stuck_at_bounded_by_flip(self, network):
        """A stuck-at fault is a flip masked to excited vectors."""
        flip = NodeFlip().network_error_rate(network)
        assert StuckAtNode(0).network_error_rate(network) <= flip
        assert StuckAtNode(1).network_error_rate(network) <= flip

    def test_source_mask_restriction(self, network):
        size = 1 << len(network.primary_inputs)
        none = StuckAtNode(0).network_error_rate(
            network, source_mask=np.zeros(size, dtype=bool)
        )
        assert none == 0.0
        all_of_them = StuckAtNode(0).network_error_rate(
            network, source_mask=np.ones(size, dtype=bool)
        )
        assert all_of_them == StuckAtNode(0).network_error_rate(network)


class TestNodeFlip:
    def test_matches_internal_error_rate(self, network):
        assert NodeFlip().network_error_rate(network) == internal_error_rate(
            network
        )

    def test_internal_error_rate_accepts_the_model(self, network):
        via_kwarg = internal_error_rate(network, fault_model="stuck_at")
        assert via_kwarg == StuckAtNode(0).network_error_rate(network)


class TestMonteCarloAgreement:
    @pytest.mark.parametrize("model", [NodeFlip(), StuckAtNode(0), StuckAtNode(1)])
    def test_estimate_within_ci_of_exact(self, network, model):
        exact = model.network_error_rate(network)
        estimate = model.estimate_network_error_rate(
            network, samples=4096, rng=np.random.default_rng(8)
        )
        assert estimate.samples == 4096 * len(network.nodes)
        assert abs(estimate.rate - exact) <= max(5 * estimate.stderr, 0.01)

    def test_input_scope_operations_rejected(self, network):
        spec = random_spec(3, num_inputs=4, num_outputs=1, dc_fraction=0.0)
        with pytest.raises(ValueError, match="scope"):
            StuckAtNode(0).error_rate(spec)
