"""Tests for the input-scope fault models (single/multi-bit, burst)."""

import numpy as np
import pytest

from repro.core.reliability import error_rate
from repro.core.spec import FunctionSpec
from repro.faults import BurstInput, MultiBitInput, SingleBitInput
from repro.sim import packed as pk

from ..core.conftest import random_spec


def completed(seed: int, n: int = 5) -> FunctionSpec:
    return random_spec(seed, num_inputs=n, num_outputs=2, dc_fraction=0.0)


def parity4() -> FunctionSpec:
    idx = np.arange(16)
    bits = sum(((idx >> b) & 1 for b in range(4)), np.zeros(16, np.int64))
    return FunctionSpec.from_truth_table((bits % 2 == 1)[None, :])


def unpack_masks(words: np.ndarray, count: int) -> np.ndarray:
    """(num_inputs, words) packed masks -> (count, num_inputs) bool."""
    return np.stack(
        [pk.unpack_bool(row, count) for row in words], axis=1
    )


class TestExactReductions:
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_multibit_k1_matches_single_bit(self, seed):
        spec = completed(seed)
        assert MultiBitInput(1).error_rate(spec) == pytest.approx(
            SingleBitInput().error_rate(spec)
        )

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_burst_w1_matches_single_bit(self, seed):
        spec = completed(seed)
        assert BurstInput(1).error_rate(spec) == pytest.approx(
            SingleBitInput().error_rate(spec)
        )

    def test_single_bit_matches_legacy(self):
        spec = completed(9)
        assert SingleBitInput().error_rate(spec) == error_rate(spec)

    def test_parity_multibit(self):
        """Parity flips on every odd-weight error and never on even."""
        spec = parity4()
        assert MultiBitInput(1).error_rate(spec) == pytest.approx(1.0)
        assert MultiBitInput(2).error_rate(spec) == pytest.approx(0.0)
        assert MultiBitInput(3).error_rate(spec) == pytest.approx(1.0)

    def test_parity_burst(self):
        """A width-2 burst is an even-weight error: parity never flips."""
        spec = parity4()
        assert BurstInput(2).error_rate(spec) == pytest.approx(0.0)
        assert BurstInput(3).error_rate(spec) == pytest.approx(1.0)

    def test_source_restriction(self):
        base = random_spec(5, num_inputs=5, num_outputs=2, dc_fraction=0.5)
        full = completed(5, n=5)
        restricted = MultiBitInput(2).error_rate(full, spec=base)
        unrestricted = MultiBitInput(2).error_rate(full)
        assert restricted <= unrestricted


class TestPatterns:
    def test_single_bit_patterns(self):
        assert SingleBitInput().patterns(4) == [1, 2, 4, 8]

    def test_multibit_pattern_count_and_weight(self):
        patterns = MultiBitInput(2).patterns(6)
        assert len(patterns) == 15  # C(6, 2)
        assert all(bin(p).count("1") == 2 for p in patterns)
        assert len(set(patterns)) == len(patterns)

    def test_burst_patterns_are_adjacent_runs(self):
        patterns = BurstInput(2).patterns(6)
        assert patterns == [0b11, 0b110, 0b1100, 0b11000, 0b110000]

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            MultiBitInput(0)
        with pytest.raises(ValueError, match="positive"):
            BurstInput(0)
        spec = completed(1, n=4)
        with pytest.raises(ValueError, match="distance"):
            MultiBitInput(5).error_rate(spec)
        with pytest.raises(ValueError, match="burst width"):
            BurstInput(5).error_rate(spec)


class TestCorruptionMasks:
    """Sampled masks must match each model's exact pattern semantics."""

    def test_single_bit_masks_flip_one_pin(self):
        words = SingleBitInput().corruption_words(
            np.random.default_rng(0), 9, 500
        )
        masks = unpack_masks(words, 500)
        assert masks.shape == (500, 9)
        assert np.all(masks.sum(axis=1) == 1)

    def test_multibit_masks_flip_k_pins(self):
        words = MultiBitInput(3).corruption_words(
            np.random.default_rng(1), 8, 500
        )
        masks = unpack_masks(words, 500)
        assert np.all(masks.sum(axis=1) == 3)

    def test_multibit_subsets_are_roughly_uniform(self):
        words = MultiBitInput(1).corruption_words(
            np.random.default_rng(2), 4, 8000
        )
        masks = unpack_masks(words, 8000)
        counts = masks.sum(axis=0)
        assert np.all(counts > 8000 / 4 * 0.8)

    def test_burst_masks_are_adjacent_runs(self):
        width = 3
        words = BurstInput(width).corruption_words(
            np.random.default_rng(3), 10, 500
        )
        masks = unpack_masks(words, 500)
        assert np.all(masks.sum(axis=1) == width)
        positions = np.argwhere(masks)
        for row in range(500):
            pins = positions[positions[:, 0] == row, 1]
            assert pins.max() - pins.min() == width - 1
