"""Tests for the fault-model abstraction layer."""
