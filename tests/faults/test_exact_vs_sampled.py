"""Exact-vs-Monte-Carlo agreement for every registered fault model.

Each input-scope model's packed mask generator is an independent
implementation of the same distribution its ``patterns`` enumerate; the
sampled rate must land inside a wide confidence interval of the exact
one on small, fully specified functions (node-scope agreement is in
``test_node_models``).
"""

import numpy as np
import pytest

from repro.core.montecarlo import estimate_error_rate
from repro.faults import registered_fault_models

from ..core.conftest import random_spec

INPUT_MODELS = [
    cls() for cls in registered_fault_models().values() if cls.scope == "input"
]


def spec_evaluator(spec):
    tables = spec.truth_values()

    def evaluate(vectors):
        indices = np.zeros(vectors.shape[0], dtype=np.int64)
        for j in range(spec.num_inputs):
            indices |= vectors[:, j].astype(np.int64) << j
        return tables[:, indices]

    return evaluate


@pytest.mark.parametrize("model", INPUT_MODELS, ids=lambda m: m.name)
@pytest.mark.parametrize("seed", [31, 32])
def test_sampled_within_ci_of_exact(model, seed):
    spec = random_spec(seed, num_inputs=6, num_outputs=2, dc_fraction=0.0)
    exact = model.error_rate(spec)
    estimate = estimate_error_rate(
        spec_evaluator(spec), spec.num_inputs, samples=30_000,
        rng=np.random.default_rng(seed), fault_model=model,
    )
    assert estimate.samples == 30_000
    assert abs(estimate.rate - exact) <= max(5 * estimate.stderr, 0.01)


def test_every_registered_input_model_is_covered():
    """Registering a new input model forces it into this agreement test."""
    names = {model.name for model in INPUT_MODELS}
    assert {"single_bit", "multibit", "burst"} <= names
