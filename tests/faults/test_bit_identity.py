"""Differential tests: the fault-model layer must not move any number.

The refactor's acceptance bar — routing the paper's single-bit model
through the ``FaultModel`` abstraction (flows, pipeline, Monte-Carlo)
produces bit-identical results to the legacy hard-wired code path, over
an MCNC stand-in and a synthetic spec, under all four policies.
"""

import numpy as np
import pytest

from repro.benchgen import generate_spec, mcnc_benchmark
from repro.core.montecarlo import estimate_error_rate
from repro.core.reliability import error_rate
from repro.faults import SingleBitInput
from repro.flows.experiment import apply_policy, run_flow
from repro.synth.compile_ import compile_spec

POLICIES = [
    ("conventional", {}),
    ("ranking", {"fraction": 1.0}),
    ("cfactor", {"threshold": 0.55}),
    ("complete", {}),
]


def specs():
    return [
        mcnc_benchmark("bench"),
        generate_spec("syn6", 6, 3, target_cf=0.6, dc_fraction=0.5, seed=7),
    ]


@pytest.mark.parametrize("policy,knobs", POLICIES)
@pytest.mark.parametrize("spec", specs(), ids=lambda s: s.name)
class TestFlowBitIdentity:
    def test_explicit_single_bit_is_identical(self, spec, policy, knobs):
        default = run_flow(spec, policy, objective="area", **knobs)
        explicit = run_flow(
            spec, policy, objective="area", fault_model="single_bit", **knobs
        )
        assert explicit.error_rate == default.error_rate
        assert explicit.area == default.area
        assert explicit.literals == default.literals

    def test_matches_legacy_reliability(self, spec, policy, knobs):
        assigned, _ = apply_policy(spec, policy, **knobs)
        synthesis = compile_spec(assigned, objective="area", source_spec=spec)
        legacy = error_rate(synthesis.implemented, spec=spec)
        flow = run_flow(
            spec, policy, objective="area", fault_model=SingleBitInput(), **knobs
        )
        assert flow.error_rate == legacy


class TestMonteCarloBitIdentity:
    def test_same_seed_same_estimate(self):
        spec = generate_spec(
            "mcid", 6, 2, target_cf=0.6, dc_fraction=0.0, seed=3
        )
        tables = spec.truth_values()

        def evaluate(vectors):
            indices = np.zeros(vectors.shape[0], dtype=np.int64)
            for j in range(spec.num_inputs):
                indices |= vectors[:, j].astype(np.int64) << j
            return tables[:, indices]

        legacy = estimate_error_rate(
            evaluate, spec.num_inputs, samples=5000,
            rng=np.random.default_rng(17),
        )
        via_model = estimate_error_rate(
            evaluate, spec.num_inputs, samples=5000,
            rng=np.random.default_rng(17), fault_model=SingleBitInput(),
        )
        assert via_model == legacy  # rate, stderr and samples all equal
