"""Tests for the ROBDD manager."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BddManager


@pytest.fixture
def mgr():
    return BddManager(4)


class TestBasics:
    def test_terminals(self, mgr):
        assert mgr.zero == 0
        assert mgr.one == 1
        assert mgr.is_terminal(mgr.zero)
        assert mgr.constant(True) == mgr.one
        assert mgr.constant(False) == mgr.zero

    def test_var_out_of_range(self, mgr):
        with pytest.raises(ValueError):
            mgr.var(4)
        with pytest.raises(ValueError):
            mgr.nvar(-1)

    def test_negative_vars_rejected(self):
        with pytest.raises(ValueError):
            BddManager(-1)

    def test_hash_consing(self, mgr):
        """Structurally equal functions share a reference."""
        a = mgr.apply_and(mgr.var(0), mgr.var(1))
        b = mgr.apply_and(mgr.var(1), mgr.var(0))
        assert a == b

    def test_reduction(self, mgr):
        """ite(x, f, f) == f — redundant tests never create nodes."""
        f = mgr.var(1)
        assert mgr.ite(mgr.var(0), f, f) == f


class TestConnectives:
    def test_not(self, mgr):
        x = mgr.var(0)
        assert mgr.apply_not(mgr.apply_not(x)) == x
        assert mgr.apply_not(mgr.one) == mgr.zero

    def test_and_or_duality(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        left = mgr.apply_not(mgr.apply_and(x, y))
        right = mgr.apply_or(mgr.apply_not(x), mgr.apply_not(y))
        assert left == right

    def test_xor(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        f = mgr.apply_xor(x, y)
        assert mgr.evaluate(f, [1, 0, 0, 0])
        assert mgr.evaluate(f, [0, 1, 0, 0])
        assert not mgr.evaluate(f, [1, 1, 0, 0])
        assert mgr.apply_xnor(x, y) == mgr.apply_not(f)

    def test_implies(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        f = mgr.apply_implies(x, y)
        assert mgr.evaluate(f, [0, 0, 0, 0])
        assert not mgr.evaluate(f, [1, 0, 0, 0])

    def test_conjoin_disjoin(self, mgr):
        vars_ = [mgr.var(i) for i in range(4)]
        f = mgr.conjoin(vars_)
        assert mgr.sat_count(f) == 1
        g = mgr.disjoin(vars_)
        assert mgr.sat_count(g) == 15
        assert mgr.conjoin([]) == mgr.one
        assert mgr.disjoin([]) == mgr.zero


class TestQuantification:
    def test_restrict(self, mgr):
        f = mgr.apply_and(mgr.var(0), mgr.var(1))
        assert mgr.restrict(f, 0, True) == mgr.var(1)
        assert mgr.restrict(f, 0, False) == mgr.zero

    def test_exists(self, mgr):
        f = mgr.apply_and(mgr.var(0), mgr.var(1))
        assert mgr.exists(f, [0]) == mgr.var(1)
        assert mgr.exists(f, [0, 1]) == mgr.one

    def test_forall(self, mgr):
        f = mgr.apply_or(mgr.var(0), mgr.var(1))
        assert mgr.forall(f, [0]) == mgr.var(1)
        assert mgr.forall(f, [0, 1]) == mgr.zero

    def test_compose(self, mgr):
        f = mgr.apply_and(mgr.var(0), mgr.var(1))
        g = mgr.apply_or(mgr.var(2), mgr.var(3))
        composed = mgr.compose(f, 0, g)
        expected = mgr.apply_and(g, mgr.var(1))
        assert composed == expected


class TestCounting:
    def test_sat_count(self, mgr):
        assert mgr.sat_count(mgr.one) == 16
        assert mgr.sat_count(mgr.zero) == 0
        assert mgr.sat_count(mgr.var(2)) == 8

    def test_support(self, mgr):
        f = mgr.apply_and(mgr.var(0), mgr.var(3))
        assert mgr.support(f) == {0, 3}
        assert mgr.support(mgr.one) == set()

    def test_size(self, mgr):
        assert mgr.size(mgr.one) == 0
        assert mgr.size(mgr.var(0)) == 1


class TestTruthTables:
    def test_round_trip_simple(self, mgr):
        table = np.array([False, True] * 8)  # f = x0
        f = mgr.from_truth_table(table)
        assert f == mgr.var(0)
        np.testing.assert_array_equal(mgr.to_truth_table(f), table)

    def test_bad_length(self, mgr):
        with pytest.raises(ValueError, match="length"):
            mgr.from_truth_table(np.zeros(8, dtype=bool))

    @given(st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_random(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 8))
        mgr = BddManager(n)
        table = rng.random(1 << n) < 0.5
        f = mgr.from_truth_table(table)
        np.testing.assert_array_equal(mgr.to_truth_table(f), table)
        assert mgr.sat_count(f) == int(table.sum())

    @given(st.integers(0, 10**9))
    @settings(max_examples=25, deadline=None)
    def test_ops_match_numpy(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 7))
        mgr = BddManager(n)
        ta = rng.random(1 << n) < 0.5
        tb = rng.random(1 << n) < 0.5
        a = mgr.from_truth_table(ta)
        b = mgr.from_truth_table(tb)
        np.testing.assert_array_equal(mgr.to_truth_table(mgr.apply_and(a, b)), ta & tb)
        np.testing.assert_array_equal(mgr.to_truth_table(mgr.apply_or(a, b)), ta | tb)
        np.testing.assert_array_equal(mgr.to_truth_table(mgr.apply_xor(a, b)), ta ^ tb)
        np.testing.assert_array_equal(mgr.to_truth_table(mgr.apply_not(a)), ~ta)

    @given(st.integers(0, 10**9))
    @settings(max_examples=20, deadline=None)
    def test_canonicity(self, seed):
        """Equal functions built differently intern to the same reference."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        mgr = BddManager(n)
        table = rng.random(1 << n) < 0.5
        direct = mgr.from_truth_table(table)
        # Build the same function as a disjunction of minterm cubes.
        minterm_refs = []
        for m in np.flatnonzero(table):
            literals = [
                mgr.var(j) if (int(m) >> j) & 1 else mgr.nvar(j) for j in range(n)
            ]
            minterm_refs.append(mgr.conjoin(literals))
        assert mgr.disjoin(minterm_refs) == direct


class TestSpecBridge:
    def test_spec_sets_partition(self):
        from repro.bdd import spec_sets
        from repro.core.spec import FunctionSpec

        spec = FunctionSpec.from_sets(3, on_sets=[[1, 5]], dc_sets=[[0, 7]])
        mgr = BddManager(3)
        on, off, dc = spec_sets(mgr, spec, 0)
        assert mgr.apply_and(on, off) == mgr.zero
        assert mgr.apply_and(on, dc) == mgr.zero
        assert mgr.disjoin([on, off, dc]) == mgr.one
        assert mgr.sat_count(on) == 2
        assert mgr.sat_count(dc) == 2

    def test_spec_round_trip(self):
        from repro.bdd import spec_from_bdds, spec_sets
        from repro.core.spec import FunctionSpec

        spec = FunctionSpec.from_sets(4, on_sets=[[1, 5], [2]], dc_sets=[[0], [9, 3]])
        mgr = BddManager(4)
        on_refs, dc_refs = [], []
        for out in range(spec.num_outputs):
            on, _, dc = spec_sets(mgr, spec, out)
            on_refs.append(on)
            dc_refs.append(dc)
        again = spec_from_bdds(mgr, on_refs, dc_refs)
        assert again == spec

    def test_spec_from_bdds_overlap_rejected(self):
        from repro.bdd import spec_from_bdds

        mgr = BddManager(2)
        with pytest.raises(ValueError, match="overlap"):
            spec_from_bdds(mgr, [mgr.var(0)], [mgr.var(0)])

    def test_mismatched_manager(self):
        from repro.bdd import spec_sets
        from repro.core.spec import FunctionSpec

        spec = FunctionSpec.from_sets(3, on_sets=[[1]])
        with pytest.raises(ValueError, match="variable count"):
            spec_sets(BddManager(2), spec, 0)


class TestDeepBdds:
    """The iterative ite/sat_count/restrict walks must survive BDDs whose
    depth far exceeds Python's recursion limit."""

    def test_deep_conjunction(self):
        import sys

        n = sys.getrecursionlimit() + 500
        mgr = BddManager(n)
        f = mgr.conjoin(mgr.var(i) for i in range(n))
        assert mgr.sat_count(f) == 1
        assert mgr.evaluate(f, [True] * n)
        assert not mgr.evaluate(f, [True] * (n - 1) + [False])

    def test_deep_restrict_and_ops(self):
        import sys

        n = sys.getrecursionlimit() + 500
        mgr = BddManager(n)
        f = mgr.conjoin(mgr.var(i) for i in range(n))
        g = mgr.restrict(f, 0, True)
        assert 0 not in mgr.support(g)
        assert mgr.sat_count(g) == 2  # variable 0 became free
        # De Morgan on the deep function: ~(AND xs) == OR ~xs.
        h = mgr.disjoin(mgr.nvar(i) for i in range(n))
        assert mgr.apply_xor(mgr.apply_not(f), h) == mgr.zero
