"""Tests for the Table 1 stand-in registry."""

import pytest

from repro.benchgen.mcnc import TABLE1, benchmark_info, benchmark_names, mcnc_benchmark
from repro.core.complexity import spec_complexity_factor, spec_expected_complexity_factor


class TestRegistry:
    def test_roster_matches_paper(self):
        assert benchmark_names() == [
            "bench", "fout", "p3", "p1", "exp", "test4",
            "ex1010", "exam", "t4", "random1", "random2", "random3",
        ]

    def test_info_lookup(self):
        info = benchmark_info("ex1010")
        assert info.num_inputs == 10
        assert info.num_outputs == 10
        assert info.dc_percent == pytest.approx(70.3)
        assert info.cf == pytest.approx(0.539)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            benchmark_info("nope")


class TestStandIns:
    @pytest.mark.parametrize("info", TABLE1, ids=lambda i: i.name)
    def test_matches_table1_row(self, info):
        spec = mcnc_benchmark(info.name)
        assert spec.num_inputs == info.num_inputs
        assert spec.num_outputs == info.num_outputs
        assert spec.dc_fraction() == pytest.approx(info.dc_percent / 100, abs=0.02)
        assert spec_complexity_factor(spec) == pytest.approx(info.cf, abs=0.02)
        assert spec_expected_complexity_factor(spec) == pytest.approx(
            info.expected_cf, abs=0.02
        )

    def test_caching_returns_same_object(self):
        assert mcnc_benchmark("bench") is mcnc_benchmark("bench")

    def test_deterministic_across_cache(self, tmp_path, monkeypatch):
        import repro.benchgen.mcnc as mcnc_mod

        fresh = mcnc_benchmark("fout")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        mcnc_mod._CACHE.clear()
        regenerated = mcnc_benchmark("fout")
        assert regenerated == fresh
