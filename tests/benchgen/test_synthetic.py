"""Tests for the synthetic benchmark generator (Sec. 2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchgen.synthetic import (
    care_fractions_from_expected,
    generate_output,
    generate_spec,
)
from repro.core.complexity import (
    complexity_factor,
    spec_complexity_factor,
    spec_expected_complexity_factor,
)
from repro.core.truthtable import DC, OFF, ON


class TestCareFractions:
    def test_balanced(self):
        f0, f1 = care_fractions_from_expected(0.6, 0.6**2 + 2 * 0.2**2)
        assert f0 == pytest.approx(0.2)
        assert f1 == pytest.approx(0.2)

    def test_unbalanced_table1_bench(self):
        """The 'bench' row: %DC=68.9, E[C^f]=0.533."""
        f0, f1 = care_fractions_from_expected(0.689, 0.533)
        assert f0 + f1 == pytest.approx(1 - 0.689)
        assert f0**2 + f1**2 + 0.689**2 == pytest.approx(0.533, abs=1e-9)
        assert f0 >= f1

    def test_unreachable_rejected(self):
        # E[C^f] below the balanced minimum for this DC fraction.
        with pytest.raises(ValueError, match="unreachable"):
            care_fractions_from_expected(0.5, 0.25)

    @given(
        st.floats(0.0, 0.9),
        st.floats(0.0, 0.45),
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, dc_fraction, f1):
        f0 = 1.0 - dc_fraction - f1
        if f0 < f1:
            return
        expected = f0 * f0 + f1 * f1 + dc_fraction * dc_fraction
        g0, g1 = care_fractions_from_expected(dc_fraction, expected)
        assert g0 == pytest.approx(f0, abs=1e-9)
        assert g1 == pytest.approx(f1, abs=1e-9)


class TestGenerateOutput:
    @pytest.mark.parametrize("target", [0.40, 0.55, 0.70, 0.78])
    def test_hits_target_cf(self, target):
        """Targets up to ~0.8 are reachable for balanced (0.2/0.2/0.6)
        fractions at n=10; beyond that the hypercube isoperimetric bound
        caps the achievable clustering for these set sizes."""
        rng = np.random.default_rng(42)
        phases = generate_output(10, target, 0.2, 0.2, rng, tolerance=0.02)
        assert complexity_factor(phases) == pytest.approx(target, abs=0.02)

    def test_high_cf_with_unbalanced_fractions(self):
        """High C^f needs small care sets (the Table 1 high-C^f rows all
        have high %DC or unbalanced care sets)."""
        rng = np.random.default_rng(43)
        phases = generate_output(10, 0.85, 0.066, 0.066, rng, tolerance=0.02)
        assert complexity_factor(phases) == pytest.approx(0.85, abs=0.02)

    def test_exact_signal_probabilities(self):
        rng = np.random.default_rng(1)
        phases = generate_output(8, 0.6, 0.3, 0.1, rng)
        size = phases.shape[0]
        assert np.count_nonzero(phases == OFF) == round(0.3 * size)
        assert np.count_nonzero(phases == ON) == round(0.1 * size)

    def test_validation(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError, match="outside"):
            generate_output(6, 1.5, 0.3, 0.3, rng)
        with pytest.raises(ValueError, match="non-negative"):
            generate_output(6, 0.5, 0.7, 0.5, rng)

    def test_low_target_uses_checkerboard(self):
        """Targets below the random baseline require anti-clustering."""
        rng = np.random.default_rng(3)
        # E[C^f] for (0.5, 0.5, 0) is 0.5; ask for clearly less.
        phases = generate_output(8, 0.30, 0.5, 0.5, rng, tolerance=0.02)
        assert complexity_factor(phases) == pytest.approx(0.30, abs=0.02)

    def test_deterministic_for_same_rng_seed(self):
        a = generate_output(8, 0.6, 0.2, 0.2, np.random.default_rng(7))
        b = generate_output(8, 0.6, 0.2, 0.2, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestGenerateSpec:
    def test_shape_and_name(self):
        spec = generate_spec("demo", 8, 3, target_cf=0.6, dc_fraction=0.6, seed=5)
        assert spec.name == "demo"
        assert spec.num_inputs == 8
        assert spec.num_outputs == 3

    def test_dc_fraction_and_cf(self):
        spec = generate_spec("demo", 9, 4, target_cf=0.65, dc_fraction=0.6, seed=6)
        assert spec.dc_fraction() == pytest.approx(0.6, abs=0.01)
        assert spec_complexity_factor(spec) == pytest.approx(0.65, abs=0.015)

    def test_expected_cf_matched(self):
        spec = generate_spec(
            "demo", 9, 2, target_cf=0.7, dc_fraction=0.7, expected_cf=0.56, seed=7
        )
        assert spec_expected_complexity_factor(spec) == pytest.approx(0.56, abs=0.01)

    def test_seeds_differ(self):
        a = generate_spec("a", 8, 1, target_cf=0.6, dc_fraction=0.5, seed=1)
        b = generate_spec("b", 8, 1, target_cf=0.6, dc_fraction=0.5, seed=2)
        assert a != b
