"""Tests for the packed-word simulation primitives."""

import numpy as np
import pytest

from repro.espresso.cube import Cover
from repro.sim import packed as pk


def random_bits(rng, count):
    return rng.random(count) < 0.5


class TestWordGeometry:
    @pytest.mark.parametrize(
        "vectors,words", [(1, 1), (63, 1), (64, 1), (65, 2), (128, 2), (200, 4)]
    )
    def test_num_words(self, vectors, words):
        assert pk.num_words(vectors) == words

    def test_num_words_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            pk.num_words(0)

    def test_tail_mask(self):
        assert pk.tail_mask(64) == pk.ALL_ONES
        assert pk.tail_mask(1) == np.uint64(1)
        assert pk.tail_mask(65) == np.uint64(1)
        assert pk.tail_mask(70) == np.uint64(0x3F)

    def test_zero_tail_clears_garbage(self):
        words = np.full(2, pk.ALL_ONES, dtype=np.uint64)
        pk.zero_tail(words, 70)
        assert words[0] == pk.ALL_ONES
        assert words[1] == np.uint64(0x3F)


class TestPackUnpack:
    @pytest.mark.parametrize("count", [1, 7, 63, 64, 65, 129, 1000])
    def test_bool_roundtrip(self, count):
        rng = np.random.default_rng(count)
        values = random_bits(rng, count)
        words = pk.pack_bool(values)
        assert words.dtype == np.uint64
        assert words.shape == (pk.num_words(count),)
        np.testing.assert_array_equal(pk.unpack_bool(words, count), values)

    def test_pack_bool_tail_is_zero(self):
        words = pk.pack_bool(np.ones(70, dtype=bool))
        assert words[1] == pk.tail_mask(70)

    def test_pack_bool_bit_order(self):
        # Vector v lives at bit v % 64 of word v // 64 (little-endian).
        values = np.zeros(65, dtype=bool)
        values[0] = values[3] = values[64] = True
        words = pk.pack_bool(values)
        assert words[0] == np.uint64(0b1001)
        assert words[1] == np.uint64(1)

    def test_pack_bool_rejects_matrix(self):
        with pytest.raises(ValueError, match="1-D"):
            pk.pack_bool(np.zeros((2, 2), dtype=bool))

    @pytest.mark.parametrize("vectors,signals", [(1, 1), (64, 3), (100, 5)])
    def test_matrix_roundtrip(self, vectors, signals):
        rng = np.random.default_rng(vectors * 31 + signals)
        matrix = rng.random((vectors, signals)) < 0.5
        words = pk.pack_matrix(matrix)
        assert words.shape == (signals, pk.num_words(vectors))
        np.testing.assert_array_equal(pk.unpack_matrix(words, vectors), matrix.T)

    def test_matrix_rows_match_columns(self):
        matrix = np.eye(4, dtype=bool)
        words = pk.pack_matrix(matrix)
        for j in range(4):
            np.testing.assert_array_equal(
                pk.unpack_bool(words[j], 4), matrix[:, j]
            )


class TestPiSpace:
    @pytest.mark.parametrize("n", [1, 2, 5, 6, 7, 9])
    def test_matches_minterm_bits(self, n):
        size = 1 << n
        idx = np.arange(size)
        words = pk.pi_space(n)
        assert words.shape == (n, pk.num_words(size))
        for i in range(n):
            np.testing.assert_array_equal(
                pk.unpack_bool(words[i], size), ((idx >> i) & 1).astype(bool)
            )

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            pk.pi_space(0)


class TestPopcount:
    @pytest.mark.parametrize("count", [1, 64, 321])
    def test_matches_numpy(self, count):
        rng = np.random.default_rng(count + 17)
        values = random_bits(rng, count)
        assert pk.popcount(pk.pack_bool(values)) == int(np.count_nonzero(values))

    def test_matrix_input(self):
        words = np.array([[1, 3], [7, 0]], dtype=np.uint64)
        assert pk.popcount(words) == 6


class TestEvalCover:
    def random_cover(self, rng, k, cubes):
        rows = rng.choice([0, 1, 2], size=(cubes, k), p=[0.3, 0.3, 0.4])
        return Cover(rows.astype(np.uint8), k)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dense_table(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, 7))
        cover = self.random_cover(rng, k, int(rng.integers(1, 5)))
        fanin_words = pk.pi_space(k)
        result = pk.eval_cover(cover, fanin_words, 1 << k)
        np.testing.assert_array_equal(
            pk.unpack_bool(result, 1 << k), cover.evaluate()
        )

    def test_empty_cover_is_constant_zero(self):
        result = pk.eval_cover(Cover.empty(2), pk.pi_space(2), 4)
        assert pk.popcount(result) == 0

    def test_tautology_cube_is_constant_one(self):
        cover = Cover.from_strings(["--"])
        result = pk.eval_cover(cover, pk.pi_space(2), 4)
        np.testing.assert_array_equal(pk.unpack_bool(result, 4), np.ones(4, bool))

    def test_does_not_mutate_fanins(self):
        cover = Cover.from_strings(["10", "01"])
        fanin_words = pk.pi_space(2)
        before = fanin_words.copy()
        pk.eval_cover(cover, fanin_words, 4)
        np.testing.assert_array_equal(fanin_words, before)

    def test_tail_stays_zero(self):
        # 70 vectors over a complementing cover: ~x must be re-masked.
        rng = np.random.default_rng(0)
        matrix = rng.random((70, 2)) < 0.5
        fanin_words = pk.pack_matrix(matrix)
        result = pk.eval_cover(Cover.from_strings(["00"]), fanin_words, 70)
        assert result[-1] & ~pk.tail_mask(70) == 0


class TestEvalTable:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_indexing(self, seed):
        rng = np.random.default_rng(100 + seed)
        k = int(rng.integers(1, 8))
        table = random_bits(rng, 1 << k)
        vectors = int(rng.integers(1, 200))
        matrix = rng.random((vectors, k)) < 0.5
        fanin_words = pk.pack_matrix(matrix)
        pattern = np.zeros(vectors, dtype=np.int64)
        for j in range(k):
            pattern |= matrix[:, j].astype(np.int64) << j
        result = pk.eval_table(table, fanin_words, vectors)
        np.testing.assert_array_equal(pk.unpack_bool(result, vectors), table[pattern])

    @pytest.mark.parametrize("value", [False, True])
    def test_zero_input_constant(self, value):
        result = pk.eval_table(np.array([value]), [], 70)
        expected = np.full(70, value, dtype=bool)
        np.testing.assert_array_equal(pk.unpack_bool(result, 70), expected)
        assert result[-1] & ~pk.tail_mask(70) == 0

    def test_size_validated(self):
        with pytest.raises(ValueError, match="table size"):
            pk.eval_table(np.zeros(3, dtype=bool), pk.pi_space(2), 4)


class TestPatternMasks:
    @pytest.mark.parametrize("seed", range(5))
    def test_masks_partition_vectors(self, seed):
        rng = np.random.default_rng(200 + seed)
        k = int(rng.integers(1, 6))
        vectors = int(rng.integers(1, 200))
        matrix = rng.random((vectors, k)) < 0.5
        fanin_words = pk.pack_matrix(matrix)
        pattern = np.zeros(vectors, dtype=np.int64)
        for j in range(k):
            pattern |= matrix[:, j].astype(np.int64) << j
        masks = pk.pattern_masks(fanin_words, vectors)
        assert masks.shape == (1 << k, pk.num_words(vectors))
        for p in range(1 << k):
            np.testing.assert_array_equal(
                pk.unpack_bool(masks[p], vectors), pattern == p
            )
        # A partition: each vector in exactly one mask, tails all zero.
        assert pk.popcount(masks) == vectors

    def test_zero_fanins(self):
        masks = pk.pattern_masks([], 5)
        assert masks.shape == (1, 1)
        assert pk.popcount(masks) == 5
