"""Randomized equivalence: packed engine vs the boolean reference oracles.

The packed simulators replaced the byte-per-vector bodies of
``LogicNetwork.evaluate``/``evaluate_vectors``, ``MappedNetlist.evaluate``
and ``Aig.evaluate``; the originals survive as ``*_reference`` methods.
These tests pin the packed paths to the references bit for bit, including
the degenerate shapes (constant nodes, zero-gate netlists, multi-output
covers) and the Monte-Carlo estimator's two evaluator kinds under a
shared seed.
"""

import numpy as np
import pytest

from repro.core.montecarlo import estimate_error_rate
from repro.espresso.cube import Cover
from repro.sim import engine as sim_engine
from repro.sim import packed as pk
from repro.synth.aig import Aig, aig_from_network
from repro.synth.library import generic_70nm_library
from repro.synth.netlist import GateInstance, MappedNetlist
from repro.synth.network import LogicNetwork


def random_multilevel_network(seed: int, num_pis: int = 5, levels: int = 4):
    """A random network whose later nodes read earlier nodes."""
    rng = np.random.default_rng(seed)
    names = [f"x{i}" for i in range(num_pis)]
    net = LogicNetwork(names)
    signals = list(names)
    for t in range(levels):
        k = int(rng.integers(1, min(4, len(signals)) + 1))
        fanins = [str(s) for s in rng.choice(signals, size=k, replace=False)]
        cubes = int(rng.integers(1, 4))
        rows = rng.choice([0, 1, 2], size=(cubes, k), p=[0.3, 0.3, 0.4])
        name = f"t{t}"
        net.add_node(name, fanins, Cover(rows.astype(np.uint8), k))
        signals.append(name)
    net.set_output("y0", signals[-1])
    net.set_output("y1", signals[-2])
    return net


class TestNetworkEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_exhaustive(self, seed):
        net = random_multilevel_network(seed)
        packed = net.evaluate()
        reference = net.evaluate_reference()
        assert packed.keys() == reference.keys()
        for name in reference:
            np.testing.assert_array_equal(packed[name], reference[name], err_msg=name)

    @pytest.mark.parametrize("seed", range(4))
    def test_explicit_vectors(self, seed):
        net = random_multilevel_network(seed + 50)
        rng = np.random.default_rng(seed)
        vectors = rng.random((137, len(net.primary_inputs))) < 0.5
        packed = net.evaluate_vectors(vectors)
        reference = net.evaluate_vectors_reference(vectors)
        for name in reference:
            np.testing.assert_array_equal(packed[name], reference[name], err_msg=name)

    def test_constant_nodes(self):
        net = LogicNetwork(["a"])
        net.add_node("zero", [], Cover.empty(0))
        net.add_node("one", ["a"], Cover.from_strings(["-"]))
        net.add_node("y", ["zero", "one", "a"], Cover.from_strings(["111", "001"]))
        net.set_output("out", "y")
        for name, table in net.evaluate_reference().items():
            np.testing.assert_array_equal(net.evaluate()[name], table)

    def test_output_table_multi_output(self):
        net = random_multilevel_network(99)
        table = net.output_table()
        reference = np.vstack(
            [net.evaluate_reference()[sig] for sig in net.outputs.values()]
        )
        np.testing.assert_array_equal(table, reference)

    def test_wide_node_uses_cube_kernel(self):
        """Nodes beyond the dense-table width limit take the cube path."""
        n = sim_engine._TABLE_WIDTH_LIMIT + 1
        names = [f"x{i}" for i in range(n)]
        net = LogicNetwork(names)
        net.add_node("t", names, Cover.from_strings(["1" * n, "0" + "-" * (n - 1)]))
        net.set_output("y", "t")
        rng = np.random.default_rng(0)
        vectors = rng.random((77, n)) < 0.5
        packed = net.evaluate_vectors(vectors)
        reference = net.evaluate_vectors_reference(vectors)
        np.testing.assert_array_equal(packed["t"], reference["t"])


class TestNetlistEquivalence:
    def random_netlist(self, seed: int):
        lib = generic_70nm_library()
        rng = np.random.default_rng(seed)
        netlist = MappedNetlist(lib, ["a", "b", "c"])
        netlist.constants["tie0"] = False
        netlist.constants["tie1"] = True
        signals = ["a", "b", "c", "tie0", "tie1"]
        cells = [c for c in lib.cells if c.num_pins <= len(signals)]
        for i in range(6):
            cell = cells[int(rng.integers(len(cells)))]
            inputs = [str(s) for s in rng.choice(signals, size=cell.num_pins, replace=False)]
            name = f"n{i}"
            netlist.gates.append(GateInstance(cell, name, inputs))
            signals.append(name)
        netlist.outputs["y"] = signals[-1]
        netlist.outputs["hi"] = "tie1"
        return netlist

    @pytest.mark.parametrize("seed", range(6))
    def test_exhaustive(self, seed):
        netlist = self.random_netlist(seed)
        packed = netlist.evaluate()
        reference = netlist.evaluate_reference()
        assert packed.keys() == reference.keys()
        for name in reference:
            np.testing.assert_array_equal(packed[name], reference[name], err_msg=name)

    def test_gateless_netlist(self):
        lib = generic_70nm_library()
        netlist = MappedNetlist(lib, ["a"])
        netlist.outputs["y"] = "a"
        for name, table in netlist.evaluate_reference().items():
            np.testing.assert_array_equal(netlist.evaluate()[name], table)


class TestAigEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_from_random_network(self, seed):
        net = random_multilevel_network(seed + 200)
        aig = aig_from_network(net)
        packed = aig.evaluate()
        reference = aig.evaluate_reference()
        assert packed.keys() == reference.keys()
        for name in reference:
            np.testing.assert_array_equal(packed[name], reference[name], err_msg=name)

    def test_constant_outputs(self):
        aig = Aig(2)
        a, b = aig.pi_lit(0), aig.pi_lit(1)
        aig.set_output("zero", aig.const0)
        aig.set_output("one", aig.const1)
        aig.set_output("nand", Aig.lit_not(aig.and_(a, b)))
        packed = aig.evaluate()
        reference = aig.evaluate_reference()
        for name in reference:
            np.testing.assert_array_equal(packed[name], reference[name], err_msg=name)

    def test_zero_pi_aig(self):
        aig = Aig(0)
        aig.set_output("k", aig.const1)
        packed = aig.evaluate()
        reference = aig.evaluate_reference()
        np.testing.assert_array_equal(packed["k"], reference["k"])


class TestMonteCarloAgreement:
    def test_packed_and_bool_paths_identical(self):
        """Both evaluator kinds consume the same packed draws, so a fixed
        seed gives bit-identical estimates -- not merely close ones."""
        net = random_multilevel_network(7)
        n = len(net.primary_inputs)

        def bool_evaluate(vectors):
            values = net.evaluate_vectors_reference(vectors)
            return np.vstack([values[sig] for sig in net.outputs.values()])

        packed_est = estimate_error_rate(
            None, n, samples=3000, rng=np.random.default_rng(42),
            packed_evaluate=sim_engine.packed_network_evaluator(net),
        )
        bool_est = estimate_error_rate(
            bool_evaluate, n, samples=3000, rng=np.random.default_rng(42)
        )
        assert packed_est.rate == bool_est.rate
        assert packed_est.samples == bool_est.samples == 3000

    def test_identical_with_source_filter(self):
        net = random_multilevel_network(11)
        n = len(net.primary_inputs)

        def bool_evaluate(vectors):
            values = net.evaluate_vectors_reference(vectors)
            return np.vstack([values[sig] for sig in net.outputs.values()])

        def admit(vectors):
            return vectors[:, 0] & vectors[:, 1]

        packed_est = estimate_error_rate(
            None, n, samples=2000, rng=np.random.default_rng(9),
            source_filter=admit,
            packed_evaluate=sim_engine.packed_network_evaluator(net),
        )
        bool_est = estimate_error_rate(
            bool_evaluate, n, samples=2000, rng=np.random.default_rng(9),
            source_filter=admit,
        )
        assert packed_est.rate == bool_est.rate
        assert packed_est.samples == bool_est.samples
