"""Tests for cone-restricted flip evaluation and the structure caches."""

import numpy as np
import pytest

from repro.espresso.cube import Cover
from repro.sim import packed as pk
from repro.sim.incremental import IncrementalNetworkSim
from repro.synth.network import LogicNetwork
from repro.synth.odc import (
    _evaluate_with_flip,
    internal_error_rate,
    node_flexibility,
)
from repro.synth.optimize import optimize_network

from .test_engine_equivalence import random_multilevel_network


def flip_reference(net, flip):
    """Boolean full-walk PO tables under a flip, packed for comparison."""
    values = net.evaluate_reference()
    return pk.pack_matrix(_evaluate_with_flip(net, values, flip).T)


class TestFlipOutputs:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_full_walk_on_every_signal(self, seed):
        net = random_multilevel_network(seed)
        sim = IncrementalNetworkSim(net)
        for name in [*net.primary_inputs, *net.nodes]:
            np.testing.assert_array_equal(
                sim.flip_outputs(name), flip_reference(net, name), err_msg=name
            )

    def test_flip_does_not_disturb_base_values(self):
        net = random_multilevel_network(3)
        sim = IncrementalNetworkSim(net)
        before = {name: words.copy() for name, words in sim.values.items()}
        for name in net.nodes:
            sim.flip_outputs(name)
        for name, words in before.items():
            np.testing.assert_array_equal(sim.values[name], words, err_msg=name)

    def test_cone_excludes_unaffected_outputs(self):
        """A PO outside the flipped node's cone aliases the base array."""
        net = LogicNetwork(["a", "b"])
        net.add_node("t", ["a"], Cover.from_strings(["1"]))
        net.add_node("u", ["b"], Cover.from_strings(["0"]))
        net.set_output("y_t", "t")
        net.set_output("y_u", "u")
        sim = IncrementalNetworkSim(net)
        flipped = sim.flip_outputs("t")
        base = sim.output_words()
        # y_u untouched, y_t complemented.
        np.testing.assert_array_equal(flipped[1], base[1])
        assert pk.popcount(flipped[0] ^ base[0]) == sim.num_vectors

    def test_flip_difference(self):
        net = random_multilevel_network(4)
        sim = IncrementalNetworkSim(net)
        for name in net.nodes:
            expected = np.bitwise_or.reduce(
                sim.output_words() ^ flip_reference(net, name), axis=0
            )
            np.testing.assert_array_equal(sim.flip_difference(name), expected)

    def test_from_bool_values_matches_fresh(self):
        net = random_multilevel_network(5)
        adopted = IncrementalNetworkSim.from_bool_values(net, net.evaluate_reference())
        fresh = IncrementalNetworkSim(net)
        for name in fresh.values:
            np.testing.assert_array_equal(adopted.values[name], fresh.values[name])
        np.testing.assert_array_equal(
            adopted.flip_outputs("t1"), fresh.flip_outputs("t1")
        )


class TestRecompute:
    def test_matches_fresh_simulation_after_rewrite(self):
        net = random_multilevel_network(8)
        sim = IncrementalNetworkSim(net)
        node = net.nodes["t1"]
        # Rewrite t1 to the complemented cover (same fanins).
        table = node.cover.evaluate()
        node.cover = Cover.from_minterms(
            len(node.fanins), [i for i in range(table.size) if not table[i]]
        )
        sim.recompute("t1")
        fresh = IncrementalNetworkSim(net)
        for name in fresh.values:
            np.testing.assert_array_equal(
                sim.values[name], fresh.values[name], err_msg=name
            )


class TestOdcConsistency:
    @pytest.mark.parametrize("seed", range(4))
    def test_node_flexibility_shared_sim(self, seed):
        """One shared simulator gives the same flexibilities as fresh ones."""
        net = random_multilevel_network(seed + 30)
        sim = IncrementalNetworkSim(net)
        for name in net.nodes:
            shared = node_flexibility(net, name, sim=sim)
            fresh = node_flexibility(net, name)
            np.testing.assert_array_equal(shared.phases, fresh.phases, err_msg=name)

    @pytest.mark.parametrize("seed", range(4))
    def test_internal_error_rate_vs_bool_reference(self, seed):
        net = random_multilevel_network(seed + 60)
        values = net.evaluate_reference()
        base = np.vstack([values[sig] for sig in net.outputs.values()])
        total = 0
        for name in net.nodes:
            flipped = _evaluate_with_flip(net, values, name)
            total += int(np.count_nonzero(np.any(base != flipped, axis=0)))
        expected = total / (len(net.nodes) * base.shape[1])
        assert internal_error_rate(net) == pytest.approx(expected)


class TestStructureCaches:
    def test_topological_order_cached_and_invalidated(self):
        net = random_multilevel_network(1)
        first = net.topological_order()
        assert net.topological_order() == first
        net.add_node("extra", ["x0"], Cover.from_strings(["1"]))
        assert "extra" in net.topological_order()

    def test_fanouts_cached_copy_is_safe(self):
        net = random_multilevel_network(2)
        fanouts = net.fanouts()
        for readers in fanouts.values():
            readers.append("corrupted")
        clean = net.fanouts()
        assert all("corrupted" not in readers for readers in clean.values())

    def test_sweep_dangling_invalidates(self):
        net = LogicNetwork(["a"])
        net.add_node("dead", ["a"], Cover.from_strings(["1"]))
        net.add_node("live", ["a"], Cover.from_strings(["0"]))
        net.set_output("y", "live")
        net.topological_order()  # populate the cache
        net.sweep_dangling()
        assert "dead" not in net.nodes
        assert list(net.topological_order()) == ["live"]

    def test_optimize_rewrites_keep_evaluation_correct(self):
        """Kernel/cube extraction rewrites fanins directly; the caches must
        be refreshed so packed evaluation still matches the function."""
        net = random_multilevel_network(13, num_pis=5, levels=3)
        reference = net.output_table().copy()
        optimize_network(net)
        np.testing.assert_array_equal(net.output_table(), reference)
        # And flips on the rewritten structure still match the full walk.
        sim = IncrementalNetworkSim(net)
        for name in list(net.nodes)[:3]:
            np.testing.assert_array_equal(
                sim.flip_outputs(name), flip_reference(net, name), err_msg=name
            )
