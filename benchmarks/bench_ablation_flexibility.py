"""A4 — Ablation: exhaustive vs simulation+SAT flexibility extraction.

The paper's Sec. 4 pipeline needs per-node don't cares; ref. [16] computes
them with simulation + satisfiability instead of enumeration.  This
benchmark runs both engines over every node of optimised multi-level
circuits and checks they extract *identical* flexibility, reporting the
DC volume each circuit exposes.
"""

import numpy as np
import pytest

from repro.benchgen.synthetic import generate_spec
from repro.core.truthtable import DC
from repro.espresso.minimize import minimize_spec
from repro.flows import format_table
from repro.synth.flexibility import node_flexibility_sat
from repro.synth.network import LogicNetwork
from repro.synth.odc import node_flexibility
from repro.synth.optimize import optimize_network

from conftest import emit, full_mode


def _subjects():
    count = 4 if full_mode() else 2
    return [
        generate_spec(f"flex{i}", 7, 3, target_cf=0.5 + 0.04 * i,
                      dc_fraction=0.5, seed=80 + i)
        for i in range(count)
    ]


def _run():
    rows = []
    for spec in _subjects():
        minimized = minimize_spec(spec)
        network = LogicNetwork.from_covers(
            list(spec.input_names), minimized.covers, list(spec.output_names)
        )
        optimize_network(network)
        nodes = 0
        agreements = 0
        total_dc = 0
        for name in list(network.nodes):
            if len(network.nodes[name].fanins) > 8:
                continue
            nodes += 1
            exhaustive = node_flexibility(network, name)
            via_sat = node_flexibility_sat(
                network, name, simulation_vectors=64,
                rng=np.random.default_rng(nodes),
            )
            if bool(np.array_equal(exhaustive.phases, via_sat.phases)):
                agreements += 1
            total_dc += int(np.count_nonzero(exhaustive.phases == DC))
        rows.append({
            "name": spec.name,
            "nodes": nodes,
            "agree": agreements,
            "dc": total_dc,
        })
    return rows


def test_flexibility_engines_agree(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["circuit", "nodes checked", "engines agree", "local DC entries"],
        [[r["name"], r["nodes"], r["agree"], r["dc"]] for r in rows],
    )
    emit("Ablation: exhaustive vs simulation+SAT flexibility", table)
    for r in rows:
        assert r["agree"] == r["nodes"], f"{r['name']}: engines disagree"
        assert r["nodes"] > 0
