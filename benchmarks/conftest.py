"""Shared infrastructure for the experiment benchmarks.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  By default the harness runs a reduced
but representative configuration so ``pytest benchmarks/ --benchmark-only``
finishes in minutes; set ``REPRO_FULL=1`` to run the complete Table 1
roster and the full sweep grids.

Each benchmark prints its regenerated table (run with ``-s`` to see it
live) and also appends it to ``benchmarks/results.txt`` so the output
survives pytest's capture.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_FILE = Path(__file__).parent / "results.txt"

ROSTER_FULL = [
    "bench", "fout", "p3", "p1", "exp", "test4",
    "ex1010", "exam", "t4", "random1", "random2", "random3",
]
ROSTER_FAST = ["bench", "fout", "p3", "p1", "exp", "test4", "exam", "t4", "random3"]


def full_mode() -> bool:
    """True when REPRO_FULL=1 requests the complete experiment grid."""
    return os.environ.get("REPRO_FULL", "0") == "1"


def roster() -> list[str]:
    """The benchmark roster for the current mode."""
    return ROSTER_FULL if full_mode() else ROSTER_FAST


def fractions() -> list[float]:
    """Ranking-fraction grid for the current mode."""
    if full_mode():
        return [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    return [0.0, 0.5, 1.0]


def emit(title: str, text: str) -> None:
    """Print a regenerated artefact and append it to the results file."""
    block = f"\n===== {title} =====\n{text}\n"
    print(block)
    with open(RESULTS_FILE, "a", encoding="utf-8") as handle:
        handle.write(block)


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    """Start each benchmark session with a clean results file."""
    if RESULTS_FILE.exists():
        RESULTS_FILE.unlink()
    yield
