"""A4 — SAT-complete internal don't-cares vs the window-limited extractor.

Runs the ``complete_dc`` machinery (simulation-propose / SAT-confirm,
see ``repro/synth/flexibility.py``) over multi-level circuits and
compares the confirmed DC minterm count against the window-limited
extractor at depth 1.  The claims under test: the complete extractor
confirms **strictly more** DC minterms than the windowed one, and the
reassignment never changes a primary output.

A second experiment measures the batched/parallel flexibility engine
against its own legacy query plan (one cube-assumption solve per
candidate, no encoding reuse, no counterexample recycling) on a
SAT-bound subject: a disjoint union of four independent cones, which
also gives the wave scheduler four-wide groups to fan out across
worker processes.  Batching + caching + recycling must buy >= 1.3x
serial wall clock, and the parallel confirmation phase >= 3x at four
jobs (timing asserted only when the machine actually has the CPUs),
with the DC counts and the rewritten networks bit-identical throughout.

Results (DC counts, deltas, per-circuit wall/solver seconds and the
``sat.*`` query counters) persist to ``BENCH_complete_dc.json`` at the
repo root so the trajectory is tracked across PRs.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.benchgen.synthetic import generate_spec
from repro.espresso.minimize import minimize_spec
from repro.flows import format_table
from repro.obs import metrics as obs_metrics
from repro.perf.pool import available_cpus, pool_enabled
from repro.synth.flexibility import reassign_complete_dcs
from repro.synth.network import LogicNetwork
from repro.synth.optimize import optimize_network

from conftest import emit, full_mode

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_complete_dc.json"

WINDOW_LEVELS = 1
"""Baseline window depth.  Depth 1 is the cheapest sound extractor; the
complete extractor must dominate it on every circuit."""

SAT_COUNTERS = (
    "sat.queries", "sat.confirmations", "sat.refutations", "sat.fallbacks",
    "sat.batch_queries", "sat.cex_recycled", "sat.cone_cache_hits",
)

SERIAL_SPEEDUP_FLOOR = 1.3
"""Minimum end-to-end speedup the engine's batching + encoding caching +
counterexample recycling must buy over the legacy one-query-per-solve
plan, serially, on the SAT-bound perf subject."""

PARALLEL_CONFIRM_FLOOR = 3.0
"""Minimum confirmation-phase speedup at 4 jobs.  The apply phase
(ESPRESSO cover rebuilds) is inherently sequential, so the parallel
claim is pinned on the phase the workers actually execute."""

PERF_JOBS = 4


def _subjects():
    count = 6 if full_mode() else 3
    return [
        generate_spec(f"nodal{i}", 8, 5, target_cf=0.45 + 0.02 * i,
                      dc_fraction=0.5, seed=60 + i)
        for i in range(count)
    ]


def _build_network(spec):
    minimized = minimize_spec(spec)
    network = LogicNetwork.from_covers(
        list(spec.input_names), minimized.covers, list(spec.output_names)
    )
    optimize_network(network)
    return network


def _update_bench_file(**sections):
    """Merge *sections* into BENCH_complete_dc.json (tests are
    independent; each owns its keys)."""
    data = {}
    if BENCH_FILE.exists():
        data = json.loads(BENCH_FILE.read_text())
    data.update(sections)
    BENCH_FILE.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _run():
    counters_before = {n: obs_metrics.counter(n).value for n in SAT_COUNTERS}
    rows = []
    for spec in _subjects():
        network = _build_network(spec)
        reference = network.output_table().copy()
        queries_before = obs_metrics.counter("sat.queries").value
        solver_before = obs_metrics.counter("sat.solve_seconds").value
        started = time.perf_counter()
        report = reassign_complete_dcs(
            network, policy="cfactor", threshold=1.0,
            window_levels=WINDOW_LEVELS,
            rng=np.random.default_rng(7),
        )
        wall = time.perf_counter() - started
        solver = obs_metrics.counter("sat.solve_seconds").value - solver_before
        queries = obs_metrics.counter("sat.queries").value - queries_before
        assert bool(np.array_equal(network.output_table(), reference))
        rows.append({
            "name": spec.name,
            "nodes": report.nodes_considered,
            "complete": report.complete_dc_minterms,
            "window": report.window_dc_minterms,
            "delta": report.dc_delta,
            "fallback": report.sat_fallback_nodes,
            "before": report.error_rate_before,
            "after": report.error_rate_after,
            "wall_seconds": round(wall, 3),
            "solver_seconds": round(solver, 3),
            "queries_per_second": round(queries / wall, 1) if wall else None,
        })
    sat = {
        n: obs_metrics.counter(n).value - counters_before[n]
        for n in SAT_COUNTERS
    }
    return rows, sat


def test_complete_dc_dominates_window(benchmark):
    rows, sat = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["circuit", "nodes", "complete DCs", f"window-{WINDOW_LEVELS} DCs",
         "delta", "fallback nodes", "wall s", "solver s", "queries/s"],
        [[r["name"], r["nodes"], r["complete"], r["window"], r["delta"],
          r["fallback"], r["wall_seconds"], r["solver_seconds"],
          r["queries_per_second"]]
         for r in rows],
    )
    emit("SAT-complete DCs vs window-limited extractor", table)

    # The complete extractor must dominate the window baseline in
    # aggregate and strictly beat it somewhere: the whole point of
    # paying for SAT is flexibility the window cannot see.
    assert all(r["delta"] >= 0 for r in rows)
    assert sum(r["delta"] for r in rows) > 0
    # The SAT path actually ran (queries issued, some confirmed).
    assert sat["sat.queries"] > 0
    assert sat["sat.confirmations"] > 0

    _update_bench_file(
        window_levels=WINDOW_LEVELS,
        circuits=rows,
        sat_counters=sat,
        total_complete_dc_minterms=sum(r["complete"] for r in rows),
        total_window_dc_minterms=sum(r["window"] for r in rows),
        total_dc_delta=sum(r["delta"] for r in rows),
    )


# --------------------------------------------------------------- perf

def _perf_subject():
    """Disjoint union of four independent 8-PI cones.

    32 PIs total, so the stage runs in its wide-network mode (sampled
    simulation + final SAT miter), and the four cones share no signals,
    so the wave scheduler emits four-wide groups — the parallel path's
    best case and the serial path's representative SAT-bound load.
    """
    cones = [
        _build_network(
            generate_spec(f"cone{i}", 8, 4, target_cf=0.5,
                          dc_fraction=0.4, seed=90 + i)
        )
        for i in range(4)
    ]
    pis = [f"c{i}_{p}" for i, net in enumerate(cones)
           for p in net.primary_inputs]
    union = LogicNetwork(pis)
    for i, net in enumerate(cones):
        rename = {p: f"c{i}_{p}" for p in net.primary_inputs}
        for name in net.topological_order():
            node = net.nodes[name]
            new_name = f"c{i}_{name}"
            rename[name] = new_name
            union.add_node(
                new_name, [rename[f] for f in node.fanins], node.cover
            )
        for out, sig in net.outputs.items():
            union.set_output(f"c{i}_{out}", rename[sig])
    return union


def _perf_run(jobs=1, legacy=False):
    """One reassignment over the perf subject; timing + identity data.

    ``simulation_vectors=64`` leaves real work for SAT (256 proposes
    most candidates away) and ``query_budget=4096`` admits every node
    (fallback nodes would burn conflict budget in *both* plans and
    blur the comparison).
    """
    network = _perf_subject()
    kwargs = dict(
        policy="cfactor", threshold=1.0, window_levels=WINDOW_LEVELS,
        simulation_vectors=64, query_budget=4096,
        rng=np.random.default_rng(7), jobs=jobs,
    )
    if legacy:
        kwargs.update(batch_size=1, reuse_encodings=False,
                      recycle_counterexamples=False)
    solver_before = obs_metrics.counter("sat.solve_seconds").value
    confirm_before = obs_metrics.counter("complete_dc.confirm_seconds").value
    started = time.perf_counter()
    report = reassign_complete_dcs(network, **kwargs)
    wall = time.perf_counter() - started
    return {
        "wall": wall,
        "solver": obs_metrics.counter("sat.solve_seconds").value
        - solver_before,
        "confirm": obs_metrics.counter("complete_dc.confirm_seconds").value
        - confirm_before,
        "report": report,
        "snapshot": {
            name: (tuple(node.fanins), node.cover.cubes.tobytes())
            for name, node in network.nodes.items()
        },
    }


def _counts(report):
    return (report.complete_dc_minterms, report.window_dc_minterms,
            report.nodes_changed, report.dc_entries_assigned)


def test_complete_dc_engine_speedup(benchmark):
    # Interleaved min-of-2: machine noise on this scale exceeds the
    # margin a single pair of runs would leave.
    runs = {"legacy": [], "engine": []}
    def _once():
        for _ in range(2):
            runs["legacy"].append(_perf_run(legacy=True))
            runs["engine"].append(_perf_run())
        return runs
    benchmark.pedantic(_once, rounds=1, iterations=1)
    legacy = min(runs["legacy"], key=lambda r: r["wall"])
    engine = min(runs["engine"], key=lambda r: r["wall"])

    # Identical results first — the speedup must be a pure query-plan
    # win, not a different answer.
    for other in runs["legacy"] + runs["engine"]:
        assert _counts(other["report"]) == _counts(engine["report"])
        assert other["snapshot"] == engine["snapshot"]

    serial_speedup = legacy["wall"] / engine["wall"]
    perf = {
        "subject": "4x disjoint 8-PI cones",
        "jobs": PERF_JOBS,
        "legacy_wall_seconds": round(legacy["wall"], 3),
        "legacy_solver_seconds": round(legacy["solver"], 3),
        "engine_wall_seconds": round(engine["wall"], 3),
        "engine_solver_seconds": round(engine["solver"], 3),
        "serial_speedup": round(serial_speedup, 2),
        "serial_floor": SERIAL_SPEEDUP_FLOOR,
        "parallel_confirm_floor": PARALLEL_CONFIRM_FLOOR,
        "parallel_confirm_speedup": None,
        "parallel_wall_seconds": None,
    }

    if pool_enabled():
        parallel = _perf_run(jobs=PERF_JOBS)
        # Parallel output is bit-identical to serial, always — even on
        # a single CPU, where only the timing claim is vacuous.
        assert _counts(parallel["report"]) == _counts(engine["report"])
        assert parallel["snapshot"] == engine["snapshot"]
        assert parallel["report"].parallel_groups > 0
        perf["parallel_wall_seconds"] = round(parallel["wall"], 3)
        confirm_speedup = (
            engine["confirm"] / parallel["confirm"]
            if parallel["confirm"] else None
        )
        perf["parallel_confirm_speedup"] = (
            round(confirm_speedup, 2) if confirm_speedup else None
        )
        if available_cpus() >= PERF_JOBS:
            assert confirm_speedup >= PARALLEL_CONFIRM_FLOOR, perf

    emit("flexibility engine vs legacy query plan", json.dumps(perf, indent=2))
    assert serial_speedup >= SERIAL_SPEEDUP_FLOOR, perf
    _update_bench_file(perf=perf)


@pytest.mark.skipif(
    available_cpus() < PERF_JOBS or not pool_enabled(),
    reason=f"needs {PERF_JOBS} CPUs and the warm pool",
)
def test_complete_dc_speedup_floor():
    """CI gate: parallel confirmation at 4 jobs is at least 2x serial.

    A deliberately lower floor than the benchmark's 3x — CI runners
    are shared and slow, and this test exists to catch the parallel
    path silently serialising, not to certify peak speedup.
    """
    serial = _perf_run()
    parallel = _perf_run(jobs=PERF_JOBS)
    assert _counts(parallel["report"]) == _counts(serial["report"])
    assert parallel["snapshot"] == serial["snapshot"]
    assert parallel["report"].parallel_groups > 0
    assert serial["confirm"] >= 2.0 * parallel["confirm"], (
        serial["confirm"], parallel["confirm"]
    )
