"""A4 — SAT-complete internal don't-cares vs the window-limited extractor.

Runs the ``complete_dc`` machinery (simulation-propose / SAT-confirm,
see ``repro/synth/flexibility.py``) over multi-level circuits and
compares the confirmed DC minterm count against the window-limited
extractor at depth 1.  The claims under test: the complete extractor
confirms **strictly more** DC minterms than the windowed one, and the
reassignment never changes a primary output.

Results (DC counts, deltas and the ``sat.*`` query counters) persist to
``BENCH_complete_dc.json`` at the repo root so the trajectory is tracked
across PRs.
"""

import json
from pathlib import Path

import numpy as np

from repro.benchgen.synthetic import generate_spec
from repro.espresso.minimize import minimize_spec
from repro.flows import format_table
from repro.obs import metrics as obs_metrics
from repro.synth.flexibility import reassign_complete_dcs
from repro.synth.network import LogicNetwork
from repro.synth.optimize import optimize_network

from conftest import emit, full_mode

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_complete_dc.json"

WINDOW_LEVELS = 1
"""Baseline window depth.  Depth 1 is the cheapest sound extractor; the
complete extractor must dominate it on every circuit."""

SAT_COUNTERS = (
    "sat.queries", "sat.confirmations", "sat.refutations", "sat.fallbacks",
)


def _subjects():
    count = 6 if full_mode() else 3
    return [
        generate_spec(f"nodal{i}", 8, 5, target_cf=0.45 + 0.02 * i,
                      dc_fraction=0.5, seed=60 + i)
        for i in range(count)
    ]


def _run():
    counters_before = {n: obs_metrics.counter(n).value for n in SAT_COUNTERS}
    rows = []
    for spec in _subjects():
        minimized = minimize_spec(spec)
        network = LogicNetwork.from_covers(
            list(spec.input_names), minimized.covers, list(spec.output_names)
        )
        optimize_network(network)
        reference = network.output_table().copy()
        report = reassign_complete_dcs(
            network, policy="cfactor", threshold=1.0,
            window_levels=WINDOW_LEVELS,
            rng=np.random.default_rng(7),
        )
        assert bool(np.array_equal(network.output_table(), reference))
        rows.append({
            "name": spec.name,
            "nodes": report.nodes_considered,
            "complete": report.complete_dc_minterms,
            "window": report.window_dc_minterms,
            "delta": report.dc_delta,
            "fallback": report.sat_fallback_nodes,
            "before": report.error_rate_before,
            "after": report.error_rate_after,
        })
    sat = {
        n: obs_metrics.counter(n).value - counters_before[n]
        for n in SAT_COUNTERS
    }
    return rows, sat


def test_complete_dc_dominates_window(benchmark):
    rows, sat = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["circuit", "nodes", "complete DCs", f"window-{WINDOW_LEVELS} DCs",
         "delta", "fallback nodes", "internal error before", "after"],
        [[r["name"], r["nodes"], r["complete"], r["window"], r["delta"],
          r["fallback"], round(r["before"], 4), round(r["after"], 4)]
         for r in rows],
    )
    emit("SAT-complete DCs vs window-limited extractor", table)

    # The complete extractor must dominate the window baseline in
    # aggregate and strictly beat it somewhere: the whole point of
    # paying for SAT is flexibility the window cannot see.
    assert all(r["delta"] >= 0 for r in rows)
    assert sum(r["delta"] for r in rows) > 0
    # The SAT path actually ran (queries issued, some confirmed).
    assert sat["sat.queries"] > 0
    assert sat["sat.confirmations"] > 0

    BENCH_FILE.write_text(json.dumps({
        "window_levels": WINDOW_LEVELS,
        "circuits": rows,
        "sat_counters": sat,
        "total_complete_dc_minterms": sum(r["complete"] for r in rows),
        "total_window_dc_minterms": sum(r["window"] for r in rows),
        "total_dc_delta": sum(r["delta"] for r in rows),
    }, indent=2, sort_keys=True) + "\n")
