"""T3 — Table 3: min-max reliability estimates.

For every roster benchmark: the exact achievable error band, the
signal-probability (Gaussian) estimate, the border-count (Poisson)
estimate, plus the rates achieved by conventional and LC^f-based
assignment and their distance above the exact minimum.

The paper's shape: signal-based estimates consistently overshoot the exact
band; border-based estimates track/contain it; the LC^f rates sit at or
below the conventional rates.
"""

import numpy as np
import pytest

from repro.benchgen import mcnc_benchmark
from repro.flows import format_table, table3_row

from conftest import emit, roster


def _build():
    return [table3_row(mcnc_benchmark(name)) for name in roster()]


def test_table3(benchmark):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    table = format_table(
        ["name", "gates", "exact lo", "exact hi", "sig lo", "sig hi",
         "brd lo", "brd hi", "conv", "conv d%", "LCf", "LCf d%"],
        [
            [r.benchmark, r.gates,
             round(r.exact.lo, 3), round(r.exact.hi, 3),
             round(r.signal.lo, 3), round(r.signal.hi, 3),
             round(r.border.lo, 3), round(r.border.hi, 3),
             round(r.conventional_rate, 3), round(r.conventional_diff_pct, 1),
             round(r.lcf_rate, 3), round(r.lcf_diff_pct, 1)]
            for r in rows
        ],
    )
    emit("Table 3: min-max reliability estimates", table)

    overshoots = 0
    brackets = 0
    for r in rows:
        # Achieved rates live inside the exact band.
        assert r.exact.lo - 1e-9 <= r.conventional_rate <= r.exact.hi + 1e-9
        assert r.exact.lo - 1e-9 <= r.lcf_rate <= r.exact.hi + 1e-9
        if r.signal.lo > r.exact.lo and r.signal.hi > r.exact.hi:
            overshoots += 1
        slack = 1.5 / 8  # one neighbour of slack, as in the unit tests
        if r.border.lo <= r.exact.lo + slack and r.border.hi >= r.exact.hi - slack:
            brackets += 1
    # Paper: signal-based "consistently overshoots"; border-based
    # "consistently contains".  Require a strong majority of rows.
    assert overshoots >= 0.75 * len(rows)
    assert brackets >= 0.75 * len(rows)
    # Mean achieved rates: LC^f at or below conventional.
    mean_conv = float(np.mean([r.conventional_diff_pct for r in rows]))
    mean_lcf = float(np.mean([r.lcf_diff_pct for r in rows]))
    assert mean_lcf <= mean_conv + 2.0
