"""F6 — Fig. 6: area vs error-rate trajectories per complexity family.

Synthetic families with designated complexity factors (60 % DC), swept
through the ranking fractions; each family traces a trajectory in the
(normalised error, normalised area) plane.  The paper's shape:

(i)   high-C^f families have the largest error-rate range *and* the
      largest area overheads;
(ii)  lower-C^f families buy reliability much more cheaply;
(iii) the cheapest families approach (or achieve) simultaneous
      improvements.
"""

import numpy as np
import pytest

from repro.flows import family_tradeoff, format_table

from conftest import emit, full_mode


def _families():
    if full_mode():
        return dict(
            num_inputs=11,
            num_outputs=11,
            complexity_factors=[0.45, 0.55, 0.65, 0.75, 0.85],
            functions_per_family=10,
            fractions=[0.0, 0.25, 0.5, 0.75, 1.0],
        )
    return dict(
        num_inputs=9,
        num_outputs=5,
        complexity_factors=[0.45, 0.55, 0.68],
        functions_per_family=3,
        fractions=[0.0, 0.5, 1.0],
    )


def _sweep():
    return family_tradeoff(dc_fraction=0.6, objective="power", seed=6, **_families())


def test_fig6_area_vs_error(benchmark):
    trajectories = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for cf, points in sorted(trajectories.items()):
        for point in points:
            rows.append([
                f"Cf={cf:.2f}",
                point["fraction"],
                round(point["error_rate"], 3),
                round(point["area"], 3),
            ])
    table = format_table(["family", "fraction", "error (norm)", "area (norm)"], rows)
    emit("Fig. 6: area vs error-rate trajectories by C^f family", table)

    cfs = sorted(trajectories)
    assert len(cfs) >= 2, "too many degenerate families to compare"
    final = {cf: trajectories[cf][-1] for cf in cfs}
    # (i) the highest-C^f family pays the largest area overhead at full
    # assignment; (ii) the lowest-C^f family pays the least.
    assert final[cfs[-1]]["area"] >= final[cfs[0]]["area"] - 0.05
    # Reliability improves for every family at full assignment.
    for cf in cfs:
        assert final[cf]["error_rate"] < 1.0
