"""P1 — Substrate performance micro-benchmarks.

Throughput of the load-bearing substrate pieces (ESPRESSO, the BDD
manager, the technology mapper, the reliability metrics).  These are true
pytest-benchmark timings (multiple rounds), useful for catching
performance regressions in the algorithms everything else sweeps over.

Results are also persisted to ``BENCH_substrate.json`` at the repo root
(see :data:`BENCH_FILE`), so the perf trajectory is tracked across PRs:
each run rewrites the file with the current machine's numbers plus the
speedup against the recorded seed-commit baseline.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bdd import BddManager
from repro.benchgen import mcnc_benchmark
from repro.benchgen.synthetic import generate_spec
from repro.core.complexity import local_complexity_factor
from repro.core.reliability import error_events
from repro.espresso.cube import Cover
from repro.espresso.minimize import espresso
from repro.flows.sweep import fraction_sweep
from repro.perf import configure_cache, reset_cache
from repro.synth.library import generic_70nm_library
from repro.synth.mapping import map_graph
from repro.synth.network import LogicNetwork
from repro.synth.subject import build_subject_graph

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"

SEED_ESPRESSO_N9_SECONDS = 0.148
"""ESPRESSO wall-clock on the n=9 random function at the seed commit
(pre bit-parallel kernels), measured on the reference container."""

_RESULTS: dict = {}


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timings(benchmark):
    """(mean, min) seconds, or (None, None) under ``--benchmark-disable``."""
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return None, None
    return stats.stats.mean, stats.stats.min


@pytest.fixture(scope="module", autouse=True)
def _persist_results():
    """Write everything the benchmarks recorded to BENCH_substrate.json."""
    from repro.obs import collect_manifest

    _RESULTS.clear()
    _RESULTS["generated_by"] = "benchmarks/bench_substrate_perf.py"
    _RESULTS["cpus"] = _available_cpus()
    manifest = collect_manifest("bench_substrate_perf")
    start = time.perf_counter()
    yield
    if len(_RESULTS) > 2:
        # Provenance: which revision/library versions produced the numbers.
        manifest.duration_seconds = time.perf_counter() - start
        manifest.exit_status = 0
        _RESULTS["manifest"] = manifest.to_dict()
        BENCH_FILE.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def random_function():
    rng = np.random.default_rng(0)
    n = 9
    phases = rng.choice(np.array([0, 1, 2], np.uint8), size=1 << n, p=[0.3, 0.3, 0.4])
    on = Cover.from_minterms(n, np.flatnonzero(phases == 1))
    dc = Cover.from_minterms(n, np.flatnonzero(phases == 2))
    return on, dc


def test_espresso_throughput(benchmark, random_function):
    """Cold-path ESPRESSO throughput (memoisation disabled while timing)."""
    on, dc = random_function

    def run_cold():
        configure_cache(enabled=False)
        try:
            return espresso(on, dc)
        finally:
            configure_cache(enabled=True)

    cover = benchmark(run_cold)
    assert cover.num_cubes > 0
    mean, fastest = _timings(benchmark)
    if fastest is None:
        return
    # Judge the speedup on the min: on a loaded box the mean absorbs
    # scheduler noise, while the min tracks the actual cost of the kernels.
    speedup = SEED_ESPRESSO_N9_SECONDS / fastest
    _RESULTS["espresso_n9"] = {
        "mean_seconds": mean,
        "min_seconds": fastest,
        "seed_baseline_seconds": SEED_ESPRESSO_N9_SECONDS,
        "speedup_vs_seed": speedup,
    }
    assert speedup >= 3.0, (
        f"packed kernels regressed: {speedup:.2f}x vs seed baseline "
        f"({fastest * 1e3:.1f} ms against {SEED_ESPRESSO_N9_SECONDS * 1e3:.0f} ms)"
    )


def test_espresso_cached_throughput(benchmark, random_function):
    """Warm-path throughput: identical problem served from the memo."""
    on, dc = random_function
    reset_cache()
    espresso(on, dc)  # populate
    cover = benchmark(espresso, on, dc)
    assert cover.num_cubes > 0
    mean, _ = _timings(benchmark)
    if mean is not None:
        _RESULTS["espresso_n9_cached"] = {"mean_seconds": mean}


def test_parallel_sweep_wallclock():
    """10-point fraction sweep: ``jobs=4`` vs serial wall-clock.

    Both timings land in BENCH_substrate.json.  The parallel-beats-serial
    assertion only fires when the machine actually has more than one CPU —
    on a single-core container process fan-out cannot win.
    """
    spec = generate_spec(
        "sweepbench", 10, 8, target_cf=0.65, dc_fraction=0.5, seed=7
    )
    fractions = [i / 9 for i in range(10)]
    # Parallel first: the workers' minimisation caches die with the pool,
    # so neither timing inherits warm state from the other.
    reset_cache()
    start = time.perf_counter()
    parallel = fraction_sweep(spec, fractions, objective="area", jobs=4)
    parallel_seconds = time.perf_counter() - start
    reset_cache()
    start = time.perf_counter()
    serial = fraction_sweep(spec, fractions, objective="area", jobs=1)
    serial_seconds = time.perf_counter() - start
    assert serial == parallel  # deterministic ordering, identical results
    cpus = _available_cpus()
    _RESULTS["fraction_sweep_10pt"] = {
        "points": len(fractions),
        "jobs": 4,
        "serial_seconds": serial_seconds,
        "parallel_jobs4_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
    }
    if cpus > 1:
        assert parallel_seconds < serial_seconds, (
            f"jobs=4 ({parallel_seconds:.2f}s) should beat serial "
            f"({serial_seconds:.2f}s) on {cpus} CPUs"
        )


def test_bdd_build_throughput(benchmark):
    rng = np.random.default_rng(1)
    table = rng.random(1 << 12) < 0.5

    def build():
        manager = BddManager(12)
        return manager, manager.from_truth_table(table)

    manager, ref = benchmark(build)
    assert manager.sat_count(ref) == int(table.sum())
    mean, _ = _timings(benchmark)
    if mean is not None:
        _RESULTS["bdd_build_n12"] = {"mean_seconds": mean}


def test_mapper_throughput(benchmark):
    spec = mcnc_benchmark("bench")
    from repro.espresso.minimize import minimize_spec
    from repro.synth.optimize import optimize_network

    minimized = minimize_spec(spec)
    network = LogicNetwork.from_covers(
        list(spec.input_names), minimized.covers, list(spec.output_names)
    )
    optimize_network(network)
    graph = build_subject_graph(network)
    library = generic_70nm_library()
    netlist = benchmark(map_graph, graph, library, mode="area")
    assert netlist.num_gates > 0
    mean, _ = _timings(benchmark)
    if mean is not None:
        _RESULTS["mapper_bench"] = {"mean_seconds": mean}


def test_reliability_metric_throughput(benchmark):
    rng = np.random.default_rng(2)
    phases = rng.choice(np.array([0, 1, 2], np.uint8), size=(12, 1 << 12),
                        p=[0.25, 0.25, 0.5])
    events = benchmark(error_events, phases)
    assert int(np.sum(events)) >= 0


def test_lcf_metric_throughput(benchmark):
    rng = np.random.default_rng(3)
    phases = rng.choice(np.array([0, 1, 2], np.uint8), size=(12, 1 << 12),
                        p=[0.25, 0.25, 0.5])
    lcf = benchmark(local_complexity_factor, phases)
    assert lcf.shape == phases.shape
