"""P1 — Substrate performance micro-benchmarks.

Throughput of the load-bearing substrate pieces (ESPRESSO, the BDD
manager, the technology mapper, the reliability metrics).  These are true
pytest-benchmark timings (multiple rounds), useful for catching
performance regressions in the algorithms everything else sweeps over.

Results are also persisted to ``BENCH_substrate.json`` at the repo root
(see :data:`BENCH_FILE`), so the perf trajectory is tracked across PRs:
each run rewrites the file with the current machine's numbers plus the
speedup against the recorded seed-commit baseline.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bdd import BddManager
from repro.benchgen import mcnc_benchmark
from repro.benchgen.synthetic import generate_spec
from repro.core.complexity import local_complexity_factor
from repro.core.reliability import error_events
from repro.espresso.cube import Cover
from repro.espresso.minimize import espresso
from repro.flows.sweep import fraction_sweep
from repro.perf import configure_cache, reset_cache
from repro.synth.library import generic_70nm_library
from repro.synth.mapping import map_graph
from repro.synth.network import LogicNetwork
from repro.synth.subject import build_subject_graph

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"

SEED_ESPRESSO_N9_SECONDS = 0.148
"""ESPRESSO wall-clock on the n=9 random function at the seed commit
(pre bit-parallel kernels), measured on the reference container."""

_RESULTS: dict = {}


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timings(benchmark):
    """(mean, min) seconds, or (None, None) under ``--benchmark-disable``."""
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return None, None
    return stats.stats.mean, stats.stats.min


@pytest.fixture(scope="module", autouse=True)
def _persist_results():
    """Write everything the benchmarks recorded to BENCH_substrate.json.

    The run also lands in the telemetry ledger via :class:`ObsSession`
    (benchmark numbers under ``extra``), so ``repro obs regressions``
    can gate bench-vs-bench drift the same way it gates sweeps.
    """
    from repro.obs import ObsSession

    _RESULTS.clear()
    _RESULTS["generated_by"] = "benchmarks/bench_substrate_perf.py"
    _RESULTS["cpus"] = _available_cpus()
    session = ObsSession("bench_substrate_perf")
    with session:
        yield
        session.exit_status = 0
        if len(_RESULTS) > 2:
            session.extra = {"bench": {
                key: value for key, value in _RESULTS.items()
                if isinstance(value, dict)
            }}
    if len(_RESULTS) > 2:
        # Provenance: which revision/library versions produced the numbers.
        _RESULTS["manifest"] = session.manifest.to_dict()
        # Merge over the existing file so a partial run (e.g. the CI
        # ``--quick`` smoke) refreshes its own entries without dropping
        # numbers it did not measure.
        merged: dict = {}
        if BENCH_FILE.exists():
            try:
                merged = json.loads(BENCH_FILE.read_text())
            except json.JSONDecodeError:
                merged = {}
        merged.update(_RESULTS)
        BENCH_FILE.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def random_function():
    rng = np.random.default_rng(0)
    n = 9
    phases = rng.choice(np.array([0, 1, 2], np.uint8), size=1 << n, p=[0.3, 0.3, 0.4])
    on = Cover.from_minterms(n, np.flatnonzero(phases == 1))
    dc = Cover.from_minterms(n, np.flatnonzero(phases == 2))
    return on, dc


def test_espresso_throughput(benchmark, random_function):
    """Cold-path ESPRESSO throughput (memoisation disabled while timing)."""
    on, dc = random_function

    def run_cold():
        configure_cache(enabled=False)
        try:
            return espresso(on, dc)
        finally:
            configure_cache(enabled=True)

    cover = benchmark(run_cold)
    assert cover.num_cubes > 0
    mean, fastest = _timings(benchmark)
    if fastest is None:
        return
    # Judge the speedup on the min: on a loaded box the mean absorbs
    # scheduler noise, while the min tracks the actual cost of the kernels.
    speedup = SEED_ESPRESSO_N9_SECONDS / fastest
    _RESULTS["espresso_n9"] = {
        "mean_seconds": mean,
        "min_seconds": fastest,
        "seed_baseline_seconds": SEED_ESPRESSO_N9_SECONDS,
        "speedup_vs_seed": speedup,
    }
    assert speedup >= 3.0, (
        f"packed kernels regressed: {speedup:.2f}x vs seed baseline "
        f"({fastest * 1e3:.1f} ms against {SEED_ESPRESSO_N9_SECONDS * 1e3:.0f} ms)"
    )


def test_espresso_cached_throughput(benchmark, random_function):
    """Warm-path throughput: identical problem served from the memo."""
    on, dc = random_function
    reset_cache()
    espresso(on, dc)  # populate
    cover = benchmark(espresso, on, dc)
    assert cover.num_cubes > 0
    mean, _ = _timings(benchmark)
    if mean is not None:
        _RESULTS["espresso_n9_cached"] = {"mean_seconds": mean}


def test_parallel_sweep_wallclock():
    """10-point fraction sweep: warm-pool ``jobs=4`` vs serial wall-clock.

    Both timings land in BENCH_substrate.json along with the CPU count
    they were measured on.  The pool is warmed (spawn + preload) before
    the timed region — steady-state sweeps run against an already-warm
    pool, and the spawn cost is a one-time constant, not a per-sweep tax.

    The >= 2.5x speedup floor is only asserted when the machine actually
    has at least ``jobs`` CPUs; on a smaller box the entry is annotated
    ``"insufficient_cpus": true`` so a 1-core run is never read as a
    parallelism regression.  The bit-identical-to-serial check always
    runs.
    """
    from repro.perf import get_pool, shutdown_pool

    jobs = 4
    spec = generate_spec(
        "sweepbench", 10, 8, target_cf=0.65, dc_fraction=0.5, seed=7
    )
    fractions = [i / 9 for i in range(10)]
    # Parallel first: the workers' minimisation caches die with the pool,
    # so neither timing inherits warm state from the other.  Shut down
    # any pool a previous test left behind, then warm a fresh one with a
    # cold parent cache so the workers are seeded with nothing.
    shutdown_pool()
    reset_cache()
    get_pool(jobs)  # spawn + preload outside the timed region
    start = time.perf_counter()
    parallel = fraction_sweep(spec, fractions, objective="area", jobs=jobs)
    parallel_seconds = time.perf_counter() - start
    shutdown_pool()
    reset_cache()
    start = time.perf_counter()
    serial = fraction_sweep(spec, fractions, objective="area", jobs=1)
    serial_seconds = time.perf_counter() - start
    assert serial == parallel  # deterministic ordering, identical results
    cpus = _available_cpus()
    insufficient = cpus < jobs
    speedup = serial_seconds / parallel_seconds
    _RESULTS["fraction_sweep_10pt"] = {
        "points": len(fractions),
        "jobs": jobs,
        "cpus": cpus,
        "insufficient_cpus": insufficient,
        "includes_pool_spawn": False,
        "serial_seconds": serial_seconds,
        "parallel_jobs4_seconds": parallel_seconds,
        "speedup": speedup,
    }
    if not insufficient:
        assert speedup >= 2.5, (
            f"warm-pool jobs={jobs} only {speedup:.2f}x over serial "
            f"({parallel_seconds:.2f}s vs {serial_seconds:.2f}s) on {cpus} CPUs"
        )


def test_bdd_build_throughput(benchmark):
    rng = np.random.default_rng(1)
    table = rng.random(1 << 12) < 0.5

    def build():
        manager = BddManager(12)
        return manager, manager.from_truth_table(table)

    manager, ref = benchmark(build)
    assert manager.sat_count(ref) == int(table.sum())
    mean, _ = _timings(benchmark)
    if mean is not None:
        _RESULTS["bdd_build_n12"] = {"mean_seconds": mean}


def test_mapper_throughput(benchmark):
    spec = mcnc_benchmark("bench")
    from repro.espresso.minimize import minimize_spec
    from repro.synth.optimize import optimize_network

    minimized = minimize_spec(spec)
    network = LogicNetwork.from_covers(
        list(spec.input_names), minimized.covers, list(spec.output_names)
    )
    optimize_network(network)
    graph = build_subject_graph(network)
    library = generic_70nm_library()
    netlist = benchmark(map_graph, graph, library, mode="area")
    assert netlist.num_gates > 0
    mean, _ = _timings(benchmark)
    if mean is not None:
        _RESULTS["mapper_bench"] = {"mean_seconds": mean}


def test_reliability_metric_throughput(benchmark):
    rng = np.random.default_rng(2)
    phases = rng.choice(np.array([0, 1, 2], np.uint8), size=(12, 1 << 12),
                        p=[0.25, 0.25, 0.5])
    events = benchmark(error_events, phases)
    assert int(np.sum(events)) >= 0


def test_lcf_metric_throughput(benchmark):
    rng = np.random.default_rng(3)
    phases = rng.choice(np.array([0, 1, 2], np.uint8), size=(12, 1 << 12),
                        p=[0.25, 0.25, 0.5])
    lcf = benchmark(local_complexity_factor, phases)
    assert lcf.shape == phases.shape


# --------------------------------------------------------- simulation engine


def _quick_mode() -> bool:
    """Smoke mode for CI: small instances, relaxed speedup floors."""
    return os.environ.get("REPRO_BENCH_QUICK") == "1"


def _random_sim_network(seed: int, num_pis: int, num_nodes: int) -> LogicNetwork:
    """A deep random multi-level network for simulation benchmarks.

    Nodes are wide and sparse — 5-9 fanins, 3-5 cubes of 2-4 literals —
    the shape ESPRESSO-minimised multi-level logic actually has, and the
    regime where the per-node cost gap between byte-per-vector and packed
    evaluation is representative.
    """
    rng = np.random.default_rng(seed)
    names = [f"x{i}" for i in range(num_pis)]
    net = LogicNetwork(names)
    signals = list(names)
    for t in range(num_nodes):
        # Bias fanins towards recent signals so cones are deep, not flat.
        pool = signals[-16:]
        k = int(rng.integers(5, min(10, len(pool) + 1)))
        fanins = [str(s) for s in rng.choice(pool, size=k, replace=False)]
        rows = np.full((int(rng.integers(3, 6)), k), 2, dtype=np.uint8)
        for row in rows:
            lits = rng.choice(k, size=int(rng.integers(2, 5)), replace=False)
            row[lits] = rng.integers(0, 2, size=lits.size)
        name = f"t{t}"
        net.add_node(name, fanins, Cover(rows, k))
        signals.append(name)
    for position, signal in enumerate(signals[-4:]):
        net.set_output(f"y{position}", signal)
    return net


def _best_of(repeats: int, run) -> float:
    """Min wall-clock over *repeats* calls (min tracks kernel cost)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def test_sim_packed_vs_bool():
    """Full-space simulation: packed engine vs byte-per-vector reference.

    The tentpole target: >= 10x on an n=14 multi-level network (the packed
    path touches 64x less memory per signal and replaces the per-node
    gather with a handful of word-wise ops).
    """
    from repro.sim import engine as sim_engine

    quick = _quick_mode()
    num_pis, num_nodes, repeats = (10, 12, 3) if quick else (14, 30, 7)
    net = _random_sim_network(11, num_pis, num_nodes)
    net.evaluate_reference()  # warm cover caches out of the timed region
    sim_engine.network_values(net)

    bool_seconds = _best_of(repeats, net.evaluate_reference)
    packed_seconds = _best_of(repeats, lambda: sim_engine.network_values(net))

    # Equivalence while we are here: same signals, same tables.
    from repro.sim import packed as pk

    packed_values = sim_engine.network_values(net)
    reference = net.evaluate_reference()
    size = 1 << num_pis
    for name, table in reference.items():
        np.testing.assert_array_equal(
            pk.unpack_bool(packed_values[name], size), table, err_msg=name
        )

    speedup = bool_seconds / packed_seconds
    _RESULTS["sim_packed_vs_bool"] = {
        "num_pis": num_pis,
        "num_nodes": num_nodes,
        "quick": quick,
        "bool_seconds": bool_seconds,
        "packed_seconds": packed_seconds,
        "speedup": speedup,
    }
    floor = 2.0 if quick else 10.0
    assert speedup >= floor, (
        f"packed simulation only {speedup:.1f}x over the boolean reference "
        f"({packed_seconds * 1e3:.2f} ms vs {bool_seconds * 1e3:.2f} ms)"
    )


def test_odc_incremental_vs_full():
    """Per-node flip sweep: cone-restricted packed flips vs full re-walks.

    The nodal-reassignment inner loop asks "do the POs change?" for every
    node; the incremental simulator answers from the flipped node's fanout
    cone only.  Target: >= 5x over the boolean full-topological-walk
    baseline (``_evaluate_with_flip``) across a whole-network sweep.
    """
    from repro.sim.incremental import IncrementalNetworkSim
    from repro.synth.odc import _evaluate_with_flip

    quick = _quick_mode()
    num_pis, num_nodes, repeats = (9, 14, 2) if quick else (14, 40, 3)
    net = _random_sim_network(23, num_pis, num_nodes)
    node_names = list(net.nodes)
    values = net.evaluate_reference()

    def full_sweep():
        for name in node_names:
            _evaluate_with_flip(net, values, name)

    sim = IncrementalNetworkSim(net)

    def incremental_sweep():
        for name in node_names:
            sim.flip_outputs(name)

    full_seconds = _best_of(repeats, full_sweep)
    incremental_seconds = _best_of(repeats, incremental_sweep)

    speedup = full_seconds / incremental_seconds
    _RESULTS["odc_incremental_vs_full"] = {
        "num_pis": num_pis,
        "num_nodes": num_nodes,
        "quick": quick,
        "full_seconds": full_seconds,
        "incremental_seconds": incremental_seconds,
        "speedup": speedup,
    }
    floor = 1.5 if quick else 5.0
    assert speedup >= floor, (
        f"incremental flips only {speedup:.1f}x over full re-walks "
        f"({incremental_seconds * 1e3:.2f} ms vs {full_seconds * 1e3:.2f} ms)"
    )


if __name__ == "__main__":
    # ``python benchmarks/bench_substrate_perf.py --quick`` is the CI smoke
    # entry: run only the simulation-engine benchmarks on small instances
    # (still persisting their numbers to BENCH_substrate.json).
    import sys

    if "--quick" in sys.argv:
        os.environ["REPRO_BENCH_QUICK"] = "1"
    raise SystemExit(
        pytest.main(
            [
                "-q",
                f"{__file__}::test_sim_packed_vs_bool",
                f"{__file__}::test_odc_incremental_vs_full",
            ]
        )
    )
