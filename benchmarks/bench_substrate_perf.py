"""P1 — Substrate performance micro-benchmarks.

Throughput of the load-bearing substrate pieces (ESPRESSO, the BDD
manager, the technology mapper, the reliability metrics).  These are true
pytest-benchmark timings (multiple rounds), useful for catching
performance regressions in the algorithms everything else sweeps over.
"""

import numpy as np
import pytest

from repro.bdd import BddManager
from repro.benchgen import mcnc_benchmark
from repro.core.complexity import local_complexity_factor
from repro.core.reliability import error_events
from repro.espresso.cube import Cover
from repro.espresso.minimize import espresso
from repro.synth.library import generic_70nm_library
from repro.synth.mapping import map_graph
from repro.synth.network import LogicNetwork
from repro.synth.subject import build_subject_graph


@pytest.fixture(scope="module")
def random_function():
    rng = np.random.default_rng(0)
    n = 9
    phases = rng.choice(np.array([0, 1, 2], np.uint8), size=1 << n, p=[0.3, 0.3, 0.4])
    on = Cover.from_minterms(n, np.flatnonzero(phases == 1))
    dc = Cover.from_minterms(n, np.flatnonzero(phases == 2))
    return on, dc


def test_espresso_throughput(benchmark, random_function):
    on, dc = random_function
    cover = benchmark(espresso, on, dc)
    assert cover.num_cubes > 0


def test_bdd_build_throughput(benchmark):
    rng = np.random.default_rng(1)
    table = rng.random(1 << 12) < 0.5

    def build():
        manager = BddManager(12)
        return manager, manager.from_truth_table(table)

    manager, ref = benchmark(build)
    assert manager.sat_count(ref) == int(table.sum())


def test_mapper_throughput(benchmark):
    spec = mcnc_benchmark("bench")
    from repro.espresso.minimize import minimize_spec
    from repro.synth.optimize import optimize_network

    minimized = minimize_spec(spec)
    network = LogicNetwork.from_covers(
        list(spec.input_names), minimized.covers, list(spec.output_names)
    )
    optimize_network(network)
    graph = build_subject_graph(network)
    library = generic_70nm_library()
    netlist = benchmark(map_graph, graph, library, mode="area")
    assert netlist.num_gates > 0


def test_reliability_metric_throughput(benchmark):
    rng = np.random.default_rng(2)
    phases = rng.choice(np.array([0, 1, 2], np.uint8), size=(12, 1 << 12),
                        p=[0.25, 0.25, 0.5])
    events = benchmark(error_events, phases)
    assert int(np.sum(events)) >= 0


def test_lcf_metric_throughput(benchmark):
    rng = np.random.default_rng(3)
    phases = rng.choice(np.array([0, 1, 2], np.uint8), size=(12, 1 << 12),
                        p=[0.25, 0.25, 0.5])
    lcf = benchmark(local_complexity_factor, phases)
    assert lcf.shape == phases.shape
