"""A1 — Ablation: the LC^f threshold knob.

Sweeps the complexity-factor-based assignment threshold across and beyond
the paper's recommended 0.45-0.65 window on a subset of benchmarks.  The
paper's claim: low thresholds optimise for performance (few DCs taken from
the area optimiser), high thresholds for reliability.
"""

import numpy as np
import pytest

from repro.benchgen import mcnc_benchmark
from repro.flows import format_table, relative_metrics, run_flow, threshold_sweep

from conftest import emit, full_mode

THRESHOLDS = [0.30, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.75]


def _subjects():
    return ["bench", "fout", "test4", "exam"] if not full_mode() else [
        "bench", "fout", "p3", "p1", "exp", "test4", "ex1010", "exam",
    ]


def _sweep():
    data = {}
    for name in _subjects():
        spec = mcnc_benchmark(name)
        baseline = run_flow(spec, "conventional", objective="area")
        results = threshold_sweep(spec, THRESHOLDS, objective="area")
        data[name] = [
            (r.fraction_assigned, relative_metrics(r, baseline)) for r in results
        ]
    return data


def test_threshold_ablation(benchmark):
    data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for name, series in data.items():
        for threshold, (fraction, rel) in zip(THRESHOLDS, series):
            rows.append([
                name, threshold, round(fraction, 2),
                round(rel["error_improvement_pct"], 1),
                round(rel["area_improvement_pct"], 1),
            ])
    table = format_table(
        ["benchmark", "threshold", "fraction", "dErr %", "dArea %"], rows
    )
    emit("Ablation: LC^f threshold sweep", table)

    for name, series in data.items():
        fractions = [fraction for fraction, _ in series]
        # The knob is monotone: higher threshold -> more DCs assigned.
        assert fractions == sorted(fractions), name
        errors = [rel["error_improvement_pct"] for _, rel in series]
        # Reliability at the top of the window is at least as good as at
        # the bottom (the paper's "high threshold optimises reliability").
        assert errors[-1] >= errors[0] - 1.0, name
