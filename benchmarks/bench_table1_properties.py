"""T1 — Table 1: published and synthetic benchmark properties.

Regenerates the %DC, E[C^f] and C^f columns for every benchmark stand-in
and checks them against the published values.
"""

import pytest

from repro.benchgen import TABLE1, mcnc_benchmark
from repro.core.complexity import spec_complexity_factor, spec_expected_complexity_factor
from repro.flows import format_table

from conftest import emit


def _build_table():
    rows = []
    for info in TABLE1:
        spec = mcnc_benchmark(info.name)
        rows.append([
            info.name,
            spec.num_inputs,
            spec.num_outputs,
            round(100 * spec.dc_fraction(), 1),
            round(spec_expected_complexity_factor(spec), 3),
            round(spec_complexity_factor(spec), 3),
            info.dc_percent,
            info.expected_cf,
            info.cf,
        ])
    return rows


def test_table1_properties(benchmark):
    rows = benchmark.pedantic(_build_table, rounds=1, iterations=1)
    table = format_table(
        ["name", "in", "out", "%DC", "E[Cf]", "Cf", "paper %DC", "paper E", "paper Cf"],
        rows,
    )
    emit("Table 1: benchmark properties (measured vs paper)", table)
    for row in rows:
        name, _, _, dc, ecf, cf, p_dc, p_e, p_cf = row
        assert abs(dc - p_dc) <= 2.0, f"{name}: %DC off"
        assert abs(ecf - p_e) <= 0.02, f"{name}: E[C^f] off"
        assert abs(cf - p_cf) <= 0.02, f"{name}: C^f off"
