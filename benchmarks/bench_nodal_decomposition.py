"""A3 — Sec. 4 extension: nodal decomposition / internal-DC reassignment.

Builds multi-level networks, extracts per-node satisfiability and
observability DCs, reassigns them with the LC^f policy and measures the
internal error-masking improvement.  The paper's claim: working on
extracted internal DC sets increases the rate of logical masking within
the circuit while leaving the primary outputs untouched.
"""

import numpy as np
import pytest

from repro.benchgen.synthetic import generate_spec
from repro.espresso.minimize import minimize_spec
from repro.flows import format_table
from repro.synth.network import LogicNetwork
from repro.synth.odc import reassign_internal_dcs
from repro.synth.optimize import optimize_network
from repro.synth.renode import renode

from conftest import emit, full_mode


def _subjects():
    # Mid/low-C^f circuits have enough extracted flexibility for the
    # technique to act on (high-C^f circuits at this size degenerate to a
    # handful of nodes with almost no internal DCs).
    count = 6 if full_mode() else 3
    return [
        generate_spec(f"nodal{i}", 8, 5, target_cf=0.45 + 0.02 * i,
                      dc_fraction=0.5, seed=60 + i)
        for i in range(count)
    ]


def _run():
    rows = []
    for spec in _subjects():
        minimized = minimize_spec(spec)
        network = LogicNetwork.from_covers(
            list(spec.input_names), minimized.covers, list(spec.output_names)
        )
        optimize_network(network)
        for variant, net in (
            ("as-optimised", network),
            ("renode k=5", renode(network, 5)),
        ):
            reference = net.output_table().copy()
            report = reassign_internal_dcs(net, policy="cfactor", threshold=1.0)
            assert bool(np.array_equal(net.output_table(), reference))
            rows.append({
                "name": f"{spec.name} ({variant})",
                "nodes": len(net.nodes),
                "assigned": report.dc_entries_assigned,
                "before": report.error_rate_before,
                "after": report.error_rate_after,
            })
    return rows


def test_nodal_decomposition(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = format_table(
        ["circuit", "nodes", "internal DCs assigned",
         "internal error before", "after"],
        [[r["name"], r["nodes"], r["assigned"],
          round(r["before"], 4), round(r["after"], 4)] for r in rows],
    )
    emit("Sec. 4 extension: internal-DC reassignment", table)

    deltas = [r["before"] - r["after"] for r in rows]
    # Masking must improve (or at worst stay flat) on average, and the
    # reassignment must actually have decided internal DCs.
    assert float(np.mean(deltas)) >= -0.005
    assert sum(r["assigned"] for r in rows) > 0
