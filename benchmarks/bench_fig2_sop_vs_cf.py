"""F2 — Fig. 2: minimal SOP size vs complexity factor.

Generates 10-input single-output fully specified synthetic functions
across the complexity-factor range and minimises each with ESPRESSO.  The
paper's shape: implicant counts approach ~512 at low C^f and decline
smoothly toward 0 as C^f grows.
"""

import numpy as np
import pytest

from repro.benchgen.synthetic import generate_output
from repro.core.complexity import complexity_factor
from repro.core.truthtable import ON
from repro.espresso.cube import Cover
from repro.espresso.minimize import espresso
from repro.flows import format_table

from conftest import emit, full_mode

NUM_INPUTS = 10


def _sweep():
    targets = np.linspace(0.08, 0.92, 15 if full_mode() else 9)
    seeds_per_target = 3 if full_mode() else 1
    points = []
    for target in targets:
        for seed in range(seeds_per_target):
            rng = np.random.default_rng(1000 + int(target * 1000) + seed)
            phases = generate_output(
                NUM_INPUTS, float(target), 0.5, 0.5, rng, tolerance=0.03
            )
            cf = float(complexity_factor(phases))
            on = Cover.from_minterms(NUM_INPUTS, np.flatnonzero(phases == ON))
            cover = espresso(on)
            points.append((cf, cover.num_cubes))
    points.sort()
    return points


def test_fig2_sop_size_vs_complexity(benchmark):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["C^f", "minimal SOP implicants"],
        [[round(cf, 3), size] for cf, size in points],
    )
    emit("Fig. 2: SOP size vs complexity factor (10-input functions)", table)

    cfs = np.array([p[0] for p in points])
    sizes = np.array([p[1] for p in points], dtype=float)
    # Shape checks: strong negative correlation, low-C^f sizes near the
    # 512-implicant ceiling, high-C^f sizes collapsing.
    correlation = float(np.corrcoef(cfs, sizes)[0, 1])
    assert correlation < -0.8, f"SOP size should fall with C^f (r={correlation:.2f})"
    assert sizes[cfs < 0.2].mean() > 300
    assert sizes[cfs > 0.8].mean() < 100
