"""T2 — Table 2: complexity-factor-based assignment results.

For every roster benchmark: area and error-rate improvements (percent,
negative = overhead) of the LC^f-based assignment, the equal-fraction
ranking-based assignment, and complete reliability assignment, all
relative to the conventional baseline.

The paper's shape: complete assignment buys the largest reliability gains
at large area overheads; the very-high-C^f benchmarks (t4, random3) get
~0/0 rows because the LC^f policy defers to conventional assignment.
"""

import numpy as np
import pytest

from repro.benchgen import mcnc_benchmark
from repro.flows import format_table, table2_row

from conftest import emit, roster


def _build():
    return [table2_row(mcnc_benchmark(name)) for name in roster()]


def test_table2(benchmark):
    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    table = format_table(
        ["name", "Cf", "LCf dA%", "LCf dE%", "Rank dA%", "Rank dE%",
         "Compl dA%", "Compl dE%"],
        [
            [r.benchmark, round(r.cf, 3), round(r.lcf_area, 1), round(r.lcf_error, 1),
             round(r.ranking_area, 1), round(r.ranking_error, 1),
             round(r.complete_area, 1), round(r.complete_error, 1)]
            for r in rows
        ],
    )
    emit("Table 2: complexity-factor-based assignment results", table)

    by_name = {r.benchmark: r for r in rows}
    # Very high C^f benchmarks: LC^f defers entirely (the t4/random3 rows).
    for name in ("t4", "random3"):
        if name in by_name:
            assert by_name[name].lcf_area == pytest.approx(0.0, abs=0.5)
            assert by_name[name].lcf_error == pytest.approx(0.0, abs=0.5)
    # Complete assignment achieves the best mean error improvement but the
    # worst mean area.  Degenerate (wire-only) baselines report -inf area
    # "improvement"; exclude them from the aggregate.
    def mean(key: str) -> float:
        values = [getattr(r, key) for r in rows]
        finite = [v for v in values if np.isfinite(v)]
        return float(np.mean(finite))

    assert mean("complete_error") >= mean("lcf_error") - 1e-9
    assert mean("complete_error") >= mean("ranking_error") - 1e-9
    assert mean("complete_area") <= mean("lcf_area") + 1e-9
    # Reliability-driven assignment helps on average.
    assert mean("complete_error") > 5.0
