"""F4 — Fig. 4: normalised error rate vs fraction of DCs assigned.

Runs the ranking-based sweep over the benchmark roster and normalises each
benchmark's error rate by its conventional (fraction-0) implementation.
The paper's shape: resilience improves monotonically (on average) as more
DCs are assigned for reliability.
"""

import numpy as np
import pytest

from repro.benchgen import mcnc_benchmark
from repro.flows import format_table, run_flow

from conftest import emit, fractions, roster


def _sweep():
    grid = fractions()
    rows = {}
    for name in roster():
        spec = mcnc_benchmark(name)
        baseline = run_flow(spec, "ranking", fraction=0.0, objective="power")
        series = []
        for fraction in grid:
            result = (
                baseline
                if fraction == 0.0
                else run_flow(spec, "ranking", fraction=fraction, objective="power")
            )
            series.append(
                result.error_rate / baseline.error_rate
                if baseline.error_rate
                else 1.0
            )
        rows[name] = series
    return grid, rows


def test_fig4_error_vs_fraction(benchmark):
    grid, rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table_rows = [[name] + [round(v, 3) for v in series] for name, series in rows.items()]
    mean_series = np.mean(np.array(list(rows.values())), axis=0)
    table_rows.append(["MEAN"] + [round(float(v), 3) for v in mean_series])
    table = format_table(["benchmark"] + [f"f={f}" for f in grid], table_rows)
    emit("Fig. 4: normalised error rate vs fraction assigned (power-opt)", table)

    # Shape: the mean normalised error rate decreases with the fraction,
    # and full assignment is the most resilient point.
    assert float(mean_series[-1]) < float(mean_series[0]) - 0.05
    assert float(mean_series[-1]) == pytest.approx(min(map(float, mean_series)), abs=0.02)
