"""A2 — Ablation: cross-validation with the AIG (resyn2rs) optimiser.

The paper re-runs its benchmarks through ABC's ``resyn2rs`` to show that
the reliability/overhead results are not an artefact of one synthesis
tool.  This benchmark pushes conventional vs complete assignment through
both of this package's independent optimisers — the SOP/kernel flow and
the AIG flow — and checks that they agree on the *direction* of the area
effect.
"""

import numpy as np
import pytest

from repro.benchgen import mcnc_benchmark
from repro.core.ranking import complete_assignment
from repro.espresso.minimize import minimize_spec
from repro.flows import format_table
from repro.synth.aig import aig_from_network, resyn2rs
from repro.synth.compile_ import compile_network, compile_spec
from repro.synth.network import LogicNetwork

from conftest import emit, full_mode


def _subjects():
    return ["bench", "fout", "p3", "exam"] if not full_mode() else [
        "bench", "fout", "p3", "p1", "exp", "test4", "exam", "t4", "random3",
    ]


def _aig_flow_area(spec, source):
    minimized = minimize_spec(spec)
    network = LogicNetwork.from_covers(
        list(spec.input_names), minimized.covers, list(spec.output_names)
    )
    optimized = resyn2rs(aig_from_network(network))
    result = compile_network(
        optimized.to_network(), spec, objective="area", optimize=False
    )
    return result.area


def _compare():
    rows = []
    for name in _subjects():
        spec = mcnc_benchmark(name)
        complete = complete_assignment(spec).apply(spec)
        dc_conv = compile_spec(spec, objective="area").area
        dc_complete = compile_spec(complete, objective="area", source_spec=spec).area
        aig_conv = _aig_flow_area(spec, spec)
        aig_complete = _aig_flow_area(complete, spec)
        rows.append({
            "name": name,
            "dc_ratio": dc_complete / dc_conv if dc_conv else 1.0,
            "aig_ratio": aig_complete / aig_conv if aig_conv else 1.0,
        })
    return rows


def test_optimizer_cross_validation(benchmark):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    table = format_table(
        ["benchmark", "complete/conv area (SOP flow)", "complete/conv area (AIG flow)"],
        [[r["name"], round(r["dc_ratio"], 3), round(r["aig_ratio"], 3)] for r in rows],
    )
    emit("Ablation: optimizer cross-validation (SOP vs AIG flow)", table)

    agree = sum(
        1 for r in rows
        if (r["dc_ratio"] >= 1.0) == (r["aig_ratio"] >= 1.0)
        or abs(r["dc_ratio"] - r["aig_ratio"]) < 0.15
    )
    # The two optimisers must agree on the direction of the area effect on
    # (almost) every benchmark — the paper's "similar results" with ABC.
    assert agree >= len(rows) - 1
