"""F5 — Fig. 5: min/max/mean area, power, delay overheads vs fraction.

The ranking sweep of Fig. 4, measured on the overhead side: for both the
delay- and power-optimised flows, normalised area/power/delay are
aggregated (min, mean, max) across the roster at each fraction.  The
paper's shape: mean overheads grow with the fraction; the min lines dip
below 1.0 for some benchmarks (simultaneous improvements).
"""

import numpy as np
import pytest

from repro.benchgen import mcnc_benchmark
from repro.flows import format_table, run_flow

from conftest import emit, fractions, roster


def _sweep():
    grid = fractions()
    data = {}  # objective -> metric -> fraction-index -> list of ratios
    for objective in ("delay", "power"):
        per_fraction = {m: [[] for _ in grid] for m in ("area", "delay", "power")}
        for name in roster():
            spec = mcnc_benchmark(name)
            baseline = run_flow(spec, "ranking", fraction=0.0, objective=objective)
            for index, fraction in enumerate(grid):
                result = (
                    baseline
                    if fraction == 0.0
                    else run_flow(spec, "ranking", fraction=fraction, objective=objective)
                )
                for metric in per_fraction:
                    reference = getattr(baseline, metric)
                    value = getattr(result, metric)
                    per_fraction[metric][index].append(
                        value / reference if reference else 1.0
                    )
        data[objective] = per_fraction
    return grid, data


def test_fig5_overheads(benchmark):
    grid, data = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for objective, per_fraction in data.items():
        rows = []
        for metric, series in per_fraction.items():
            for stat, fn in (("min", np.min), ("mean", np.mean), ("max", np.max)):
                rows.append(
                    [f"{metric}/{stat}"] + [round(float(fn(v)), 3) for v in series]
                )
        table = format_table(["metric"] + [f"f={f}" for f in grid], rows)
        emit(f"Fig. 5: normalised overheads, {objective}-optimised", table)

    # Shape checks on the power-optimised flow (area is the paper's focus):
    area_series = data["power"]["area"]
    mean_area = [float(np.mean(v)) for v in area_series]
    min_area = [float(np.min(v)) for v in area_series]
    # Mean area overhead grows with the fraction ...
    assert mean_area[-1] > mean_area[0]
    # ... and full assignment increases area for every benchmark (paper:
    # "In all benchmarks, complete assignment ... resulted in an increase
    # in area"), allowing minimiser noise.
    assert min_area[-1] > 0.95
    # Some benchmark/fraction shows a simultaneous improvement (min < 1)
    # at an intermediate fraction, or at least stays near parity.
    assert min(min_area[1:-1] or [1.0]) <= 1.02
