"""Command-line interface: ``repro <command> ...``.

Commands
--------

``info <file.pla|name>``
    Print shape, %DC, complexity factors and exact error bounds.
``assign <file.pla|name> --policy P [--fraction F] [--threshold T] [-o OUT]``
    Apply a DC-assignment policy and write the assigned PLA.
``synth <file.pla|name> [--policy P] [--objective O]``
    Run the full flow and print area/delay/power/gates/error rate.
``estimate <file.pla|name>``
    Print the exact, signal-probability and border estimate bands.
``sweep <file.pla|name> [--objective O] [--points N] [--jobs J|auto]``
    Ranking-fraction sweep with normalised metrics (Fig. 4/5 style);
    ``--jobs`` fans the sweep points out over the warm worker pool
    (``auto`` = CPU count, capped by the point count).
``gen --inputs N --outputs M --cf C --dc D [-o OUT]``
    Generate a synthetic benchmark PLA.
``pipeline run <file.pla|name> [--config FILE] [--checkpoint-dir DIR]``
    Run a declarative stage-graph pipeline (default: the standard
    six-stage flow); with ``--checkpoint-dir`` an interrupted or
    re-parameterised run resumes from the last valid stage output.
``pipeline stages``
    List the registered pipeline stages (also in ``info --json``).
``bench <scenario> ... [--jobs J|auto] [--out FILE]``
    Run named scenarios (benchmark set × fault model × policies, see
    ``docs/scenarios.md``) through the pipeline on the warm pool and
    merge the results into the ``BENCH_scenarios.json`` matrix;
    ``bench --list`` prints the scenario registry.
``report <file.pla|name> [--policy P] [--distances K ...] [--burst W]``
    Synthesise once and print the implementation's error rate under
    several fault models: exact single-bit, exact multi-bit/burst, and
    the packed Monte-Carlo estimate of the single-bit rate.
``obs runs|show|compare|regressions|export``
    Query the telemetry ledger: list recorded runs, inspect one,
    compare two, or gate on drift — ``obs regressions --baseline
    <rev|run-id>`` exits non-zero when wall clock or any quality
    figure regressed past tolerance.

Positional benchmark arguments accept either a ``.pla`` path or a Table 1
stand-in name (``bench``, ``ex1010``, ...).

Observability flags (every subcommand, see ``docs/observability.md``):
``--trace FILE`` records tracing spans (JSONL, or Chrome/Perfetto JSON
for ``.json`` paths), ``--metrics-out FILE`` writes the merged metrics
snapshot with an embedded run manifest, ``--manifest FILE`` writes the
bare manifest, ``--profile FILE`` writes flamegraph-ready collapsed
stacks from the sampling profiler (pool workers included), and
``--progress`` renders a live done/total + ETA line on stderr for
sweeps.  Every run is also appended to the telemetry ledger
(``.repro/ledger.sqlite`` unless ``REPRO_LEDGER_PATH``/
``REPRO_LEDGER_DISABLE`` say otherwise).  ``repro --version`` prints
the package version; ``repro info BENCH --json`` emits
machine-readable properties including the ledger status.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import __version__
from .benchgen import benchmark_names, generate_spec, mcnc_benchmark
from .core.complexity import spec_complexity_factor, spec_expected_complexity_factor
from .core.estimates import estimate_report
from .core.reliability import exact_error_bounds
from .core.spec import FunctionSpec
from .flows.experiment import apply_policy, relative_metrics, run_flow
from .flows.report import format_table
from .pla import read_pla, write_pla

__all__ = ["main"]


def _resolve_jobs_arg(value: str, points: int | None = None) -> int:
    """Resolve a ``--jobs`` flag value (integer or ``auto``) to a count."""
    from .perf import resolve_jobs

    try:
        return resolve_jobs(value, points=points)
    except ValueError as error:
        raise SystemExit(f"--jobs: {error}") from None


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", default="1", metavar="N|auto",
        help="worker processes for the sweep points; 'auto' resolves to "
             "the CPU count, capped by the point count (see "
             "'repro info --json' for the resolved executor config)",
    )


def _load_spec(token: str) -> FunctionSpec:
    if token.endswith(".pla"):
        return read_pla(token)
    if token in benchmark_names():
        return mcnc_benchmark(token)
    raise SystemExit(
        f"unknown benchmark {token!r}: pass a .pla path or one of {benchmark_names()}"
    )


def _ledger_info() -> dict:
    """The ``repro info --json`` ledger block (never creates the file)."""
    from .obs.store import (
        LEDGER_SCHEMA_VERSION,
        LedgerStore,
        default_ledger_path,
        ledger_enabled,
    )

    path = default_ledger_path()
    info = {
        "path": str(path),
        "schema_version": LEDGER_SCHEMA_VERSION,
        "enabled": ledger_enabled(),
        "runs": 0,
    }
    if path.exists():
        try:
            with LedgerStore(path) as store:
                info["runs"] = store.run_count()
        except Exception:  # noqa: BLE001 - info must not fail on a bad ledger
            info["runs"] = None
    return info


def _cmd_info(args: argparse.Namespace) -> int:
    from .faults import describe_fault_models
    from .perf import executor_config
    from .pipeline import stage_names
    from .scenarios import describe_scenarios

    spec = _load_spec(args.benchmark)
    bounds = exact_error_bounds(spec)
    if args.json:
        print(json.dumps({
            "name": spec.name,
            "inputs": spec.num_inputs,
            "outputs": spec.num_outputs,
            "dc_fraction": spec.dc_fraction(),
            "complexity_factor": spec_complexity_factor(spec),
            "expected_complexity_factor": spec_expected_complexity_factor(spec),
            "exact_error_min": bounds.lo,
            "exact_error_max": bounds.hi,
            "pipeline_stages": stage_names(),
            "fault_models": describe_fault_models(),
            "scenarios": describe_scenarios(),
            "executor": executor_config("auto"),
            "ledger": _ledger_info(),
        }, indent=2, sort_keys=True))
        return 0
    rows = [
        ["name", spec.name],
        ["inputs", spec.num_inputs],
        ["outputs", spec.num_outputs],
        ["%DC", round(100 * spec.dc_fraction(), 1)],
        ["C^f", round(spec_complexity_factor(spec), 3)],
        ["E[C^f]", round(spec_expected_complexity_factor(spec), 3)],
        ["exact error min", round(bounds.lo, 4)],
        ["exact error max", round(bounds.hi, 4)],
    ]
    print(format_table(["property", "value"], rows))
    return 0


def _cmd_assign(args: argparse.Namespace) -> int:
    spec = _load_spec(args.benchmark)
    assigned, assignment = apply_policy(
        spec, args.policy, fraction=args.fraction, threshold=args.threshold
    )
    print(
        f"{args.policy}: decided {len(assignment)} DC entries "
        f"({100 * assignment.fraction_of(spec):.1f}% of the DC set)"
    )
    if args.output:
        write_pla(assigned, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_synth(args: argparse.Namespace) -> int:
    spec = _load_spec(args.benchmark)
    assigned, _ = apply_policy(
        spec, args.policy, fraction=args.fraction, threshold=args.threshold
    )
    result = run_flow(
        spec,
        args.policy,
        fraction=args.fraction,
        threshold=args.threshold,
        objective=args.objective,
    )
    session = getattr(args, "_obs_session", None)
    if session is not None:
        session.record_quality([result])
    if args.verilog:
        from .synth.compile_ import compile_spec
        from .synth.verilog import write_verilog

        synthesis = compile_spec(
            assigned, objective=args.objective, source_spec=spec
        )
        write_verilog(synthesis.netlist, args.verilog, module_name=spec.name)
        print(f"wrote {args.verilog}")
    rows = [
        ["area", result.area],
        ["delay", result.delay],
        ["power", result.power],
        ["gates", result.gates],
        ["literals", result.literals],
        ["error rate", result.error_rate],
    ]
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    spec = _load_spec(args.benchmark)
    report = estimate_report(spec)
    rows = [
        ["exact", report.exact.lo, report.exact.hi],
        ["signal-probability", report.signal.lo, report.signal.hi],
        ["border/Poisson", report.border.lo, report.border.hi],
    ]
    print(format_table(["estimate", "min", "max"], rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .flows.sweep import fraction_sweep
    from .perf import cache_stats

    spec = _load_spec(args.benchmark)
    fractions = [i / (args.points - 1) for i in range(args.points)]
    jobs = _resolve_jobs_arg(args.jobs, points=len(fractions))
    session = getattr(args, "_obs_session", None)
    progress = (
        session.progress_reporter(total=len(fractions), label="sweep")
        if session is not None
        else None
    )
    results = fraction_sweep(
        spec, fractions, objective=args.objective, jobs=jobs,
        progress=progress, checkpoint_dir=args.checkpoint_dir,
    )
    if session is not None:
        session.record_quality(results)
    baseline = results[0] if fractions and fractions[0] == 0.0 else run_flow(
        spec, "ranking", fraction=0.0, objective=args.objective
    )
    rows = []
    for fraction, result in zip(fractions, results):
        rel = relative_metrics(result, baseline)
        rows.append(
            [fraction, rel["error_rate"], rel["area"], rel["delay"], rel["power"]]
        )
    print(format_table(["fraction", "error", "area", "delay", "power"], rows))
    if args.cache_stats:
        stats = cache_stats()
        print(
            f"minimization cache: {stats.hits} hits / {stats.misses} misses "
            f"(hit rate {100 * stats.hit_rate:.1f}%, {stats.entries} entries)"
        )
    return 0


def _cmd_nodal(args: argparse.Namespace) -> int:
    from .espresso.minimize import minimize_spec
    from .synth.flexibility import reassign_complete_dcs
    from .synth.network import LogicNetwork
    from .synth.odc import reassign_internal_dcs
    from .synth.optimize import optimize_network
    from .synth.renode import renode

    spec = _load_spec(args.benchmark)
    minimized = minimize_spec(spec)
    network = LogicNetwork.from_covers(
        list(spec.input_names), minimized.covers, list(spec.output_names)
    )
    optimize_network(network)
    if args.renode:
        network = renode(network, args.k)
    rows: list[list] = [["nodes", len(network.nodes)]]
    if args.sat:
        session = getattr(args, "_obs_session", None)
        progress = (
            session.progress_reporter(label="complete-dc")
            if session is not None
            else None
        )
        report = reassign_complete_dcs(
            network,
            policy=args.policy,
            threshold=args.threshold,
            window_levels=args.dc_window,
            jobs=_resolve_jobs_arg(args.jobs),
            progress=progress,
        )
        rows += [
            ["node groups (parallel)",
             f"{report.node_groups} ({report.parallel_groups})"],
            ["recycled counterexamples", report.recycled_patterns],
            ["nodes rewritten", report.nodes_changed],
            ["internal DCs assigned", report.dc_entries_assigned],
            ["complete DC minterms", report.complete_dc_minterms],
            ["window DC minterms", report.window_dc_minterms],
            ["DC delta (complete - window)", report.dc_delta],
            ["SAT fallback nodes", report.sat_fallback_nodes],
            ["internal error before", report.error_rate_before],
            ["internal error after", report.error_rate_after],
        ]
    else:
        report = reassign_internal_dcs(
            network, policy=args.policy, threshold=args.threshold
        )
        rows += [
            ["nodes rewritten", report.nodes_changed],
            ["internal DCs assigned", report.dc_entries_assigned],
            ["internal error before", report.error_rate_before],
            ["internal error after", report.error_rate_after],
        ]
    print(format_table(["metric", "value"], rows, precision=4))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .flows.export import export_all

    paths = export_all(
        args.directory, names=args.benchmarks,
        jobs=_resolve_jobs_arg(args.jobs),
    )
    for path in paths:
        print(f"wrote {path}")
    return 0


def _with_complete_dc_stage(config: dict) -> dict:
    """A copy of *config* with the ``complete_dc`` stage enabled.

    Inserted after ``optimize`` (before ``map`` when there is no
    optimise stage); a config that already lists the stage is returned
    unchanged.
    """
    def entry_name(entry) -> str:
        return entry if isinstance(entry, str) else entry.get("stage", "")

    stages = list(config.get("stages") or [])
    names = [entry_name(entry) for entry in stages]
    if "complete_dc" in names:
        return config
    if "optimize" in names:
        stages.insert(names.index("optimize") + 1, "complete_dc")
    elif "map" in names:
        stages.insert(names.index("map"), "complete_dc")
    else:
        stages.append("complete_dc")
    return {**config, "stages": stages}


def _cmd_pipeline_run(args: argparse.Namespace) -> int:
    import dataclasses

    from .flows.experiment import flow_result
    from .flows.report import format_table
    from .obs import metrics as obs_metrics
    from .pipeline import CheckpointStore, Pipeline, default_config, load_config

    spec = _load_spec(args.benchmark)
    if args.config:
        config = load_config(args.config)
    else:
        config = default_config(
            args.policy,
            fraction=args.fraction,
            threshold=args.threshold,
            objective=args.objective,
        )
    if getattr(args, "complete_dc", False):
        config = _with_complete_dc_stage(config)
    dc_jobs = _resolve_jobs_arg(getattr(args, "dc_jobs", "1"))
    if dc_jobs != 1:
        config = {
            **config,
            "params": {**config.get("params", {}), "dc_jobs": dc_jobs},
        }
    checkpoint = (
        CheckpointStore(args.checkpoint_dir) if args.checkpoint_dir else None
    )
    pipe = Pipeline.from_config(config, checkpoint=checkpoint)
    ran_before = obs_metrics.counter("pipeline.stages_run").value
    skipped_before = obs_metrics.counter("pipeline.stages_skipped").value
    ctx = pipe.run(spec=spec, stop_after=args.stop_after)
    stages_run = obs_metrics.counter("pipeline.stages_run").value - ran_before
    stages_skipped = (
        obs_metrics.counter("pipeline.stages_skipped").value - skipped_before
    )
    summary = {
        "name": pipe.name,
        "stages_run": stages_run,
        "stages_skipped": stages_skipped,
        "artifacts": ctx.keys(),
    }
    if "complete_dc_report" in ctx:
        summary["complete_dc"] = {
            key: (None if isinstance(value, float) and value != value else value)
            for key, value in dataclasses.asdict(
                ctx.get("complete_dc_report")
            ).items()
        }
    if "synthesis" in ctx and "assignment" in ctx:
        result = flow_result(ctx)
        session = getattr(args, "_obs_session", None)
        if session is not None:
            session.record_quality([result])
        if args.json:
            print(json.dumps(
                {"result": dataclasses.asdict(result), "pipeline": summary},
                indent=2, sort_keys=True,
            ))
            return 0
        rows = [
            ["policy", result.policy],
            ["objective", result.objective],
            ["area", result.area],
            ["delay", result.delay],
            ["power", result.power],
            ["gates", result.gates],
            ["literals", result.literals],
            ["error rate", result.error_rate],
        ]
        print(format_table(["metric", "value"], rows))
    elif args.json:
        print(json.dumps({"result": None, "pipeline": summary},
                         indent=2, sort_keys=True))
        return 0
    else:
        print(
            f"pipeline {pipe.name!r} stopped with artefacts: "
            f"{', '.join(ctx.keys())}"
        )
    print(
        f"pipeline {pipe.name!r}: {stages_run} stage(s) run, "
        f"{stages_skipped} restored from checkpoints"
    )
    return 0


def _cmd_pipeline_stages(args: argparse.Namespace) -> int:
    from .flows.report import format_table
    from .pipeline import describe_stage, registered_stages

    stages = registered_stages()
    if args.json:
        print(json.dumps(
            {
                name: {
                    key: value
                    for key, value in describe_stage(stage).items()
                    if key != "name"
                }
                for name, stage in stages.items()
            },
            indent=2, sort_keys=True,
        ))
        return 0
    rows = [
        [name, ", ".join(stage.inputs), ", ".join(stage.outputs),
         ", ".join(stage.params) or "-"]
        for name, stage in stages.items()
    ]
    print(format_table(["stage", "inputs", "outputs", "params"], rows))
    return 0


def _open_ledger_readonly():
    """The ledger store for ``repro obs`` queries, or None with a hint.

    Query commands never create the ledger: a missing file means no run
    has ever recorded, which each command reports instead of silently
    making an empty database.
    """
    from .obs.store import LedgerStore, default_ledger_path

    path = default_ledger_path()
    if not path.exists():
        print(f"no telemetry ledger at {path} (run any command to create it)",
              file=sys.stderr)
        return None
    return LedgerStore(path)


def _run_summary_row(record) -> list:
    duration = (
        f"{record.duration_seconds:.2f}s"
        if record.duration_seconds is not None else "-"
    )
    flags = "interrupted" if record.interrupted else ""
    return [
        record.run_id,
        record.command,
        (record.git_rev or "")[:12],
        duration,
        record.exit_status if record.exit_status is not None else "-",
        len(record.quality),
        flags,
    ]


def _cmd_obs_runs(args: argparse.Namespace) -> int:
    from .flows.report import format_table

    store = _open_ledger_readonly()
    if store is None:
        return 0
    with store:
        records = store.runs(
            command=args.filter_command, git_rev=args.rev, limit=args.limit
        )
    if args.json:
        print(json.dumps([r.to_dict() for r in records], indent=2,
                         sort_keys=True, default=str))
        return 0
    if not records:
        print("no matching runs")
        return 0
    rows = [_run_summary_row(r) for r in records]
    print(format_table(
        ["run", "command", "rev", "wall", "exit", "quality", "flags"], rows
    ))
    return 0


def _cmd_obs_show(args: argparse.Namespace) -> int:
    from .flows.report import format_table

    store = _open_ledger_readonly()
    if store is None:
        return 2
    with store:
        record = store.get(args.run_id)
    if record is None:
        print(f"no run matching {args.run_id!r}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(record.to_dict(), indent=2, sort_keys=True,
                         default=str))
        return 0
    rows = [
        ["run", record.run_id],
        ["created", record.created_at],
        ["command", record.command],
        ["git rev", record.git_rev or "-"],
        ["duration", f"{record.duration_seconds:.3f}s"
         if record.duration_seconds is not None else "-"],
        ["exit status", record.exit_status],
        ["interrupted", record.interrupted],
        ["quality points", len(record.quality)],
        ["stages timed", len(record.stage_timings)],
        ["profiled", record.profile is not None],
        ["worker health", record.worker_health is not None],
    ]
    print(format_table(["field", "value"], rows))
    if record.quality:
        qrows = [
            [p.get("benchmark"), p.get("policy"), p.get("parameter"),
             p.get("objective"), p.get("error_rate"), p.get("area"),
             p.get("literals")]
            for p in record.quality
        ]
        print(format_table(
            ["benchmark", "policy", "param", "objective", "error", "area",
             "literals"],
            qrows,
        ))
    return 0


def _cmd_obs_compare(args: argparse.Namespace) -> int:
    from .obs.regress import compare_runs, format_comparison

    store = _open_ledger_readonly()
    if store is None:
        return 2
    with store:
        baseline = store.get(args.baseline)
        candidate = store.get(args.candidate)
    for run_id, record in ((args.baseline, baseline),
                           (args.candidate, candidate)):
        if record is None:
            print(f"no run matching {run_id!r}", file=sys.stderr)
            return 2
    comparison = compare_runs(
        baseline, candidate,
        wall_tolerance=args.wall_tolerance,
        quality_tolerance=args.quality_tolerance,
        stage_tolerance=args.stage_tolerance,
    )
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_comparison(comparison))
    return 0 if comparison.ok else 1


def _cmd_obs_regressions(args: argparse.Namespace) -> int:
    from .obs.regress import compare_runs, format_comparison

    store = _open_ledger_readonly()
    if store is None:
        return 2
    with store:
        baseline = store.get(args.baseline)
        if baseline is None:
            # Not a run id: treat the argument as a git revision and
            # take that revision's newest run.
            matches = store.runs(
                command=args.filter_command, git_rev=args.baseline, limit=1
            )
            baseline = matches[0] if matches else None
        if baseline is None:
            print(f"no baseline run matching {args.baseline!r}",
                  file=sys.stderr)
            return 2
        if args.candidate:
            candidate = store.get(args.candidate)
        else:
            candidate = store.latest(
                command=args.filter_command or baseline.command,
                exclude=baseline.run_id,
            )
        if candidate is None:
            print("no candidate run to compare against the baseline",
                  file=sys.stderr)
            return 2
    comparison = compare_runs(
        baseline, candidate,
        wall_tolerance=args.wall_tolerance,
        quality_tolerance=args.quality_tolerance,
        stage_tolerance=args.stage_tolerance,
    )
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_comparison(comparison))
    return 0 if comparison.ok else 1


def _cmd_obs_export(args: argparse.Namespace) -> int:
    store = _open_ledger_readonly()
    if store is None:
        return 2
    with store:
        written = store.export_jsonl(args.output)
    print(f"wrote {written} run(s) to {args.output}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .scenarios import (
        describe_scenarios,
        get_scenario,
        run_scenario,
        write_scenario_matrix,
    )

    if args.list or not args.scenarios:
        if not args.list and not args.scenarios:
            print("no scenario named; registered scenarios:", file=sys.stderr)
        rows = [
            [entry["name"], entry["fault_model"]["model"], entry["points"],
             entry["description"]]
            for entry in describe_scenarios()
        ]
        print(format_table(["scenario", "fault model", "points", "description"],
                           rows))
        return 0 if args.list else 2
    try:
        scenarios = [get_scenario(name) for name in args.scenarios]
    except KeyError as error:
        raise SystemExit(f"bench: {error.args[0]}") from None
    session = getattr(args, "_obs_session", None)
    results = []
    for scenario in scenarios:
        jobs = _resolve_jobs_arg(args.jobs, points=scenario.num_points())
        progress = (
            session.progress_reporter(
                total=scenario.num_points(), label=scenario.name
            )
            if session is not None
            else None
        )
        result = run_scenario(
            scenario, jobs=jobs, progress=progress,
            checkpoint_dir=args.checkpoint_dir,
        )
        results.append(result)
        if session is not None:
            session.record_quality(
                [point.quality_dict() for point in result.points]
            )
    matrix = write_scenario_matrix(args.out, results)
    if args.json:
        print(json.dumps(matrix, indent=2, sort_keys=True))
        return 0
    rows = []
    for result in results:
        for point in result.points:
            rows.append([
                result.scenario.name, point.benchmark, point.policy,
                point.parameter, point.error_rate, point.area, point.gates,
            ])
    print(format_table(
        ["scenario", "benchmark", "policy", "param", "error", "area", "gates"],
        rows, precision=5,
    ))
    print(f"wrote {len(results)} scenario(s) to {args.out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .flows.report import error_model_report
    from .synth.compile_ import compile_spec

    spec = _load_spec(args.benchmark)
    assigned, _ = apply_policy(
        spec, args.policy, fraction=args.fraction, threshold=args.threshold
    )
    synthesis = compile_spec(
        assigned, objective=args.objective, source_spec=spec
    )
    report = error_model_report(
        synthesis.implemented,
        spec,
        synthesis.netlist,
        distances=args.distances,
        burst_width=args.burst,
        samples=args.samples,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps({
            "benchmark": spec.name,
            "policy": args.policy,
            "objective": args.objective,
            "area": synthesis.area,
            "gates": synthesis.num_gates,
            "error_models": report,
        }, indent=2, sort_keys=True))
        return 0
    rows = []
    for row in report:
        detail = ""
        if "stderr" in row:
            detail = (f"± {row['stderr']:.5f} stderr, "
                      f"{row['samples']} samples")
        rows.append([row["model"], row["rate"], detail])
    print(format_table(["fault model", "error rate", "detail"], rows,
                       precision=5))
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    spec = generate_spec(
        args.name,
        args.inputs,
        args.outputs,
        target_cf=args.cf,
        dc_fraction=args.dc,
        seed=args.seed,
    )
    print(
        f"generated {spec.name}: C^f={spec_complexity_factor(spec):.3f} "
        f"%DC={100 * spec.dc_fraction():.1f}"
    )
    if args.output:
        write_pla(spec, args.output)
        print(f"wrote {args.output}")
    return 0


def _obs_parent() -> argparse.ArgumentParser:
    """Shared observability flags, attached to every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument("--trace", metavar="FILE", default=None,
                       help="record tracing spans (JSONL; .json = Chrome/"
                            "Perfetto trace_event format)")
    group.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write the merged metrics snapshot plus an "
                            "embedded run manifest as JSON")
    group.add_argument("--manifest", metavar="FILE", default=None,
                       help="write the run manifest (args, seed, git rev, "
                            "versions, timings) as JSON")
    group.add_argument("--profile", metavar="FILE", default=None,
                       help="sample the run with the stack profiler and "
                            "write flamegraph-ready collapsed stacks here "
                            "(pool workers included)")
    group.add_argument("--progress", action="store_true",
                       help="render live done/total + ETA on stderr")
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reliability-driven don't care assignment (DATE 2011 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    obs_parent = _obs_parent()
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name: str, **kwargs) -> argparse.ArgumentParser:
        return sub.add_parser(name, parents=[obs_parent], **kwargs)

    def add_policy_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--policy", default="conventional",
                       choices=["conventional", "ranking", "cfactor", "complete"])
        p.add_argument("--fraction", type=float, default=1.0,
                       help="ranking fraction (policy=ranking)")
        p.add_argument("--threshold", type=float, default=0.55,
                       help="LC^f threshold (policy=cfactor)")

    p_info = add_parser("info", help="benchmark properties")
    p_info.add_argument("benchmark")
    p_info.add_argument("--json", action="store_true",
                        help="machine-readable JSON instead of the table")
    p_info.set_defaults(func=_cmd_info)

    p_assign = add_parser("assign", help="apply a DC-assignment policy")
    p_assign.add_argument("benchmark")
    add_policy_args(p_assign)
    p_assign.add_argument("-o", "--output", help="write assigned PLA here")
    p_assign.set_defaults(func=_cmd_assign)

    p_synth = add_parser("synth", help="run the full synthesis flow")
    p_synth.add_argument("benchmark")
    add_policy_args(p_synth)
    p_synth.add_argument("--objective", default="delay",
                         choices=["delay", "power", "area"])
    p_synth.add_argument("--verilog", help="also write the mapped netlist here")
    p_synth.set_defaults(func=_cmd_synth)

    p_est = add_parser("estimate", help="min-max reliability estimates")
    p_est.add_argument("benchmark")
    p_est.set_defaults(func=_cmd_estimate)

    p_sweep = add_parser("sweep", help="ranking-fraction sweep")
    p_sweep.add_argument("benchmark")
    p_sweep.add_argument("--objective", default="power",
                         choices=["delay", "power", "area"])
    p_sweep.add_argument("--points", type=int, default=5)
    _add_jobs_arg(p_sweep)
    p_sweep.add_argument("--cache-stats", action="store_true",
                         help="print minimization-cache hit/miss counters")
    p_sweep.add_argument("--checkpoint-dir", default=None,
                         help="persist per-stage outputs here so interrupted "
                              "sweeps resume from the last valid stage")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_pipe = sub.add_parser("pipeline", help="stage-graph pipelines")
    pipe_sub = p_pipe.add_subparsers(dest="pipeline_command", required=True)
    p_pipe_run = pipe_sub.add_parser(
        "run", parents=[obs_parent],
        help="run a declarative pipeline (default: the six-stage flow)",
    )
    p_pipe_run.add_argument("benchmark")
    p_pipe_run.add_argument("--config", default=None,
                            help="JSON pipeline config; overrides the policy/"
                                 "objective flags below")
    add_policy_args(p_pipe_run)
    p_pipe_run.add_argument("--objective", default="delay",
                            choices=["delay", "power", "area"])
    p_pipe_run.add_argument("--checkpoint-dir", default=None,
                            help="content-addressed stage checkpoint directory "
                                 "(enables resume)")
    p_pipe_run.add_argument("--stop-after", default=None, metavar="STAGE",
                            help="stop after the named stage (checkpoints up "
                                 "to it are kept)")
    p_pipe_run.add_argument("--complete-dc", action="store_true",
                            dest="complete_dc",
                            help="insert the SAT-complete don't-care stage "
                                 "after optimize (primary outputs preserved)")
    p_pipe_run.add_argument("--dc-jobs", default="1", dest="dc_jobs",
                            metavar="N|auto",
                            help="worker processes for the complete-DC "
                                 "stage's SAT confirmation (results are "
                                 "bit-identical to serial)")
    p_pipe_run.add_argument("--json", action="store_true",
                            help="machine-readable result + pipeline summary")
    p_pipe_run.set_defaults(func=_cmd_pipeline_run)
    p_pipe_stages = pipe_sub.add_parser(
        "stages", parents=[obs_parent],
        help="list the registered pipeline stages",
    )
    p_pipe_stages.add_argument("--json", action="store_true",
                               help="machine-readable registry listing")
    p_pipe_stages.set_defaults(func=_cmd_pipeline_stages)

    from .obs.regress import (
        DEFAULT_QUALITY_TOLERANCE,
        DEFAULT_STAGE_TOLERANCE,
        DEFAULT_WALL_TOLERANCE,
    )

    p_obs = sub.add_parser("obs", help="query the telemetry ledger")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    def add_tolerance_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--wall-tolerance", type=float,
                       default=DEFAULT_WALL_TOLERANCE, metavar="FRACTION",
                       help="allowed relative wall-clock slowdown "
                            "(default %(default)s)")
        p.add_argument("--quality-tolerance", type=float,
                       default=DEFAULT_QUALITY_TOLERANCE, metavar="FRACTION",
                       help="allowed relative worsening of quality figures "
                            "(default %(default)s)")
        p.add_argument("--stage-tolerance", type=float,
                       default=DEFAULT_STAGE_TOLERANCE, metavar="FRACTION",
                       help="allowed relative slowdown of any pipeline "
                            "stage both runs executed (default %(default)s)")

    p_obs_runs = obs_sub.add_parser("runs", help="list recorded runs")
    p_obs_runs.add_argument("--command", dest="filter_command", default=None,
                            help="only runs of this subcommand")
    p_obs_runs.add_argument("--rev", default=None,
                            help="only runs from this git revision (prefix)")
    p_obs_runs.add_argument("--limit", type=int, default=20)
    p_obs_runs.add_argument("--json", action="store_true",
                            help="full records as JSON")
    p_obs_runs.set_defaults(func=_cmd_obs_runs)

    p_obs_show = obs_sub.add_parser("show", help="show one recorded run")
    p_obs_show.add_argument("run_id", help="run id (unique prefix accepted)")
    p_obs_show.add_argument("--json", action="store_true",
                            help="the full record as JSON")
    p_obs_show.set_defaults(func=_cmd_obs_show)

    p_obs_cmp = obs_sub.add_parser(
        "compare", help="diff two runs (exit 1 beyond tolerance)"
    )
    p_obs_cmp.add_argument("baseline", help="baseline run id")
    p_obs_cmp.add_argument("candidate", help="candidate run id")
    add_tolerance_args(p_obs_cmp)
    p_obs_cmp.add_argument("--json", action="store_true",
                           help="the structured diff as JSON")
    p_obs_cmp.set_defaults(func=_cmd_obs_compare)

    p_obs_reg = obs_sub.add_parser(
        "regressions",
        help="gate the newest run against a baseline (exit 1 on drift)",
    )
    p_obs_reg.add_argument("--baseline", required=True, metavar="REV|RUN",
                           help="baseline run id or git revision prefix")
    p_obs_reg.add_argument("--candidate", default=None, metavar="RUN",
                           help="candidate run id (default: the newest run "
                                "of the baseline's command)")
    p_obs_reg.add_argument("--command", dest="filter_command", default=None,
                           help="restrict baseline/candidate lookup to this "
                                "subcommand")
    add_tolerance_args(p_obs_reg)
    p_obs_reg.add_argument("--json", action="store_true",
                           help="the structured diff as JSON")
    p_obs_reg.set_defaults(func=_cmd_obs_regressions)

    p_obs_exp = obs_sub.add_parser(
        "export", help="export the ledger as JSONL"
    )
    p_obs_exp.add_argument("output", help="JSONL output path")
    p_obs_exp.set_defaults(func=_cmd_obs_export)

    p_nodal = add_parser(
        "nodal", help="internal-DC extraction and reassignment (Sec. 4)"
    )
    p_nodal.add_argument("benchmark")
    p_nodal.add_argument(
        "--policy", default="cfactor",
        choices=["conventional", "ranking", "cfactor", "complete"],
    )
    p_nodal.add_argument("--threshold", type=float, default=1.0)
    p_nodal.add_argument("--renode", action="store_true",
                         help="repartition into k-feasible nodes first")
    p_nodal.add_argument("--k", type=int, default=6, help="renode fanin bound")
    p_nodal.add_argument("--sat", action="store_true",
                         help="use the SAT-complete extractor "
                              "(simulation-propose / SAT-confirm)")
    p_nodal.add_argument("--dc-window", type=int, default=2, dest="dc_window",
                         help="window depth for the window-limited "
                              "baseline/fallback extractor")
    _add_jobs_arg(p_nodal)
    p_nodal.set_defaults(func=_cmd_nodal)

    p_export = add_parser("export", help="write figure/table data as CSV")
    p_export.add_argument("directory")
    p_export.add_argument("--benchmarks", nargs="*", default=None,
                          help="benchmark names (default: a fast subset)")
    _add_jobs_arg(p_export)
    p_export.set_defaults(func=_cmd_export)

    p_bench = add_parser(
        "bench", help="run named scenarios (benchmarks × fault model × policies)"
    )
    p_bench.add_argument("scenarios", nargs="*", metavar="SCENARIO",
                         help="registered scenario names (see --list)")
    p_bench.add_argument("--list", action="store_true",
                         help="print the scenario registry and exit")
    _add_jobs_arg(p_bench)
    p_bench.add_argument("--out", default="BENCH_scenarios.json", metavar="FILE",
                         help="scenario matrix to merge results into "
                              "(default %(default)s)")
    p_bench.add_argument("--checkpoint-dir", default=None,
                         help="content-addressed stage checkpoint directory "
                              "shared by all scenario points")
    p_bench.add_argument("--json", action="store_true",
                         help="print the merged matrix as JSON")
    p_bench.set_defaults(func=_cmd_bench)

    p_report = add_parser(
        "report", help="one implementation's error rate under several fault models"
    )
    p_report.add_argument("benchmark")
    add_policy_args(p_report)
    p_report.add_argument("--objective", default="area",
                          choices=["delay", "power", "area"])
    p_report.add_argument("--distances", type=int, nargs="*", default=[2],
                          metavar="K",
                          help="multi-bit Hamming distances to report "
                               "(default: 2)")
    p_report.add_argument("--burst", type=int, default=None, metavar="W",
                          help="also report the burst model of this width")
    p_report.add_argument("--samples", type=int, default=20_000,
                          help="Monte-Carlo samples (default %(default)s)")
    p_report.add_argument("--seed", type=int, default=0,
                          help="Monte-Carlo seed (default %(default)s)")
    p_report.add_argument("--json", action="store_true",
                          help="machine-readable report")
    p_report.set_defaults(func=_cmd_report)

    p_gen = add_parser("gen", help="generate a synthetic benchmark")
    p_gen.add_argument("--name", default="synthetic")
    p_gen.add_argument("--inputs", type=int, required=True)
    p_gen.add_argument("--outputs", type=int, required=True)
    p_gen.add_argument("--cf", type=float, required=True)
    p_gen.add_argument("--dc", type=float, required=True)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("-o", "--output", help="write generated PLA here")
    p_gen.set_defaults(func=_cmd_gen)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    from .obs import ObsSession

    parser = _build_parser()
    args = parser.parse_args(argv)
    session = ObsSession.from_args(args.command, args, argv=argv)
    # Ledger queries must not append to the ledger they are reading.
    session.ledger_enabled = args.command != "obs"
    args._obs_session = session
    try:
        with session:
            status = args.func(args)
            session.exit_status = status
        return status
    except BrokenPipeError:  # e.g. piped into `head`
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
