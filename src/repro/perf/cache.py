"""Content-addressed memoisation for minimisation results.

The sweep drivers of :mod:`repro.flows` re-run the whole ESPRESSO +
synthesis flow per sweep point, and many points share work: the fraction-0
baseline is recomputed per family member, adjacent sweep points often
assign DCs identically for some outputs, and every output of a spec is
minimised independently.  This module provides a process-wide,
content-addressed memo so identical minimisation problems are solved once.

Keys are BLAKE2b digests of the *content* of the problem (phase arrays or
cover bytes plus their shapes) combined with an options digest, so two
:class:`~repro.core.spec.FunctionSpec` objects with different names but
identical truth tables share an entry.  Values are treated as immutable:
cached cover arrays are marked read-only before they are stored.

Concurrency model
-----------------

The cache is **not thread-safe and does not need to be**: every consumer
in this package is single-threaded, and the parallel sweep executor
(:func:`repro.flows.sweep.parallel_map`) uses *processes*, each of which
gets its own ``global_cache`` at import time.  Worker-process hit/miss
activity therefore never races the parent's — it is reported back
explicitly as a metrics delta with each result and merged by the parent
(see :mod:`repro.obs.metrics`), which is why ``--metrics-out`` shows
cache traffic from every process while the in-process counters here only
ever see one.  If you embed the cache in a threaded host, wrap access in
your own lock; the methods do not lock internally.

Observability: :func:`cache_stats` returns a typed :class:`CacheStats`
snapshot (dict-style access kept for compatibility), the counters are
exported to the process-wide metrics registry under ``cache.*`` via a
collector, :func:`reset_cache` clears both entries and counters, and
:func:`configure_cache` turns the memo off or bounds its size.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

import numpy as np

from ..obs import metrics as obs_metrics

__all__ = [
    "CacheStats",
    "MinimizationCache",
    "cache_stats",
    "configure_cache",
    "cover_key",
    "digest_parts",
    "global_cache",
    "reset_cache",
    "spec_key",
    "stage_key",
]

_OPTIONS_VERSION = b"espresso-v1"
"""Bump when the minimiser's semantics change, invalidating old digests."""


def _digest(*parts: bytes) -> str:
    hasher = hashlib.blake2b(digest_size=16)
    for part in parts:
        hasher.update(part)
        hasher.update(b"\x00")
    return hasher.hexdigest()


def digest_parts(*parts: bytes) -> str:
    """Content digest of a sequence of byte strings.

    The shared digest primitive behind every content-addressed key in
    this package — cover/spec memo keys here and the pipeline stage
    checkpoints of :mod:`repro.pipeline.checkpoint`.
    """
    return _digest(*parts)


_STAGE_VERSION = b"stage-v1"
"""Bump when checkpoint payload semantics change, invalidating old keys."""


def stage_key(
    stage_name: str,
    stage_version: str,
    params_fingerprint: str,
    upstream_key: str,
) -> str:
    """Content key of one pipeline stage execution.

    Keys chain: ``upstream_key`` is the previous stage's key (or the
    initial context fingerprint), so a stage's key commits to the whole
    producing history — its own identity and parameters plus, by
    induction, every upstream stage and the input artefacts.  Change
    anything upstream and every downstream key changes with it, which is
    what lets a re-parameterised run resume from the last stage whose
    inputs are genuinely unchanged.
    """
    return _digest(
        _STAGE_VERSION,
        b"stage",
        stage_name.encode(),
        stage_version.encode(),
        params_fingerprint.encode(),
        upstream_key.encode(),
    )


def cover_key(on_cubes: np.ndarray, dc_cubes: np.ndarray, num_inputs: int) -> str:
    """Content key of one ``espresso(on, dc)`` problem."""
    return _digest(
        _OPTIONS_VERSION,
        b"cover",
        repr((num_inputs, on_cubes.shape, dc_cubes.shape)).encode(),
        np.ascontiguousarray(on_cubes).tobytes(),
        np.ascontiguousarray(dc_cubes).tobytes(),
    )


def spec_key(phases: np.ndarray, options: tuple = ()) -> str:
    """Content key of one ``minimize_spec`` problem (phases + options)."""
    return _digest(
        _OPTIONS_VERSION,
        b"spec",
        repr((phases.shape, options)).encode(),
        np.ascontiguousarray(phases).tobytes(),
    )


@dataclass(frozen=True)
class CacheStats:
    """One point-in-time snapshot of a cache's counters.

    Supports both attribute access (``stats.hits``) and, for
    compatibility with the original bare-dict API, dict-style access
    (``stats["hits"]``, ``"hits" in stats``); :meth:`asdict` returns the
    plain-dict form used by the ``--cache-stats`` output.
    """

    enabled: bool
    entries: int
    maxsize: int
    hits: int
    misses: int
    evictions: int
    hit_rate: float

    def asdict(self) -> dict[str, Any]:
        """The snapshot as a plain dict (the legacy ``stats()`` shape)."""
        return dataclasses.asdict(self)

    def __getitem__(self, key: str) -> Any:
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and hasattr(self, key)

    def __iter__(self) -> Iterator[str]:
        return iter(self.asdict())

    def keys(self) -> Iterator[str]:
        # Makes ``dict(stats)`` and ``{**stats}`` work like the old dict.
        return iter(self.asdict())


class MinimizationCache:
    """A bounded LRU memo with hit/miss counters.

    Not thread-safe by design (see the module docstring): the minimiser
    itself is single-threaded and the parallel sweep executor uses
    processes, each with its own cache instance whose counters are
    merged back into the parent's metrics snapshot per task.
    """

    def __init__(self, maxsize: int = 4096, enabled: bool = True):
        self.maxsize = maxsize
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._store: OrderedDict[str, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: str) -> Any | None:
        """The cached value for *key*, or None; counts a hit or a miss."""
        if not self.enabled:
            return None
        value = self._store.get(key)
        if value is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        """Insert *value* under *key*, evicting the oldest entry when full."""
        if not self.enabled:
            return
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def export_entries(self, limit: int | None = None) -> list[tuple[str, Any]]:
        """The most-recently-used ``(key, value)`` entries, oldest first.

        Used by :mod:`repro.perf.pool` to pre-seed worker caches at
        spawn: keys are content digests, so installing them in another
        process can only skip recomputation, never change a result.
        """
        items = list(self._store.items())
        if limit is not None and limit < len(items):
            items = items[-limit:]
        return items

    def seed(self, entries: Iterable[tuple[str, Any]]) -> None:
        """Install exported entries without touching hit/miss counters.

        Existing entries win (they are identical by construction — keys
        are content digests); overflow evicts oldest entries silently so
        seeding a fresh worker never inflates its eviction counter.
        """
        if not self.enabled:
            return
        for key, value in entries:
            if key not in self._store:
                self._store[key] = value
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    def stats(self) -> CacheStats:
        """Hit/miss/eviction counters plus the current size and hit rate."""
        total = self.hits + self.misses
        return CacheStats(
            enabled=self.enabled,
            entries=len(self._store),
            maxsize=self.maxsize,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            hit_rate=self.hits / total if total else 0.0,
        )


global_cache = MinimizationCache()
"""The process-wide memo consulted by ``espresso`` and ``minimize_spec``."""


def cache_stats() -> CacheStats:
    """Counters of the process-wide minimisation cache."""
    return global_cache.stats()


def reset_cache() -> None:
    """Clear the process-wide cache and zero its counters."""
    global_cache.clear()


def configure_cache(*, enabled: bool | None = None, maxsize: int | None = None) -> None:
    """Enable/disable the process-wide cache or change its capacity."""
    if enabled is not None:
        global_cache.enabled = enabled
    if maxsize is not None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        global_cache.maxsize = maxsize
        while len(global_cache._store) > maxsize:
            global_cache._store.popitem(last=False)
            global_cache.evictions += 1


def _collect_cache_metrics() -> dict[str, dict[str, Any]]:
    """Export the global cache's counters into metrics snapshots.

    Registered as a collector so the cache's hot paths keep their plain
    integer counters while every snapshot still absorbs them under the
    ``cache.*`` namespace.
    """
    stats = global_cache.stats()
    return {
        "cache.hits": {"type": "counter", "value": stats.hits},
        "cache.misses": {"type": "counter", "value": stats.misses},
        "cache.evictions": {"type": "counter", "value": stats.evictions},
        "cache.entries": {"type": "gauge", "value": stats.entries},
        "cache.hit_rate": {"type": "gauge", "value": stats.hit_rate},
    }


obs_metrics.register_collector(_collect_cache_metrics)
