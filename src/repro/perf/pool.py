"""Warm worker pool: the process-wide executor behind parallel sweeps.

The sweep drivers of :mod:`repro.flows.sweep` map independent flow runs
over worker processes.  A cold ``ProcessPoolExecutor`` per sweep loses to
serial on anything but long sweeps: every call pays process spawn, a full
import of numpy + this package per worker, byte-for-byte pickling of
every task's cover/phase arrays, and cold espresso/minimise caches.  This
module keeps one **warm pool** per process instead:

* **Persistent workers.**  Workers are started once (forkserver where
  available, so the heavy imports happen a single time in the fork
  server and are inherited by every worker) and live across successive
  :meth:`WarmPool.map` calls.  A later call asking for more workers grows
  the pool; it never re-pays startup for workers it already has.

* **Cache pre-seeding.**  At spawn, each worker receives a snapshot of
  the most-recently-used entries of the parent's content-addressed
  minimisation cache (:mod:`repro.perf.cache`), so the fraction-0
  baselines and shared sub-problems a sweep re-visits are warm before
  the first task lands.  Keys are content digests, so seeding can never
  change results — only skip recomputation.

* **Zero-copy task transfer.**  Tasks are pickled with protocol 5 and a
  ``buffer_callback``: the large contiguous buffers (packed uint64
  simulation words, ``FunctionSpec`` phase arrays, cover cube matrices)
  are split out of the pickle stream.  Each unique buffer — identified
  by a BLAKE2b content fingerprint — is written once into a
  :mod:`multiprocessing.shared_memory` segment; tasks reference it by
  name and fingerprint, and workers attach once per fingerprint and
  reuse the mapping for every later task (interning).  Ten sweep points
  over the same spec ship the spec's phase array exactly once, and
  workers read it straight out of shared memory.

* **Batched, work-stealing scheduling.**  Tasks are grouped into chunks
  with a guided (decreasing-size) plan: early chunks are large to
  amortise dispatch, tail chunks shrink to one task so a long-tailed
  point (one slow espresso call) cannot strand work behind it.  Chunks
  go into one shared queue that every idle worker pulls from — central
  work stealing — so stragglers self-balance without the parent
  micro-managing placement.

* **Bounded in-flight window.**  The parent encodes and enqueues at most
  a small window of chunks at a time and tops it up as results return,
  so a thousand-point sweep never holds every task payload resident in
  the queue at once.

* **Worker health.**  Every worker runs a heartbeat thread while it is
  executing a chunk, shipping ``(rss, tasks done, busy-since)`` beats
  over the result queue; the parent folds them into ``pool.worker.*``
  gauges and a stall detector flags any worker stuck on one task past
  :func:`stall_threshold_seconds` — surfaced on the progress line and
  in the telemetry ledger (see :func:`health_snapshot`) instead of
  silently hanging the sweep.

The pool preserves the ordering/error contract callers rely on: results
come back in input order, worker exceptions surface as
:class:`WorkerTaskError` (index + message + formatted worker traceback)
with the remaining queued work cancelled, and per-chunk observability
deltas (metrics + tracing spans + profiler stack samples) are merged
into the parent as chunks complete.  See ``docs/performance.md`` for
the architecture notes and ``BENCH_substrate.json`` for current
numbers.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import pickle
import queue as queue_module
import threading
import time
import traceback as _traceback
from collections import OrderedDict
from contextlib import suppress
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import multiprocessing as mp

from ..obs import metrics as obs_metrics
from ..obs import profile as obs_profile
from ..obs import span
from ..obs import trace as obs_trace

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover - very restricted builds
    shared_memory = None  # type: ignore[assignment]

__all__ = [
    "WarmPool",
    "WorkerHealth",
    "WorkerTaskError",
    "available_cpus",
    "configure_pool",
    "executor_config",
    "get_pool",
    "health_snapshot",
    "plan_chunks",
    "pool_enabled",
    "resolve_jobs",
    "shutdown_pool",
    "stall_threshold_seconds",
]

_PRELOAD_MODULES = ("repro.flows.sweep",)
"""Imported in the fork server / at worker start: pulls in numpy, the
espresso passes, the sim engine and the flow drivers exactly once."""

MIN_SHARED_BUFFER_BYTES = 4096
"""Out-of-band buffers below this ride inline in the pickle stream —
a shared-memory segment costs a file descriptor and a syscall, which
only pays for itself on buffers bigger than the message envelope."""

MAX_SHARED_BYTES = 128 * 1024 * 1024
"""Parent-side cap on the total bytes held in shared-memory segments;
least-recently-interned segments are unlinked between calls."""

CACHE_SEED_LIMIT = 512
"""Most-recently-used minimisation-cache entries shipped to a worker at
spawn."""

MAX_CHUNK_TASKS = 16
"""Upper bound on tasks per chunk regardless of sweep size."""

WINDOW_CHUNKS_PER_WORKER = 2
"""In-flight chunk window per requested worker (bounded-memory feed)."""

HEARTBEAT_INTERVAL_SECONDS = 0.25
"""How often a busy worker ships a heartbeat over the result queue.
Beats only flow while a chunk is executing, so idle workers never
flood the queue between maps."""

DEFAULT_STALL_SECONDS = 5.0
"""A worker busy on one task longer than this is flagged as stalled
(override with ``REPRO_POOL_STALL_SECONDS``)."""


def stall_threshold_seconds() -> float:
    """The stall-detection threshold, honouring the env override."""
    raw = os.environ.get("REPRO_POOL_STALL_SECONDS", "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_STALL_SECONDS
    return value if value > 0 else DEFAULT_STALL_SECONDS


# --------------------------------------------------------------- job sizing


def available_cpus() -> int:
    """CPUs this process may run on (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def resolve_jobs(jobs: int | str, points: int | None = None) -> int:
    """Resolve a ``--jobs`` value to a concrete worker count.

    ``"auto"`` resolves to :func:`available_cpus`; numeric strings parse
    as integers.  The result is capped by *points* (spawning more workers
    than tasks only costs memory) and floored at 1.

    Raises:
        ValueError: for non-numeric strings other than ``auto``.
    """
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            resolved = available_cpus()
        else:
            try:
                resolved = int(text)
            except ValueError:
                raise ValueError(
                    f"jobs must be an integer or 'auto', got {jobs!r}"
                ) from None
    else:
        resolved = int(jobs)
    if points is not None:
        resolved = min(resolved, max(1, points))
    return max(1, resolved)


def _default_start_method() -> str:
    override = _START_OVERRIDE or os.environ.get("REPRO_POOL_START_METHOD")
    if override:
        return override
    methods = mp.get_all_start_methods()
    return "forkserver" if "forkserver" in methods else "spawn"


# ------------------------------------------------------- zero-copy transfer


def _fingerprint(view: memoryview) -> str:
    return hashlib.blake2b(view, digest_size=16).hexdigest()


class _SharedBufferTable:
    """Parent-side content-addressed shared-memory segments.

    One segment per unique buffer content: interning the same fingerprint
    again is a dict hit, so a sweep whose tasks all reference one spec
    writes its phase array into shared memory exactly once.
    """

    def __init__(self, max_bytes: int = MAX_SHARED_BYTES):
        self.max_bytes = max_bytes
        self._segments: OrderedDict[str, tuple[Any, int]] = OrderedDict()
        self._total_bytes = 0

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def total_bytes(self) -> int:
        return self._total_bytes

    def intern(self, view: memoryview) -> tuple[str, str, int]:
        """Return ``(shm_name, fingerprint, nbytes)`` for *view*'s content."""
        fingerprint = _fingerprint(view)
        entry = self._segments.get(fingerprint)
        if entry is None:
            segment = shared_memory.SharedMemory(create=True, size=view.nbytes)
            segment.buf[: view.nbytes] = view
            self._segments[fingerprint] = (segment, view.nbytes)
            self._total_bytes += view.nbytes
            obs_metrics.counter("pool.shm_segments").inc()
            obs_metrics.counter("pool.shm_bytes").inc(view.nbytes)
        else:
            self._segments.move_to_end(fingerprint)
            segment, _ = entry
        return segment.name, fingerprint, view.nbytes

    def trim(self) -> None:
        """Unlink least-recently-interned segments above the byte cap.

        Only called between :meth:`WarmPool.map` calls, when no live task
        still references a segment by name.  Workers that already mapped
        an unlinked segment keep their (still valid) mapping.
        """
        while self._total_bytes > self.max_bytes and len(self._segments) > 1:
            _, (segment, nbytes) = self._segments.popitem(last=False)
            self._total_bytes -= nbytes
            with suppress(OSError):
                segment.close()
                segment.unlink()

    def release_all(self) -> None:
        for segment, _ in self._segments.values():
            with suppress(OSError):
                segment.close()
                segment.unlink()
        self._segments.clear()
        self._total_bytes = 0


def _attach_untracked(name: str) -> Any:
    """Attach to a parent-owned segment without tracker registration.

    Attaching normally registers the segment with the attaching process's
    resource tracker (``track=False`` only exists from 3.13): under
    ``spawn`` the worker's own tracker would unlink the parent's segment
    on worker exit, and under ``forkserver`` the shared tracker would be
    unbalanced against the parent's create-time registration.  Suppress
    registration for the attach — ownership stays with the parent.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class _WorkerBufferTable:
    """Worker-side fingerprint -> attached buffer interning table."""

    def __init__(self, max_entries: int = 512):
        self.max_entries = max_entries
        self._buffers: OrderedDict[str, tuple[Any, memoryview]] = OrderedDict()

    def resolve(self, ref: tuple) -> Any:
        if ref[0] == "inline":
            return ref[1]
        _, name, fingerprint, nbytes = ref
        entry = self._buffers.get(fingerprint)
        if entry is None:
            segment = _attach_untracked(name)
            entry = (segment, segment.buf[:nbytes])
            self._buffers[fingerprint] = entry
            while len(self._buffers) > self.max_entries:
                # Dropping the reference is enough: numpy arrays decoded
                # from the view keep it (and the mapping) alive until GC.
                self._buffers.popitem(last=False)
        else:
            self._buffers.move_to_end(fingerprint)
        return entry[1]


def _encode_payload(
    obj: Any, shm_table: _SharedBufferTable | None
) -> tuple[bytes, tuple]:
    """Pickle *obj*, splitting large buffers out into shared memory.

    Returns ``(stream, refs)`` where *refs* describes each out-of-band
    buffer as ``("shm", name, fingerprint, nbytes)`` or
    ``("inline", bytes)``.  Falls back to a plain in-band pickle when the
    object's buffers are not contiguous or protocol-5 extraction fails.
    """
    buffers: list[pickle.PickleBuffer] = []
    try:
        stream = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
        refs = []
        for buffer in buffers:
            view = buffer.raw()  # raises BufferError if non-contiguous
            if shm_table is not None and view.nbytes >= MIN_SHARED_BUFFER_BYTES:
                name, fingerprint, nbytes = shm_table.intern(view)
                refs.append(("shm", name, fingerprint, nbytes))
            else:
                refs.append(("inline", view.tobytes()))
            buffer.release()
        return stream, tuple(refs)
    except (pickle.PicklingError, BufferError, OSError):
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), ()


def _decode_payload(stream: bytes, refs: tuple, table: _WorkerBufferTable) -> Any:
    if not refs:
        return pickle.loads(stream)
    return pickle.loads(stream, buffers=[table.resolve(ref) for ref in refs])


# ------------------------------------------------------------- chunk planning


def plan_chunks(total: int, workers: int) -> list[tuple[int, int]]:
    """Guided self-scheduling chunk plan: ``(start, size)`` per chunk.

    Each chunk takes ``remaining / (2 * workers)`` tasks (capped at
    :data:`MAX_CHUNK_TASKS`), so early chunks batch small points together
    while the plan decays to single-task chunks at the tail — a slow
    final point never drags a batch of queued work along with it.
    """
    chunks: list[tuple[int, int]] = []
    start = 0
    while start < total:
        remaining = total - start
        size = max(1, min(MAX_CHUNK_TASKS, remaining // (2 * workers)))
        chunks.append((start, size))
        start += size
    return chunks


# ------------------------------------------------------------------- worker


def _warm_imports() -> None:
    for name in _PRELOAD_MODULES:
        with suppress(Exception):
            __import__(name)


def _install_cache_seed(seed_bytes: bytes) -> None:
    if not seed_bytes:
        return
    with suppress(Exception):
        from .cache import global_cache

        entries = pickle.loads(seed_bytes)
        global_cache.seed(entries)
        obs_metrics.counter("pool.seeded_entries").inc(len(entries))


def _rss_bytes() -> int:
    """This process's resident set size, best effort (0 when unknown)."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return pages * (os.sysconf("SC_PAGESIZE") or 4096)
    except (OSError, ValueError, IndexError):
        pass
    try:  # pragma: no cover - non-/proc platforms
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover
        return 0


class _WorkerState:
    """Shared (GIL-guarded) task progress read by the heartbeat thread."""

    __slots__ = ("tasks_done", "busy_since", "current_index")

    def __init__(self) -> None:
        self.tasks_done = 0
        self.busy_since: float | None = None
        self.current_index: int | None = None


def _heartbeat_loop(result_queue: Any, state: _WorkerState,
                    stop: threading.Event) -> None:
    """Ship ``("hb", ...)`` beats while the worker is executing a chunk."""
    pid = os.getpid()
    while not stop.wait(HEARTBEAT_INTERVAL_SECONDS):
        if state.busy_since is None:
            continue
        with suppress(Exception):
            result_queue.put((
                "hb", pid, time.time(), _rss_bytes(), state.tasks_done,
                state.busy_since, state.current_index,
            ))


def _worker_main(task_queue: Any, result_queue: Any, seed_bytes: bytes) -> None:
    """Worker loop: pull chunks, run tasks, ship per-chunk obs deltas."""
    with suppress(Exception):
        import signal

        signal.signal(signal.SIGINT, signal.SIG_IGN)
    _warm_imports()
    _install_cache_seed(seed_bytes)
    buffers = _WorkerBufferTable()
    state = _WorkerState()
    heartbeat_stop = threading.Event()
    threading.Thread(
        target=_heartbeat_loop, args=(result_queue, state, heartbeat_stop),
        name="repro-pool-heartbeat", daemon=True,
    ).start()
    shared_epoch: int | None = None
    shared_obj: Any = None
    while True:
        message = task_queue.get()
        if message is None:
            heartbeat_stop.set()
            break
        (_, epoch, chunk_id, func_bytes, shared_payload, encoded_tasks,
         traced, profiled) = message
        outcomes: list[tuple] = []
        tracer = obs_trace.enable_tracing() if traced else None
        sampler = obs_profile.StackSampler().start() if profiled else None
        try:
            with obs_metrics.delta_capture() as delta:
                func = pickle.loads(func_bytes)
                if shared_payload is not None and shared_epoch != epoch:
                    # One decode per map() call: later chunks of the same
                    # epoch reuse the object (e.g. a network snapshot an
                    # oracle was built from), not just its bytes.
                    shared_obj = _decode_payload(
                        shared_payload[0], shared_payload[1], buffers
                    )
                    shared_epoch = epoch
                    obs_metrics.counter("pool.shared_decodes").inc()
                for index, stream, refs in encoded_tasks:
                    state.current_index = index
                    state.busy_since = time.time()
                    try:
                        task = _decode_payload(stream, refs, buffers)
                        with span("sweep.point", index=index):
                            if shared_payload is not None:
                                result = func(shared_obj, task)
                            else:
                                result = func(task)
                        outcomes.append((index, "ok", result))
                    except Exception as exc:  # noqa: BLE001 - to the parent
                        outcomes.append(
                            (
                                index,
                                "error",
                                f"{type(exc).__name__}: {exc}",
                                _traceback.format_exc(),
                            )
                        )
                        break  # abandon the rest of the chunk
                    finally:
                        state.busy_since = None
                        state.current_index = None
                        state.tasks_done += 1
        finally:
            state.busy_since = None
            state.current_index = None
            if traced:
                obs_trace.disable_tracing()
        records = tracer.snapshot(clear=True) if tracer is not None else []
        samples = sampler.stop() if sampler is not None else None
        result_queue.put((
            "done", epoch, chunk_id, outcomes, delta, records, samples,
            (os.getpid(), _rss_bytes(), state.tasks_done),
        ))


# -------------------------------------------------------------------- parent


class WorkerTaskError(RuntimeError):
    """A task raised inside a pool worker.

    Attributes:
        index: position of the failing task in the submitted sequence.
        message: ``TypeName: str(exc)`` of the worker-side exception.
        worker_traceback: the worker's formatted traceback.
    """

    def __init__(self, index: int, message: str, worker_traceback: str):
        self.index = index
        self.message = message
        self.worker_traceback = worker_traceback
        super().__init__(f"task {index} failed in pool worker: {message}")


@dataclass
class WorkerHealth:
    """Last-known health of one pool worker, parent-side.

    Attributes:
        pid: the worker process id.
        last_seen: parent wall-clock time of the latest beat or result.
        rss_bytes / tasks_done: the worker's latest self-report.
        busy_since: worker wall-clock start of the task it is running
            (None while idle between tasks).
        current_index: the task index it is running, when busy.
        stalled: True while the stall detector has the worker flagged.
        stall_count: how many times this worker has been flagged.
    """

    pid: int
    last_seen: float = 0.0
    rss_bytes: int = 0
    tasks_done: int = 0
    busy_since: float | None = None
    current_index: int | None = None
    stalled: bool = False
    stall_count: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "last_seen": self.last_seen,
            "rss_bytes": self.rss_bytes,
            "tasks_done": self.tasks_done,
            "stalled": self.stalled,
            "stall_count": self.stall_count,
        }


def _export_cache_seed(limit: int = CACHE_SEED_LIMIT) -> bytes:
    from .cache import global_cache

    entries = global_cache.export_entries(limit)
    if not entries:
        return b""
    try:
        return pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # pragma: no cover - unpicklable cache value
        return b""


class WarmPool:
    """Persistent worker processes draining one shared chunk queue."""

    def __init__(self, workers: int, *, start_method: str | None = None):
        self.start_method = start_method or _default_start_method()
        self._ctx = mp.get_context(self.start_method)
        if self.start_method == "forkserver":
            with suppress(Exception):
                self._ctx.set_forkserver_preload(list(_PRELOAD_MODULES))
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._workers: list[Any] = []
        self._shm = _SharedBufferTable() if shared_memory is not None else None
        self._epoch = 0
        self.closed = False
        self.last_max_in_flight = 0
        self.health: dict[int, WorkerHealth] = {}
        self.stall_events: list[dict[str, Any]] = []
        self._last_liveness_check = 0.0
        self._spawn(max(1, workers))

    # ------------------------------------------------------------ lifecycle

    @property
    def size(self) -> int:
        return len(self._workers)

    def _spawn(self, count: int) -> None:
        seed = _export_cache_seed()
        for _ in range(count):
            process = self._ctx.Process(
                target=_worker_main,
                args=(self._tasks, self._results, seed),
                daemon=True,
            )
            process.start()
            self._workers.append(process)
        obs_metrics.counter("pool.worker_spawns").inc(count)
        obs_metrics.gauge("pool.workers").set(len(self._workers))

    def ensure_workers(self, count: int) -> None:
        """Grow the pool to at least *count* workers (never shrinks)."""
        if count > len(self._workers):
            self._spawn(count - len(self._workers))

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker and release queues and shared memory."""
        if self.closed:
            return
        self.closed = True
        for _ in self._workers:
            with suppress(Exception):
                self._tasks.put(None)
        deadline = time.monotonic() + timeout
        for process in self._workers:
            process.join(max(0.0, deadline - time.monotonic()))
        for process in self._workers:
            if process.is_alive():
                process.terminate()
                process.join(1.0)
        for q in (self._tasks, self._results):
            with suppress(Exception):
                q.cancel_join_thread()
                q.close()
        if self._shm is not None:
            self._shm.release_all()
        self._workers.clear()
        obs_metrics.gauge("pool.workers").set(0)

    # ------------------------------------------------------------ execution

    def map(
        self,
        func: Callable[..., Any],
        tasks: Sequence[Any],
        jobs: int | None = None,
        *,
        progress: Callable[[int, int], None] | None = None,
        shared: Any = None,
    ) -> list[Any]:
        """Map *func* over *tasks* on the pool; results in input order.

        *jobs* bounds the chunk plan and in-flight window (defaults to the
        pool size); extra idle workers beyond it simply steal from the
        same queue.  The *progress* callback fires with a monotonically
        increasing ``done`` count as tasks complete, regardless of chunk
        completion order.

        When *shared* is given it is encoded **once** for the whole call,
        shipped with every chunk, decoded **once per worker** (cached by
        epoch), and passed as the first argument: ``func(shared, task)``.
        Use it for a large context common to all tasks — a network
        snapshot, a pattern matrix — that workers should not re-decode
        per task.

        Raises:
            WorkerTaskError: a task raised in a worker; queued chunks are
                cancelled first (in-flight ones finish and are discarded
                as stale by the next call).
            RuntimeError: a worker process died; the pool is shut down so
                the next :func:`get_pool` starts fresh.
        """
        total = len(tasks)
        if total == 0:
            return []
        jobs = min(jobs or self.size, self.size)
        self._epoch += 1
        epoch = self._epoch
        self._drain_stale()
        if self._shm is not None:
            self._shm.trim()
        traced = obs_trace.is_enabled()
        profiled = obs_profile.is_profiling()
        func_bytes = pickle.dumps(func, protocol=pickle.HIGHEST_PROTOCOL)
        shared_payload = (
            None if shared is None else _encode_payload(shared, self._shm)
        )
        chunks = plan_chunks(total, jobs)
        window = max(2, WINDOW_CHUNKS_PER_WORKER * jobs)
        results: list[Any] = [None] * total
        pending: dict[int, tuple[int, int]] = {}
        next_chunk = 0
        done = 0
        self.last_max_in_flight = 0

        def feed() -> None:
            nonlocal next_chunk
            while next_chunk < len(chunks) and len(pending) < window:
                chunk_id = next_chunk
                start, size = chunks[chunk_id]
                encoded = [
                    (index, *_encode_payload(tasks[index], self._shm))
                    for index in range(start, start + size)
                ]
                self._tasks.put(
                    ("chunk", epoch, chunk_id, func_bytes, shared_payload,
                     encoded, traced, profiled)
                )
                pending[chunk_id] = (start, size)
                next_chunk += 1
                self.last_max_in_flight = max(
                    self.last_max_in_flight, len(pending)
                )
                obs_metrics.counter("pool.dispatched_chunks").inc()
                obs_metrics.counter("pool.dispatched_tasks").inc(size)

        feed()
        while pending:
            message = self._next_result(progress)
            _, msg_epoch, chunk_id, outcomes, delta, records, samples, health \
                = message
            obs_metrics.merge_snapshot(delta)
            tracer = obs_trace.current_tracer()
            if tracer is not None and records:
                tracer.ingest(records)
            sampler = obs_profile.current_sampler()
            if sampler is not None and samples:
                sampler.merge(samples)
            self._note_result_health(health)
            if msg_epoch != epoch:
                obs_metrics.counter("pool.stale_results").inc()
                continue
            pending.pop(chunk_id, None)
            for outcome in outcomes:
                index, status = outcome[0], outcome[1]
                if status != "ok":
                    self._cancel_queued()
                    raise WorkerTaskError(index, outcome[2], outcome[3])
                results[index] = outcome[2]
                done += 1
                obs_metrics.counter("pool.completed_tasks").inc()
                if progress is not None:
                    progress(done, total)
            feed()
        return results

    def _next_result(self, progress: Any = None) -> tuple:
        """The next chunk result, absorbing heartbeats along the way.

        Liveness (dead workers) and stalls are checked about once a
        second regardless of message traffic — heartbeats from healthy
        workers must not starve the detector that notices an unhealthy
        one.
        """
        while True:
            now = time.monotonic()
            if now - self._last_liveness_check >= 1.0:
                self._last_liveness_check = now
                self._check_dead()
                self._check_stalls(progress)
            try:
                message = self._results.get(timeout=0.5)
            except queue_module.Empty:
                continue
            if message[0] == "hb":
                self._note_heartbeat(message)
                continue
            return message

    def _check_dead(self) -> None:
        dead = [p for p in self._workers if not p.is_alive()]
        if dead:
            obs_metrics.counter("pool.worker_deaths").inc(len(dead))
            self.shutdown()
            raise RuntimeError(
                f"{len(dead)} warm-pool worker(s) died unexpectedly; "
                "pool has been shut down"
            )

    # ------------------------------------------------------------ health

    def _health_entry(self, pid: int) -> WorkerHealth:
        entry = self.health.get(pid)
        if entry is None:
            entry = WorkerHealth(pid=pid)
            self.health[pid] = entry
        return entry

    def _note_heartbeat(self, message: tuple) -> None:
        _, pid, _worker_now, rss, tasks_done, busy_since, index = message
        entry = self._health_entry(pid)
        entry.last_seen = time.time()
        entry.rss_bytes = rss
        entry.tasks_done = tasks_done
        entry.busy_since = busy_since
        entry.current_index = index
        self._publish_health(entry)

    def _note_result_health(self, health: tuple | None) -> None:
        if not health:
            return
        pid, rss, tasks_done = health
        entry = self._health_entry(pid)
        entry.last_seen = time.time()
        entry.rss_bytes = rss
        entry.tasks_done = tasks_done
        entry.busy_since = None
        entry.current_index = None
        if entry.stalled:
            entry.stalled = False
            self._publish_stalled_count()
        self._publish_health(entry)

    def _publish_health(self, entry: WorkerHealth) -> None:
        prefix = f"pool.worker.{entry.pid}"
        obs_metrics.gauge(f"{prefix}.rss_bytes").set(entry.rss_bytes)
        obs_metrics.gauge(f"{prefix}.tasks_done").set(entry.tasks_done)
        obs_metrics.gauge(f"{prefix}.last_seen").set(entry.last_seen)

    def _publish_stalled_count(self) -> None:
        stalled = sum(1 for entry in self.health.values() if entry.stalled)
        obs_metrics.gauge("pool.workers_stalled").set(stalled)

    def _check_stalls(self, progress: Any = None) -> None:
        """Flag workers stuck on one task past the stall threshold.

        Detection relies on the heartbeat's ``busy_since``: the beat
        thread keeps running even while the task blocks (sleep, lock,
        native call), so a stalled worker keeps reporting how long it
        has been stuck.  Flagging never interrupts the task — the sweep
        keeps draining other workers' results, and a recovered worker
        (its chunk finally completes) is unflagged.
        """
        threshold = stall_threshold_seconds()
        now = time.time()
        changed = False
        for entry in self.health.values():
            busy_for = (now - entry.busy_since) if entry.busy_since else 0.0
            is_stalled = entry.busy_since is not None and busy_for > threshold
            if is_stalled and not entry.stalled:
                entry.stalled = True
                entry.stall_count += 1
                changed = True
                obs_metrics.counter("pool.worker_stalls").inc()
                self.stall_events.append({
                    "pid": entry.pid,
                    "task_index": entry.current_index,
                    "busy_seconds": busy_for,
                    "threshold_seconds": threshold,
                    "detected_at": now,
                })
            elif not is_stalled and entry.stalled:
                entry.stalled = False
                changed = True
        if changed:
            self._publish_stalled_count()
            set_note = getattr(progress, "set_note", None)
            if set_note is not None:
                stalled = [e for e in self.health.values() if e.stalled]
                if stalled:
                    worst = max(
                        stalled,
                        key=lambda e: now - (e.busy_since or now),
                    )
                    set_note(
                        f"{len(stalled)} worker(s) stalled: pid {worst.pid} "
                        f"on task {worst.current_index} for "
                        f"{now - (worst.busy_since or now):.0f}s"
                    )
                else:
                    set_note(None)

    def health_report(self) -> dict[str, Any]:
        """Worker health + stall events, ledger-ready."""
        return {
            "workers": [
                entry.to_dict()
                for entry in sorted(self.health.values(), key=lambda e: e.pid)
            ],
            "stall_events": list(self.stall_events),
        }

    def _cancel_queued(self) -> None:
        """Drop every not-yet-claimed chunk from the shared queue."""
        with suppress(queue_module.Empty):
            while True:
                self._tasks.get_nowait()
                obs_metrics.counter("pool.cancelled_chunks").inc()

    def _drain_stale(self) -> None:
        """Absorb results of chunks cancelled by a previous call's error."""
        with suppress(queue_module.Empty):
            while True:
                message = self._results.get_nowait()
                if message and message[0] == "hb":
                    self._note_heartbeat(message)
                    continue
                with suppress(Exception):
                    obs_metrics.merge_snapshot(message[4])
                obs_metrics.counter("pool.stale_results").inc()


# --------------------------------------------------------------- module state

_pool: WarmPool | None = None
_ENABLED = os.environ.get("REPRO_POOL_DISABLE", "") != "1"
_START_OVERRIDE: str | None = None


def pool_enabled() -> bool:
    """False when the warm pool is disabled (env or :func:`configure_pool`)."""
    return _ENABLED


def configure_pool(
    *, enabled: bool | None = None, start_method: str | None = None
) -> None:
    """Disable the warm pool (callers fall back to serial) or pin the
    multiprocessing start method.  Either change shuts the current pool
    down so the next use starts with the new configuration."""
    global _ENABLED, _START_OVERRIDE
    if enabled is not None:
        _ENABLED = enabled
        shutdown_pool()
    if start_method is not None:
        _START_OVERRIDE = start_method
        shutdown_pool()


def get_pool(workers: int) -> WarmPool:
    """The process-wide pool, grown to at least *workers* workers."""
    global _pool
    if _pool is None or _pool.closed:
        _pool = WarmPool(workers)
    else:
        _pool.ensure_workers(workers)
    return _pool


def shutdown_pool() -> None:
    """Stop the process-wide pool (it respawns on next use)."""
    global _pool
    if _pool is not None:
        _pool.shutdown()
        _pool = None


def health_snapshot() -> dict[str, Any] | None:
    """Worker health + stall events of the live pool, or None.

    Consumed by :class:`repro.obs.session.ObsSession` when finalising a
    ledger row, so a sweep's worker fleet (and any stalls it hit) is
    recorded alongside the run's metrics.
    """
    if _pool is None or not _pool.health:
        return None
    return _pool.health_report()


atexit.register(shutdown_pool)


def executor_config(jobs: int | str | None = None) -> dict[str, Any]:
    """The resolved executor configuration, for ``repro info --json``.

    Reports the start method, live/requested worker counts, chunking and
    zero-copy parameters — the knobs that decide how a ``--jobs N`` sweep
    actually executes on this machine.
    """
    live = _pool is not None and not _pool.closed
    return {
        "enabled": _ENABLED,
        "start_method": _pool.start_method if live else _default_start_method(),
        "cpus": available_cpus(),
        "workers": _pool.size if live else None,
        "resolved_jobs": resolve_jobs(jobs) if jobs is not None else None,
        "chunking": {
            "schedule": "guided",
            "max_chunk_tasks": MAX_CHUNK_TASKS,
            "window_chunks_per_worker": WINDOW_CHUNKS_PER_WORKER,
        },
        "zero_copy": {
            "shared_memory": shared_memory is not None,
            "min_buffer_bytes": MIN_SHARED_BUFFER_BYTES,
            "max_shared_bytes": MAX_SHARED_BYTES,
        },
        "cache_seed_entries": CACHE_SEED_LIMIT,
    }
