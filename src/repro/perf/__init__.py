"""Performance substrate: content-addressed minimisation caching.

See :mod:`repro.perf.cache` for the memo consulted by
:func:`repro.espresso.minimize.espresso` and
:func:`repro.espresso.minimize.minimize_spec`, and
:doc:`docs/performance.md </docs/performance>` for the design notes.
"""

from .cache import (
    CacheStats,
    MinimizationCache,
    cache_stats,
    configure_cache,
    cover_key,
    digest_parts,
    global_cache,
    reset_cache,
    spec_key,
    stage_key,
)

__all__ = [
    "CacheStats",
    "MinimizationCache",
    "cache_stats",
    "configure_cache",
    "cover_key",
    "digest_parts",
    "global_cache",
    "reset_cache",
    "spec_key",
    "stage_key",
]
