"""Performance substrate: minimisation caching and the warm worker pool.

See :mod:`repro.perf.cache` for the content-addressed memo consulted by
:func:`repro.espresso.minimize.espresso` and
:func:`repro.espresso.minimize.minimize_spec`, :mod:`repro.perf.pool`
for the persistent sweep executor behind
:func:`repro.flows.sweep.parallel_map`, and
:doc:`docs/performance.md </docs/performance>` for the design notes.
"""

from .cache import (
    CacheStats,
    MinimizationCache,
    cache_stats,
    configure_cache,
    cover_key,
    digest_parts,
    global_cache,
    reset_cache,
    spec_key,
    stage_key,
)
from .pool import (
    WarmPool,
    WorkerHealth,
    WorkerTaskError,
    available_cpus,
    configure_pool,
    executor_config,
    get_pool,
    health_snapshot,
    pool_enabled,
    resolve_jobs,
    shutdown_pool,
    stall_threshold_seconds,
)

__all__ = [
    "CacheStats",
    "MinimizationCache",
    "WarmPool",
    "WorkerHealth",
    "WorkerTaskError",
    "available_cpus",
    "cache_stats",
    "configure_cache",
    "configure_pool",
    "cover_key",
    "digest_parts",
    "executor_config",
    "get_pool",
    "global_cache",
    "health_snapshot",
    "pool_enabled",
    "reset_cache",
    "resolve_jobs",
    "shutdown_pool",
    "spec_key",
    "stage_key",
    "stall_threshold_seconds",
]
