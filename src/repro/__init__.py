"""repro — Reliability-driven don't care assignment for logic synthesis.

A complete, self-contained reproduction of Zukoski, Choudhury & Mohanram,
*"Reliability-driven don't care assignment for logic synthesis"*, DATE 2011,
including every substrate the paper's evaluation depends on: an ESPRESSO-
style two-level minimiser, a BDD package, PLA I/O, a multi-level synthesis
flow with technology mapping / timing / power, an AIG optimiser, synthetic
benchmark generation, and the full experiment harness.

Quickstart::

    import repro
    from repro.benchgen import mcnc_benchmark
    from repro.flows import run_flow

    spec = mcnc_benchmark("ex1010")
    result = run_flow(spec, "cfactor", threshold=0.55, objective="power")
    print(result.error_rate, result.area)
"""

from .core import (
    DC,
    OFF,
    ON,
    Assignment,
    ErrorBounds,
    FunctionSpec,
    base_error_count,
    border_bounds,
    cfactor_assignment,
    complete_assignment,
    complexity_factor,
    error_rate,
    estimate_report,
    exact_error_bounds,
    expected_complexity_factor,
    local_complexity_factor,
    ranking_assignment,
    signal_probability_bounds,
    spec_complexity_factor,
    spec_error_rate,
)

__version__ = "1.0.0"

__all__ = [
    "DC",
    "OFF",
    "ON",
    "Assignment",
    "ErrorBounds",
    "FunctionSpec",
    "base_error_count",
    "border_bounds",
    "cfactor_assignment",
    "complete_assignment",
    "complexity_factor",
    "error_rate",
    "estimate_report",
    "exact_error_bounds",
    "expected_complexity_factor",
    "local_complexity_factor",
    "ranking_assignment",
    "signal_probability_bounds",
    "spec_complexity_factor",
    "spec_error_rate",
    "__version__",
]
