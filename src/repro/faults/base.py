"""The ``FaultModel`` protocol and the process-wide model registry.

The paper states its whole methodology against one fault model — a
single input pin flips — and until this package existed that assumption
was hard-wired into :mod:`repro.core.reliability`,
:mod:`repro.core.montecarlo` and the ``measure`` pipeline stage.  A
:class:`FaultModel` makes the fault model a first-class, swappable input
to the flow instead: every model answers the same two questions,

* **exact enumeration** — what is the implementation's error rate when
  every admissible (source, fault) pair is counted exhaustively?
* **packed Monte-Carlo sampling** — given a batch of packed input
  vectors, what XOR masks corrupt them the way this fault does?

Two *scopes* exist.  ``input`` models perturb primary-input vectors and
measure a :class:`~repro.core.spec.FunctionSpec` implementation
(:meth:`FaultModel.error_rate`); ``node`` models perturb internal
network signals and measure a :class:`~repro.synth.network.LogicNetwork`
(:meth:`FaultModel.network_error_rate`), riding the incremental
fanout-cone engine of :mod:`repro.sim.incremental`.

Models register themselves under a name with :func:`register_fault_model`
so declarative configs — pipeline parameters, scenario definitions,
``repro bench`` — can refer to them as either a bare string
(``"single_bit"``) or a spec dict (``{"model": "multibit", "k": 2}``)
resolved by :func:`create_fault_model`.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, TypeVar

import numpy as np

from ..core.spec import FunctionSpec
from ..core.truthtable import OFF, ON

__all__ = [
    "FaultModel",
    "create_fault_model",
    "describe_fault_models",
    "fault_model_names",
    "pattern_error_rate",
    "register_fault_model",
    "registered_fault_models",
]


class FaultModel:
    """Base class for fault models (see the module docstring).

    Attributes:
        name: registry key (``single_bit``, ``multibit``, ...).
        scope: ``"input"`` (perturbs primary-input vectors, measures a
            spec) or ``"node"`` (perturbs internal signals, measures a
            network).
        param_names: constructor keyword names, in declaration order —
            they round-trip through :meth:`spec_dict` /
            :func:`create_fault_model`.
    """

    name: str = ""
    scope: str = "input"
    param_names: tuple[str, ...] = ()

    # ------------------------------------------------------------ declarative

    def spec_dict(self) -> dict[str, Any]:
        """The canonical declarative form: ``{"model": name, **params}``.

        Deterministically ordered (``model`` first, then
        :attr:`param_names` in declaration order) so its ``repr`` is a
        stable checkpoint-fingerprint component.
        """
        spec: dict[str, Any] = {"model": self.name}
        for param in self.param_names:
            spec[param] = getattr(self, param)
        return spec

    def describe(self) -> str:
        """One human-readable line for registry listings."""
        params = ", ".join(
            f"{param}={getattr(self, param)!r}" for param in self.param_names
        )
        label = f"{self.name}({params})" if params else self.name
        doc = (type(self).__doc__ or "").strip()
        summary = doc.splitlines()[0].strip() if doc else ""
        return f"{label}: {summary}" if summary else label

    # ------------------------------------------------------------ input scope

    def patterns(self, num_inputs: int) -> Iterable[int]:
        """The enumerable error patterns as input-index XOR bitmasks.

        Input-scope models define their exact semantics here: an error
        pattern with bit *j* set flips input *j*, and the model's exact
        error rate averages propagation over every (admissible source,
        pattern) pair — see :func:`pattern_error_rate`.
        """
        raise NotImplementedError(f"{self.name} does not enumerate patterns")

    def error_events(
        self,
        impl_phases: np.ndarray,
        *,
        source_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Directed error-event counts per output under this model.

        An event is an (admissible source minterm, error pattern) pair
        whose implementation value changes.  Mirrors
        :func:`repro.core.reliability.error_events` for arbitrary
        pattern sets.
        """
        self._require_scope("input")
        from ..core.truthtable import DC, num_inputs_of

        n = num_inputs_of(impl_phases)
        if source_mask is None:
            source_mask = impl_phases != DC
        if source_mask.shape != impl_phases.shape:
            raise ValueError("source mask shape mismatch")
        idx = np.arange(impl_phases.shape[-1])
        count = np.zeros(impl_phases.shape[:-1], dtype=np.int64)
        for error in self.patterns(n):
            nb = impl_phases[..., idx ^ error]
            flips = ((impl_phases == ON) & (nb == OFF)) | (
                (impl_phases == OFF) & (nb == ON)
            )
            count += np.count_nonzero(flips & source_mask, axis=-1)
        return count if count.ndim else int(count)

    def error_rate(
        self,
        impl: FunctionSpec,
        *,
        spec: FunctionSpec | None = None,
    ) -> float:
        """Exact mean error rate of *impl* under this model.

        Args:
            impl: the implemented (normally fully specified) function.
            spec: original specification whose care set defines the
                admissible error sources (default: *impl* itself).

        Returns:
            events / (patterns * 2**n), averaged over outputs — the
            probability that a uniformly random error pattern applied to
            a uniformly random admissible vector propagates.
        """
        self._require_scope("input")
        return pattern_error_rate(
            impl, list(self.patterns(impl.num_inputs)), spec=spec
        )

    def corruption_words(
        self, rng: np.random.Generator, num_inputs: int, count: int
    ) -> np.ndarray:
        """Packed XOR corruption masks for one Monte-Carlo batch.

        Args:
            rng: the trial loop's generator (models must draw *only*
                from it, so estimates are reproducible under a seed).
            num_inputs: circuit input count (mask rows).
            count: number of vectors in the batch.

        Returns:
            ``(num_inputs, num_words(count))`` uint64 masks; XOR-ing
            them onto packed input vectors injects one sampled fault per
            vector.
        """
        raise NotImplementedError(f"{self.name} does not sample input masks")

    # ------------------------------------------------------------- node scope

    def node_difference(self, sim, name: str) -> np.ndarray:
        """One packed word row: bit *v* set iff injecting the fault at
        node *name* changes some primary output on vector *v*.

        Args:
            sim: a live :class:`~repro.sim.incremental.IncrementalNetworkSim`.
            name: the internal signal the fault is injected on.
        """
        raise NotImplementedError(f"{self.name} is not a node-scope model")

    def network_error_rate(self, network, *, source_mask=None, sim=None) -> float:
        """Exact error rate of *network* under this node-scope model."""
        raise NotImplementedError(f"{self.name} is not a node-scope model")

    def estimate_network_error_rate(
        self, network, *, samples: int = 4096, rng=None
    ):
        """Monte-Carlo error-rate estimate of *network* under this model."""
        raise NotImplementedError(f"{self.name} is not a node-scope model")

    # -------------------------------------------------------------- plumbing

    def _require_scope(self, scope: str) -> None:
        if self.scope != scope:
            raise ValueError(
                f"fault model {self.name!r} has scope {self.scope!r}, "
                f"but a {scope!r}-scope operation was requested"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(
            f"{param}={getattr(self, param)!r}" for param in self.param_names
        )
        return f"{type(self).__name__}({params})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultModel):
            return NotImplemented
        return self.spec_dict() == other.spec_dict()

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.spec_dict().items())))


def pattern_error_rate(
    impl: FunctionSpec,
    patterns: list[int],
    *,
    spec: FunctionSpec | None = None,
) -> float:
    """Exact error rate of *impl* over an explicit error-pattern set.

    The shared enumeration kernel behind every input-scope model: for
    each pattern (an input-index XOR bitmask) the whole truth table is
    reindexed at once (``phases[..., idx ^ error]``), opposite-phase
    changes landing on admissible sources are counted, and the rate is
    ``events / (patterns * 2**n)`` averaged over outputs.

    Raises:
        ValueError: on an empty pattern set.
    """
    if not patterns:
        raise ValueError("at least one error pattern is required")
    source = (spec or impl).care_mask()
    phases = impl.phases
    idx = np.arange(impl.num_minterms)
    events = np.zeros(phases.shape[:-1], dtype=np.int64)
    for error in patterns:
        nb = phases[..., idx ^ error]
        flips = ((phases == ON) & (nb == OFF)) | ((phases == OFF) & (nb == ON))
        events += np.count_nonzero(flips & source, axis=-1)
    return float(np.mean(events / (len(patterns) * impl.num_minterms)))


_REGISTRY: dict[str, type[FaultModel]] = {}

_M = TypeVar("_M", bound=FaultModel)


def register_fault_model(cls: type[_M]) -> type[_M]:
    """Class decorator: register a fault model under its ``name``.

    Raises:
        ValueError: when the name is empty or already taken by a
            different class (duplicate registration is almost always an
            import mistake).
    """
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a registry name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"fault model name {cls.name!r} already registered by "
            f"{existing.__name__}"
        )
    _REGISTRY[cls.name] = cls
    return cls


def create_fault_model(spec: Any) -> FaultModel:
    """Resolve a declarative fault-model spec to a model instance.

    Accepts a :class:`FaultModel` instance (returned as is), a bare
    registry name (``"single_bit"``), or a spec dict of the
    :meth:`FaultModel.spec_dict` shape (``{"model": "multibit", "k": 2}``).

    Raises:
        ValueError: on unknown names, malformed specs or bad parameters.
    """
    if isinstance(spec, FaultModel):
        return spec
    if isinstance(spec, str):
        name, kwargs = spec, {}
    elif isinstance(spec, Mapping):
        kwargs = dict(spec)
        name = kwargs.pop("model", None)
        if not isinstance(name, str):
            raise ValueError(
                f"fault-model spec dict needs a 'model' name: {spec!r}"
            )
    else:
        raise ValueError(
            f"fault-model spec must be a name, dict or FaultModel, "
            f"got {type(spec).__name__}"
        )
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown fault model {name!r}; registered: {fault_model_names()}"
        )
    try:
        return cls(**kwargs)
    except TypeError as error:
        raise ValueError(f"bad parameters for fault model {name!r}: {error}") from None


def registered_fault_models() -> dict[str, type[FaultModel]]:
    """Name-to-class view of the registry (registration order)."""
    return dict(_REGISTRY)


def fault_model_names() -> list[str]:
    """Registered fault-model names, in registration order."""
    return list(_REGISTRY)


def describe_fault_models() -> list[dict[str, Any]]:
    """JSON-ready registry listing for ``repro info --json``."""
    listing = []
    for name, cls in _REGISTRY.items():
        doc = (cls.__doc__ or "").strip()
        listing.append(
            {
                "name": name,
                "scope": cls.scope,
                "params": list(cls.param_names),
                "summary": doc.splitlines()[0].strip() if doc else "",
            }
        )
    return listing
