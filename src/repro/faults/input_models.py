"""Input-scope fault models: single-bit, multi-bit and burst flips.

All three perturb the primary-input vector; they differ only in *which*
bits flip together.  Exact rates come from the shared pattern-enumeration
kernel (:func:`~repro.faults.base.pattern_error_rate`); Monte-Carlo
corruption masks are generated directly in the packed domain so the
sampling loop of :func:`repro.core.montecarlo.estimate_error_rate` never
leaves uint64 words.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..core.spec import FunctionSpec
from ..sim import packed as pk
from .base import FaultModel, register_fault_model

__all__ = ["SingleBitInput", "MultiBitInput", "BurstInput"]


@register_fault_model
class SingleBitInput(FaultModel):
    """The paper's fault model: exactly one input pin flips.

    The default model of every flow.  Exact numbers delegate to
    :mod:`repro.core.reliability` (the neighbour-view implementation)
    and the Monte-Carlo mask generator reproduces the historical draw
    sequence of :func:`repro.core.montecarlo.estimate_error_rate`
    verbatim, so results through this class are bit-identical to the
    pre-refactor code path.
    """

    name = "single_bit"
    scope = "input"
    param_names = ()

    def patterns(self, num_inputs: int) -> list[int]:
        return [1 << bit for bit in range(num_inputs)]

    def error_events(
        self,
        impl_phases: np.ndarray,
        *,
        source_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        from ..core.reliability import error_events

        return error_events(impl_phases, source_mask=source_mask)

    def error_rate(
        self,
        impl: FunctionSpec,
        *,
        spec: FunctionSpec | None = None,
    ) -> float:
        from ..core.reliability import error_rate

        return error_rate(impl, spec=spec)

    def corruption_words(
        self, rng: np.random.Generator, num_inputs: int, count: int
    ) -> np.ndarray:
        # Draw order and dtype must stay exactly as the historical
        # estimator's inline code: one pin index per vector.
        pins = rng.integers(num_inputs, size=count)
        onehot = np.zeros((count, num_inputs), dtype=bool)
        onehot[np.arange(count), pins] = True
        return pk.pack_matrix(onehot)


@register_fault_model
class MultiBitInput(FaultModel):
    """Exactly *k* input pins flip simultaneously.

    The exact rate enumerates all ``C(n, k)`` flip patterns — the
    quantity formerly computed by the deprecated
    ``repro.core.reliability.multibit_error_rate``; ``k=1`` reduces to
    :class:`SingleBitInput`'s numbers.  Monte-Carlo masks draw a uniform
    random *k*-subset of pins per vector.
    """

    name = "multibit"
    scope = "input"
    param_names = ("k",)

    def __init__(self, k: int = 2):
        if int(k) != k or k < 1:
            raise ValueError(f"k must be a positive integer, got {k!r}")
        self.k = int(k)

    def _check_width(self, num_inputs: int) -> None:
        if self.k > num_inputs:
            raise ValueError(
                f"distance must lie in [1, {num_inputs}], got {self.k}"
            )

    def patterns(self, num_inputs: int) -> list[int]:
        self._check_width(num_inputs)
        masks = []
        for bits in combinations(range(num_inputs), self.k):
            error = 0
            for bit in bits:
                error |= 1 << bit
            masks.append(error)
        return masks

    def corruption_words(
        self, rng: np.random.Generator, num_inputs: int, count: int
    ) -> np.ndarray:
        self._check_width(num_inputs)
        # A uniform k-subset per vector: rank random scores and keep the
        # k smallest positions.
        scores = rng.random((count, num_inputs))
        chosen = np.argsort(scores, axis=1)[:, : self.k]
        mask = np.zeros((count, num_inputs), dtype=bool)
        np.put_along_axis(mask, chosen, True, axis=1)
        return pk.pack_matrix(mask)


@register_fault_model
class BurstInput(FaultModel):
    """A contiguous burst of *width* adjacent input pins flips.

    Models spatially correlated upsets (a particle strike spanning
    neighbouring wires): the error patterns are the ``n - width + 1``
    runs of *width* adjacent pins (no wraparound), each equally likely.
    ``width=1`` reduces to :class:`SingleBitInput`'s numbers.
    """

    name = "burst"
    scope = "input"
    param_names = ("width",)

    def __init__(self, width: int = 2):
        if int(width) != width or width < 1:
            raise ValueError(
                f"width must be a positive integer, got {width!r}"
            )
        self.width = int(width)

    def _check_width(self, num_inputs: int) -> None:
        if self.width > num_inputs:
            raise ValueError(
                f"burst width must lie in [1, {num_inputs}], got {self.width}"
            )

    def patterns(self, num_inputs: int) -> list[int]:
        self._check_width(num_inputs)
        run = (1 << self.width) - 1
        return [run << start for start in range(num_inputs - self.width + 1)]

    def corruption_words(
        self, rng: np.random.Generator, num_inputs: int, count: int
    ) -> np.ndarray:
        self._check_width(num_inputs)
        starts = rng.integers(num_inputs - self.width + 1, size=count)
        columns = starts[:, None] + np.arange(self.width)[None, :]
        mask = np.zeros((count, num_inputs), dtype=bool)
        np.put_along_axis(mask, columns, True, axis=1)
        return pk.pack_matrix(mask)
