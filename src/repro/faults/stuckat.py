"""Node-scope fault models: internal flips and stuck-at faults.

Both models perturb an *internal* network signal instead of a primary
input and ask how often at least one primary output changes — the
circuit-internal analogue of the paper's input-error rate, following the
stuck-at inadmissibility analysis of Das et al.  They ride the
incremental fanout-cone engine
(:class:`~repro.sim.incremental.IncrementalNetworkSim`): injecting a
fault re-evaluates only the faulted node's fanout cone, so a whole
network sweep costs ``O(sum of cone sizes)`` node evaluations.

:class:`NodeFlip` is the existing internal-error metric of
:func:`repro.synth.odc.internal_error_rate` expressed as a fault model;
:class:`StuckAtNode` forces a node to a constant 0/1, which is only
*excited* on vectors where the fault-free value differs — the packed
constant-force evaluation handles that masking for free.
"""

from __future__ import annotations

import math

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import span
from ..sim import packed as pk
from ..sim.incremental import IncrementalNetworkSim
from .base import FaultModel, register_fault_model

__all__ = ["NodeFlip", "StuckAtNode"]


class _NodeScopeModel(FaultModel):
    """Shared exhaustive/sampled network sweeps for node-scope models."""

    scope = "node"

    def network_error_rate(self, network, *, source_mask=None, sim=None) -> float:
        """Probability that injecting this fault at a random internal
        node on a random admissible PI vector changes some output.

        Args:
            network: the network under test (exhaustively simulated).
            source_mask: admissible PI vectors (default: all ``2**n``).
            sim: a live :class:`IncrementalNetworkSim` to reuse.
        """
        node_names = list(network.nodes)
        if not node_names:
            return 0.0
        if sim is None:
            sim = IncrementalNetworkSim(network)
        if source_mask is None:
            source_words = None
            admissible = sim.num_vectors
        else:
            source_words = pk.pack_bool(np.asarray(source_mask, dtype=bool))
            admissible = pk.popcount(source_words)
        total = 0
        with span(f"faults.{self.name}", nodes=len(node_names)):
            for name in node_names:
                diff = self.node_difference(sim, name)
                if source_words is not None:
                    diff = diff & source_words
                total += pk.popcount(diff)
        return total / (len(node_names) * max(1, admissible))

    def estimate_network_error_rate(
        self, network, *, samples: int = 4096, rng=None
    ):
        """Monte-Carlo estimate over *samples* random PI vectors.

        Vectors are drawn directly as packed words; each (node, vector)
        pair is one Bernoulli trial of the exhaustive sweep, so the
        estimate converges to :meth:`network_error_rate` (all-sources).
        """
        from ..core.montecarlo import MonteCarloEstimate

        if samples <= 0:
            raise ValueError("samples must be positive")
        node_names = list(network.nodes)
        if not node_names:
            return MonteCarloEstimate(0.0, 0.0, 0)
        rng = rng or np.random.default_rng(0)
        words = pk.num_words(samples)
        pi_words = rng.integers(
            0,
            np.iinfo(np.uint64).max,
            size=(len(network.primary_inputs), words),
            dtype=np.uint64,
            endpoint=True,
        )
        pk.zero_tail(pi_words, samples)
        sim = IncrementalNetworkSim(network, pi_words=pi_words, num_vectors=samples)
        obs_metrics.counter("faults.mc_network_runs").inc()
        total = 0
        with span(f"faults.{self.name}.mc", nodes=len(node_names), samples=samples):
            for name in node_names:
                total += pk.popcount(self.node_difference(sim, name))
        trials = len(node_names) * samples
        rate = total / trials
        stderr = math.sqrt(max(rate * (1.0 - rate), 1e-12) / trials)
        return MonteCarloEstimate(rate, stderr, trials)


@register_fault_model
class NodeFlip(_NodeScopeModel):
    """An internal node's value is complemented on every vector.

    The fault model behind the nodal-decomposition metric
    (:func:`repro.synth.odc.internal_error_rate`): its exhaustive rate
    matches that function exactly.
    """

    name = "node_flip"
    param_names = ()

    def node_difference(self, sim: IncrementalNetworkSim, name: str) -> np.ndarray:
        return sim.flip_difference(name)


@register_fault_model
class StuckAtNode(_NodeScopeModel):
    """An internal node is stuck at a constant 0 or 1.

    The classical test-pattern fault model applied to reliability: the
    fault is excited only on vectors where the fault-free node value
    differs from *value*, and propagates when the excitation reaches a
    primary output through the node's fanout cone.
    """

    name = "stuck_at"
    param_names = ("value",)

    def __init__(self, value: int = 0):
        if value not in (0, 1):
            raise ValueError(f"stuck-at value must be 0 or 1, got {value!r}")
        self.value = int(value)

    def node_difference(self, sim: IncrementalNetworkSim, name: str) -> np.ndarray:
        return sim.forced_difference(name, bool(self.value))
