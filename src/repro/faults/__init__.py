"""Fault models: the swappable error semantics of the reliability flow.

See :mod:`repro.faults.base` for the :class:`FaultModel` protocol and
the registry, :mod:`repro.faults.input_models` for the input-vector
models (single-bit, multi-bit, burst) and :mod:`repro.faults.stuckat`
for the internal-node models (flip, stuck-at-0/1).  Importing this
package registers every built-in model.
"""

from .base import (
    FaultModel,
    create_fault_model,
    describe_fault_models,
    fault_model_names,
    pattern_error_rate,
    register_fault_model,
    registered_fault_models,
)
from .input_models import BurstInput, MultiBitInput, SingleBitInput
from .stuckat import NodeFlip, StuckAtNode

__all__ = [
    "BurstInput",
    "FaultModel",
    "MultiBitInput",
    "NodeFlip",
    "SingleBitInput",
    "StuckAtNode",
    "create_fault_model",
    "describe_fault_models",
    "fault_model_names",
    "pattern_error_rate",
    "register_fault_model",
    "registered_fault_models",
]
