"""IRREDUNDANT: drop cubes covered by the rest of the cover plus the DC set.

A cube ``c`` is redundant when ``(F \\ c) + D`` contains it, which reduces
to a tautology check of the cofactor.  Cubes are examined from most- to
least-specific (most literals first), so small special-case cubes are
discarded before the large primes they hide under.
"""

from __future__ import annotations

import numpy as np

from .cube import FREE, Cover
from .unate import _is_tautology

__all__ = ["irredundant"]


def irredundant(cover: Cover, dont_care: Cover) -> Cover:
    """Return an irredundant subset of *cover* w.r.t. the DC cover."""
    cubes = cover.cubes
    if cubes.shape[0] <= 1:
        return cover
    order = np.argsort(-np.count_nonzero(cubes != FREE, axis=1), kind="stable")
    cubes = cubes[order]
    alive = np.ones(len(cubes), dtype=bool)
    for i in range(len(cubes)):
        rest = np.vstack([cubes[alive & (np.arange(len(cubes)) != i)], dont_care.cubes])
        rest_cover = Cover(rest, cover.num_inputs)
        if _is_tautology(rest_cover.cofactor(cubes[i]).cubes):
            alive[i] = False
    return Cover(cubes[alive], cover.num_inputs)
