"""IRREDUNDANT: drop cubes covered by the rest of the cover plus the DC set.

A cube ``c`` is redundant when ``(F \\ c) + D`` contains it, which reduces
to a tautology check of the cofactor.  Cubes are examined from most- to
least-specific (most literals first), so small special-case cubes are
discarded before the large primes they hide under.

For word-sized input spaces the check runs bit-parallel over dense
per-cube minterm tables (one coverage counter per minterm, decremented as
cubes die); larger spaces fall back to the recursive tautology test.
"""

from __future__ import annotations

import numpy as np

from .cube import FREE, Cover, cube_tables
from .unate import _is_tautology

__all__ = ["irredundant"]

_DENSE_CELL_LIMIT = 16_000_000
"""Use the dense kernel while ``num_cubes * 2**n`` stays below this."""


def _dense_irredundant(cubes: np.ndarray, dont_care: Cover, num_inputs: int) -> np.ndarray:
    """Sequential redundancy elimination on dense minterm tables.

    Semantically identical to the cofactor-tautology loop: cube ``i`` dies
    iff every one of its minterms is either a don't care or covered by
    another still-alive cube.
    """
    tables = cube_tables(cubes, num_inputs)
    dc_table = (
        dont_care.evaluate()
        if dont_care.num_cubes
        else np.zeros(1 << num_inputs, dtype=bool)
    )
    coverage = tables.sum(axis=0, dtype=np.int64)
    alive = np.ones(len(cubes), dtype=bool)
    for i in range(len(cubes)):
        table = tables[i]
        if np.all(~table | dc_table | (coverage > 1)):
            alive[i] = False
            coverage -= table
    return alive


def irredundant(cover: Cover, dont_care: Cover) -> Cover:
    """Return an irredundant subset of *cover* w.r.t. the DC cover."""
    cubes = cover.cubes
    if cubes.shape[0] <= 1:
        return cover
    order = np.argsort(-np.count_nonzero(cubes != FREE, axis=1), kind="stable")
    cubes = cubes[order]
    num_inputs = cover.num_inputs
    if num_inputs <= 62 and len(cubes) << num_inputs <= _DENSE_CELL_LIMIT:
        alive = _dense_irredundant(cubes, dont_care, num_inputs)
        return Cover(cubes[alive], num_inputs)
    alive = np.ones(len(cubes), dtype=bool)
    for i in range(len(cubes)):
        rest = np.vstack([cubes[alive & (np.arange(len(cubes)) != i)], dont_care.cubes])
        rest_cover = Cover(rest, num_inputs)
        if _is_tautology(rest_cover.cofactor(cubes[i]).cubes):
            alive[i] = False
    return Cover(cubes[alive], num_inputs)
