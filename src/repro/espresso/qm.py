"""Quine–McCluskey exact two-level minimisation (small functions).

Provided as an oracle for cross-checking the heuristic ESPRESSO loop: on
functions small enough to enumerate (≲ 12 inputs for prime generation,
fewer for exact covering), :func:`quine_mccluskey` returns a cover of
provably minimum cube count.  The covering step is a branch-and-bound
unate-covering solver with essential-prime extraction and row/column
dominance, falling back to a documented greedy bound above a work limit.
"""

from __future__ import annotations

import numpy as np

from .cube import FREE, Cover

__all__ = ["prime_implicants", "quine_mccluskey"]


def prime_implicants(num_inputs: int, on_minterms, dc_minterms=()) -> Cover:
    """All prime implicants of the function (on-set + DC used for merging).

    Implicants are represented as ``(value, mask)`` pairs during merging:
    ``mask`` bits are FREE positions, ``value`` holds the bound literals.
    """
    care = sorted(set(int(m) for m in on_minterms) | set(int(m) for m in dc_minterms))
    if not care:
        return Cover.empty(num_inputs)
    current = {(m, 0) for m in care}
    primes: set[tuple[int, int]] = set()
    while current:
        merged_away: set[tuple[int, int]] = set()
        next_level: set[tuple[int, int]] = set()
        by_mask: dict[int, list[int]] = {}
        for value, mask in current:
            by_mask.setdefault(mask, []).append(value)
        for mask, values in by_mask.items():
            value_set = set(values)
            for value in values:
                for bit in range(num_inputs):
                    flip = 1 << bit
                    if mask & flip:
                        continue
                    if (value ^ flip) in value_set:
                        lo = min(value, value ^ flip)
                        next_level.add((lo, mask | flip))
                        merged_away.add((value, mask))
                        merged_away.add((value ^ flip, mask))
        primes |= current - merged_away
        current = next_level
    rows = np.full((len(primes), num_inputs), FREE, dtype=np.uint8)
    for row, (value, mask) in enumerate(sorted(primes)):
        for bit in range(num_inputs):
            if not (mask >> bit) & 1:
                rows[row, bit] = (value >> bit) & 1
    return Cover(rows, num_inputs)


def _prime_covers(prime: np.ndarray, minterm: int) -> bool:
    for bit in range(prime.shape[0]):
        literal = prime[bit]
        if literal != FREE and int((minterm >> bit) & 1) != literal:
            return False
    return True


class _CoverSolver:
    """Branch-and-bound minimum unate covering."""

    def __init__(self, table: list[frozenset[int]], num_cols: int, node_limit: int):
        self.table = table  # per row: set of columns covering it
        self.num_cols = num_cols
        self.node_limit = node_limit
        self.nodes = 0
        self.best: set[int] | None = None

    def solve(self) -> tuple[set[int], bool]:
        """Return (column set, proven_optimal)."""
        self._search(set(range(len(self.table))), set())
        optimal = self.nodes <= self.node_limit
        assert self.best is not None
        return self.best, optimal

    def _greedy(self, rows: set[int], chosen: set[int]) -> set[int]:
        chosen = set(chosen)
        rows = set(rows)
        while rows:
            counts: dict[int, int] = {}
            for row in rows:
                for col in self.table[row]:
                    counts[col] = counts.get(col, 0) + 1
            col = max(counts, key=lambda c: (counts[c], -c))
            chosen.add(col)
            rows = {row for row in rows if col not in self.table[row]}
        return chosen

    def _search(self, rows: set[int], chosen: set[int]) -> None:
        self.nodes += 1
        if self.best is not None and len(chosen) >= len(self.best):
            return
        if not rows:
            self.best = set(chosen)
            return
        if self.nodes > self.node_limit:
            candidate = self._greedy(rows, chosen)
            if self.best is None or len(candidate) < len(self.best):
                self.best = candidate
            return
        # Essential columns: rows covered by exactly one column.
        essential = {next(iter(self.table[row])) for row in rows if len(self.table[row]) == 1}
        if essential:
            chosen = chosen | essential
            rows = {
                row for row in rows if not (self.table[row] & essential)
            }
            self._search(rows, chosen)
            return
        # Lower bound: a set of pairwise-disjoint rows each needs its own column.
        bound = 0
        used: set[int] = set()
        for row in sorted(rows, key=lambda r: len(self.table[r])):
            if not (self.table[row] & used):
                bound += 1
                used |= self.table[row]
        if self.best is not None and len(chosen) + bound >= len(self.best):
            return
        # Branch on the hardest row, trying each covering column.
        row = min(rows, key=lambda r: len(self.table[r]))
        for col in sorted(self.table[row]):
            new_rows = {r for r in rows if col not in self.table[r]}
            self._search(new_rows, chosen | {col})


def quine_mccluskey(
    num_inputs: int,
    on_minterms,
    dc_minterms=(),
    *,
    node_limit: int = 200_000,
) -> tuple[Cover, bool]:
    """Exact minimum-cube-count cover of the function.

    Args:
        num_inputs: number of inputs.
        on_minterms: minterms that must be covered.
        dc_minterms: minterms that may be covered.
        node_limit: branch-and-bound budget before falling back to greedy.

    Returns:
        ``(cover, proven_optimal)`` — the flag is False only when the
        covering search hit *node_limit* and a greedy completion was used.
    """
    on = sorted(set(int(m) for m in on_minterms))
    primes = prime_implicants(num_inputs, on, dc_minterms)
    if not on:
        return Cover.empty(num_inputs), True
    table = []
    for minterm in on:
        cols = frozenset(
            col for col in range(primes.num_cubes) if _prime_covers(primes.cubes[col], minterm)
        )
        table.append(cols)
    solver = _CoverSolver(table, primes.num_cubes, node_limit)
    chosen, optimal = solver.solve()
    rows = primes.cubes[sorted(chosen)]
    return Cover(rows, num_inputs), optimal
