"""EXPAND: grow every cube of the cover into a prime implicant.

Each cube is expanded literal by literal against the off-set cover ``R``: a
literal may be raised (set FREE) when the raised cube still intersects no
off-set cube.  The raising order follows the classic column-count heuristic
(raise the literal that conflicts with the fewest off-set cubes first, so
the cube keeps the most freedom), and cubes made redundant by an expanded
prime are dropped on the fly.
"""

from __future__ import annotations

import numpy as np

from .cube import FREE, Cover

__all__ = ["expand"]


def _expand_cube(cube: np.ndarray, off: np.ndarray) -> np.ndarray:
    """Expand one cube to a prime against the off-set cube array."""
    cube = cube.copy()
    num_vars = cube.shape[0]
    if off.shape[0] == 0:
        return np.full(num_vars, FREE, dtype=np.uint8)
    # conflicts[r, j] — off-cube r is kept away from `cube` by variable j.
    conflicts = (cube != FREE) & (off != FREE) & (off != cube)
    blocking = conflicts.sum(axis=1)
    if np.any(blocking == 0):
        raise ValueError("cube intersects the off-set; cover is inconsistent")
    bound = cube != FREE
    weights = conflicts.sum(axis=0)
    while np.any(bound):
        # A literal j is raisable iff no off-cube relies on it alone.
        single = blocking == 1
        if np.any(single):
            critical = np.any(conflicts[single], axis=0)
            raisable = np.flatnonzero(bound & ~critical)
        else:
            raisable = np.flatnonzero(bound)
        if raisable.size == 0:
            break
        # Heuristic: raise the literal involved in the fewest conflicts, so
        # the remaining literals keep blocking as many off-cubes as possible.
        # argmin takes the first minimum, i.e. the lowest variable index.
        best = int(raisable[np.argmin(weights[raisable])])
        cube[best] = FREE
        bound[best] = False
        blocking -= conflicts[:, best]
        conflicts[:, best] = False
        weights[best] = 0
    return cube


def expand(cover: Cover, off: Cover) -> Cover:
    """Expand every cube of *cover* to a prime and drop covered cubes.

    Args:
        cover: current on-cover (must be disjoint from *off*).
        off: the off-set cover of the function.

    Returns:
        A prime cover of the same function region.
    """
    if cover.num_cubes == 0:
        return cover
    # Process small cubes first: they gain the most and are the likeliest
    # to swallow their siblings.
    order = np.argsort(-np.count_nonzero(cover.cubes != FREE, axis=1), kind="stable")
    cubes = cover.cubes[order]
    alive = np.ones(len(cubes), dtype=bool)
    result: list[np.ndarray] = []
    for i in range(len(cubes)):
        if not alive[i]:
            continue
        prime = _expand_cube(cubes[i], off.cubes)
        result.append(prime)
        rest = cubes[i + 1 :]
        covered = np.all((prime == FREE) | (prime == rest), axis=1)
        alive[i + 1 :] &= ~covered
    return Cover(np.vstack(result), cover.num_inputs).single_cube_containment()
