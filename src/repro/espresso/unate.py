"""Unate-recursive-paradigm operators: tautology and complement.

These are the classic Brayton et al. recursive procedures underlying
ESPRESSO.  Both recurse by Shannon expansion about the *most binate*
variable, with unate shortcuts at the leaves:

* a cover containing an all-FREE cube is a tautology / has empty complement;
* a cover that is *unate* in a variable can drop the half that cannot help
  cover the opposite polarity (tautology), and single cubes complement by
  De Morgan.

Small subproblems (few active variables) fall through to dense truth-table
evaluation, which is both simple and fast at this scale.
"""

from __future__ import annotations

import numpy as np

from .cube import FREE, V0, V1, Cover, pack_cubes

__all__ = ["is_tautology", "complement", "cover_contains_cube", "covers_cover"]

_DENSE_LIMIT = 8
"""Fall back to dense evaluation at or below this many active variables."""


def _active_vars(cubes: np.ndarray) -> np.ndarray:
    """Indices of variables bound by at least one cube."""
    if cubes.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    return np.flatnonzero(np.any(cubes != FREE, axis=0))


def _dense_covered(cubes: np.ndarray, active: np.ndarray) -> np.ndarray:
    """Truth table of the cover over its active variables (packed kernel).

    Minterm ``m`` (bit ``pos`` = value of ``active[pos]``) is covered iff
    some cube's packed words satisfy ``(m ^ value) & mask == 0`` — one
    whole-row bitwise op per cube block, no per-variable Python loop.
    """
    k = len(active)
    size = 1 << k
    masks, values = pack_cubes(cubes[:, active])
    idx = np.arange(size, dtype=np.uint64)
    covered = np.zeros(size, dtype=bool)
    chunk = max(1, 4_000_000 // max(1, size))
    for start in range(0, cubes.shape[0], chunk):
        mask_block = masks[start : start + chunk, 0][:, None]
        value_block = values[start : start + chunk, 0][:, None]
        covered |= np.any(((idx[None, :] ^ value_block) & mask_block) == 0, axis=0)
        if covered.all():
            break
    return covered


def _most_binate_var(cubes: np.ndarray) -> int | None:
    """The variable with both polarities present maximising min(#0s, #1s).

    Returns None when the cover is unate (no variable has both polarities).
    """
    count0 = np.count_nonzero(cubes == V0, axis=0)
    count1 = np.count_nonzero(cubes == V1, axis=0)
    binate = (count0 > 0) & (count1 > 0)
    if not np.any(binate):
        return None
    score = np.where(binate, np.minimum(count0, count1) + count0 + count1, -1)
    return int(np.argmax(score))


def _dense_tautology(cubes: np.ndarray, active: np.ndarray) -> bool:
    """Exhaustively evaluate the cover over its active variables."""
    return bool(_dense_covered(cubes, active).all())


def is_tautology(cover: Cover) -> bool:
    """True when the cover evaluates to 1 on every minterm."""
    return _is_tautology(cover.cubes)


def _is_tautology(cubes: np.ndarray) -> bool:
    if cubes.shape[0] == 0:
        return False
    free_rows = np.all(cubes == FREE, axis=1)
    if np.any(free_rows):
        return True
    active = _active_vars(cubes)
    # Quick necessary condition: a cover of k cubes over v active variables
    # covers at most k * 2**(v - min_literals) minterms.
    literals = np.count_nonzero(cubes != FREE, axis=1)
    if float(np.sum(np.exp2(-literals.astype(np.float64)))) < 1.0:
        return False
    # Unate reduction: if some variable appears in only one polarity, cubes
    # bound to that polarity cannot cover the other half-space alone; the
    # cover is a tautology iff the FREE-at-var subcover is.
    count0 = np.count_nonzero(cubes == V0, axis=0)
    count1 = np.count_nonzero(cubes == V1, axis=0)
    pos_unate = np.flatnonzero((count1 > 0) & (count0 == 0))
    neg_unate = np.flatnonzero((count0 > 0) & (count1 == 0))
    if pos_unate.size or neg_unate.size:
        unate_vars = np.concatenate([pos_unate, neg_unate])
        keep = ~np.any(cubes[:, unate_vars] != FREE, axis=1)
        return _is_tautology(cubes[keep])
    if len(active) <= _DENSE_LIMIT:
        return _dense_tautology(cubes, active)
    var = _most_binate_var(cubes)
    assert var is not None  # unate covers were handled above
    return _is_tautology(_var_cofactor(cubes, var, V1)) and _is_tautology(
        _var_cofactor(cubes, var, V0)
    )


def _var_cofactor(cubes: np.ndarray, var: int, value: int) -> np.ndarray:
    keep = (cubes[:, var] == FREE) | (cubes[:, var] == value)
    rows = cubes[keep].copy()
    rows[:, var] = FREE
    return rows


def _cube_complement(cube: np.ndarray) -> np.ndarray:
    """De Morgan complement of a single cube (one row per bound literal)."""
    bound = np.flatnonzero(cube != FREE)
    rows = np.full((len(bound), len(cube)), FREE, dtype=np.uint8)
    for row, var in enumerate(bound):
        rows[row, var] = V1 - cube[var]
    return rows


def _dense_complement(cubes: np.ndarray, active: np.ndarray) -> np.ndarray:
    """Complement by truth-table enumeration over the active variables.

    Off-minterms of the active subspace become fully bound cubes over the
    active variables (FREE elsewhere).  Used only at small active counts.
    """
    k = len(active)
    off = np.flatnonzero(~_dense_covered(cubes, active))
    rows = np.full((len(off), cubes.shape[1]), FREE, dtype=np.uint8)
    if len(off):
        bits = (off[:, None] >> np.arange(k)[None, :]) & 1
        rows[:, active] = bits.astype(np.uint8)
    return rows


def _merge_shannon(
    num_vars: int, var: int, comp0: np.ndarray, comp1: np.ndarray
) -> np.ndarray:
    """Assemble ``x'·comp0 + x·comp1``, merging cubes equal up to *var*."""
    if comp0.shape[0] == 0 and comp1.shape[0] == 0:
        return np.empty((0, num_vars), dtype=np.uint8)
    # One dict pass both dedups within each branch and detects cubes common
    # to the two branches (for which the split variable is irrelevant).
    seen: dict[bytes, tuple[int, int]] = {}
    rows: list[np.ndarray] = []
    for value, part in ((V0, comp0), (V1, comp1)):
        for cube in part:
            key = cube.tobytes()
            prev = seen.get(key)
            if prev is not None:
                prev_value, prev_index = prev
                if prev_value != value:
                    rows[prev_index][var] = FREE
                continue
            merged = cube.copy()
            merged[var] = value
            seen[key] = (value, len(rows))
            rows.append(merged)
    return np.vstack(rows) if rows else np.empty((0, num_vars), dtype=np.uint8)


def complement(cover: Cover) -> Cover:
    """The complement of *cover* as a new cover."""
    return Cover(_complement(cover.cubes, cover.num_inputs), cover.num_inputs)


def _complement(cubes: np.ndarray, num_vars: int) -> np.ndarray:
    if cubes.shape[0] == 0:
        return np.full((1, num_vars), FREE, dtype=np.uint8)
    if np.any(np.all(cubes == FREE, axis=1)):
        return np.empty((0, num_vars), dtype=np.uint8)
    if cubes.shape[0] == 1:
        return _cube_complement(cubes[0])
    active = _active_vars(cubes)
    if len(active) <= min(_DENSE_LIMIT, 6):
        return _dense_complement(cubes, active)
    var = _most_binate_var(cubes)
    if var is None:
        # Unate cover: split about the most frequently bound variable.
        counts = np.count_nonzero(cubes != FREE, axis=0)
        var = int(np.argmax(counts))
    comp0 = _complement(_var_cofactor(cubes, var, V0), num_vars)
    comp1 = _complement(_var_cofactor(cubes, var, V1), num_vars)
    return _merge_shannon(num_vars, var, comp0, comp1)


def cover_contains_cube(cover: Cover, cube: np.ndarray) -> bool:
    """True when every minterm of *cube* is covered by *cover*.

    Implemented as the classic containment-to-tautology reduction:
    ``cube <= cover  iff  cofactor(cover, cube)`` is a tautology.
    """
    return _is_tautology(cover.cofactor(cube).cubes)


def covers_cover(outer: Cover, inner: Cover) -> bool:
    """True when *outer* covers every cube of *inner*."""
    return all(cover_contains_cube(outer, cube) for cube in inner.cubes)
