"""The ESPRESSO loop and spec-level minimisation entry points.

``espresso(on, dc)`` runs the classic EXPAND → IRREDUNDANT → (REDUCE →
EXPAND → IRREDUNDANT)* fixpoint on covers; ``minimize_spec`` applies it
per output of a :class:`~repro.core.spec.FunctionSpec` and is the package's
"conventional DC assignment" engine: don't cares are absorbed into
implicants whenever that shrinks the cover, exactly like feeding a
``.type fd`` PLA through espresso.
"""

from __future__ import annotations

import numpy as np

from ..core.spec import FunctionSpec
from ..obs import metrics as obs_metrics
from ..obs import span
from ..perf.cache import cover_key, global_cache, spec_key
from .cube import FREE, Cover, pack_cubes
from .expand import _expand_cube, expand
from .irredundant import irredundant
from .reduce_ import max_reduce, reduce_cover
from .unate import complement

__all__ = ["espresso", "minimize_spec", "MinimizedFunction"]

_MAX_ITERATIONS = 20
"""Safety bound on the improvement loop (it converges in a few passes)."""

_LAST_GASP_LIMIT = 200
"""Skip the O(cubes^2) LAST_GASP pass above this cover size."""


def _last_gasp(cover: Cover, dont_care: Cover, off: Cover) -> Cover:
    """ESPRESSO's LAST_GASP: escape cyclic local minima.

    Each cube is maximally reduced *independently*; pairs of reduced cubes
    whose supercube misses the off-set witness a prime that covers two
    current cubes at once.  Those primes are added and IRREDUNDANT picks a
    (hopefully smaller) cover.
    """
    k = cover.num_cubes
    if k < 2 or k > _LAST_GASP_LIMIT:
        return cover
    reduced = max_reduce(cover, dont_care)
    pair_i, pair_j = np.triu_indices(k, 1)
    # Pairwise supercubes: keep a literal only where both cubes agree.
    left, right = reduced[pair_i], reduced[pair_j]
    supercubes = np.where(left == right, left, FREE).astype(np.uint8)
    # A candidate is useful iff it misses the off-set entirely: every
    # off-cube must conflict with it on at least one variable.  Packed
    # kernel: candidate b and off-cube r conflict iff some word of
    # (value_b ^ value_r) & mask_b & mask_r is non-zero.
    extra: list[np.ndarray] = []
    off_rows = off.cubes
    super_masks, super_values = pack_cubes(supercubes)
    off_masks, off_values = off.packed
    chunk = max(1, 2_000_000 // max(1, off_rows.shape[0] * super_masks.shape[1]))
    for start in range(0, supercubes.shape[0], chunk):
        block = slice(start, start + chunk)
        conflict = (
            (super_values[block, None, :] ^ off_values[None, :, :])
            & super_masks[block, None, :]
            & off_masks[None, :, :]
        ).any(axis=2)
        valid = conflict.all(axis=1)
        for row in supercubes[block][valid]:
            extra.append(_expand_cube(row, off_rows))
    if not extra:
        return cover
    widened = Cover(np.vstack([cover.cubes] + extra), cover.num_inputs)
    widened = widened.single_cube_containment()
    return irredundant(widened, dont_care)


def espresso(on: Cover, dc: Cover | None = None) -> Cover:
    """Heuristically minimise ``on`` using the don't-care cover ``dc``.

    Args:
        on: cover of the on-set (any cover whose care part equals it).
        dc: cover of the don't-care set (default: empty).

    Returns:
        A prime, irredundant cover ``F`` with
        ``on <= F <= on + dc`` and (heuristically) minimal
        ``(num_cubes, num_literals)``.

    Raises:
        ValueError: if *on* and *dc* are inconsistent (overlapping
            complement), surfaced from the expansion step.

    Results are memoised process-wide by problem content (see
    :mod:`repro.perf.cache`); cached covers are returned as shared,
    read-only objects.
    """
    num_inputs = on.num_inputs
    if dc is None:
        dc = Cover.empty(num_inputs)
    if on.num_cubes == 0:
        return on
    key = cover_key(on.cubes, dc.cubes, num_inputs)
    cached = global_cache.get(key)
    if cached is not None:
        return cached
    obs_metrics.counter("espresso.calls").inc()
    obs_metrics.counter("espresso.cubes_in").inc(on.num_cubes)
    iterations = 0
    with span("espresso", num_inputs=num_inputs, cubes_in=on.num_cubes) as sp:
        with span("espresso.complement", cubes=on.num_cubes):
            off = complement(on.union(dc))
        with span("espresso.expand", cubes=on.num_cubes):
            cover = expand(on, off)
        with span("espresso.irredundant", cubes=cover.num_cubes):
            cover = irredundant(cover, dc)
        best = cover
        gasped = False
        for _ in range(_MAX_ITERATIONS):
            iterations += 1
            cost = best.cost()
            with span("espresso.reduce", cubes=cover.num_cubes):
                cover = reduce_cover(cover, dc)
            with span("espresso.expand", cubes=cover.num_cubes):
                cover = expand(cover, off)
            with span("espresso.irredundant", cubes=cover.num_cubes):
                cover = irredundant(cover, dc)
            if cover.cost() < cost:
                best = cover
                continue
            if gasped:
                break
            # Converged: one LAST_GASP attempt to escape a cyclic local minimum.
            gasped = True
            with span("espresso.last_gasp", cubes=best.num_cubes):
                cover = _last_gasp(best, dc, off)
            if cover.cost() < cost:
                best = cover
            else:
                break
        sp.set(cubes_out=best.num_cubes, iterations=iterations)
    obs_metrics.counter("espresso.iterations").inc(iterations)
    obs_metrics.counter("espresso.cubes_out").inc(best.num_cubes)
    obs_metrics.histogram(
        "espresso.iterations_per_call", bounds=(1, 2, 3, 5, 8, 13, 20)
    ).observe(iterations)
    best.cubes.setflags(write=False)
    global_cache.put(key, best)
    return best


class MinimizedFunction:
    """Per-output minimised covers of a spec, with evaluation helpers."""

    def __init__(self, spec: FunctionSpec, covers: list[Cover]):
        self.spec = spec
        self.covers = covers

    @property
    def total_cubes(self) -> int:
        """Sum of cube counts over all outputs."""
        return sum(cover.num_cubes for cover in self.covers)

    @property
    def total_literals(self) -> int:
        """Sum of literal counts over all outputs."""
        return sum(cover.num_literals for cover in self.covers)

    def truth_values(self) -> np.ndarray:
        """Boolean output table implied by the covers (DCs decided)."""
        return np.vstack([cover.evaluate() for cover in self.covers])

    def completed_spec(self) -> FunctionSpec:
        """The fully specified function the covers implement.

        Raises:
            ValueError: if a cover disagrees with the original care set —
                which would indicate a minimiser bug, so this doubles as a
                runtime self-check.
        """
        return self.spec.assigned(self.truth_values(), suffix="/espresso")


def minimize_spec(spec: FunctionSpec) -> MinimizedFunction:
    """Run espresso on every output of *spec* (DCs used for minimisation).

    Results are memoised process-wide on the spec's phase content (not its
    name), so sweep drivers that revisit an identical truth table get the
    covers back without recomputation.
    """
    key = spec_key(spec.phases)
    covers = global_cache.get(key)
    if covers is None:
        obs_metrics.counter("minimize_spec.calls").inc()
        with span(
            "minimize_spec", name=spec.name, outputs=spec.num_outputs,
            inputs=spec.num_inputs,
        ):
            covers = []
            for out in range(spec.num_outputs):
                on = Cover.from_minterms(spec.num_inputs, spec.on_set(out))
                dc = Cover.from_minterms(spec.num_inputs, spec.dc_set(out))
                covers.append(espresso(on, dc))
        global_cache.put(key, covers)
    return MinimizedFunction(spec, list(covers))
