"""ESPRESSO-style two-level logic minimisation.

This subpackage is the reproduction's stand-in for the original ESPRESSO
tool: positional-cube covers, the unate recursive paradigm (tautology /
complement), the EXPAND–IRREDUNDANT–REDUCE loop, and a Quine–McCluskey
exact minimiser used as a cross-check oracle in the tests.
"""

from .cube import (
    FREE,
    V0,
    V1,
    Cover,
    cube_contains,
    cube_intersection,
    cube_tables,
    cubes_intersect,
    pack_cubes,
    supercube,
    unpack_cubes,
)
from .expand import expand
from .irredundant import irredundant
from .minimize import MinimizedFunction, espresso, minimize_spec
from .multi import MultiOutputCover, minimize_multi_output
from .qm import prime_implicants, quine_mccluskey
from .reduce_ import reduce_cover
from .unate import complement, cover_contains_cube, covers_cover, is_tautology

__all__ = [
    "FREE",
    "V0",
    "V1",
    "Cover",
    "cube_contains",
    "cube_intersection",
    "cube_tables",
    "cubes_intersect",
    "pack_cubes",
    "supercube",
    "unpack_cubes",
    "expand",
    "irredundant",
    "MinimizedFunction",
    "espresso",
    "minimize_spec",
    "MultiOutputCover",
    "minimize_multi_output",
    "prime_implicants",
    "quine_mccluskey",
    "reduce_cover",
    "complement",
    "cover_contains_cube",
    "covers_cover",
    "is_tautology",
]
