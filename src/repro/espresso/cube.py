"""Cubes and covers for two-level minimisation.

A *cube* over *n* binary inputs is a vector of per-variable literal codes:

* ``V0`` (0) — the variable appears complemented (``x'``),
* ``V1`` (1) — the variable appears uncomplemented (``x``),
* ``FREE`` (2) — the variable does not appear (``-``).

A *cover* is a set of cubes, stored as a ``uint8`` numpy array of shape
``(num_cubes, num_inputs)``.  All the unate-recursive-paradigm operators of
:mod:`repro.espresso.unate` and the ESPRESSO loop of
:mod:`repro.espresso.minimize` work on :class:`Cover` objects.

Packed representation
---------------------

The hot kernels do not walk literals one by one.  Every cube additionally
has a *packed* form: a pair of ``uint64`` machine words per 64 variables,

* ``mask`` — bit ``j`` set iff variable ``j`` is bound (not FREE),
* ``value`` — bit ``j`` set iff the bound literal is ``V1``.

With this encoding the classic cube predicates collapse to a handful of
whole-word bitwise operations (see :func:`pack_cubes`):

* *a* and *b* intersect  iff  ``(value_a ^ value_b) & mask_a & mask_b == 0``;
* *a* contains *b*       iff  ``mask_a & ~mask_b == 0`` and
  ``(value_a ^ value_b) & mask_a == 0``;
* *a* covers minterm *m* iff  ``(value_a ^ m) & mask_a == 0``.

:class:`Cover` computes and caches the packed arrays lazily; covers are
immutable by convention, so the cache never goes stale.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "V0",
    "V1",
    "FREE",
    "Cover",
    "cube_contains",
    "cube_intersection",
    "cubes_intersect",
    "cube_string",
    "pack_cubes",
    "unpack_cubes",
    "supercube",
]

V0: int = 0
"""Literal code: variable complemented."""

V1: int = 1
"""Literal code: variable uncomplemented."""

FREE: int = 2
"""Literal code: variable absent from the cube."""

_CHAR_OF = {V0: "0", V1: "1", FREE: "-"}
_CODE_OF = {"0": V0, "1": V1, "-": FREE, "2": FREE}

_WORD_BITS = 64
"""Variables per packed machine word."""


def num_words(num_inputs: int) -> int:
    """Packed words needed for *num_inputs* variables (at least one)."""
    return max(1, (num_inputs + _WORD_BITS - 1) // _WORD_BITS)


def pack_cubes(cubes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Pack literal-code rows into ``(masks, values)`` uint64 word arrays.

    Args:
        cubes: ``uint8`` array of shape ``(k, n)`` holding V0/V1/FREE codes.

    Returns:
        Two ``uint64`` arrays of shape ``(k, ceil(n / 64))``: bit ``j`` of
        word ``j // 64`` is set in ``masks`` iff variable ``j`` is bound,
        and in ``values`` iff it is bound to 1.
    """
    k, n = cubes.shape
    words = num_words(n)
    masks = np.zeros((k, words), dtype=np.uint64)
    values = np.zeros((k, words), dtype=np.uint64)
    bound = cubes != FREE
    ones = cubes == V1
    for w in range(words):
        lo = w * _WORD_BITS
        hi = min(n, lo + _WORD_BITS)
        if hi <= lo:
            break
        shifts = np.arange(hi - lo, dtype=np.uint64)
        masks[:, w] = (bound[:, lo:hi].astype(np.uint64) << shifts).sum(
            axis=1, dtype=np.uint64
        )
        values[:, w] = (ones[:, lo:hi].astype(np.uint64) << shifts).sum(
            axis=1, dtype=np.uint64
        )
    return masks, values


def unpack_cubes(masks: np.ndarray, values: np.ndarray, num_inputs: int) -> np.ndarray:
    """Inverse of :func:`pack_cubes`: word pairs back to literal-code rows."""
    k = masks.shape[0]
    cubes = np.full((k, num_inputs), FREE, dtype=np.uint8)
    one = np.uint64(1)
    for j in range(num_inputs):
        w, b = divmod(j, _WORD_BITS)
        shift = np.uint64(b)
        bound = ((masks[:, w] >> shift) & one).astype(bool)
        ones = ((values[:, w] >> shift) & one).astype(np.uint8)
        cubes[bound, j] = ones[bound]
    return cubes


def pack_minterm(minterm: int, num_inputs: int) -> np.ndarray:
    """A minterm index as a packed value-word vector (all variables bound)."""
    words = num_words(num_inputs)
    out = np.empty(words, dtype=np.uint64)
    for w in range(words):
        out[w] = (minterm >> (w * _WORD_BITS)) & 0xFFFFFFFFFFFFFFFF
    return out


def _pack_cube(cube: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Packed ``(mask, value)`` word vectors of a single cube row."""
    masks, values = pack_cubes(cube.reshape(1, -1))
    return masks[0], values[0]


def cube_tables(cubes: np.ndarray, num_inputs: int) -> np.ndarray:
    """Dense per-cube minterm tables, shape ``(k, 2**num_inputs)``.

    Row ``i`` is the truth table of cube ``i`` alone: entry ``m`` is True
    iff ``(m ^ value_i) & mask_i == 0``.  Only valid for word-sized input
    counts (``num_inputs <= 63``) — which is implied by materialising a
    ``2**n`` table at all.
    """
    masks, values = pack_cubes(cubes)
    idx = np.arange(1 << num_inputs, dtype=np.uint64)
    return ((idx[None, :] ^ values[:, 0][:, None]) & masks[:, 0][:, None]) == 0


def cube_string(cube: np.ndarray) -> str:
    """Render a cube as a ``01-`` string (input 0 first)."""
    return "".join(_CHAR_OF[int(v)] for v in cube)


def cube_contains(outer: np.ndarray, inner: np.ndarray) -> bool:
    """True if every minterm of *inner* lies in *outer*."""
    outer_mask, outer_value = _pack_cube(outer)
    inner_mask, inner_value = _pack_cube(inner)
    if np.any(outer_mask & ~inner_mask):
        return False
    return not np.any((outer_value ^ inner_value) & outer_mask)


def cubes_intersect(a: np.ndarray, b: np.ndarray) -> bool:
    """True if cubes *a* and *b* share at least one minterm."""
    a_mask, a_value = _pack_cube(a)
    b_mask, b_value = _pack_cube(b)
    return not np.any((a_value ^ b_value) & a_mask & b_mask)


def cube_intersection(a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    """The cube ``a AND b``, or None when the cubes are disjoint."""
    if not cubes_intersect(a, b):
        return None
    return np.where(a == FREE, b, a).astype(np.uint8)


def supercube(cubes: np.ndarray) -> np.ndarray:
    """Smallest single cube containing every cube of the array.

    Args:
        cubes: array of shape ``(k, n)`` with ``k >= 1``.
    """
    if cubes.shape[0] == 0:
        raise ValueError("supercube of an empty cover is undefined")
    result = np.full(cubes.shape[1], FREE, dtype=np.uint8)
    result[np.all(cubes == V0, axis=0)] = V0
    result[np.all(cubes == V1, axis=0)] = V1
    return result


class Cover:
    """An SOP cover: a set of cubes over a fixed number of inputs.

    Covers are immutable by convention — do not write to ``cover.cubes``
    after construction; every transformation returns a new object.  The
    packed word arrays backing the bit-parallel kernels are derived lazily
    and cached under that assumption.
    """

    __slots__ = (
        "cubes",
        "num_inputs",
        "_masks",
        "_values",
        "_table",
        "_literals",
        "_gather",
        "_nlit",
    )

    def __init__(self, cubes: np.ndarray, num_inputs: int):
        arr = np.asarray(cubes, dtype=np.uint8)
        if arr.size == 0:
            arr = arr.reshape(0, num_inputs)
        if arr.ndim != 2 or arr.shape[1] != num_inputs:
            raise ValueError(f"cube array shape {arr.shape} != (*, {num_inputs})")
        if arr.size and int(arr.max()) > FREE:
            raise ValueError("invalid literal code in cover")
        self.cubes = arr
        self.num_inputs = num_inputs
        self._masks: np.ndarray | None = None
        self._values: np.ndarray | None = None
        self._table: np.ndarray | None = None
        self._literals: tuple[tuple[tuple[int, bool], ...], ...] | None = None
        self._gather: np.ndarray | None = None
        self._nlit: int | None = None

    # --------------------------------------------------------------- packing

    @property
    def packed(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(masks, values)`` packed words of every cube."""
        if self._masks is None:
            self._masks, self._values = pack_cubes(self.cubes)
        return self._masks, self._values

    def table(self) -> np.ndarray:
        """Cached read-only dense truth table (see :meth:`evaluate`).

        Simulation re-applies the same node function to every batch of
        vectors; caching the ``2**n`` table on the (conventionally
        immutable) cover makes the per-batch cost independent of the cube
        count.  Only sensible for the narrow local functions of network
        nodes — callers guard the width.
        """
        if self._table is None:
            table = self.evaluate()
            table.setflags(write=False)
            self._table = table
        return self._table

    def literal_plan(self) -> tuple[tuple[tuple[int, bool], ...], ...]:
        """Cached per-cube bound literals as native python ints.

        Entry *c* lists cube *c*'s literals as ``(position, is_positive)``
        pairs.  The packed cube kernel walks this plan on every batch;
        hoisting the uint8-matrix scan out of the hot loop keeps the
        per-batch cost at the bitwise operations themselves.
        """
        if self._literals is None:
            self._literals = tuple(
                tuple(
                    (j, row[j] == V1)
                    for j in range(self.num_inputs)
                    if row[j] != FREE
                )
                for row in self.cubes.tolist()
            )
        return self._literals

    def gather_plan(self) -> np.ndarray:
        """Cached ``(num_cubes, max_literals)`` gather indices for the
        packed cube kernel.

        Row *c* indexes cube *c*'s literals into an extended signal matrix
        laid out as ``[k fanins, k complemented fanins, all-ones]``:
        position *j* for literal ``x_j``, ``k + j`` for ``~x_j``, and the
        all-ones row ``2 * k`` as padding so every cube row AND-reduces
        over the same width.
        """
        if self._gather is None:
            plan = self.literal_plan()
            k = self.num_inputs
            width = max((len(cube) for cube in plan), default=0)
            idx = np.full((len(plan), width), 2 * k, dtype=np.intp)
            for c, cube in enumerate(plan):
                for slot, (j, positive) in enumerate(cube):
                    idx[c, slot] = j if positive else k + j
            idx.setflags(write=False)
            self._gather = idx
        return self._gather

    # ---------------------------------------------------------- constructors

    @classmethod
    def empty(cls, num_inputs: int) -> "Cover":
        """The empty cover (constant 0)."""
        return cls(np.empty((0, num_inputs), dtype=np.uint8), num_inputs)

    @classmethod
    def universe(cls, num_inputs: int) -> "Cover":
        """The single all-FREE cube (constant 1)."""
        return cls(np.full((1, num_inputs), FREE, dtype=np.uint8), num_inputs)

    @classmethod
    def from_minterms(cls, num_inputs: int, minterms) -> "Cover":
        """One fully specified cube per minterm index.

        Raises:
            ValueError: if any minterm index is negative or ``>= 2**n``.
        """
        minterms = np.asarray(list(minterms), dtype=np.int64)
        if minterms.size:
            lo, hi = int(minterms.min()), int(minterms.max())
            if lo < 0 or hi >= (1 << num_inputs):
                bad = lo if lo < 0 else hi
                raise ValueError(
                    f"minterm {bad} out of range for {num_inputs} inputs "
                    f"(expected 0 <= m < {1 << num_inputs})"
                )
        cubes = np.zeros((len(minterms), num_inputs), dtype=np.uint8)
        for j in range(num_inputs):
            cubes[:, j] = (minterms >> j) & 1
        return cls(cubes, num_inputs)

    @classmethod
    def from_strings(cls, strings: list[str]) -> "Cover":
        """Build a cover from ``01-`` cube strings (input 0 first).

        Raises:
            ValueError: on an empty list, ragged widths, or characters
                outside ``0``, ``1``, ``-`` (``2`` is accepted for FREE).
        """
        if not strings:
            raise ValueError("from_strings needs at least one cube string")
        num_inputs = len(strings[0])
        cubes = np.zeros((len(strings), num_inputs), dtype=np.uint8)
        for i, text in enumerate(strings):
            if len(text) != num_inputs:
                raise ValueError(f"cube {text!r} has wrong width")
            for j, ch in enumerate(text):
                code = _CODE_OF.get(ch)
                if code is None:
                    raise ValueError(
                        f"invalid literal character {ch!r} in cube {text!r} "
                        "(expected '0', '1' or '-')"
                    )
                cubes[i, j] = code
        return cls(cubes, num_inputs)

    # ------------------------------------------------------------------ size

    @property
    def num_cubes(self) -> int:
        """Number of cubes (product terms)."""
        return self.cubes.shape[0]

    @property
    def num_literals(self) -> int:
        """Total number of literals across all cubes (cached — the packed
        kernel dispatch reads this on every simulation batch)."""
        if self._nlit is None:
            self._nlit = int(np.count_nonzero(self.cubes != FREE))
        return self._nlit

    def cost(self) -> tuple[int, int]:
        """(cubes, literals) — the lexicographic cost ESPRESSO minimises."""
        return (self.num_cubes, self.num_literals)

    def __len__(self) -> int:
        return self.num_cubes

    def __bool__(self) -> bool:
        return self.num_cubes > 0

    # ------------------------------------------------------------ operations

    def union(self, other: "Cover") -> "Cover":
        """Cover containing the cubes of both operands (no simplification)."""
        if other.num_inputs != self.num_inputs:
            raise ValueError("covers over different input counts")
        return Cover(np.vstack([self.cubes, other.cubes]), self.num_inputs)

    def without_cube(self, index: int) -> "Cover":
        """Cover with cube *index* removed."""
        return Cover(np.delete(self.cubes, index, axis=0), self.num_inputs)

    def cofactor(self, cube: np.ndarray) -> "Cover":
        """The cofactor of this cover with respect to *cube*.

        Rows disjoint from *cube* are dropped; in the remaining rows every
        variable bound by *cube* is freed.  The result represents the
        function restricted to the subspace of *cube*, expressed over the
        full variable set (bound variables become irrelevant).
        """
        if self.num_cubes == 0:
            return Cover.empty(self.num_inputs)
        cube_mask, cube_value = _pack_cube(np.asarray(cube, dtype=np.uint8))
        masks, values = self.packed
        # Rows that intersect `cube`: no variable bound by both disagrees.
        keep = ~np.any((values ^ cube_value) & masks & cube_mask, axis=1)
        rows = self.cubes[keep].copy()
        rows[:, cube != FREE] = FREE
        return Cover(rows, self.num_inputs)

    def var_cofactor(self, var: int, value: int) -> "Cover":
        """Shannon cofactor with respect to a single variable."""
        cube = np.full(self.num_inputs, FREE, dtype=np.uint8)
        cube[var] = value
        return self.cofactor(cube)

    def evaluate(self) -> np.ndarray:
        """Dense boolean truth table (length ``2**num_inputs``) of the cover."""
        n = self.num_inputs
        size = 1 << n
        result = np.zeros(size, dtype=bool)
        if self.num_cubes == 0:
            return result
        masks, values = self.packed
        idx = np.arange(size, dtype=np.uint64)
        # Whole-row kernel: minterm m is in cube c iff (m ^ value_c) has no
        # set bit under mask_c.  Chunk the cube axis to bound the (k, 2**n)
        # intermediate.
        chunk = max(1, 8_000_000 // max(1, size))
        for start in range(0, self.num_cubes, chunk):
            mask_block = masks[start : start + chunk, 0][:, None]
            value_block = values[start : start + chunk, 0][:, None]
            result |= np.any(((idx[None, :] ^ value_block) & mask_block) == 0, axis=0)
        return result

    def covers_minterm(self, minterm: int) -> bool:
        """True if any cube contains the given minterm index."""
        if self.num_cubes == 0:
            return False
        masks, values = self.packed
        point = pack_minterm(minterm, self.num_inputs)
        return bool(np.any(np.all(((values ^ point) & masks) == 0, axis=1)))

    def minterms(self) -> np.ndarray:
        """Sorted indices of all covered minterms."""
        return np.flatnonzero(self.evaluate())

    def single_cube_containment(self) -> "Cover":
        """Remove cubes contained in another cube of the cover."""
        k = self.num_cubes
        if k <= 1:
            return self
        masks, values = self.packed
        # contains[j, i]: cube j contains cube i — j's bound variables are a
        # subset of i's and the two agree wherever j is bound.
        subset = (masks[:, None, :] & ~masks[None, :, :]) == 0
        agree = ((values[:, None, :] ^ values[None, :, :]) & masks[:, None, :]) == 0
        contains = np.all(subset & agree, axis=2)
        np.fill_diagonal(contains, False)
        keep = np.ones(k, dtype=bool)
        for i in range(k):
            for j in np.flatnonzero(contains[:, i]):
                if not keep[j]:
                    continue
                if contains[i, j] and i < j:
                    continue  # identical cubes: keep the first
                keep[i] = False
                break
        return Cover(self.cubes[keep], self.num_inputs)

    def cube_strings(self) -> list[str]:
        """``01-`` strings of all cubes."""
        return [cube_string(cube) for cube in self.cubes]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cover({self.num_cubes} cubes, {self.num_inputs} inputs)"
