"""Cubes and covers for two-level minimisation.

A *cube* over *n* binary inputs is a vector of per-variable literal codes:

* ``V0`` (0) — the variable appears complemented (``x'``),
* ``V1`` (1) — the variable appears uncomplemented (``x``),
* ``FREE`` (2) — the variable does not appear (``-``).

A *cover* is a set of cubes, stored as a ``uint8`` numpy array of shape
``(num_cubes, num_inputs)``.  All the unate-recursive-paradigm operators of
:mod:`repro.espresso.unate` and the ESPRESSO loop of
:mod:`repro.espresso.minimize` work on :class:`Cover` objects.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "V0",
    "V1",
    "FREE",
    "Cover",
    "cube_contains",
    "cube_intersection",
    "cubes_intersect",
    "cube_string",
    "supercube",
]

V0: int = 0
"""Literal code: variable complemented."""

V1: int = 1
"""Literal code: variable uncomplemented."""

FREE: int = 2
"""Literal code: variable absent from the cube."""

_CHAR_OF = {V0: "0", V1: "1", FREE: "-"}
_CODE_OF = {"0": V0, "1": V1, "-": FREE, "2": FREE}


def cube_string(cube: np.ndarray) -> str:
    """Render a cube as a ``01-`` string (input 0 first)."""
    return "".join(_CHAR_OF[int(v)] for v in cube)


def cube_contains(outer: np.ndarray, inner: np.ndarray) -> bool:
    """True if every minterm of *inner* lies in *outer*."""
    return bool(np.all((outer == FREE) | (outer == inner)))


def cubes_intersect(a: np.ndarray, b: np.ndarray) -> bool:
    """True if cubes *a* and *b* share at least one minterm."""
    return not bool(np.any((a != FREE) & (b != FREE) & (a != b)))


def cube_intersection(a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    """The cube ``a AND b``, or None when the cubes are disjoint."""
    if not cubes_intersect(a, b):
        return None
    return np.where(a == FREE, b, a).astype(np.uint8)


def supercube(cubes: np.ndarray) -> np.ndarray:
    """Smallest single cube containing every cube of the array.

    Args:
        cubes: array of shape ``(k, n)`` with ``k >= 1``.
    """
    if cubes.shape[0] == 0:
        raise ValueError("supercube of an empty cover is undefined")
    result = np.full(cubes.shape[1], FREE, dtype=np.uint8)
    result[np.all(cubes == V0, axis=0)] = V0
    result[np.all(cubes == V1, axis=0)] = V1
    return result


class Cover:
    """An SOP cover: a set of cubes over a fixed number of inputs."""

    __slots__ = ("cubes", "num_inputs")

    def __init__(self, cubes: np.ndarray, num_inputs: int):
        arr = np.asarray(cubes, dtype=np.uint8)
        if arr.size == 0:
            arr = arr.reshape(0, num_inputs)
        if arr.ndim != 2 or arr.shape[1] != num_inputs:
            raise ValueError(f"cube array shape {arr.shape} != (*, {num_inputs})")
        if arr.size and int(arr.max()) > FREE:
            raise ValueError("invalid literal code in cover")
        self.cubes = arr
        self.num_inputs = num_inputs

    # ---------------------------------------------------------- constructors

    @classmethod
    def empty(cls, num_inputs: int) -> "Cover":
        """The empty cover (constant 0)."""
        return cls(np.empty((0, num_inputs), dtype=np.uint8), num_inputs)

    @classmethod
    def universe(cls, num_inputs: int) -> "Cover":
        """The single all-FREE cube (constant 1)."""
        return cls(np.full((1, num_inputs), FREE, dtype=np.uint8), num_inputs)

    @classmethod
    def from_minterms(cls, num_inputs: int, minterms) -> "Cover":
        """One fully specified cube per minterm index."""
        minterms = np.asarray(list(minterms), dtype=np.int64)
        cubes = np.zeros((len(minterms), num_inputs), dtype=np.uint8)
        for j in range(num_inputs):
            cubes[:, j] = (minterms >> j) & 1
        return cls(cubes, num_inputs)

    @classmethod
    def from_strings(cls, strings: list[str]) -> "Cover":
        """Build a cover from ``01-`` cube strings (input 0 first)."""
        if not strings:
            raise ValueError("from_strings needs at least one cube string")
        num_inputs = len(strings[0])
        cubes = np.zeros((len(strings), num_inputs), dtype=np.uint8)
        for i, text in enumerate(strings):
            if len(text) != num_inputs:
                raise ValueError(f"cube {text!r} has wrong width")
            for j, ch in enumerate(text):
                cubes[i, j] = _CODE_OF[ch]
        return cls(cubes, num_inputs)

    # ------------------------------------------------------------------ size

    @property
    def num_cubes(self) -> int:
        """Number of cubes (product terms)."""
        return self.cubes.shape[0]

    @property
    def num_literals(self) -> int:
        """Total number of literals across all cubes."""
        return int(np.count_nonzero(self.cubes != FREE))

    def cost(self) -> tuple[int, int]:
        """(cubes, literals) — the lexicographic cost ESPRESSO minimises."""
        return (self.num_cubes, self.num_literals)

    def __len__(self) -> int:
        return self.num_cubes

    def __bool__(self) -> bool:
        return self.num_cubes > 0

    # ------------------------------------------------------------ operations

    def union(self, other: "Cover") -> "Cover":
        """Cover containing the cubes of both operands (no simplification)."""
        if other.num_inputs != self.num_inputs:
            raise ValueError("covers over different input counts")
        return Cover(np.vstack([self.cubes, other.cubes]), self.num_inputs)

    def without_cube(self, index: int) -> "Cover":
        """Cover with cube *index* removed."""
        return Cover(np.delete(self.cubes, index, axis=0), self.num_inputs)

    def cofactor(self, cube: np.ndarray) -> "Cover":
        """The cofactor of this cover with respect to *cube*.

        Rows disjoint from *cube* are dropped; in the remaining rows every
        variable bound by *cube* is freed.  The result represents the
        function restricted to the subspace of *cube*, expressed over the
        full variable set (bound variables become irrelevant).
        """
        if self.num_cubes == 0:
            return Cover.empty(self.num_inputs)
        bound = cube != FREE
        conflict = (self.cubes != FREE) & bound & (self.cubes != cube)
        keep = ~np.any(conflict, axis=1)
        rows = self.cubes[keep].copy()
        rows[:, bound] = FREE
        return Cover(rows, self.num_inputs)

    def var_cofactor(self, var: int, value: int) -> "Cover":
        """Shannon cofactor with respect to a single variable."""
        cube = np.full(self.num_inputs, FREE, dtype=np.uint8)
        cube[var] = value
        return self.cofactor(cube)

    def evaluate(self) -> np.ndarray:
        """Dense boolean truth table (length ``2**num_inputs``) of the cover."""
        n = self.num_inputs
        size = 1 << n
        result = np.zeros(size, dtype=bool)
        idx = np.arange(size, dtype=np.int64)
        for cube in self.cubes:
            match = np.ones(size, dtype=bool)
            for j in range(n):
                if cube[j] != FREE:
                    match &= ((idx >> j) & 1) == cube[j]
            result |= match
        return result

    def covers_minterm(self, minterm: int) -> bool:
        """True if any cube contains the given minterm index."""
        for cube in self.cubes:
            hit = True
            for j in range(self.num_inputs):
                if cube[j] != FREE and int((minterm >> j) & 1) != cube[j]:
                    hit = False
                    break
            if hit:
                return True
        return False

    def minterms(self) -> np.ndarray:
        """Sorted indices of all covered minterms."""
        return np.flatnonzero(self.evaluate())

    def single_cube_containment(self) -> "Cover":
        """Remove cubes contained in another cube of the cover."""
        k = self.num_cubes
        if k <= 1:
            return self
        cubes = self.cubes
        # contains[j, i]: cube j contains cube i (vectorised pairwise test).
        contains = np.all(
            (cubes[:, None, :] == FREE) | (cubes[:, None, :] == cubes[None, :, :]),
            axis=2,
        )
        np.fill_diagonal(contains, False)
        keep = np.ones(k, dtype=bool)
        for i in range(k):
            for j in np.flatnonzero(contains[:, i]):
                if not keep[j]:
                    continue
                if contains[i, j] and i < j:
                    continue  # identical cubes: keep the first
                keep[i] = False
                break
        return Cover(cubes[keep], self.num_inputs)

    def cube_strings(self) -> list[str]:
        """``01-`` strings of all cubes."""
        return [cube_string(cube) for cube in self.cubes]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cover({self.num_cubes} cubes, {self.num_inputs} inputs)"
