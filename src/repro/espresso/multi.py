"""Multi-output exact two-level minimisation (shared AND plane).

Our per-output ESPRESSO runs minimise each output independently, which is
what the multi-level flow wants — but a *PLA* implementation shares its
product terms across outputs, and the true two-level cost is the number of
distinct AND-plane rows.  This module implements the classical
multi-output Quine–McCluskey formulation:

* a *multi-output implicant* is a pair ``(cube, outputs)`` such that the
  cube fits inside ``on ∪ dc`` of every tagged output;
* it is *prime* when neither the cube can be enlarged nor the output set
  extended;
* the covering problem asks for the fewest implicants covering every
  ``(on-minterm, output)`` pair.

Multi-output primes are exactly the primes of the product functions
``∏_{o in S} (on_o + dc_o)`` over output subsets ``S``, tagged with the
maximal such ``S`` — which is how they are enumerated here.  Exponential
in the output count by nature; intended for the small-function regime
(the same one the exact single-output oracle serves).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.spec import FunctionSpec
from ..core.truthtable import DC, ON
from .cube import FREE, Cover, cube_contains
from .qm import _CoverSolver, prime_implicants

__all__ = ["MultiOutputCover", "minimize_multi_output"]

_MAX_OUTPUTS = 10
"""Refuse inputs beyond this output count (2^m subset enumeration)."""


@dataclass(frozen=True)
class MultiOutputCover:
    """A shared-AND-plane two-level implementation.

    Attributes:
        num_inputs: input count.
        rows: list of ``(cube, frozenset of output indices)`` pairs.
        num_outputs: output count.
        proven_optimal: False when covering fell back to greedy.
    """

    num_inputs: int
    num_outputs: int
    rows: tuple[tuple[np.ndarray, frozenset], ...]
    proven_optimal: bool

    @property
    def num_product_terms(self) -> int:
        """Distinct AND-plane rows — the PLA area metric."""
        return len(self.rows)

    def truth_values(self) -> np.ndarray:
        """Boolean output table implied by the shared cover."""
        size = 1 << self.num_inputs
        table = np.zeros((self.num_outputs, size), dtype=bool)
        idx = np.arange(size)
        for cube, outputs in self.rows:
            match = np.ones(size, dtype=bool)
            for j in range(self.num_inputs):
                if cube[j] != FREE:
                    match &= ((idx >> j) & 1) == cube[j]
            for output in outputs:
                table[output] |= match
        return table

    def implements(self, spec: FunctionSpec) -> bool:
        """True when the cover matches *spec* within its DC set."""
        return spec.equivalent_within_dc(
            FunctionSpec.from_truth_table(self.truth_values())
        )


def _allowed_mask(spec: FunctionSpec, outputs: frozenset) -> np.ndarray:
    mask = np.ones(spec.num_minterms, dtype=bool)
    for output in outputs:
        mask &= spec.phases[output] != 0  # ON or DC
    return mask


def minimize_multi_output(
    spec: FunctionSpec, *, node_limit: int = 200_000
) -> MultiOutputCover:
    """Exact minimum-product-term shared cover of *spec*.

    Args:
        spec: the incompletely specified multi-output function.
        node_limit: branch-and-bound budget for the covering step.

    Raises:
        ValueError: if the output count exceeds the supported bound.
    """
    m = spec.num_outputs
    if m > _MAX_OUTPUTS:
        raise ValueError(
            f"{m} outputs exceeds the exact multi-output bound ({_MAX_OUTPUTS})"
        )
    n = spec.num_inputs

    # Enumerate candidate implicants: primes of every output-subset product
    # function, tagged with their *maximal* output set.
    candidates: dict[bytes, tuple[np.ndarray, frozenset]] = {}
    for subset_bits in range(1, 1 << m):
        outputs = frozenset(o for o in range(m) if (subset_bits >> o) & 1)
        allowed = _allowed_mask(spec, outputs)
        if not np.any(allowed):
            continue
        primes = prime_implicants(n, np.flatnonzero(allowed))
        for cube in primes.cubes:
            # Maximal output tag for this cube: every output whose
            # allowed set contains the cube.
            tag = frozenset(
                o for o in range(m)
                if _cube_inside(cube, spec.phases[o])
            )
            key = cube.tobytes()
            existing = candidates.get(key)
            if existing is None or len(tag) > len(existing[1]):
                candidates[key] = (cube.copy(), tag)

    implicants = list(candidates.values())
    # Covering table over (on-minterm, output) pairs.
    targets: list[tuple[int, int]] = []
    for output in range(m):
        for minterm in np.flatnonzero(spec.phases[output] == ON):
            targets.append((int(minterm), output))
    if not targets:
        return MultiOutputCover(n, m, (), True)
    table = []
    for minterm, output in targets:
        columns = frozenset(
            index
            for index, (cube, tag) in enumerate(implicants)
            if output in tag and _covers_minterm(cube, minterm)
        )
        table.append(columns)
    solver = _CoverSolver(table, len(implicants), node_limit)
    chosen, optimal = solver.solve()
    rows = []
    for index in sorted(chosen):
        cube, tag = implicants[index]
        # Shrink the tag to outputs that actually need this row?  Keeping
        # the maximal tag is harmless for ON coverage but may wrongly turn
        # on a DC of another output — which is allowed by definition.
        rows.append((cube, tag))
    return MultiOutputCover(n, m, tuple(rows), optimal)


def _cube_inside(cube: np.ndarray, phases: np.ndarray) -> bool:
    """True if every minterm of *cube* is ON or DC for the output."""
    n = cube.shape[0]
    size = 1 << n
    idx = np.arange(size)
    match = np.ones(size, dtype=bool)
    for j in range(n):
        if cube[j] != FREE:
            match &= ((idx >> j) & 1) == cube[j]
    return not bool(np.any(match & (phases == 0)))


def _covers_minterm(cube: np.ndarray, minterm: int) -> bool:
    for j in range(cube.shape[0]):
        if cube[j] != FREE and int((minterm >> j) & 1) != cube[j]:
            return False
    return True
