"""REDUCE: shrink each cube to the smallest cube still needed.

For each cube ``c`` (largest first), the part of ``c`` not covered by the
rest of the cover plus the DC set is what ``c`` uniquely contributes; ``c``
is replaced by the smallest cube containing that part:

    c_new = c  AND  supercube( complement( cofactor(F \\ c + D, c) ) )

Reducing un-primes the cover on purpose — the following EXPAND can then
escape the local minimum by growing the cubes in a different direction.
"""

from __future__ import annotations

import numpy as np

from .cube import FREE, Cover, supercube
from .unate import _complement

__all__ = ["reduce_cover"]


def reduce_cover(cover: Cover, dont_care: Cover) -> Cover:
    """Return the maximally reduced version of *cover* (order-dependent)."""
    cubes = cover.cubes.copy()
    if cubes.shape[0] == 0:
        return cover
    num_vars = cover.num_inputs
    order = np.argsort(np.count_nonzero(cubes != FREE, axis=1), kind="stable")
    cubes = cubes[order]
    alive = np.ones(len(cubes), dtype=bool)
    for i in range(len(cubes)):
        rest_rows = np.vstack(
            [cubes[alive & (np.arange(len(cubes)) != i)], dont_care.cubes]
        )
        rest = Cover(rest_rows, num_vars)
        others = rest.cofactor(cubes[i])
        unique_part = _complement(others.cubes, num_vars)
        if unique_part.shape[0] == 0:
            # Fully covered by the rest: the cube contributes nothing.
            alive[i] = False
            continue
        shrink = supercube(unique_part)
        merged = cubes[i].copy()
        bound = shrink != FREE
        merged[bound] = shrink[bound]
        cubes[i] = merged
    return Cover(cubes[alive], num_vars)
