"""REDUCE: shrink each cube to the smallest cube still needed.

For each cube ``c`` (largest first), the part of ``c`` not covered by the
rest of the cover plus the DC set is what ``c`` uniquely contributes; ``c``
is replaced by the smallest cube containing that part:

    c_new = c  AND  supercube( complement( cofactor(F \\ c + D, c) ) )

Reducing un-primes the cover on purpose — the following EXPAND can then
escape the local minimum by growing the cubes in a different direction.

For word-sized input spaces the unique part is computed bit-parallel on
dense minterm tables (a per-minterm coverage counter updated as cubes
shrink), which is exactly equivalent to the cofactor/complement recursion:
the supercube of the unique minterm set binds a variable iff every cube of
the complement cover binds it to the same value.
"""

from __future__ import annotations

import numpy as np

from .cube import FREE, V0, V1, Cover, cube_tables, supercube
from .unate import _complement

__all__ = ["reduce_cover"]

_DENSE_CELL_LIMIT = 16_000_000
"""Use the dense kernel while ``num_cubes * 2**n`` stays below this."""


def _use_dense(num_cubes: int, num_inputs: int) -> bool:
    return num_inputs <= 62 and num_cubes << num_inputs <= _DENSE_CELL_LIMIT


def _minterm_supercube(table: np.ndarray, bits: np.ndarray) -> np.ndarray:
    """Smallest cube containing the minterms flagged by *table*.

    Args:
        table: boolean minterm membership, length ``2**n``.
        bits: precomputed ``(2**n, n)`` minterm-bit matrix.
    """
    member = bits[table]
    cube = np.full(bits.shape[1], FREE, dtype=np.uint8)
    cube[~member.any(axis=0)] = V0
    cube[member.all(axis=0)] = V1
    return cube


def _minterm_bits(num_inputs: int) -> np.ndarray:
    idx = np.arange(1 << num_inputs, dtype=np.int64)
    return ((idx[:, None] >> np.arange(num_inputs)[None, :]) & 1).astype(bool)


def _dense_reduce(cubes: np.ndarray, dont_care: Cover, num_inputs: int) -> tuple[np.ndarray, np.ndarray]:
    """Sequential maximal reduction on dense minterm tables.

    Returns ``(cubes, alive)`` — the reduced rows and the survivor mask.
    """
    tables = cube_tables(cubes, num_inputs)
    dc_table = (
        dont_care.evaluate()
        if dont_care.num_cubes
        else np.zeros(1 << num_inputs, dtype=bool)
    )
    bits = _minterm_bits(num_inputs)
    coverage = tables.sum(axis=0, dtype=np.int64)
    alive = np.ones(len(cubes), dtype=bool)
    cubes = cubes.copy()
    for i in range(len(cubes)):
        table = tables[i]
        unique = table & ~dc_table & (coverage - table <= 0)
        if not unique.any():
            alive[i] = False
            coverage -= table
            continue
        new_cube = _minterm_supercube(unique, bits)
        if np.array_equal(new_cube, cubes[i]):
            continue
        cubes[i] = new_cube
        new_table = cube_tables(new_cube.reshape(1, -1), num_inputs)[0]
        coverage += new_table.astype(np.int64) - table.astype(np.int64)
        tables[i] = new_table
    return cubes, alive


def max_reduce(cover: Cover, dont_care: Cover) -> np.ndarray:
    """Maximally reduce every cube *independently* of the others.

    Unlike :func:`reduce_cover` the reductions do not interact: each cube
    is shrunk against the original cover.  Cubes that contribute nothing
    are returned unchanged (the caller decides their fate).  This is the
    kernel of ESPRESSO's LAST_GASP.
    """
    cubes = cover.cubes
    k = cubes.shape[0]
    num_inputs = cover.num_inputs
    if _use_dense(k, num_inputs):
        tables = cube_tables(cubes, num_inputs)
        dc_table = (
            dont_care.evaluate()
            if dont_care.num_cubes
            else np.zeros(1 << num_inputs, dtype=bool)
        )
        coverage = tables.sum(axis=0, dtype=np.int64)
        # unique[i, m]: only cube i covers care-minterm m.
        unique = tables & ~dc_table[None, :] & ((coverage[None, :] - tables) <= 0)
        bits = _minterm_bits(num_inputs)
        counts = unique.astype(np.int64) @ bits.astype(np.int64)
        totals = unique.sum(axis=1)
        reduced = cubes.copy()
        nonempty = totals > 0
        all_one = counts == totals[:, None]
        all_zero = counts == 0
        rows = np.full(cubes.shape, FREE, dtype=np.uint8)
        rows[all_zero] = V0
        rows[all_one] = V1
        reduced[nonempty] = rows[nonempty]
        return reduced
    return np.vstack(
        [_max_reduce_one_recursive(cover, i, dont_care) for i in range(k)]
    )


def _max_reduce_one_recursive(cover: Cover, index: int, dont_care: Cover) -> np.ndarray:
    """Cofactor/complement fallback for one independent maximal reduction."""
    rest = Cover(
        np.vstack([np.delete(cover.cubes, index, axis=0), dont_care.cubes]),
        cover.num_inputs,
    )
    others = rest.cofactor(cover.cubes[index])
    unique_part = _complement(others.cubes, cover.num_inputs)
    if unique_part.shape[0] == 0:
        return cover.cubes[index]
    shrink = supercube(unique_part)
    merged = cover.cubes[index].copy()
    bound = shrink != FREE
    merged[bound] = shrink[bound]
    return merged


def reduce_cover(cover: Cover, dont_care: Cover) -> Cover:
    """Return the maximally reduced version of *cover* (order-dependent)."""
    cubes = cover.cubes.copy()
    if cubes.shape[0] == 0:
        return cover
    num_vars = cover.num_inputs
    order = np.argsort(np.count_nonzero(cubes != FREE, axis=1), kind="stable")
    cubes = cubes[order]
    if _use_dense(len(cubes), num_vars):
        reduced, alive = _dense_reduce(cubes, dont_care, num_vars)
        return Cover(reduced[alive], num_vars)
    alive = np.ones(len(cubes), dtype=bool)
    for i in range(len(cubes)):
        rest_rows = np.vstack(
            [cubes[alive & (np.arange(len(cubes)) != i)], dont_care.cubes]
        )
        rest = Cover(rest_rows, num_vars)
        others = rest.cofactor(cubes[i])
        unique_part = _complement(others.cubes, num_vars)
        if unique_part.shape[0] == 0:
            # Fully covered by the rest: the cube contributes nothing.
            alive[i] = False
            continue
        shrink = supercube(unique_part)
        merged = cubes[i].copy()
        bound = shrink != FREE
        merged[bound] = shrink[bound]
        cubes[i] = merged
    return Cover(cubes[alive], num_vars)
