"""Observability: tracing spans, a metrics registry, and run manifests.

The package makes the substrate introspectable end to end:

* :mod:`repro.obs.trace` — nestable :func:`span` context managers
  recording wall time, attributes and parent/child structure into a
  per-run :class:`Tracer`; exportable as JSONL or Chrome
  ``trace_event`` JSON (Perfetto-loadable).
* :mod:`repro.obs.metrics` — named counters, gauges and fixed-bucket
  histograms in a process-wide registry, with snapshot / merge / diff
  operations used to aggregate worker-process deltas after a parallel
  sweep.
* :mod:`repro.obs.manifest` — :class:`RunManifest` provenance records
  (args, seed, git rev, versions, timings, metrics) written by the CLI
  and the benchmarks.
* :mod:`repro.obs.progress` — the ``--progress`` ETA reporter.
* :mod:`repro.obs.store` — the telemetry ledger: an append-only SQLite
  record of every run (manifest, metrics, stage timings, quality
  figures, profile, worker health), queried by ``repro obs``.
* :mod:`repro.obs.profile` — the ``--profile`` sampling stack profiler
  (flamegraph-ready collapsed stacks, merged from pool workers).
* :mod:`repro.obs.regress` — cross-run comparison and the regression
  gate behind ``repro obs compare`` / ``repro obs regressions``.
* :mod:`repro.obs.session` — :class:`ObsSession`, the CLI glue tying
  the above to ``--trace`` / ``--metrics-out`` / ``--manifest`` /
  ``--profile`` / ``--progress`` and the ledger.
* :mod:`repro.obs.validate` — schema checks for all emitted artefacts
  (``python -m repro.obs.validate FILE...``).

Everything is off (tracing) or near-free (metrics) by default; see
``docs/observability.md`` for naming conventions and how to read a
trace.
"""

from .manifest import RunManifest, collect_manifest, git_revision, validate_manifest
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    configure_metrics,
    counter,
    diff_snapshots,
    gauge,
    global_registry,
    histogram,
    merge_snapshot,
    metrics_snapshot,
    register_collector,
    reset_metrics,
)
from .profile import (
    StackSampler,
    current_sampler,
    disable_profiling,
    enable_profiling,
    is_profiling,
    top_functions,
)
from .progress import ProgressReporter
from .session import ObsSession
from .store import (
    LEDGER_SCHEMA_VERSION,
    LedgerStore,
    RunRecord,
    default_ledger_path,
    ledger_enabled,
    open_ledger,
)
from .trace import (
    NULL_SPAN,
    Tracer,
    current_tracer,
    disable_tracing,
    enable_tracing,
    is_enabled,
    span,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LEDGER_SCHEMA_VERSION",
    "LedgerStore",
    "MetricsRegistry",
    "NULL_SPAN",
    "ObsSession",
    "ProgressReporter",
    "RunManifest",
    "RunRecord",
    "StackSampler",
    "Tracer",
    "collect_manifest",
    "configure_metrics",
    "counter",
    "current_sampler",
    "current_tracer",
    "default_ledger_path",
    "diff_snapshots",
    "disable_profiling",
    "disable_tracing",
    "enable_profiling",
    "enable_tracing",
    "gauge",
    "git_revision",
    "global_registry",
    "histogram",
    "is_enabled",
    "is_profiling",
    "ledger_enabled",
    "merge_snapshot",
    "metrics_snapshot",
    "open_ledger",
    "register_collector",
    "reset_metrics",
    "span",
    "top_functions",
    "tracing",
    "validate_manifest",
]
