"""Terminal progress reporting for long sweeps.

A :class:`ProgressReporter` is a plain callable ``reporter(done, total)``
— the shape :func:`repro.flows.sweep.parallel_map` accepts — that
renders a single self-overwriting status line with percentage, elapsed
time, throughput and an ETA extrapolated from the mean per-item rate so
far::

    sweep [===========>        ]  6/10  60%  1.5/s  elapsed 4.1s  eta 2.7s

It writes to stderr by default (stdout stays machine-readable) and
throttles redraws, so calling it per completed sweep point is free.
``done`` may jump by more than one between calls — the warm-pool
executor completes points in work-stealing batches — and must never
decrease; the reporter extrapolates from the running mean either way.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

__all__ = ["ProgressReporter", "format_duration"]


def format_duration(seconds: float) -> str:
    """Compact human duration: ``3.2s``, ``2m 14s``, ``1h 03m``."""
    if seconds < 0:
        seconds = 0.0
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m {secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h {minutes:02d}m"


class ProgressReporter:
    """Render ``done/total`` progress with an ETA on one terminal line."""

    def __init__(
        self,
        total: int | None = None,
        *,
        label: str = "progress",
        stream: TextIO | None = None,
        min_interval: float = 0.1,
        width: int = 20,
    ):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.width = width
        self._start = time.perf_counter()
        self._last_draw = 0.0
        self._finished = False
        self._done = 0
        self.note: str | None = None

    def __call__(self, done: int, total: int | None = None) -> None:
        """Record that *done* of *total* items have completed and redraw."""
        if total is not None:
            self.total = total
        self._done = done
        now = time.perf_counter()
        complete = self.total is not None and done >= self.total
        if not complete and now - self._last_draw < self.min_interval:
            return
        self._last_draw = now
        self._draw(done, now - self._start)
        if complete:
            self.finish()

    def set_note(self, note: str | None) -> None:
        """Attach (or clear) a warning note shown after the status line.

        The warm-pool stall detector uses this to surface a stuck worker
        on the live progress line without interleaving extra output.
        The redraw is immediate — a health warning must not wait for the
        next completed item.
        """
        self.note = note
        if not self._finished:
            self._draw(self._done, time.perf_counter() - self._start)

    def _draw(self, done: int, elapsed: float) -> None:
        total = self.total
        rate = done / elapsed if done and elapsed > 0 else 0.0
        rate_text = f"{rate:.1f}/s" if rate else "-/s"
        if total:
            fraction = min(1.0, done / total)
            filled = int(self.width * fraction)
            bar = "=" * filled + (">" if filled < self.width else "") \
                + " " * max(0, self.width - filled - 1)
            eta = (elapsed / done) * (total - done) if done else float("nan")
            eta_text = format_duration(eta) if done else "?"
            line = (
                f"{self.label} [{bar}] {done}/{total} {100 * fraction:3.0f}%  "
                f"{rate_text}  elapsed {format_duration(elapsed)}  eta {eta_text}"
            )
        else:
            line = (
                f"{self.label} {done} done  {rate_text}  "
                f"elapsed {format_duration(elapsed)}"
            )
        if self.note:
            line += f"  !! {self.note}"
        # Pad over any residue from a previously longer line (e.g. a
        # note that has just been cleared).
        pad = max(0, getattr(self, "_last_len", 0) - len(line))
        self._last_len = len(line)
        self.stream.write("\r" + line + " " * pad)
        self.stream.flush()

    def finish(self) -> None:
        """Terminate the status line (idempotent)."""
        if self._finished:
            return
        self._finished = True
        self.stream.write("\n")
        self.stream.flush()
