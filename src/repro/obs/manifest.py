"""Run manifests: self-describing records of one CLI/benchmark run.

A :class:`RunManifest` captures everything needed to interpret (and
rerun) a result file months later: the command and its parameters, the
seed, the git revision, interpreter/library versions, wall-clock
timings, and a metrics snapshot.  CLI commands write one via
``--manifest FILE`` (and embed one in ``--metrics-out`` files);
``benchmarks/bench_substrate_perf.py`` embeds one in
``BENCH_substrate.json`` so the perf numbers are self-describing.

The schema is intentionally flat JSON — see ``docs/observability.md``
for the field-by-field description and :func:`validate_manifest` for
the machine check used by tests and CI.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "collect_manifest",
    "git_revision",
    "validate_manifest",
]

MANIFEST_SCHEMA_VERSION = 1
"""Bump on any backwards-incompatible manifest layout change."""


def git_revision(cwd: str | os.PathLike | None = None) -> str | None:
    """The current git commit hash, or None outside a work tree.

    Honours ``REPRO_GIT_REV`` (useful in containers without git) before
    shelling out.
    """
    env_rev = os.environ.get("REPRO_GIT_REV")
    if env_rev:
        return env_rev
    if cwd is None:
        cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _numpy_version() -> str | None:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return None
    return numpy.__version__


@dataclass
class RunManifest:
    """One run's provenance record.

    Attributes:
        command: the subcommand or benchmark name (``sweep``,
            ``bench_substrate_perf``).
        argv: the raw argument vector, when the run came from a CLI.
        parameters: parsed parameters (flag values, benchmark knobs).
        seed: the run's RNG seed, when one exists.
        git_rev: commit hash of the source tree, when discoverable.
        repro_version: the package version.
        python_version / numpy_version / platform: environment record.
        started_at: ISO-8601 UTC start time.
        duration_seconds: wall-clock length of the run.
        exit_status: the command's return code (None while running).
        metrics: a metrics snapshot (see :mod:`repro.obs.metrics`).
        schema_version: manifest layout version.
    """

    command: str
    argv: list[str] = field(default_factory=list)
    parameters: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    git_rev: str | None = None
    repro_version: str | None = None
    python_version: str = ""
    numpy_version: str | None = None
    platform: str = ""
    started_at: str = ""
    duration_seconds: float | None = None
    exit_status: int | None = None
    metrics: dict[str, Any] = field(default_factory=dict)
    schema_version: int = MANIFEST_SCHEMA_VERSION

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict of every field."""
        return dataclasses.asdict(self)

    def write(self, path: str | os.PathLike) -> None:
        """Serialise to *path* as indented JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True,
                      default=str)
            handle.write("\n")


def collect_manifest(
    command: str,
    *,
    argv: list[str] | None = None,
    parameters: dict[str, Any] | None = None,
    seed: int | None = None,
) -> RunManifest:
    """A manifest pre-filled with everything knowable at run start.

    Callers stamp ``duration_seconds``, ``exit_status`` and ``metrics``
    when the run finishes (the CLI's ``ObsSession`` does this
    automatically).
    """
    from .. import __version__

    return RunManifest(
        command=command,
        argv=list(argv) if argv is not None else [],
        parameters=dict(parameters or {}),
        seed=seed,
        git_rev=git_revision(),
        repro_version=__version__,
        python_version=platform.python_version(),
        numpy_version=_numpy_version(),
        platform=platform.platform(),
        started_at=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    )


_REQUIRED_FIELDS = {
    "command": str,
    "parameters": dict,
    "python_version": str,
    "platform": str,
    "started_at": str,
    "metrics": dict,
    "schema_version": int,
}


def validate_manifest(data: Any) -> list[str]:
    """Schema-check a decoded manifest; returns a list of problems.

    An empty list means the manifest is valid.  Used by
    :mod:`repro.obs.validate` (and the CI smoke job) on files written by
    ``--manifest`` / ``--metrics-out``.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"manifest must be a JSON object, got {type(data).__name__}"]
    for name, kind in _REQUIRED_FIELDS.items():
        if name not in data:
            problems.append(f"missing required field {name!r}")
        elif not isinstance(data[name], kind):
            problems.append(
                f"field {name!r} must be {kind.__name__}, "
                f"got {type(data[name]).__name__}"
            )
    if data.get("schema_version") not in (None, MANIFEST_SCHEMA_VERSION):
        problems.append(
            f"unknown schema_version {data['schema_version']!r} "
            f"(this reader understands {MANIFEST_SCHEMA_VERSION})"
        )
    for name in ("duration_seconds",):
        value = data.get(name)
        if value is not None and not isinstance(value, (int, float)):
            problems.append(f"field {name!r} must be a number or null")
    metrics = data.get("metrics")
    if isinstance(metrics, dict):
        for metric_name, metric in metrics.items():
            if not isinstance(metric, dict) or "type" not in metric:
                problems.append(f"metric {metric_name!r} lacks a type")
            elif metric["type"] not in ("counter", "gauge", "histogram"):
                problems.append(
                    f"metric {metric_name!r} has unknown type {metric['type']!r}"
                )
    return problems
