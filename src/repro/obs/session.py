"""Per-run observability session: the glue between CLI flags and obs.

``ObsSession`` owns the lifetime of one command's observability: it
enables tracing when a ``--trace`` path was given, hands out progress
reporters for ``--progress``, and on exit writes the trace file, the
metrics document (``--metrics-out``: merged metrics plus an embedded
manifest) and the bare manifest (``--manifest``).  Files are written
even when the command raises, so a failed run still leaves its trace
behind.

Use as a context manager::

    session = ObsSession(command="sweep", argv=argv, parameters=params,
                         trace_path="out.jsonl", metrics_path="m.json")
    with session:
        session.exit_status = run()
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, TextIO

from .manifest import RunManifest, collect_manifest
from .metrics import diff_snapshots, metrics_snapshot
from .progress import ProgressReporter
from .trace import Tracer, disable_tracing, enable_tracing

__all__ = ["ObsSession"]


class ObsSession:
    """One command's tracing/metrics/manifest lifecycle."""

    def __init__(
        self,
        command: str,
        *,
        argv: list[str] | None = None,
        parameters: dict[str, Any] | None = None,
        seed: int | None = None,
        trace_path: str | None = None,
        metrics_path: str | None = None,
        manifest_path: str | None = None,
        progress: bool = False,
        stream: TextIO | None = None,
    ):
        self.command = command
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.manifest_path = manifest_path
        self.progress_enabled = progress
        self.stream = stream if stream is not None else sys.stderr
        self.exit_status: int | None = None
        self.tracer: Tracer | None = None
        self.manifest: RunManifest = collect_manifest(
            command, argv=argv, parameters=parameters, seed=seed
        )
        self._start = 0.0
        self._metrics_baseline: dict[str, Any] = {}
        self._reporters: list[ProgressReporter] = []

    @classmethod
    def from_args(cls, command: str, args: Any,
                  argv: list[str] | None = None) -> "ObsSession":
        """Build a session from a parsed ``argparse`` namespace.

        Reads the shared observability flags (``trace``, ``metrics_out``,
        ``manifest``, ``progress``) and records every other public
        parameter in the manifest.
        """
        parameters = {
            key: value
            for key, value in vars(args).items()
            if not key.startswith("_") and key not in ("func", "command")
            and not callable(value)
        }
        return cls(
            command,
            argv=argv if argv is not None else sys.argv[1:],
            parameters=parameters,
            seed=getattr(args, "seed", None),
            trace_path=getattr(args, "trace", None),
            metrics_path=getattr(args, "metrics_out", None),
            manifest_path=getattr(args, "manifest", None),
            progress=bool(getattr(args, "progress", False)),
        )

    # ------------------------------------------------------------- progress

    def progress_reporter(
        self, total: int | None = None, label: str | None = None
    ) -> ProgressReporter | None:
        """A progress callback, or None when ``--progress`` wasn't given."""
        if not self.progress_enabled:
            return None
        reporter = ProgressReporter(
            total, label=label or self.command, stream=self.stream
        )
        self._reporters.append(reporter)
        return reporter

    # ------------------------------------------------------------ lifecycle

    def __enter__(self) -> "ObsSession":
        self._start = time.perf_counter()
        # Baseline so the session reports only its own work, even when
        # the process-wide registry already holds activity from an
        # embedding host (e.g. a test process running many commands).
        self._metrics_baseline = metrics_snapshot()
        if self.trace_path:
            self.tracer = enable_tracing()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        if self.tracer is not None:
            disable_tracing()
        for reporter in self._reporters:
            reporter.finish()
        self.manifest.duration_seconds = time.perf_counter() - self._start
        if self.exit_status is None and exc_type is not None:
            self.exit_status = 1
        self.manifest.exit_status = self.exit_status
        self.manifest.metrics = diff_snapshots(
            metrics_snapshot(), self._metrics_baseline, keep_zero=True
        )
        self._write_outputs()
        return False

    def _write_outputs(self) -> None:
        if self.tracer is not None and self.trace_path:
            self.tracer.write(self.trace_path)
        if self.metrics_path:
            document = {
                "schema_version": self.manifest.schema_version,
                "generated_by": f"repro {self.command}",
                "metrics": self.manifest.metrics,
                "manifest": self.manifest.to_dict(),
            }
            with open(self.metrics_path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True,
                          default=str)
                handle.write("\n")
        if self.manifest_path:
            self.manifest.write(self.manifest_path)
