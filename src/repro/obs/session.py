"""Per-run observability session: the glue between CLI flags and obs.

``ObsSession`` owns the lifetime of one command's observability: it
enables tracing when a ``--trace`` path was given, starts the sampling
profiler for ``--profile``, hands out progress reporters for
``--progress``, and on exit writes the trace file, the metrics document
(``--metrics-out``: merged metrics plus an embedded manifest), the bare
manifest (``--manifest``), the folded profile — and appends one row to
the telemetry ledger (:mod:`repro.obs.store`) so the run stays
queryable and comparable after its artefact files are gone.

Interrupted runs still leave telemetry: the session registers a
SIGTERM handler and an ``atexit`` hook that flush whatever has been
collected so far, marking the ledger row ``interrupted``.  A normal
exit finalises (replaces) that row, so at most one row per session ever
exists.

Use as a context manager::

    session = ObsSession(command="sweep", argv=argv, parameters=params,
                         trace_path="out.jsonl", metrics_path="m.json")
    with session:
        session.exit_status = run()
        session.record_quality(points)
"""

from __future__ import annotations

import atexit
import json
import signal
import sys
import time
from typing import Any, TextIO

from .manifest import RunManifest, collect_manifest
from .metrics import diff_snapshots, metrics_snapshot
from .profile import StackSampler, disable_profiling, enable_profiling
from .progress import ProgressReporter
from .store import open_ledger
from .trace import Tracer, disable_tracing, enable_tracing

__all__ = ["ObsSession", "stage_timings_from_metrics"]


def stage_timings_from_metrics(metrics: dict[str, Any]) -> dict[str, Any]:
    """``{stage: {"seconds": s, "runs": n}}`` from a metrics snapshot.

    The pipeline records per-stage wall time under
    ``pipeline.stage_seconds.<name>`` / ``pipeline.stage_runs.<name>``
    counters (see :mod:`repro.pipeline.pipeline`); this folds them into
    the ledger's ``stage_timings`` column shape.
    """
    timings: dict[str, dict[str, Any]] = {}
    for name, metric in metrics.items():
        if name.startswith("pipeline.stage_seconds."):
            stage = name[len("pipeline.stage_seconds."):]
            timings.setdefault(stage, {})["seconds"] = metric.get("value", 0.0)
        elif name.startswith("pipeline.stage_runs."):
            stage = name[len("pipeline.stage_runs."):]
            timings.setdefault(stage, {})["runs"] = metric.get("value", 0)
    return timings


class ObsSession:
    """One command's tracing/metrics/manifest/profile/ledger lifecycle."""

    def __init__(
        self,
        command: str,
        *,
        argv: list[str] | None = None,
        parameters: dict[str, Any] | None = None,
        seed: int | None = None,
        trace_path: str | None = None,
        metrics_path: str | None = None,
        manifest_path: str | None = None,
        profile_path: str | None = None,
        progress: bool = False,
        stream: TextIO | None = None,
        ledger: bool = True,
    ):
        self.command = command
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.manifest_path = manifest_path
        self.profile_path = profile_path
        self.progress_enabled = progress
        self.ledger_enabled = ledger
        self.stream = stream if stream is not None else sys.stderr
        self.exit_status: int | None = None
        self.tracer: Tracer | None = None
        self.sampler: StackSampler | None = None
        self.manifest: RunManifest = collect_manifest(
            command, argv=argv, parameters=parameters, seed=seed
        )
        self.quality: list[dict[str, Any]] = []
        self.extra: dict[str, Any] | None = None
        self.run_id: str | None = None
        self._start = 0.0
        self._metrics_baseline: dict[str, Any] = {}
        self._reporters: list[ProgressReporter] = []
        self._finalized = False
        self._prev_sigterm: Any = None

    @classmethod
    def from_args(cls, command: str, args: Any,
                  argv: list[str] | None = None) -> "ObsSession":
        """Build a session from a parsed ``argparse`` namespace.

        Reads the shared observability flags (``trace``, ``metrics_out``,
        ``manifest``, ``profile``, ``progress``) and records every other
        public parameter in the manifest.
        """
        parameters = {
            key: value
            for key, value in vars(args).items()
            if not key.startswith("_") and key not in ("func", "command")
            and not callable(value)
        }
        return cls(
            command,
            argv=argv if argv is not None else sys.argv[1:],
            parameters=parameters,
            seed=getattr(args, "seed", None),
            trace_path=getattr(args, "trace", None),
            metrics_path=getattr(args, "metrics_out", None),
            manifest_path=getattr(args, "manifest", None),
            profile_path=getattr(args, "profile", None),
            progress=bool(getattr(args, "progress", False)),
        )

    # ------------------------------------------------------------- progress

    def progress_reporter(
        self, total: int | None = None, label: str | None = None
    ) -> ProgressReporter | None:
        """A progress callback, or None when ``--progress`` wasn't given."""
        if not self.progress_enabled:
            return None
        reporter = ProgressReporter(
            total, label=label or self.command, stream=self.stream
        )
        self._reporters.append(reporter)
        return reporter

    # -------------------------------------------------------------- quality

    def record_quality(self, points: Any) -> None:
        """Record result-quality figures for the ledger.

        Accepts a list of dicts (or objects with ``to_dict``), each one
        measured implementation: benchmark, policy, parameter,
        error_rate, area, literals, ... — the figures ``repro obs
        compare/regressions`` diff across runs.
        """
        import dataclasses

        for point in points:
            if hasattr(point, "to_dict"):
                point = point.to_dict()
            elif dataclasses.is_dataclass(point) and not isinstance(point, type):
                point = dataclasses.asdict(point)
            self.quality.append(dict(point))

    # ------------------------------------------------------------ lifecycle

    def __enter__(self) -> "ObsSession":
        self._start = time.perf_counter()
        # Baseline so the session reports only its own work, even when
        # the process-wide registry already holds activity from an
        # embedding host (e.g. a test process running many commands).
        self._metrics_baseline = metrics_snapshot()
        if self.trace_path:
            self.tracer = enable_tracing()
        if self.profile_path:
            self.sampler = enable_profiling()
        self._install_flush_hooks()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self._remove_flush_hooks()
        if self.tracer is not None:
            disable_tracing()
        if self.sampler is not None:
            disable_profiling()
        for reporter in self._reporters:
            reporter.finish()
        if self.exit_status is None and exc_type is not None:
            self.exit_status = 1
        self._collect()
        self._write_outputs()
        self._record_ledger(interrupted=False)
        self._finalized = True
        return False

    # ---------------------------------------------------- interrupted runs

    def _install_flush_hooks(self) -> None:
        """Flush partial telemetry on SIGTERM or interpreter exit.

        A killed sweep then still leaves its trace/metrics/manifest and
        an ``interrupted`` ledger row behind instead of nothing.  The
        SIGTERM handler re-raises the signal with the previous handler
        restored, so the process still dies with the conventional
        128+15 status.
        """
        atexit.register(self._flush_partial)
        try:
            self._prev_sigterm = signal.signal(
                signal.SIGTERM, self._on_sigterm
            )
        except (ValueError, OSError):  # non-main thread / exotic platform
            self._prev_sigterm = None

    def _remove_flush_hooks(self) -> None:
        atexit.unregister(self._flush_partial)
        if self._prev_sigterm is not None:
            try:
                signal.signal(signal.SIGTERM, self._prev_sigterm)
            except (ValueError, OSError):
                pass
            self._prev_sigterm = None

    def _on_sigterm(self, signum: int, frame: Any) -> None:
        self._flush_partial()
        previous = self._prev_sigterm
        try:
            signal.signal(
                signal.SIGTERM,
                previous if previous is not None else signal.SIG_DFL,
            )
        except (ValueError, OSError):
            pass
        signal.raise_signal(signal.SIGTERM)

    def _flush_partial(self) -> None:
        """Write whatever telemetry exists right now (idempotent-safe)."""
        if self._finalized:
            return
        self._collect()
        try:
            self._write_outputs()
        except Exception:  # noqa: BLE001 - dying process, best effort
            pass
        self._record_ledger(interrupted=True)

    # ------------------------------------------------------------- writing

    def _collect(self) -> None:
        """Fold the current state into the manifest (safe to re-run)."""
        self.manifest.duration_seconds = time.perf_counter() - self._start
        self.manifest.exit_status = self.exit_status
        self.manifest.metrics = diff_snapshots(
            metrics_snapshot(), self._metrics_baseline, keep_zero=True
        )

    def _profile_payload(self) -> dict[str, Any] | None:
        if self.sampler is None:
            return None
        payload = self.sampler.summary()
        if self.profile_path:
            payload["folded_path"] = str(self.profile_path)
        return payload

    def _worker_health_payload(self) -> dict[str, Any] | None:
        try:
            from ..perf.pool import health_snapshot

            return health_snapshot()
        except Exception:  # noqa: BLE001 - telemetry must not fail the run
            return None

    def _record_ledger(self, *, interrupted: bool) -> None:
        """Append (or finalise) this run's ledger row; never raises."""
        if not self.ledger_enabled:
            return
        try:
            store = open_ledger()
            if store is None:
                return
            with store:
                self.run_id = store.record_run(
                    command=self.command,
                    manifest=self.manifest.to_dict(),
                    metrics=self.manifest.metrics,
                    stage_timings=stage_timings_from_metrics(
                        self.manifest.metrics
                    ),
                    quality=self.quality,
                    profile=self._profile_payload(),
                    worker_health=self._worker_health_payload(),
                    extra=self.extra,
                    duration_seconds=self.manifest.duration_seconds,
                    exit_status=self.exit_status,
                    interrupted=interrupted,
                    git_rev=self.manifest.git_rev,
                    run_id=self.run_id,
                )
        except Exception:  # noqa: BLE001 - telemetry must not fail the run
            pass

    def _write_outputs(self) -> None:
        if self.tracer is not None and self.trace_path:
            self.tracer.write(self.trace_path)
        if self.sampler is not None and self.profile_path:
            self.sampler.write_folded(self.profile_path)
        if self.metrics_path:
            document = {
                "schema_version": self.manifest.schema_version,
                "generated_by": f"repro {self.command}",
                "metrics": self.manifest.metrics,
                "manifest": self.manifest.to_dict(),
            }
            with open(self.metrics_path, "w", encoding="utf-8") as handle:
                json.dump(document, handle, indent=2, sort_keys=True,
                          default=str)
                handle.write("\n")
        if self.manifest_path:
            self.manifest.write(self.manifest_path)
