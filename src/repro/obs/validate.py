"""Schema validation for observability artefacts.

Checks the three file kinds the CLI and benchmarks emit — JSONL /
Chrome traces (``--trace``), metrics documents (``--metrics-out``) and
run manifests (``--manifest``) — and reports every problem found.
Runnable as a module, which is what the CI smoke job does::

    python -m repro.obs.validate /tmp/t.jsonl /tmp/m.json

Exit status 0 means every file validated; 1 means problems (listed on
stderr); 2 means a file could not be read or decoded at all.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any

from .manifest import validate_manifest

__all__ = [
    "validate_file",
    "validate_metrics_document",
    "validate_trace_events",
    "validate_trace_jsonl",
]

_EVENT_PHASES = {"X", "M", "B", "E", "i", "C"}


def _check_event(event: Any, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(event, dict):
        return [f"{where}: event must be an object, got {type(event).__name__}"]
    if not isinstance(event.get("name"), str):
        problems.append(f"{where}: missing string 'name'")
    phase = event.get("ph")
    if phase not in _EVENT_PHASES:
        problems.append(f"{where}: 'ph' must be one of {sorted(_EVENT_PHASES)}")
    if phase == "X":
        for key in ("ts", "dur"):
            if not isinstance(event.get(key), (int, float)):
                problems.append(f"{where}: complete event needs numeric {key!r}")
    for key in ("pid", "tid"):
        if key in event and not isinstance(event[key], int):
            problems.append(f"{where}: {key!r} must be an integer")
    if "args" in event and not isinstance(event["args"], dict):
        problems.append(f"{where}: 'args' must be an object")
    return problems


def validate_trace_events(events: Any, source: str = "trace") -> list[str]:
    """Check a list of Chrome ``trace_event`` objects."""
    if not isinstance(events, list):
        return [f"{source}: traceEvents must be a list"]
    problems: list[str] = []
    if not events:
        problems.append(f"{source}: trace contains no events")
    for index, event in enumerate(events):
        problems.extend(_check_event(event, f"{source}: event {index}"))
    return problems


def validate_trace_jsonl(path: str | Path) -> list[str]:
    """Check a JSONL trace file line by line."""
    problems: list[str] = []
    events = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"{path}: line {lineno}: invalid JSON ({exc})")
                continue
            events += 1
            problems.extend(_check_event(event, f"{path}: line {lineno}"))
    if events == 0:
        problems.append(f"{path}: trace contains no events")
    return problems


def validate_metrics_document(data: Any, source: str = "metrics") -> list[str]:
    """Check a ``--metrics-out`` document (metrics + embedded manifest)."""
    if not isinstance(data, dict):
        return [f"{source}: document must be a JSON object"]
    problems: list[str] = []
    metrics = data.get("metrics")
    if not isinstance(metrics, dict):
        problems.append(f"{source}: missing 'metrics' object")
    else:
        for name, metric in metrics.items():
            if not isinstance(metric, dict) or metric.get("type") not in (
                "counter", "gauge", "histogram",
            ):
                problems.append(f"{source}: metric {name!r} malformed")
    manifest = data.get("manifest")
    if manifest is None:
        problems.append(f"{source}: missing embedded 'manifest'")
    else:
        problems.extend(
            f"{source}: manifest: {problem}"
            for problem in validate_manifest(manifest)
        )
    return problems


def validate_file(path: str | Path) -> list[str]:
    """Validate one artefact, inferring its kind from content/extension.

    ``.jsonl`` files are traces; ``.json`` files are classified by their
    top-level keys (``traceEvents`` → Chrome trace, ``metrics`` →
    metrics document, ``command`` → bare manifest).
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        return validate_trace_jsonl(path)
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict) and "traceEvents" in data:
        return validate_trace_events(data["traceEvents"], str(path))
    if isinstance(data, dict) and "metrics" in data and "command" not in data:
        return validate_metrics_document(data, str(path))
    problems = validate_manifest(data)
    return [f"{path}: {problem}" for problem in problems]


def main(argv: list[str] | None = None) -> int:
    """Validate every path given; print problems; return an exit status."""
    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: python -m repro.obs.validate FILE [FILE ...]",
              file=sys.stderr)
        return 2
    status = 0
    for path in paths:
        try:
            problems = validate_file(path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            status = 2
            continue
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            status = max(status, 1)
        else:
            print(f"{path}: ok")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
