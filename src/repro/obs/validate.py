"""Schema validation for observability artefacts.

Checks every file kind the CLI and benchmarks emit — JSONL / Chrome
traces (``--trace``), metrics documents (``--metrics-out``), run
manifests (``--manifest``), the telemetry ledger
(``.repro/ledger.sqlite``) and its JSONL export — and reports every
problem found.  Runnable as a module, which is what the CI smoke job
does::

    python -m repro.obs.validate /tmp/t.jsonl /tmp/m.json .repro/ledger.sqlite

Exit status 0 means every file validated; 1 means problems (listed on
stderr); 2 means a file could not be read or decoded at all.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any

from .manifest import validate_manifest

__all__ = [
    "validate_file",
    "validate_ledger",
    "validate_metrics_document",
    "validate_pool_metrics",
    "validate_run_record",
    "validate_trace_events",
    "validate_trace_jsonl",
]

_EVENT_PHASES = {"X", "M", "B", "E", "i", "C"}


def _check_event(event: Any, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(event, dict):
        return [f"{where}: event must be an object, got {type(event).__name__}"]
    if not isinstance(event.get("name"), str):
        problems.append(f"{where}: missing string 'name'")
    phase = event.get("ph")
    if phase not in _EVENT_PHASES:
        problems.append(f"{where}: 'ph' must be one of {sorted(_EVENT_PHASES)}")
    if phase == "X":
        for key in ("ts", "dur"):
            if not isinstance(event.get(key), (int, float)):
                problems.append(f"{where}: complete event needs numeric {key!r}")
    for key in ("pid", "tid"):
        if key in event and not isinstance(event[key], int):
            problems.append(f"{where}: {key!r} must be an integer")
    if "args" in event and not isinstance(event["args"], dict):
        problems.append(f"{where}: 'args' must be an object")
    return problems


def validate_trace_events(events: Any, source: str = "trace") -> list[str]:
    """Check a list of Chrome ``trace_event`` objects."""
    if not isinstance(events, list):
        return [f"{source}: traceEvents must be a list"]
    problems: list[str] = []
    if not events:
        problems.append(f"{source}: trace contains no events")
    for index, event in enumerate(events):
        problems.extend(_check_event(event, f"{source}: event {index}"))
    return problems


def validate_trace_jsonl(path: str | Path) -> list[str]:
    """Check a JSONL trace file line by line."""
    problems: list[str] = []
    events = 0
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"{path}: line {lineno}: invalid JSON ({exc})")
                continue
            events += 1
            problems.extend(_check_event(event, f"{path}: line {lineno}"))
    if events == 0:
        problems.append(f"{path}: trace contains no events")
    return problems


_POOL_GAUGES = {"pool.workers", "pool.workers_stalled"}
"""``pool.*`` instruments that must be gauges (point-in-time values)."""

_POOL_WORKER_SUFFIXES = {"rss_bytes", "tasks_done", "last_seen"}
"""The per-worker health gauges: ``pool.worker.<pid>.<suffix>``."""


def validate_pool_metrics(metrics: Any, source: str = "metrics") -> list[str]:
    """Check the ``pool.*`` / ``pool.worker.*`` metric name schema.

    Per-worker health gauges must be ``pool.worker.<pid>.<suffix>``
    with a numeric pid and a known suffix; the fleet-level gauges are
    enumerated in :data:`_POOL_GAUGES`; every other ``pool.*``
    instrument is a counter or histogram.
    """
    if not isinstance(metrics, dict):
        return []
    problems: list[str] = []
    for name, metric in metrics.items():
        if not name.startswith("pool.") or not isinstance(metric, dict):
            continue
        mtype = metric.get("type")
        if name.startswith("pool.worker."):
            pid, _, suffix = name[len("pool.worker."):].partition(".")
            if not pid.isdigit() or suffix not in _POOL_WORKER_SUFFIXES:
                problems.append(
                    f"{source}: {name!r} is not a known worker gauge "
                    f"(pool.worker.<pid>.<{'|'.join(sorted(_POOL_WORKER_SUFFIXES))}>)"
                )
            elif mtype != "gauge":
                problems.append(
                    f"{source}: {name!r} must be a gauge, got {mtype!r}"
                )
            elif not isinstance(metric.get("value"), (int, float)):
                problems.append(f"{source}: {name!r} needs a numeric value")
        elif name in _POOL_GAUGES:
            if mtype != "gauge":
                problems.append(
                    f"{source}: {name!r} must be a gauge, got {mtype!r}"
                )
        elif mtype not in ("counter", "histogram"):
            problems.append(
                f"{source}: {name!r} must be a counter or histogram, "
                f"got {mtype!r}"
            )
    return problems


def validate_metrics_document(data: Any, source: str = "metrics") -> list[str]:
    """Check a ``--metrics-out`` document (metrics + embedded manifest)."""
    if not isinstance(data, dict):
        return [f"{source}: document must be a JSON object"]
    problems: list[str] = []
    metrics = data.get("metrics")
    if not isinstance(metrics, dict):
        problems.append(f"{source}: missing 'metrics' object")
    else:
        for name, metric in metrics.items():
            if not isinstance(metric, dict) or metric.get("type") not in (
                "counter", "gauge", "histogram",
            ):
                problems.append(f"{source}: metric {name!r} malformed")
        problems.extend(validate_pool_metrics(metrics, source))
    manifest = data.get("manifest")
    if manifest is None:
        problems.append(f"{source}: missing embedded 'manifest'")
    else:
        problems.extend(
            f"{source}: manifest: {problem}"
            for problem in validate_manifest(manifest)
        )
    return problems


def validate_run_record(data: Any, source: str = "ledger row") -> list[str]:
    """Check one telemetry-ledger run record (decoded row or JSONL line)."""
    from .store import LEDGER_SCHEMA_VERSION

    if not isinstance(data, dict):
        return [f"{source}: record must be a JSON object"]
    problems: list[str] = []
    for name, kind in (("run_id", str), ("command", str)):
        if not isinstance(data.get(name), kind):
            problems.append(f"{source}: missing {kind.__name__} {name!r}")
    version = data.get("schema_version")
    if version not in (None, LEDGER_SCHEMA_VERSION):
        problems.append(
            f"{source}: unknown schema_version {version!r} "
            f"(this reader understands {LEDGER_SCHEMA_VERSION})"
        )
    for name, kind in (
        ("manifest", dict), ("metrics", dict), ("stage_timings", dict),
        ("quality", list),
    ):
        value = data.get(name)
        if value is not None and not isinstance(value, kind):
            problems.append(
                f"{source}: field {name!r} must be {kind.__name__}, "
                f"got {type(value).__name__}"
            )
    duration = data.get("duration_seconds")
    if duration is not None and (
        not isinstance(duration, (int, float)) or duration < 0
    ):
        problems.append(f"{source}: duration_seconds must be non-negative")
    metrics = data.get("metrics")
    if isinstance(metrics, dict):
        problems.extend(validate_pool_metrics(metrics, source))
    return problems


def validate_ledger(path: str | Path) -> list[str]:
    """Check a telemetry-ledger SQLite file, read-only.

    Unlike :class:`~repro.obs.store.LedgerStore` this never recovers
    (moves aside) a damaged file — validation must not modify what it
    inspects.  An unreadable database or row is reported as a problem.
    """
    import sqlite3

    from .store import _COLUMNS, _JSON_COLUMNS

    path = Path(path)
    problems: list[str] = []
    try:
        conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True, timeout=10.0)
    except sqlite3.Error as exc:
        return [f"{path}: cannot open ledger ({exc})"]
    try:
        try:
            rows = conn.execute(
                f"SELECT {', '.join(_COLUMNS)} FROM runs"
            ).fetchall()
        except sqlite3.DatabaseError as exc:
            return [f"{path}: unreadable ledger ({exc})"]
        for row in rows:
            data = dict(zip(_COLUMNS, row))
            where = f"{path}: run {data.get('id')!r}"
            record: dict[str, Any] = {
                "run_id": data["id"],
                "command": data["command"],
                "schema_version": data["schema_version"],
                "duration_seconds": data["duration_seconds"],
            }
            corrupt = False
            for name in _JSON_COLUMNS:
                blob = data[name]
                if blob is None:
                    continue
                try:
                    record[name] = json.loads(blob)
                except (json.JSONDecodeError, TypeError):
                    problems.append(f"{where}: corrupt JSON in {name!r}")
                    corrupt = True
            if not corrupt:
                problems.extend(validate_run_record(record, where))
    finally:
        conn.close()
    return problems


def _looks_like_run_record(line: str) -> bool:
    try:
        data = json.loads(line)
    except json.JSONDecodeError:
        return False
    return isinstance(data, dict) and "run_id" in data


def _validate_ledger_jsonl(path: Path) -> list[str]:
    problems: list[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}: line {lineno}"
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"{where}: invalid JSON ({exc})")
                continue
            problems.extend(validate_run_record(data, where))
    return problems


def validate_file(path: str | Path) -> list[str]:
    """Validate one artefact, inferring its kind from content/extension.

    ``.sqlite``/``.db`` files are telemetry ledgers.  ``.jsonl`` files
    are ledger exports when their lines carry ``run_id``, traces
    otherwise.  ``.json`` files are classified by their top-level keys
    (``traceEvents`` → Chrome trace, ``metrics`` → metrics document,
    ``command`` → bare manifest).
    """
    path = Path(path)
    if path.suffix in (".sqlite", ".db"):
        return validate_ledger(path)
    if path.suffix == ".jsonl":
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    if _looks_like_run_record(line):
                        return _validate_ledger_jsonl(path)
                    break
        return validate_trace_jsonl(path)
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict) and "traceEvents" in data:
        return validate_trace_events(data["traceEvents"], str(path))
    if isinstance(data, dict) and "metrics" in data and "command" not in data:
        return validate_metrics_document(data, str(path))
    problems = validate_manifest(data)
    return [f"{path}: {problem}" for problem in problems]


def main(argv: list[str] | None = None) -> int:
    """Validate every path given; print problems; return an exit status."""
    paths = argv if argv is not None else sys.argv[1:]
    if not paths:
        print("usage: python -m repro.obs.validate FILE [FILE ...]",
              file=sys.stderr)
        return 2
    status = 0
    for path in paths:
        try:
            problems = validate_file(path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            status = 2
            continue
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            status = max(status, 1)
        else:
            print(f"{path}: ok")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
