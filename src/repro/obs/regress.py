"""Cross-run comparison: metric + quality diffs and regression gates.

Works over :class:`~repro.obs.store.RunRecord` rows from the telemetry
ledger.  :func:`compare_runs` produces a structured diff between a
baseline and a candidate run — wall clock, selected performance
counters, and the per-policy-point quality figures (error rate, area,
literals, ...) the paper's tables are built from.  Each differing value
is judged against a tolerance, and anything that *worsened* beyond it
becomes a named regression, so ``repro obs regressions`` (and the CI
``obs-regression-gate`` job) can fail with a message like
``quality error_rate [bench ranking 0.5 power]: 0.0123 -> 0.0456``
instead of a bare exit code.

Directionality: every compared figure here is lower-is-better (wall
seconds, error rate, area, delay, power, gates, literals), so only
increases count as regressions; improvements are reported in the diff
but never fail the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .store import RunRecord

__all__ = [
    "DEFAULT_QUALITY_TOLERANCE",
    "DEFAULT_STAGE_TOLERANCE",
    "DEFAULT_WALL_TOLERANCE",
    "Comparison",
    "Regression",
    "compare_runs",
    "format_comparison",
    "quality_key",
]

DEFAULT_WALL_TOLERANCE = 0.15
"""Relative wall-clock slack: a candidate may be up to 15% slower than
the baseline before the gate fails — below the ≥20% drift the gate is
specified to catch, above machine-to-machine noise on the short
benchmark runs CI compares."""

DEFAULT_STAGE_TOLERANCE = 0.30
"""Relative slack on per-stage wall time.  Individual stages are
shorter than whole runs, so their timings are proportionally noisier;
30% catches a stage that genuinely doubled (e.g. the ``complete_dc``
SAT stage losing its batching) without tripping on scheduler jitter."""

DEFAULT_QUALITY_TOLERANCE = 1e-6
"""Relative slack on quality figures.  Synthesis results are
deterministic for a fixed seed, so any measurable worsening of error
rate / area / literals is a real regression; the epsilon only absorbs
float-serialisation jitter."""

MIN_WALL_SECONDS = 0.05
"""Runs faster than this are not wall-compared: at sub-50ms scale the
interpreter's own noise floor exceeds any honest tolerance."""

QUALITY_FIELDS = (
    "error_rate", "area", "delay", "power", "gates", "literals",
)
"""Per-point figures compared between runs — all lower-is-better."""


@dataclass
class Regression:
    """One figure that worsened beyond its tolerance."""

    kind: str  # "wall" | "stage" | "quality" | "missing"
    name: str
    baseline: float | None
    candidate: float | None
    tolerance: float

    @property
    def ratio(self) -> float | None:
        if self.baseline and self.candidate is not None:
            return self.candidate / self.baseline
        return None

    def describe(self) -> str:
        if self.kind == "missing":
            return f"missing {self.name}: present in baseline, absent in candidate"
        ratio = self.ratio
        ratio_text = f" ({ratio:.2f}x)" if ratio is not None else ""
        return (
            f"{self.kind} {self.name}: {self.baseline:.6g} -> "
            f"{self.candidate:.6g}{ratio_text} exceeds tolerance "
            f"{self.tolerance:.0%}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "ratio": self.ratio,
            "tolerance": self.tolerance,
        }


@dataclass
class Comparison:
    """The full diff between a baseline and a candidate run."""

    baseline_id: str
    candidate_id: str
    wall: dict[str, Any] = field(default_factory=dict)
    stages: dict[str, Any] = field(default_factory=dict)
    quality: list[dict[str, Any]] = field(default_factory=list)
    regressions: list[Regression] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        return {
            "baseline": self.baseline_id,
            "candidate": self.candidate_id,
            "ok": self.ok,
            "wall": self.wall,
            "stages": self.stages,
            "quality": self.quality,
            "regressions": [r.to_dict() for r in self.regressions],
        }


def quality_key(point: dict[str, Any]) -> tuple:
    """The identity of one quality point across runs.

    Two runs' points are comparable when they measured the same
    benchmark with the same policy at the same parameter for the same
    objective — the row key of the paper's tables.
    """
    return (
        point.get("benchmark"),
        point.get("policy"),
        point.get("parameter"),
        point.get("objective"),
    )


def _worsened(baseline: float, candidate: float, tolerance: float) -> bool:
    """True when *candidate* exceeds *baseline* beyond the relative
    *tolerance* (with a tiny absolute epsilon for zero baselines)."""
    allowed = baseline * (1.0 + tolerance) + 1e-12
    return candidate > allowed


def compare_runs(
    baseline: RunRecord,
    candidate: RunRecord,
    *,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    quality_tolerance: float = DEFAULT_QUALITY_TOLERANCE,
    stage_tolerance: float = DEFAULT_STAGE_TOLERANCE,
) -> Comparison:
    """Diff two ledger rows; collect tolerance-exceeding regressions.

    Wall clock is compared when both runs recorded a duration above
    :data:`MIN_WALL_SECONDS`.  Pipeline stage timings (e.g. the
    ``complete_dc`` SAT stage) are compared per stage for stages both
    runs executed, each against *stage_tolerance* with the same noise
    floor.  Quality points are matched by :func:`quality_key`; a point
    the baseline measured that the candidate did not is itself a
    regression (coverage must not shrink silently), while extra
    candidate points are ignored.
    """
    comparison = Comparison(
        baseline_id=baseline.run_id, candidate_id=candidate.run_id
    )

    base_wall = baseline.duration_seconds
    cand_wall = candidate.duration_seconds
    if base_wall is not None and cand_wall is not None:
        comparison.wall = {
            "baseline_seconds": base_wall,
            "candidate_seconds": cand_wall,
            "ratio": (cand_wall / base_wall) if base_wall else None,
            "tolerance": wall_tolerance,
        }
        if base_wall >= MIN_WALL_SECONDS and _worsened(
            base_wall, cand_wall, wall_tolerance
        ):
            comparison.regressions.append(Regression(
                kind="wall",
                name="duration_seconds",
                baseline=base_wall,
                candidate=cand_wall,
                tolerance=wall_tolerance,
            ))

    for stage, base_timing in sorted(baseline.stage_timings.items()):
        cand_timing = candidate.stage_timings.get(stage)
        if cand_timing is None:
            continue  # candidate did not run the stage — nothing to compare
        base_seconds = base_timing.get("seconds")
        cand_seconds = cand_timing.get("seconds")
        if base_seconds is None or cand_seconds is None:
            continue
        base_seconds = float(base_seconds)
        cand_seconds = float(cand_seconds)
        comparison.stages[stage] = {
            "baseline_seconds": base_seconds,
            "candidate_seconds": cand_seconds,
            "ratio": (cand_seconds / base_seconds) if base_seconds else None,
            "tolerance": stage_tolerance,
        }
        if base_seconds >= MIN_WALL_SECONDS and _worsened(
            base_seconds, cand_seconds, stage_tolerance
        ):
            comparison.regressions.append(Regression(
                kind="stage",
                name=f"stage_seconds [{stage}]",
                baseline=base_seconds,
                candidate=cand_seconds,
                tolerance=stage_tolerance,
            ))

    candidate_points = {quality_key(p): p for p in candidate.quality}
    for base_point in baseline.quality:
        key = quality_key(base_point)
        label = " ".join(str(part) for part in key)
        cand_point = candidate_points.get(key)
        if cand_point is None:
            comparison.regressions.append(Regression(
                kind="missing",
                name=f"quality point [{label}]",
                baseline=None,
                candidate=None,
                tolerance=quality_tolerance,
            ))
            continue
        entry: dict[str, Any] = {"key": list(key)}
        for fld in QUALITY_FIELDS:
            base_value = base_point.get(fld)
            cand_value = cand_point.get(fld)
            if base_value is None or cand_value is None:
                continue
            base_value = float(base_value)
            cand_value = float(cand_value)
            entry[fld] = {
                "baseline": base_value,
                "candidate": cand_value,
                "delta": cand_value - base_value,
            }
            if _worsened(base_value, cand_value, quality_tolerance):
                comparison.regressions.append(Regression(
                    kind="quality",
                    name=f"{fld} [{label}]",
                    baseline=base_value,
                    candidate=cand_value,
                    tolerance=quality_tolerance,
                ))
        comparison.quality.append(entry)
    return comparison


def format_comparison(comparison: Comparison) -> str:
    """A human-readable multi-line rendering of a :class:`Comparison`."""
    lines = [
        f"baseline  {comparison.baseline_id}",
        f"candidate {comparison.candidate_id}",
    ]
    wall = comparison.wall
    if wall:
        ratio = wall.get("ratio")
        ratio_text = f" ({ratio:.2f}x)" if ratio else ""
        lines.append(
            f"wall: {wall['baseline_seconds']:.3f}s -> "
            f"{wall['candidate_seconds']:.3f}s{ratio_text}"
        )
    for stage, cell in comparison.stages.items():
        ratio = cell.get("ratio")
        ratio_text = f" ({ratio:.2f}x)" if ratio else ""
        lines.append(
            f"stage {stage}: {cell['baseline_seconds']:.3f}s -> "
            f"{cell['candidate_seconds']:.3f}s{ratio_text}"
        )
    changed = 0
    for entry in comparison.quality:
        for fld in QUALITY_FIELDS:
            cell = entry.get(fld)
            if cell and cell["delta"]:
                changed += 1
    lines.append(
        f"quality: {len(comparison.quality)} matched point(s), "
        f"{changed} changed figure(s)"
    )
    if comparison.regressions:
        lines.append(f"REGRESSIONS ({len(comparison.regressions)}):")
        for regression in comparison.regressions:
            lines.append(f"  - {regression.describe()}")
    else:
        lines.append("no regressions beyond tolerance")
    return "\n".join(lines)
