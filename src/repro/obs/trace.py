"""Tracing spans: nestable timed sections with attributes.

A *span* is one timed section of work — an ESPRESSO pass, a mapping run,
one sweep point — with a name, key/value attributes, and parent/child
structure.  Spans nest lexically::

    from repro.obs import span

    with span("espresso", cubes_in=cover.num_cubes) as sp:
        with span("espresso.expand", cubes=cover.num_cubes):
            ...
        sp.set(cubes_out=result.num_cubes)

Tracing is **off by default** and the disabled path is a single module
attribute read plus the construction of the keyword dict — the
instrumented hot paths stay within the performance budget asserted by
``tests/obs/test_overhead.py``.  Enable it per run with
:func:`enable_tracing` / :func:`disable_tracing` or the :func:`tracing`
context manager; the CLI's ``--trace FILE`` flag does this for you.

Every finished span becomes one record in the active :class:`Tracer`'s
buffer.  Records use the Chrome ``trace_event`` "complete event" layout
(``ph="X"``, microsecond ``ts``/``dur``) directly, so exporting is a
serialisation choice, not a transformation:

* :meth:`Tracer.export_jsonl` — one event object per line (the format
  validated by :mod:`repro.obs.validate` and produced by ``--trace
  foo.jsonl``);
* :meth:`Tracer.chrome_trace` / :meth:`Tracer.write` with a ``.json``
  path — the ``{"traceEvents": [...]}`` object format loadable directly
  in Perfetto or ``chrome://tracing``.

Cross-process traces: workers snapshot their records
(:meth:`Tracer.snapshot`) and the parent merges them with
:meth:`Tracer.ingest`.  Timestamps are wall-clock microseconds since the
Unix epoch, so spans from different processes land on one shared
timeline; durations are measured with the monotonic clock.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Iterator

__all__ = [
    "NULL_SPAN",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "current_tracer",
    "is_enabled",
    "span",
    "tracing",
]

TRACE_SCHEMA_VERSION = 1
"""Version tag stamped on exported traces (bump on layout changes)."""


class _NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        """Ignore attributes (tracing is off)."""
        return self


NULL_SPAN = _NullSpan()
"""Singleton returned by :func:`span` while tracing is disabled."""


class Span:
    """One live span; records itself into the tracer when the block exits."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "_wall_us", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id = 0
        self._wall_us = 0.0
        self._start_ns = 0

    def set(self, **attrs: Any) -> "Span":
        """Attach or overwrite attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = tracer._next_id()
        stack = tracer._stack
        self.parent_id = stack[-1] if stack else 0
        stack.append(self.span_id)
        self._wall_us = time.time_ns() / 1_000
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        duration_us = (time.perf_counter_ns() - self._start_ns) / 1_000
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] == self.span_id:
            tracer._stack.pop()
        if exc_type is not None:
            self.attrs["error"] = getattr(exc_type, "__name__", str(exc_type))
        tracer.records.append({
            "name": self.name,
            "ph": "X",
            "ts": self._wall_us,
            "dur": duration_us,
            "pid": tracer.pid,
            "tid": threading.get_native_id(),
            "sid": self.span_id,
            "parent": self.parent_id,
            "args": self.attrs,
        })
        return False


class Tracer:
    """A per-run buffer of finished span records.

    One tracer is active per process at a time (see
    :func:`enable_tracing`); worker processes create their own and ship
    snapshots back to the parent, which :meth:`ingest`\\ s them.
    """

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []
        self.pid = os.getpid()
        self._stack: list[int] = []
        self._counter = 0

    def _next_id(self) -> int:
        self._counter += 1
        # Disambiguate span ids across processes without coordination.
        return (self.pid << 32) | self._counter

    def start_span(self, name: str, attrs: dict[str, Any]) -> Span:
        """A new (not yet entered) span bound to this tracer."""
        return Span(self, name, attrs)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------- merging

    def snapshot(self, clear: bool = False) -> list[dict[str, Any]]:
        """A copy of the record buffer, optionally clearing it.

        Worker processes call this with ``clear=True`` after each task so
        a reused pool worker never double-reports earlier tasks.
        """
        records = list(self.records)
        if clear:
            self.records.clear()
        return records

    def ingest(self, records: list[dict[str, Any]]) -> None:
        """Merge span records snapshotted in another process."""
        self.records.extend(records)

    # ------------------------------------------------------------- exports

    def chrome_trace(self) -> dict[str, Any]:
        """The Chrome/Perfetto ``trace_event`` object-format document."""
        events: list[dict[str, Any]] = []
        for pid in sorted({record["pid"] for record in self.records}):
            role = "main" if pid == self.pid else "worker"
            events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro {role} (pid {pid})"},
            })
        events.extend(self.records)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema_version": TRACE_SCHEMA_VERSION},
        }

    def export_jsonl(self, path: str | os.PathLike) -> None:
        """Write one trace event per line (the ``--trace foo.jsonl`` format)."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record, default=_json_fallback))
                handle.write("\n")

    def export_chrome(self, path: str | os.PathLike) -> None:
        """Write the ``{"traceEvents": [...]}`` document (``.json``)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, default=_json_fallback)
            handle.write("\n")

    def write(self, path: str | os.PathLike) -> None:
        """Export to *path*, picking the format from the extension.

        ``.json`` gets the Chrome object format (directly loadable in
        Perfetto); everything else gets JSONL.
        """
        if str(path).endswith(".json"):
            self.export_chrome(path)
        else:
            self.export_jsonl(path)


def _json_fallback(value: Any) -> Any:
    """Serialise numpy scalars and other oddballs attached as attributes."""
    for attr in ("item",):  # numpy scalar -> python scalar
        if hasattr(value, attr):
            return getattr(value, attr)()
    return str(value)


_active: Tracer | None = None


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Install *tracer* (or a fresh one) as the process-wide active tracer."""
    global _active
    _active = tracer if tracer is not None else Tracer()
    return _active


def disable_tracing() -> None:
    """Turn tracing off; subsequent :func:`span` calls are no-ops."""
    global _active
    _active = None


def current_tracer() -> Tracer | None:
    """The active tracer, or None while tracing is disabled."""
    return _active


def is_enabled() -> bool:
    """True while a tracer is installed."""
    return _active is not None


def span(name: str, /, **attrs: Any) -> Span | _NullSpan:
    """A context manager timing one named section of work.

    While tracing is disabled this returns the shared :data:`NULL_SPAN`
    and costs one global read — cheap enough for per-pass instrumentation
    inside the ESPRESSO loop.
    """
    tracer = _active
    if tracer is None:
        return NULL_SPAN
    return Span(tracer, name, attrs)


class tracing:
    """``with tracing() as tracer:`` — scoped enable/disable.

    Restores the previously active tracer (usually None) on exit, so
    nested scopes behave.
    """

    def __init__(self, tracer: Tracer | None = None):
        self._tracer = tracer if tracer is not None else Tracer()
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = _active
        enable_tracing(self._tracer)
        return self._tracer

    def __exit__(self, *exc: object) -> bool:
        global _active
        _active = self._previous
        return False


def iter_jsonl(path: str | os.PathLike) -> Iterator[dict[str, Any]]:
    """Yield the event objects of a JSONL trace file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
