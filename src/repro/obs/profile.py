"""Sampling profiler: periodic stack capture, folded-stack output.

A :class:`StackSampler` runs a daemon thread that wakes every few
milliseconds, grabs the target thread's current Python stack via
``sys._current_frames()`` and counts it.  No tracing hooks, no
per-call overhead on the profiled code — the cost is one stack walk per
sample, so a production sweep can run with ``--profile`` enabled at a
few percent overhead.

Output is the *collapsed stack* ("folded") format every flamegraph tool
reads — one ``frame;frame;frame count`` line per distinct stack — plus
a top-functions table (self and total samples per function) that the
CLI prints and the telemetry ledger stores.

Cross-process profiles: when the parent enables profiling, the warm
worker pool of :mod:`repro.perf.pool` starts a sampler around each task
chunk in the worker and ships the counts back with the chunk result —
exactly how metrics deltas and trace records already travel — and the
parent :meth:`StackSampler.merge`\\ s them.  A ``--profile`` sweep at
``--jobs 4`` therefore shows where the *fleet* spent its time, with the
parent's own stacks (mostly queue waits) alongside worker flow frames.

The module-level :func:`enable_profiling` / :func:`disable_profiling`
pair mirrors the tracer's API and is what
:class:`~repro.obs.session.ObsSession` drives from ``--profile FILE``.
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Any

__all__ = [
    "StackSampler",
    "current_sampler",
    "disable_profiling",
    "enable_profiling",
    "is_profiling",
    "top_functions",
]

DEFAULT_INTERVAL_SECONDS = 0.005
"""Sampling period: 200 Hz keeps overhead low while resolving
millisecond-scale stages."""

MAX_STACK_DEPTH = 128
"""Frames kept per sample; deeper stacks are truncated at the root."""


def _frame_label(frame: Any) -> str:
    """``module:qualname`` for one frame (the folded-stack token)."""
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    qualname = getattr(code, "co_qualname", code.co_name)
    return f"{module}:{qualname}"


class StackSampler:
    """Sample one thread's Python stack on a fixed interval.

    Args:
        interval: seconds between samples.
        target_ident: ``threading`` ident of the thread to sample
            (default: the main thread — where CLI commands and pool
            worker tasks run).
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL_SECONDS,
        *,
        target_ident: int | None = None,
    ):
        self.interval = interval
        self.target_ident = (
            target_ident
            if target_ident is not None
            else threading.main_thread().ident
        )
        self.counts: dict[str, int] = {}
        self.samples = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------ sampling

    def _run(self) -> None:
        while not self._stop.is_set():
            frames = sys._current_frames()
            frame = frames.get(self.target_ident)  # type: ignore[arg-type]
            del frames  # drop refs to every other thread's live frame
            if frame is not None:
                stack: list[str] = []
                while frame is not None and len(stack) < MAX_STACK_DEPTH:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                del frame
                key = ";".join(reversed(stack))
                self.counts[key] = self.counts.get(key, 0) + 1
                self.samples += 1
            self._stop.wait(self.interval)

    def start(self) -> "StackSampler":
        """Begin sampling (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> dict[str, int]:
        """Stop sampling and return the accumulated stack counts."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        return self.counts

    # ------------------------------------------------------------- merging

    def merge(self, counts: dict[str, int]) -> None:
        """Fold another sampler's counts (e.g. a pool worker's) in."""
        for stack, count in counts.items():
            self.counts[stack] = self.counts.get(stack, 0) + count
            self.samples += count

    # ------------------------------------------------------------- exports

    def folded_lines(self) -> list[str]:
        """Collapsed-stack lines (``a;b;c 12``), sorted by stack."""
        return [
            f"{stack} {count}" for stack, count in sorted(self.counts.items())
        ]

    def write_folded(self, path: str | os.PathLike) -> None:
        """Write the collapsed stacks to *path* (flamegraph input)."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.folded_lines():
                handle.write(line)
                handle.write("\n")

    def summary(self, top: int = 15) -> dict[str, Any]:
        """The ledger/CLI summary: totals plus the top-functions table."""
        return {
            "interval_seconds": self.interval,
            "samples": self.samples,
            "distinct_stacks": len(self.counts),
            "top": top_functions(self.counts, top),
        }


def top_functions(
    counts: dict[str, int], limit: int = 15
) -> list[dict[str, Any]]:
    """Per-function self/total sample counts, hottest (by self) first.

    *total* counts a sample once per function present anywhere in its
    stack (inclusive time); *self* counts only leaf frames (exclusive
    time) — the two columns of every profiler's flat view.
    """
    self_counts: dict[str, int] = {}
    total_counts: dict[str, int] = {}
    for stack, count in counts.items():
        frames = stack.split(";")
        if not frames:
            continue
        leaf = frames[-1]
        self_counts[leaf] = self_counts.get(leaf, 0) + count
        for function in set(frames):
            total_counts[function] = total_counts.get(function, 0) + count
    ranked = sorted(
        total_counts,
        key=lambda fn: (-self_counts.get(fn, 0), -total_counts[fn], fn),
    )
    return [
        {
            "function": function,
            "self_samples": self_counts.get(function, 0),
            "total_samples": total_counts[function],
        }
        for function in ranked[:limit]
    ]


# ------------------------------------------------------------ module state

_active: StackSampler | None = None


def enable_profiling(
    interval: float = DEFAULT_INTERVAL_SECONDS,
) -> StackSampler:
    """Start (and install) the process-wide sampler.

    The warm pool checks :func:`is_profiling` when dispatching chunks, so
    enabling here also turns on worker-side sampling for subsequent
    parallel maps.
    """
    global _active
    if _active is None:
        _active = StackSampler(interval).start()
    return _active


def disable_profiling() -> dict[str, int]:
    """Stop the process-wide sampler; returns its stack counts."""
    global _active
    if _active is None:
        return {}
    counts = _active.stop()
    _active = None
    return counts


def is_profiling() -> bool:
    """True while the process-wide sampler is running."""
    return _active is not None


def current_sampler() -> StackSampler | None:
    """The active process-wide sampler, or None."""
    return _active
