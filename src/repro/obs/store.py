"""The telemetry ledger: a durable, queryable record of every run.

Everything else in :mod:`repro.obs` is write-once — a ``--trace`` file, a
``--metrics-out`` document, a manifest — useful for inspecting *one* run
but thrown away the moment the next one starts.  The ledger makes runs
comparable across time: every CLI command, sweep, pipeline and benchmark
invocation appends one row (via :class:`~repro.obs.session.ObsSession`)
holding its manifest, final metrics snapshot, per-stage timings, result
quality figures (error rate / area / literal count per policy point),
profiler summary and worker-health record.  ``repro obs runs/show/
compare/regressions`` query it; CI gates on it.

Storage is a single SQLite file (stdlib ``sqlite3``, append-only usage:
rows are inserted, never updated) with JSON columns for the structured
payloads, plus a line-per-run JSONL export for archiving or shipping
elsewhere.  The default location is ``.repro/ledger.sqlite`` under the
current directory — a per-repo store — overridable with
``REPRO_LEDGER_PATH`` and disabled entirely with
``REPRO_LEDGER_DISABLE=1``.

Corruption is handled the way the checkpoint store handles it: a file
that SQLite cannot open is moved aside (``<path>.corrupt-<pid>``) and a
fresh ledger is started (``ledger.recovered`` counter); a row whose JSON
payload does not decode is skipped by queries and counted
(``ledger.corrupt_rows``), never fatal.  Telemetry must not be able to
fail a run — every write path is wrapped accordingly by the session.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from . import metrics as obs_metrics

__all__ = [
    "LEDGER_SCHEMA_VERSION",
    "LedgerError",
    "LedgerStore",
    "RunRecord",
    "default_ledger_path",
    "ledger_enabled",
    "open_ledger",
]

LEDGER_SCHEMA_VERSION = 1
"""Bump on any backwards-incompatible ledger layout change."""

DEFAULT_LEDGER_DIR = ".repro"
"""Per-repo ledger directory, created under the working directory."""

DEFAULT_LEDGER_FILE = "ledger.sqlite"

_TABLE_SQL = """
CREATE TABLE IF NOT EXISTS runs (
    id TEXT PRIMARY KEY,
    created_at TEXT NOT NULL,
    command TEXT NOT NULL,
    git_rev TEXT,
    duration_seconds REAL,
    exit_status INTEGER,
    interrupted INTEGER NOT NULL DEFAULT 0,
    schema_version INTEGER NOT NULL,
    manifest TEXT NOT NULL,
    metrics TEXT NOT NULL,
    stage_timings TEXT,
    quality TEXT,
    profile TEXT,
    worker_health TEXT,
    extra TEXT
)
"""

_COLUMNS = (
    "id", "created_at", "command", "git_rev", "duration_seconds",
    "exit_status", "interrupted", "schema_version", "manifest", "metrics",
    "stage_timings", "quality", "profile", "worker_health", "extra",
)

_JSON_COLUMNS = (
    "manifest", "metrics", "stage_timings", "quality", "profile",
    "worker_health", "extra",
)


class LedgerError(RuntimeError):
    """The ledger file is unusable (and could not be recovered)."""


def ledger_enabled() -> bool:
    """False when ``REPRO_LEDGER_DISABLE=1`` turns the ledger off."""
    return os.environ.get("REPRO_LEDGER_DISABLE", "") != "1"


def default_ledger_path() -> Path:
    """The ledger location: ``REPRO_LEDGER_PATH`` or ``.repro/ledger.sqlite``."""
    override = os.environ.get("REPRO_LEDGER_PATH")
    if override:
        return Path(override)
    return Path.cwd() / DEFAULT_LEDGER_DIR / DEFAULT_LEDGER_FILE


def open_ledger(path: str | os.PathLike | None = None) -> "LedgerStore | None":
    """The ledger at *path* (default location), or None when disabled."""
    if not ledger_enabled():
        return None
    return LedgerStore(path if path is not None else default_ledger_path())


@dataclass
class RunRecord:
    """One decoded ledger row.

    Attributes:
        run_id: unique id (``<utc-stamp>-<hex>``), assigned at insert.
        created_at: ISO-8601 UTC insert time.
        command: the subcommand or benchmark name that ran.
        git_rev: source revision, when discoverable.
        duration_seconds / exit_status / interrupted: how the run ended
            (``interrupted`` marks partial rows flushed on SIGTERM).
        manifest: the full run manifest (see :mod:`repro.obs.manifest`).
        metrics: the run's final metrics snapshot.
        stage_timings: ``{stage: {"seconds": s, "runs": n}}`` from the
            ``pipeline.stage`` instrumentation.
        quality: result-quality points — one dict per measured
            implementation (policy, parameter, error_rate, area,
            literals, ...), the figures the paper's tables compare.
        profile: sampling-profiler summary (sample counts, top
            functions, folded output path) when ``--profile`` was given.
        worker_health: per-worker heartbeat/stall record from the pool.
        extra: free-form payload (benchmarks store their numbers here).
    """

    run_id: str
    created_at: str
    command: str
    git_rev: str | None = None
    duration_seconds: float | None = None
    exit_status: int | None = None
    interrupted: bool = False
    schema_version: int = LEDGER_SCHEMA_VERSION
    manifest: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    stage_timings: dict[str, Any] = field(default_factory=dict)
    quality: list[dict[str, Any]] = field(default_factory=list)
    profile: dict[str, Any] | None = None
    worker_health: dict[str, Any] | None = None
    extra: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict of every field."""
        return dataclasses.asdict(self)


def _new_run_id() -> str:
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{os.urandom(4).hex()}"


class LedgerStore:
    """Append-only SQLite store of :class:`RunRecord` rows.

    Args:
        path: the database file; parent directories are created.  A file
            SQLite rejects is moved aside and recreated (recovery is
            counted under ``ledger.recovered``).
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = self._connect()
        except sqlite3.DatabaseError:
            self._recover()
            self._conn = self._connect()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=10.0)
        try:
            conn.execute(_TABLE_SQL)
            conn.commit()
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    def _recover(self) -> None:
        """Move an unreadable ledger aside so a fresh one can start.

        The damaged file is kept (``<name>.corrupt-<pid>``) for manual
        inspection rather than deleted — mirroring the checkpoint
        store's treat-as-miss-but-don't-lose-data policy.
        """
        aside = self.path.with_name(f"{self.path.name}.corrupt-{os.getpid()}")
        try:
            os.replace(self.path, aside)
        except OSError as exc:
            raise LedgerError(
                f"ledger {self.path} is corrupt and could not be moved "
                f"aside: {exc}"
            ) from exc
        obs_metrics.counter("ledger.recovered").inc()

    def close(self) -> None:
        """Close the underlying connection (the store is unusable after)."""
        self._conn.close()

    def __enter__(self) -> "LedgerStore":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    # -------------------------------------------------------------- writing

    def record_run(
        self,
        *,
        command: str,
        manifest: dict[str, Any],
        metrics: dict[str, Any],
        stage_timings: dict[str, Any] | None = None,
        quality: list[dict[str, Any]] | None = None,
        profile: dict[str, Any] | None = None,
        worker_health: dict[str, Any] | None = None,
        extra: dict[str, Any] | None = None,
        duration_seconds: float | None = None,
        exit_status: int | None = None,
        interrupted: bool = False,
        git_rev: str | None = None,
        run_id: str | None = None,
    ) -> str:
        """Append one run row; returns the assigned run id.

        Passing an existing *run_id* replaces that row — the one
        non-append use, needed so a SIGTERM-flushed partial row can be
        finalised by the same session if the process survives after all.
        """
        record_id = run_id or _new_run_id()
        created = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        if git_rev is None:
            git_rev = manifest.get("git_rev")
        row = (
            record_id,
            created,
            command,
            git_rev,
            duration_seconds,
            exit_status,
            1 if interrupted else 0,
            LEDGER_SCHEMA_VERSION,
            json.dumps(manifest, sort_keys=True, default=str),
            json.dumps(metrics, sort_keys=True, default=str),
            json.dumps(stage_timings or {}, sort_keys=True, default=str),
            json.dumps(quality or [], sort_keys=True, default=str),
            None if profile is None
            else json.dumps(profile, sort_keys=True, default=str),
            None if worker_health is None
            else json.dumps(worker_health, sort_keys=True, default=str),
            None if extra is None
            else json.dumps(extra, sort_keys=True, default=str),
        )
        placeholders = ", ".join("?" for _ in _COLUMNS)
        self._conn.execute(
            f"INSERT OR REPLACE INTO runs ({', '.join(_COLUMNS)}) "
            f"VALUES ({placeholders})",
            row,
        )
        self._conn.commit()
        obs_metrics.counter("ledger.runs_recorded").inc()
        return record_id

    # -------------------------------------------------------------- reading

    def _decode(self, row: tuple) -> RunRecord:
        data = dict(zip(_COLUMNS, row))
        decoded: dict[str, Any] = {}
        for name in _JSON_COLUMNS:
            blob = data[name]
            if blob is None:
                decoded[name] = None
            else:
                decoded[name] = json.loads(blob)  # raises on corrupt rows
        return RunRecord(
            run_id=data["id"],
            created_at=data["created_at"],
            command=data["command"],
            git_rev=data["git_rev"],
            duration_seconds=data["duration_seconds"],
            exit_status=data["exit_status"],
            interrupted=bool(data["interrupted"]),
            schema_version=data["schema_version"],
            manifest=decoded["manifest"] or {},
            metrics=decoded["metrics"] or {},
            stage_timings=decoded["stage_timings"] or {},
            quality=decoded["quality"] or [],
            profile=decoded["profile"],
            worker_health=decoded["worker_health"],
            extra=decoded["extra"],
        )

    def _select(
        self,
        where: str = "",
        params: tuple = (),
        *,
        limit: int | None = None,
    ) -> Iterator[RunRecord]:
        sql = f"SELECT {', '.join(_COLUMNS)} FROM runs"
        if where:
            sql += f" WHERE {where}"
        sql += " ORDER BY created_at DESC, id DESC"
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        for row in self._conn.execute(sql, params):
            try:
                yield self._decode(row)
            except (json.JSONDecodeError, TypeError):
                # A row whose JSON payload was damaged (e.g. a partial
                # write through a dying filesystem) must not take the
                # whole ledger down: skip it, count it, move on.
                obs_metrics.counter("ledger.corrupt_rows").inc()

    def runs(
        self,
        *,
        command: str | None = None,
        git_rev: str | None = None,
        limit: int | None = None,
    ) -> list[RunRecord]:
        """Decoded rows, newest first, optionally filtered.

        *git_rev* matches on prefix, so an abbreviated ``git rev-parse
        --short`` hash finds its runs.  Corrupt rows are skipped (and
        counted under ``ledger.corrupt_rows``).
        """
        clauses: list[str] = []
        params: list[Any] = []
        if command is not None:
            clauses.append("command = ?")
            params.append(command)
        if git_rev is not None:
            clauses.append("git_rev LIKE ?")
            params.append(git_rev + "%")
        return list(
            self._select(" AND ".join(clauses), tuple(params), limit=limit)
        )

    def get(self, run_id: str) -> RunRecord | None:
        """The row with *run_id* (exact, then unique-prefix), or None."""
        for record in self._select("id = ?", (run_id,), limit=1):
            return record
        matches = list(self._select("id LIKE ?", (run_id + "%",), limit=2))
        if len(matches) == 1:
            return matches[0]
        return None

    def latest(
        self,
        *,
        command: str | None = None,
        exclude: str | None = None,
    ) -> RunRecord | None:
        """The newest run, optionally filtered/excluding one run id."""
        clauses: list[str] = []
        params: list[Any] = []
        if command is not None:
            clauses.append("command = ?")
            params.append(command)
        if exclude is not None:
            clauses.append("id != ?")
            params.append(exclude)
        for record in self._select(
            " AND ".join(clauses), tuple(params), limit=1
        ):
            return record
        return None

    def run_count(self) -> int:
        """Total rows (including any corrupt ones)."""
        (count,) = self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()
        return int(count)

    def __len__(self) -> int:
        return self.run_count()

    # -------------------------------------------------------------- export

    def export_jsonl(self, path: str | os.PathLike) -> int:
        """Write every readable row as one JSON object per line.

        Returns the number of rows written (corrupt rows are skipped,
        consistent with :meth:`runs`).
        """
        written = 0
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._select():
                handle.write(json.dumps(record.to_dict(), sort_keys=True,
                                        default=str))
                handle.write("\n")
                written += 1
        return written

    def describe(self) -> dict[str, Any]:
        """Path, schema version and run count — the ``repro info`` block."""
        return {
            "path": str(self.path),
            "schema_version": LEDGER_SCHEMA_VERSION,
            "runs": self.run_count(),
        }
