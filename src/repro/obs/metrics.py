"""A process-wide metrics registry: counters, gauges, histograms.

Instrumented code asks the registry for a named instrument each time it
records — ``metrics.counter("espresso.calls").inc()`` — so a single dict
lookup is the steady-state cost and disabling the registry
(:func:`configure_metrics`) swaps every lookup for a shared no-op
instrument.  Three instrument kinds:

* :class:`Counter` — monotonically increasing totals (calls, cubes,
  cache hits).  Merged across processes by summing.
* :class:`Gauge` — last-written point-in-time values (entries in a
  cache, nodes in a manager).  Merged by taking the incoming value.
* :class:`Histogram` — fixed-bucket distributions (iterations per
  espresso call).  Merged by summing per-bucket counts.

Snapshots (:func:`metrics_snapshot`) are plain JSON-ready dicts; worker
processes in :func:`repro.flows.sweep.parallel_map` send snapshot
*deltas* (:func:`diff_snapshots`) back with each result and the parent
:func:`merge_snapshot`\\ s them, so ``--metrics-out`` reflects work done
in every process of a parallel sweep.

Components that keep their own counters (e.g. the minimisation cache in
:mod:`repro.perf.cache`) register a *collector* — a callable returning
metric dicts — and are folded into every snapshot without paying for a
registry call on their hot paths.

Naming convention: dotted lowercase ``subsystem.noun`` (see
``docs/observability.md`` for the registry of names in use).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "configure_metrics",
    "counter",
    "delta_capture",
    "diff_snapshots",
    "gauge",
    "global_registry",
    "histogram",
    "merge_snapshot",
    "metrics_snapshot",
    "register_collector",
    "reset_metrics",
]

DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)
"""Default histogram bucket upper bounds (counts land in the first
bucket whose bound is >= the observation; larger values overflow)."""


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add *amount* (default 1) to the total."""
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value; only the latest write is kept."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value

    def to_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A fixed-bucket distribution with running sum and count."""

    __slots__ = ("name", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, bounds: Iterable[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class _NullInstrument:
    """Shared no-op instrument handed out while the registry is disabled."""

    __slots__ = ()
    name = "<disabled>"
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()

_Collector = Callable[[], dict[str, dict[str, Any]]]


class MetricsRegistry:
    """Named instruments plus external collectors, snapshot/merge aware."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: list[_Collector] = []

    # ---------------------------------------------------------- instruments

    def _get(self, name: str, kind: type) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the named counter (no-op instrument if disabled)."""
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge (no-op instrument if disabled)."""
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Iterable[float] | None = None
    ) -> Histogram:
        """Get or create the named histogram (no-op if disabled)."""
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Histogram(name, bounds or DEFAULT_BUCKETS)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(f"metric {name!r} is not a histogram")
        return instrument

    def register_collector(self, collector: _Collector) -> None:
        """Fold *collector*'s metrics into every snapshot.

        The callable returns ``{name: metric_dict}`` where each metric
        dict has a ``type`` of counter/gauge/histogram, matching
        :meth:`snapshot`'s output.  Registering the same callable twice
        is a no-op.
        """
        if collector not in self._collectors:
            self._collectors.append(collector)

    # ------------------------------------------------------------ lifecycle

    def snapshot(self, include_collectors: bool = True) -> dict[str, Any]:
        """All current metric values as a JSON-ready dict.

        Collector counters *add* to same-named instruments instead of
        replacing them: after a parallel sweep the instrument holds the
        worker-merged total while the collector reports the local
        component, and the snapshot is their sum.  Non-counters from a
        collector win (they are the live local reading).
        """
        out = {
            name: instrument.to_dict()
            for name, instrument in sorted(self._instruments.items())
        }
        if include_collectors:
            for collector in self._collectors:
                for name, data in collector().items():
                    existing = out.get(name)
                    if (
                        existing is not None
                        and existing.get("type") == "counter"
                        and data.get("type") == "counter"
                    ):
                        out[name] = {
                            "type": "counter",
                            "value": existing.get("value", 0)
                            + data.get("value", 0),
                        }
                    else:
                        out[name] = data
        return out

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold a snapshot (e.g. a worker's delta) into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value.  Collector-backed names merge into regular instruments
        here — the parent's own collectors still report their local
        component, so collector metrics should be diffed out of worker
        deltas (see :func:`diff_snapshots`) rather than excluded.
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self._get(name, Counter).inc(data.get("value", 0))
            elif kind == "gauge":
                self._get(name, Gauge).set(data.get("value", 0.0))
            elif kind == "histogram":
                instrument = self.histogram(name, data.get("bounds"))
                if list(instrument.bounds) != list(data.get("bounds", [])):
                    # Incompatible layouts: fold into sum/count only.
                    instrument.sum += data.get("sum", 0.0)
                    instrument.count += data.get("count", 0)
                    continue
                for index, count in enumerate(data.get("counts", [])):
                    instrument.counts[index] += count
                instrument.sum += data.get("sum", 0.0)
                instrument.count += data.get("count", 0)

    def reset(self) -> None:
        """Drop every instrument (collectors stay registered)."""
        self._instruments.clear()


def diff_snapshots(
    end: dict[str, Any], start: dict[str, Any], *, keep_zero: bool = False
) -> dict[str, Any]:
    """The work done between two snapshots of the *same* registry.

    Counters and histograms subtract; gauges keep their end value.  Used
    by pool workers, whose process (and its caches/counters) outlives a
    single task: the delta attributes each task only the work it caused.

    Zero-valued counter/histogram deltas are dropped by default to keep
    worker payloads small; pass ``keep_zero=True`` when the consumer
    wants a stable key set (e.g. the ``--metrics-out`` document, where
    ``cache.hits: 0`` is information).
    """
    delta: dict[str, Any] = {}
    for name, data in end.items():
        kind = data.get("type")
        before = start.get(name)
        if kind == "counter":
            base = before.get("value", 0) if before else 0
            value = data.get("value", 0) - base
            if value or keep_zero:
                delta[name] = {"type": "counter", "value": value}
        elif kind == "gauge":
            delta[name] = dict(data)
        elif kind == "histogram":
            base_counts = before.get("counts", []) if before else []
            counts = [
                count - (base_counts[index] if index < len(base_counts) else 0)
                for index, count in enumerate(data.get("counts", []))
            ]
            count = data.get("count", 0) - (before.get("count", 0) if before else 0)
            if count or keep_zero:
                delta[name] = {
                    "type": "histogram",
                    "bounds": data.get("bounds", []),
                    "counts": counts,
                    "sum": data.get("sum", 0.0)
                    - (before.get("sum", 0.0) if before else 0.0),
                    "count": count,
                }
    return delta


@contextmanager
def delta_capture(*, keep_zero: bool = False) -> Iterator[dict[str, Any]]:
    """Capture the metrics delta of a block of work.

    Yields an (initially empty) dict that is filled with the
    :func:`diff_snapshots` delta of the process-wide registry around the
    block — the pattern pool workers use to attribute each task batch
    only the work it caused, however long the worker has lived::

        with delta_capture() as delta:
            run_batch()
        ship(delta)  # counters/histograms of the batch only

    The dict is populated when the block exits (including on exception),
    so read it only after the ``with`` statement.
    """
    holder: dict[str, Any] = {}
    before = metrics_snapshot()
    try:
        yield holder
    finally:
        holder.update(diff_snapshots(metrics_snapshot(), before,
                                     keep_zero=keep_zero))


global_registry = MetricsRegistry()
"""The process-wide registry used by all built-in instrumentation."""


def counter(name: str) -> Counter:
    """``global_registry.counter`` — the usual way to record a count."""
    return global_registry.counter(name)


def gauge(name: str) -> Gauge:
    """``global_registry.gauge``."""
    return global_registry.gauge(name)


def histogram(name: str, bounds: Iterable[float] | None = None) -> Histogram:
    """``global_registry.histogram``."""
    return global_registry.histogram(name, bounds)


def register_collector(collector: _Collector) -> None:
    """``global_registry.register_collector``."""
    global_registry.register_collector(collector)


def metrics_snapshot(include_collectors: bool = True) -> dict[str, Any]:
    """Snapshot of the process-wide registry (collectors included)."""
    return global_registry.snapshot(include_collectors)


def merge_snapshot(snapshot: dict[str, Any]) -> None:
    """Merge a (worker) snapshot into the process-wide registry."""
    global_registry.merge_snapshot(snapshot)


def reset_metrics() -> None:
    """Drop all instruments in the process-wide registry."""
    global_registry.reset()


def configure_metrics(*, enabled: bool | None = None) -> None:
    """Enable or disable the process-wide registry.

    While disabled, instrument lookups return a shared no-op object, so
    already-fetched handles keep working but newly fetched ones cost
    nothing.  Instrumented code in this package re-fetches per record,
    so disabling takes effect immediately there.
    """
    if enabled is not None:
        global_registry.enabled = enabled
