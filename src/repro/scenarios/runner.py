"""Run scenarios through the pipeline and persist the result matrix.

:func:`run_scenario` fans one scenario's (benchmark × policy) points
over the warm worker pool (:func:`repro.flows.sweep.parallel_map` — the
same executor the sweeps use, so workers, shared-memory transfer and
work stealing come for free) and returns a :class:`ScenarioResult`.

:func:`write_scenario_matrix` merges results into ``BENCH_scenarios.json``
(see ``docs/scenarios.md`` for the schema): one entry per scenario with
its rows, fault model and a per-scenario manifest (git revision, package
version, jobs).  Re-running a subset of scenarios updates only their
entries, so the matrix accumulates across invocations like the other
``BENCH_*.json`` files.

Quality points for the telemetry ledger prefix the benchmark with the
scenario name (``paper-single-bit:bench``): two scenarios measuring the
same benchmark under different fault models produce different —
individually gateable — rates, and the prefix keeps their
``repro obs regressions`` quality keys from colliding.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any

from ..flows.experiment import FlowResult
from ..flows.sweep import ProgressCallback, _run_flow_task, parallel_map
from ..obs import metrics as obs_metrics
from ..obs import span
from ..obs.manifest import git_revision
from .registry import Scenario, get_scenario, scenario_specs

__all__ = [
    "SCENARIO_MATRIX_SCHEMA_VERSION",
    "ScenarioPoint",
    "ScenarioResult",
    "run_scenario",
    "write_scenario_matrix",
]

SCENARIO_MATRIX_SCHEMA_VERSION = 1
"""Layout version of ``BENCH_scenarios.json``."""


@dataclass(frozen=True)
class ScenarioPoint:
    """One measured (benchmark, policy) point of a scenario."""

    scenario: str
    benchmark: str
    policy: str
    parameter: float
    objective: str
    fraction_assigned: float
    area: float
    delay: float
    power: float
    gates: int
    literals: int
    error_rate: float

    @classmethod
    def from_flow(cls, scenario: str, result: FlowResult) -> "ScenarioPoint":
        return cls(
            scenario=scenario,
            benchmark=result.benchmark,
            policy=result.policy,
            parameter=result.parameter,
            objective=result.objective,
            fraction_assigned=result.fraction_assigned,
            area=result.area,
            delay=result.delay,
            power=result.power,
            gates=result.gates,
            literals=result.literals,
            error_rate=result.error_rate,
        )

    def to_dict(self) -> dict[str, Any]:
        """The matrix-row form (scenario carried by the parent entry)."""
        import dataclasses

        row = dataclasses.asdict(self)
        row.pop("scenario")
        return row

    def quality_dict(self) -> dict[str, Any]:
        """The ledger quality point, scenario-prefixed (module docstring)."""
        row = self.to_dict()
        row["benchmark"] = f"{self.scenario}:{self.benchmark}"
        return row


@dataclass(frozen=True)
class ScenarioResult:
    """Everything one scenario run produced."""

    scenario: Scenario
    fault_model: dict[str, Any]
    points: tuple[ScenarioPoint, ...]
    jobs: int

    def matrix_entry(self) -> dict[str, Any]:
        """This run as one ``BENCH_scenarios.json`` scenario entry."""
        from .. import __version__

        return {
            "description": self.scenario.description,
            "fault_model": self.fault_model,
            "objective": self.scenario.objective,
            "policies": [dict(point) for point in self.scenario.policies],
            "points": len(self.points),
            "rows": [point.to_dict() for point in self.points],
            "manifest": {
                "git_rev": git_revision(),
                "repro_version": __version__,
                "jobs": self.jobs,
                "benchmarks": list(self.scenario.benchmarks)
                + [config.get("name", "?") for config in self.scenario.generated],
            },
        }


def run_scenario(
    scenario: Scenario | str,
    *,
    jobs: int | str = 1,
    progress: ProgressCallback | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
) -> ScenarioResult:
    """Run every (benchmark, policy) point of *scenario*.

    Args:
        scenario: a :class:`Scenario` or a registered scenario name.
        jobs: worker processes (``"auto"`` = CPU count, capped by the
            point count); points are independent pipeline runs, so the
            parallel result is bit-identical to the serial one.
        progress: optional ``callback(done, total)``.
        checkpoint_dir: content-addressed per-stage checkpoint store
            shared by all points (the fault model is folded into the
            ``measure`` stage's keys, so scenarios with different models
            share every stage up to it).

    Returns:
        A :class:`ScenarioResult`, points ordered benchmark-major.

    Raises:
        KeyError: for an unknown scenario name.
        ValueError: for invalid scenario contents (bad benchmark tokens,
            fault model, ...).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    fault_spec = scenario.fault_model_spec()
    specs = scenario_specs(scenario)
    extra: dict[str, Any] = {"objective": scenario.objective,
                             "fault_model": fault_spec}
    if checkpoint_dir is not None:
        extra["checkpoint_dir"] = checkpoint_dir
    tasks = []
    for spec in specs:
        for point in scenario.policies:
            kwargs = dict(extra)
            for knob in ("fraction", "threshold"):
                if knob in point:
                    kwargs[knob] = point[knob]
            tasks.append((spec, point["policy"], kwargs))
    obs_metrics.counter("scenario.runs").inc()
    obs_metrics.counter("scenario.points").inc(len(tasks))
    with span(
        "scenario.run",
        scenario=scenario.name,
        points=len(tasks),
        jobs=jobs,
        fault_model=fault_spec.get("model"),
    ):
        results = parallel_map(_run_flow_task, tasks, jobs, progress=progress)
    points = tuple(
        ScenarioPoint.from_flow(scenario.name, result) for result in results
    )
    resolved_jobs = jobs if isinstance(jobs, int) else 0
    return ScenarioResult(
        scenario=scenario,
        fault_model=fault_spec,
        points=points,
        jobs=resolved_jobs,
    )


def write_scenario_matrix(
    path: str | os.PathLike,
    results: list[ScenarioResult] | tuple[ScenarioResult, ...],
) -> dict[str, Any]:
    """Merge *results* into the scenario matrix at *path* and return it.

    Existing entries for other scenarios are preserved; entries for the
    scenarios in *results* are replaced.  A missing, unreadable or
    schema-mismatched file starts a fresh matrix rather than failing the
    run that produced fresh numbers.
    """
    matrix: dict[str, Any] = {
        "schema_version": SCENARIO_MATRIX_SCHEMA_VERSION,
        "scenarios": {},
    }
    try:
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
        if (
            isinstance(existing, dict)
            and existing.get("schema_version") == SCENARIO_MATRIX_SCHEMA_VERSION
            and isinstance(existing.get("scenarios"), dict)
        ):
            matrix["scenarios"].update(existing["scenarios"])
    except (OSError, ValueError):
        pass
    for result in results:
        matrix["scenarios"][result.scenario.name] = result.matrix_entry()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(matrix, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return matrix
