"""The built-in scenario roster.

A small, CI-runnable matrix: the paper's own single-bit model over all
four assignment policies, one scenario per new fault model (multi-bit,
burst, internal stuck-at), and a generator-backed synthetic scenario
demonstrating that scenarios need not come from the Table-1 roster.
Benchmarks are deliberately the two smallest Table-1 stand-ins (6
inputs) so a full ``repro bench`` of the default roster stays in CI
smoke-test territory; heavier scenarios can be registered by downstream
code through :func:`repro.scenarios.register_scenario`.
"""

from __future__ import annotations

from .registry import Scenario, register_scenario

__all__ = ["BUILTIN_SCENARIOS"]

BUILTIN_SCENARIOS: tuple[Scenario, ...] = (
    Scenario(
        name="paper-single-bit",
        description=(
            "The paper's fault model over all four assignment policies; "
            "reproduces the seed error-rate numbers bit-identically"
        ),
        benchmarks=("bench", "fout"),
        fault_model="single_bit",
        policies=(
            {"policy": "conventional"},
            {"policy": "ranking", "fraction": 1.0},
            {"policy": "cfactor", "threshold": 0.55},
            {"policy": "complete"},
        ),
        objective="area",
    ),
    Scenario(
        name="multibit-k2",
        description="Double-bit input flips (all C(n,2) patterns, exact)",
        benchmarks=("bench", "fout"),
        fault_model={"model": "multibit", "k": 2},
        policies=(
            {"policy": "conventional"},
            {"policy": "cfactor", "threshold": 0.55},
        ),
        objective="area",
    ),
    Scenario(
        name="burst-w2",
        description="Bursts of two adjacent input pins flipping together",
        benchmarks=("bench", "fout"),
        fault_model={"model": "burst", "width": 2},
        policies=(
            {"policy": "conventional"},
            {"policy": "cfactor", "threshold": 0.55},
        ),
        objective="area",
    ),
    Scenario(
        name="stuck-at-smoke",
        description=(
            "Internal stuck-at-0 faults measured on the optimised "
            "network via the incremental fanout-cone engine"
        ),
        benchmarks=("bench", "fout"),
        fault_model={"model": "stuck_at", "value": 0},
        policies=(
            {"policy": "conventional"},
            {"policy": "cfactor", "threshold": 0.55},
        ),
        objective="area",
    ),
    Scenario(
        name="synthetic-single-bit",
        description=(
            "Generator-backed benchmarks (no Table-1 roster) under the "
            "paper's fault model"
        ),
        generated=(
            {"name": "syn8a", "inputs": 8, "outputs": 4, "cf": 0.55,
             "dc": 0.6, "seed": 11},
            {"name": "syn8b", "inputs": 8, "outputs": 4, "cf": 0.70,
             "dc": 0.5, "seed": 12},
        ),
        fault_model="single_bit",
        policies=(
            {"policy": "ranking", "fraction": 0.5},
            {"policy": "ranking", "fraction": 1.0},
        ),
        objective="area",
    ),
)

for _scenario in BUILTIN_SCENARIOS:
    register_scenario(_scenario)
