"""Declarative scenarios: benchmark set × fault model × policies.

A :class:`Scenario` names one reproducible slice of the evaluation
matrix — which benchmarks (Table-1 stand-ins, ``.pla`` paths, or
synthetic generator configs), which fault model, which assignment
policies, which synthesis objective.  Scenarios are plain data: running
one (:func:`repro.scenarios.runner.run_scenario`, CLI ``repro bench``)
fans each (benchmark, policy) point through the standard six-stage
pipeline on the warm worker pool and persists the results into the
``BENCH_scenarios.json`` matrix that ``repro obs regressions`` gates.

Scenarios register under a name with :func:`register_scenario`, in the
style of the fault-model and stage registries, so CLI and CI refer to
them as strings (``repro bench paper-single-bit``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..core.spec import FunctionSpec

__all__ = [
    "Scenario",
    "describe_scenarios",
    "get_scenario",
    "register_scenario",
    "registered_scenarios",
    "scenario_names",
    "scenario_specs",
]


@dataclass(frozen=True)
class Scenario:
    """One named evaluation scenario (pure data, see module docstring).

    Attributes:
        name: registry key (``paper-single-bit``, ...).
        description: one line for ``repro bench --list``.
        benchmarks: Table-1 stand-in names or ``.pla`` paths.
        generated: synthetic benchmark configs, each a kwargs dict for
            :func:`repro.benchgen.generate_spec` (``name``, ``inputs``,
            ``outputs``, ``cf``, ``dc``, optional ``seed``).
        fault_model: declarative fault-model spec (name or dict, see
            :func:`repro.faults.create_fault_model`).
        policies: one dict per assignment policy point: ``policy`` plus
            optional ``fraction`` / ``threshold`` knobs.
        objective: synthesis objective for every point.
    """

    name: str
    description: str
    benchmarks: tuple[str, ...] = ()
    generated: tuple[Mapping[str, Any], ...] = ()
    fault_model: Any = "single_bit"
    policies: tuple[Mapping[str, Any], ...] = ({"policy": "conventional"},)
    objective: str = "area"

    def num_points(self) -> int:
        """Pipeline runs this scenario fans out."""
        return (len(self.benchmarks) + len(self.generated)) * len(self.policies)

    def fault_model_spec(self) -> dict[str, Any]:
        """The canonical fault-model spec dict (validates the model)."""
        from ..faults import create_fault_model

        return create_fault_model(self.fault_model).spec_dict()


def scenario_specs(scenario: Scenario) -> list[FunctionSpec]:
    """Load/generate every benchmark spec of *scenario*, in order.

    Raises:
        SystemExit is *not* used here (unlike the CLI loader): unknown
        benchmark tokens raise :class:`ValueError` so library callers
        get a catchable error.
    """
    from ..benchgen import benchmark_names, generate_spec, mcnc_benchmark
    from ..pla import read_pla

    specs: list[FunctionSpec] = []
    for token in scenario.benchmarks:
        if token.endswith(".pla"):
            specs.append(read_pla(token))
        elif token in benchmark_names():
            specs.append(mcnc_benchmark(token))
        else:
            raise ValueError(
                f"scenario {scenario.name!r}: unknown benchmark {token!r} "
                f"(pass a .pla path or one of {benchmark_names()})"
            )
    for config in scenario.generated:
        config = dict(config)
        specs.append(
            generate_spec(
                config.pop("name"),
                config.pop("inputs"),
                config.pop("outputs"),
                target_cf=config.pop("cf"),
                dc_fraction=config.pop("dc"),
                seed=config.pop("seed", 0),
                **config,
            )
        )
    return specs


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Register *scenario* under its name.

    Raises:
        ValueError: on empty names, duplicate registration with
            different content, unknown policies/objectives, or a fault
            model the registry cannot resolve — configs fail at import
            time, not in a pool worker mid-run.
    """
    from ..pipeline.stages import OBJECTIVES, POLICIES

    if not scenario.name:
        raise ValueError("scenario needs a name")
    existing = _REGISTRY.get(scenario.name)
    if existing is not None and existing != scenario:
        raise ValueError(
            f"scenario name {scenario.name!r} already registered"
        )
    if scenario.objective not in OBJECTIVES:
        raise ValueError(
            f"scenario {scenario.name!r}: objective must be one of "
            f"{OBJECTIVES}, got {scenario.objective!r}"
        )
    if not scenario.policies:
        raise ValueError(f"scenario {scenario.name!r} has no policy points")
    for point in scenario.policies:
        if point.get("policy") not in POLICIES:
            raise ValueError(
                f"scenario {scenario.name!r}: policy must be one of "
                f"{POLICIES}, got {point.get('policy')!r}"
            )
    if not scenario.benchmarks and not scenario.generated:
        raise ValueError(f"scenario {scenario.name!r} has no benchmarks")
    scenario.fault_model_spec()  # validates the fault-model spec
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """The registered scenario called *name*.

    Raises:
        KeyError: for unknown names, listing the registry.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{scenario_names()}"
        ) from None


def registered_scenarios() -> dict[str, Scenario]:
    """Name-to-scenario view of the registry (registration order)."""
    return dict(_REGISTRY)


def scenario_names() -> list[str]:
    """Registered scenario names, in registration order."""
    return list(_REGISTRY)


def describe_scenarios() -> list[dict[str, Any]]:
    """JSON-ready registry listing for ``repro info --json`` / ``--list``."""
    return [
        {
            "name": scenario.name,
            "description": scenario.description,
            "benchmarks": list(scenario.benchmarks)
            + [config.get("name", "?") for config in scenario.generated],
            "fault_model": scenario.fault_model_spec(),
            "policies": [dict(point) for point in scenario.policies],
            "objective": scenario.objective,
            "points": scenario.num_points(),
        }
        for scenario in _REGISTRY.values()
    ]
