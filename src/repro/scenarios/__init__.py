"""Declarative scenario registry: named benchmark × fault-model matrices.

See :mod:`repro.scenarios.registry` for the :class:`Scenario` data model
and registry, :mod:`repro.scenarios.builtin` for the shipped roster and
:mod:`repro.scenarios.runner` for execution and the
``BENCH_scenarios.json`` writer.  Importing this package registers every
built-in scenario.
"""

from .registry import (
    Scenario,
    describe_scenarios,
    get_scenario,
    register_scenario,
    registered_scenarios,
    scenario_names,
    scenario_specs,
)
from . import builtin as _builtin  # noqa: F401 - registers the roster
from .builtin import BUILTIN_SCENARIOS
from .runner import (
    SCENARIO_MATRIX_SCHEMA_VERSION,
    ScenarioPoint,
    ScenarioResult,
    run_scenario,
    write_scenario_matrix,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "SCENARIO_MATRIX_SCHEMA_VERSION",
    "Scenario",
    "ScenarioPoint",
    "ScenarioResult",
    "describe_scenarios",
    "get_scenario",
    "register_scenario",
    "registered_scenarios",
    "run_scenario",
    "scenario_names",
    "scenario_specs",
    "write_scenario_matrix",
]
