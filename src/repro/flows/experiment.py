"""End-to-end experiment flows: policy -> assignment -> synthesis -> metrics.

One :func:`run_flow` call reproduces one data point of the paper's
evaluation: apply a DC-assignment *policy* to a benchmark, push the result
through the conventional synthesis stack (ESPRESSO for the remaining DCs,
multi-level optimisation, mapping, objective tuning) and measure area,
delay, power, gate count and the input-error rate against the original
care set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.assignment import Assignment
from ..core.cfactor import DEFAULT_THRESHOLD, cfactor_assignment
from ..core.montecarlo import MonteCarloEstimate, estimate_error_rate
from ..core.ranking import complete_assignment, ranking_assignment
from ..core.spec import FunctionSpec
from ..obs import metrics as obs_metrics
from ..obs import span
from ..sim.engine import packed_netlist_evaluator
from ..synth.compile_ import SynthesisResult, compile_spec
from ..synth.library import Library
from ..synth.netlist import MappedNetlist

__all__ = [
    "POLICIES",
    "FlowResult",
    "apply_policy",
    "run_flow",
    "relative_metrics",
    "sampled_error_rate",
]

POLICIES = ("conventional", "ranking", "cfactor", "complete")
"""The four assignment policies of the evaluation."""


@dataclass(frozen=True)
class FlowResult:
    """One measured implementation.

    Attributes:
        benchmark: benchmark name.
        policy: assignment policy used.
        parameter: the policy's knob (fraction or threshold; 0 otherwise).
        objective: synthesis objective.
        fraction_assigned: fraction of DC entries decided for reliability.
        area / delay / power / gates / literals / error_rate: measurements.
    """

    benchmark: str
    policy: str
    parameter: float
    objective: str
    fraction_assigned: float
    area: float
    delay: float
    power: float
    gates: int
    literals: int
    error_rate: float


def apply_policy(
    spec: FunctionSpec,
    policy: str,
    *,
    fraction: float = 1.0,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[FunctionSpec, Assignment]:
    """Produce the (partially) assigned spec for a policy.

    Raises:
        ValueError: on unknown policy names.
    """
    if policy == "conventional":
        assignment = Assignment()
    elif policy == "ranking":
        assignment = ranking_assignment(spec, fraction)
    elif policy == "cfactor":
        assignment = cfactor_assignment(spec, threshold)
    elif policy == "complete":
        assignment = complete_assignment(spec)
    else:
        raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
    assigned = assignment.apply(spec) if len(assignment) else spec
    return assigned, assignment


def run_flow(
    spec: FunctionSpec,
    policy: str = "conventional",
    *,
    fraction: float = 1.0,
    threshold: float = DEFAULT_THRESHOLD,
    objective: str = "delay",
    library: Library | None = None,
) -> FlowResult:
    """Apply a policy and synthesise, returning all measurements."""
    obs_metrics.counter("flow.runs").inc()
    with span(
        "flow.run", benchmark=spec.name, policy=policy, objective=objective
    ):
        with span("flow.apply_policy", policy=policy):
            assigned, assignment = apply_policy(
                spec, policy, fraction=fraction, threshold=threshold
            )
        result: SynthesisResult = compile_spec(
            assigned, objective=objective, library=library, source_spec=spec
        )
    if policy == "ranking":
        parameter = fraction
    elif policy == "cfactor":
        parameter = threshold
    else:
        parameter = 0.0
    return FlowResult(
        benchmark=spec.name,
        policy=policy,
        parameter=parameter,
        objective=objective,
        fraction_assigned=assignment.fraction_of(spec),
        area=result.area,
        delay=result.delay,
        power=result.power,
        gates=result.num_gates,
        literals=result.literals,
        error_rate=result.error_rate,
    )


def relative_metrics(result: FlowResult, baseline: FlowResult) -> dict[str, float]:
    """Normalise a result against the conventional baseline.

    Returns:
        ``area``, ``delay``, ``power``, ``error_rate`` ratios (baseline =
        1.0, as in Figs. 4-6) plus ``area_improvement_pct`` and
        ``error_improvement_pct`` (positive = better, as in Table 2).
    """

    def ratio(value: float, reference: float) -> float:
        if reference:
            return value / reference
        # A zero baseline happens for degenerate (wire-only) circuits: any
        # non-zero cost is an unbounded relative overhead.
        return float("inf") if value else 1.0

    area_ratio = ratio(result.area, baseline.area)
    error_ratio = ratio(result.error_rate, baseline.error_rate)
    return {
        "area": area_ratio,
        "delay": ratio(result.delay, baseline.delay),
        "power": ratio(result.power, baseline.power),
        "error_rate": error_ratio,
        "area_improvement_pct": 100.0 * (1.0 - area_ratio),
        "error_improvement_pct": 100.0 * (1.0 - error_ratio),
    }


def sampled_error_rate(
    netlist: MappedNetlist,
    *,
    samples: int = 20_000,
    rng: np.random.Generator | None = None,
    source_filter: Callable[[np.ndarray], np.ndarray] | None = None,
) -> MonteCarloEstimate:
    """Monte-Carlo input-error rate of a mapped netlist, fully packed.

    The sampled counterpart of the exhaustive error rate reported by
    :func:`run_flow`: the whole trial loop — vector generation, circuit
    evaluation, disagreement counting — runs 64 vectors per uint64 word
    on the packed simulation engine, so it scales to netlists whose PI
    space cannot be enumerated.

    Args:
        netlist: the mapped implementation to measure.
        samples: target number of admissible (vector, flipped-pin) trials
            (see :func:`repro.core.montecarlo.estimate_error_rate`).
        rng: random generator (default: fresh, seeded 0).
        source_filter: optional admissibility predicate over boolean input
            batches (e.g. the original care set).
    """
    num_inputs = len(netlist.primary_inputs)
    obs_metrics.counter("flow.mc_runs").inc()
    with span("flow.mc_error_rate", netlist=len(netlist.gates), samples=samples):
        return estimate_error_rate(
            None,
            num_inputs,
            samples=samples,
            rng=rng,
            source_filter=source_filter,
            packed_evaluate=packed_netlist_evaluator(netlist),
        )
