"""End-to-end experiment flows: policy -> assignment -> synthesis -> metrics.

One :func:`run_flow` call reproduces one data point of the paper's
evaluation: apply a DC-assignment *policy* to a benchmark, push the result
through the conventional synthesis stack (ESPRESSO for the remaining DCs,
multi-level optimisation, mapping, objective tuning) and measure area,
delay, power, gate count and the input-error rate against the original
care set.

Since the stage-graph refactor ``run_flow`` is a thin driver over
:mod:`repro.pipeline`: it assembles the default ``assign`` → ``espresso``
→ ``optimize`` → ``map`` → ``tune`` → ``measure`` pipeline, runs it, and
packages the context into a :class:`FlowResult`.  Pass ``checkpoint_dir``
(or a prebuilt :class:`~repro.pipeline.checkpoint.CheckpointStore` via
``checkpoint``) to persist per-stage outputs so an interrupted or
re-parameterised run resumes from the last valid stage instead of
recomputing the whole flow — see ``docs/pipeline.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.cfactor import DEFAULT_THRESHOLD
from ..core.montecarlo import MonteCarloEstimate, estimate_error_rate
from ..core.spec import FunctionSpec
from ..obs import metrics as obs_metrics
from ..obs import span
from ..pipeline import DEFAULT_STAGES, CheckpointStore, FlowContext, Pipeline
from ..pipeline.stages import POLICIES, apply_policy
from ..sim.engine import packed_netlist_evaluator
from ..synth.library import Library
from ..synth.netlist import MappedNetlist

__all__ = [
    "POLICIES",
    "FlowResult",
    "apply_policy",
    "flow_result",
    "run_flow",
    "relative_metrics",
    "sampled_error_rate",
]


@dataclass(frozen=True)
class FlowResult:
    """One measured implementation.

    Attributes:
        benchmark: benchmark name.
        policy: assignment policy used.
        parameter: the policy's knob (fraction or threshold; 0 otherwise).
        objective: synthesis objective.
        fraction_assigned: fraction of DC entries decided for reliability.
        area / delay / power / gates / literals / error_rate: measurements.
    """

    benchmark: str
    policy: str
    parameter: float
    objective: str
    fraction_assigned: float
    area: float
    delay: float
    power: float
    gates: int
    literals: int
    error_rate: float


def flow_result(ctx: FlowContext) -> FlowResult:
    """Package a completed default-flow context as a :class:`FlowResult`.

    Raises:
        KeyError: when the context is missing flow artefacts (i.e. the
            ``assign`` ... ``measure`` stages have not all run).
    """
    spec = ctx.require("spec")
    assignment = ctx.require("assignment")
    synthesis = ctx.require("synthesis")
    policy = ctx.param("policy", "conventional")
    if policy == "ranking":
        parameter = ctx.param("fraction", 1.0)
    elif policy == "cfactor":
        parameter = ctx.param("threshold", DEFAULT_THRESHOLD)
    else:
        parameter = 0.0
    return FlowResult(
        benchmark=spec.name,
        policy=policy,
        parameter=parameter,
        objective=ctx.param("objective", "delay"),
        fraction_assigned=assignment.fraction_of(spec),
        area=synthesis.area,
        delay=synthesis.delay,
        power=synthesis.power,
        gates=synthesis.num_gates,
        literals=synthesis.literals,
        error_rate=synthesis.error_rate,
    )


def run_flow(
    spec: FunctionSpec,
    policy: str = "conventional",
    *,
    fraction: float = 1.0,
    threshold: float = DEFAULT_THRESHOLD,
    objective: str = "delay",
    library: Library | None = None,
    fault_model=None,
    checkpoint: CheckpointStore | None = None,
    checkpoint_dir: str | os.PathLike | None = None,
) -> FlowResult:
    """Apply a policy and synthesise, returning all measurements.

    A thin driver over the default six-stage pipeline.  With
    ``checkpoint`` / ``checkpoint_dir`` set, per-stage outputs are
    persisted content-addressed, so repeated or interrupted runs skip
    every stage whose inputs and parameters are unchanged.

    ``fault_model`` selects the ``measure`` stage's error semantics — a
    registry name, spec dict or :class:`~repro.faults.FaultModel`
    (default: the paper's single-bit input flip, bit-identical to the
    pre-fault-model flow).  The spec is canonicalised before it enters
    the pipeline parameters so equivalent specs share checkpoints.
    """
    obs_metrics.counter("flow.runs").inc()
    if checkpoint is None and checkpoint_dir is not None:
        checkpoint = CheckpointStore(checkpoint_dir)
    if fault_model is not None:
        from ..faults import create_fault_model

        fault_model = create_fault_model(fault_model).spec_dict()
    pipe = Pipeline(
        DEFAULT_STAGES,
        name="flow",
        params={
            "policy": policy,
            "fraction": fraction,
            "threshold": threshold,
            "objective": objective,
            "library": library,
            "fault_model": fault_model,
        },
        checkpoint=checkpoint,
    )
    with span(
        "flow.run", benchmark=spec.name, policy=policy, objective=objective
    ):
        ctx = pipe.run(spec=spec)
    return flow_result(ctx)


def relative_metrics(result: FlowResult, baseline: FlowResult) -> dict[str, float]:
    """Normalise a result against the conventional baseline.

    Returns:
        ``area``, ``delay``, ``power``, ``error_rate`` ratios (baseline =
        1.0, as in Figs. 4-6) plus ``area_improvement_pct`` and
        ``error_improvement_pct`` (positive = better, as in Table 2).
    """

    def ratio(value: float, reference: float) -> float:
        if reference:
            return value / reference
        # A zero baseline happens for degenerate (wire-only) circuits: any
        # non-zero cost is an unbounded relative overhead.
        return float("inf") if value else 1.0

    area_ratio = ratio(result.area, baseline.area)
    error_ratio = ratio(result.error_rate, baseline.error_rate)
    return {
        "area": area_ratio,
        "delay": ratio(result.delay, baseline.delay),
        "power": ratio(result.power, baseline.power),
        "error_rate": error_ratio,
        "area_improvement_pct": 100.0 * (1.0 - area_ratio),
        "error_improvement_pct": 100.0 * (1.0 - error_ratio),
    }


def sampled_error_rate(
    netlist: MappedNetlist,
    *,
    samples: int = 20_000,
    rng: np.random.Generator | None = None,
    source_filter: Callable[[np.ndarray], np.ndarray] | None = None,
    fault_model=None,
) -> MonteCarloEstimate:
    """Monte-Carlo input-error rate of a mapped netlist, fully packed.

    The sampled counterpart of the exhaustive error rate reported by
    :func:`run_flow`: the whole trial loop — vector generation, circuit
    evaluation, disagreement counting — runs 64 vectors per uint64 word
    on the packed simulation engine, so it scales to netlists whose PI
    space cannot be enumerated.

    Args:
        netlist: the mapped implementation to measure.
        samples: target number of admissible (vector, fault) trials
            (see :func:`repro.core.montecarlo.estimate_error_rate`).
        rng: random generator (default: fresh, seeded 0).
        source_filter: optional admissibility predicate over boolean input
            batches (e.g. the original care set).
        fault_model: input-scope fault model or declarative spec for the
            corruption masks (default: the single-bit pin flip).
    """
    num_inputs = len(netlist.primary_inputs)
    obs_metrics.counter("flow.mc_runs").inc()
    with span("flow.mc_error_rate", netlist=len(netlist.gates), samples=samples):
        return estimate_error_rate(
            None,
            num_inputs,
            samples=samples,
            rng=rng,
            source_filter=source_filter,
            packed_evaluate=packed_netlist_evaluator(netlist),
            fault_model=fault_model,
        )
