"""Sweeps and table builders for the paper's figures and tables.

Each function here regenerates the data behind one artefact:

* :func:`fraction_sweep` — Figs. 4 and 5 (ranking fraction 0 -> 1);
* :func:`family_tradeoff` — Fig. 6 (area vs error rate per C^f family);
* :func:`table2_row` — Table 2 (LC^f vs ranking vs complete);
* :func:`table3_row` — Table 3 (estimate bands and achieved rates);
* :func:`threshold_sweep` — the LC^f-threshold ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..benchgen.synthetic import generate_spec
from ..core.cfactor import DEFAULT_THRESHOLD, cfactor_assignment
from ..core.estimates import border_bounds, signal_probability_bounds
from ..core.reliability import ErrorBounds, exact_error_bounds
from ..core.spec import FunctionSpec
from .experiment import FlowResult, relative_metrics, run_flow

__all__ = [
    "fraction_sweep",
    "family_tradeoff",
    "table2_row",
    "Table2Row",
    "table3_row",
    "Table3Row",
    "threshold_sweep",
]


def fraction_sweep(
    spec: FunctionSpec,
    fractions: list[float],
    *,
    objective: str = "delay",
) -> list[FlowResult]:
    """Ranking-based results across assignment fractions (Figs. 4-5)."""
    return [
        run_flow(spec, "ranking", fraction=fraction, objective=objective)
        for fraction in fractions
    ]


def family_tradeoff(
    *,
    num_inputs: int = 11,
    num_outputs: int = 11,
    complexity_factors: list[float] = (0.45, 0.55, 0.65, 0.75, 0.85),
    functions_per_family: int = 10,
    fractions: list[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    dc_fraction: float = 0.6,
    objective: str = "power",
    seed: int = 0,
) -> dict[float, list[dict[str, float]]]:
    """Fig. 6: normalised (area, error rate) trajectories per C^f family.

    Returns:
        Map from family C^f to a list of ``{fraction, area, error_rate}``
        points averaged over the family's functions, normalised to the
        fraction-0 (conventional) point of each function.
    """
    trajectories: dict[float, list[dict[str, float]]] = {}
    for cf in complexity_factors:
        accumulator = {fraction: [] for fraction in fractions}
        for index in range(functions_per_family):
            spec = generate_spec(
                f"fam{cf:.2f}_{index}",
                num_inputs,
                num_outputs,
                target_cf=cf,
                dc_fraction=dc_fraction,
                seed=seed * 1000 + int(cf * 100) * 10 + index,
            )
            baseline = run_flow(spec, "ranking", fraction=0.0, objective=objective)
            if baseline.area == 0:
                # A degenerate (wire-only) family member carries no
                # overhead signal; skip it rather than polluting the
                # family mean with undefined ratios.
                continue
            for fraction in fractions:
                if fraction == 0.0:
                    result = baseline
                else:
                    result = run_flow(
                        spec, "ranking", fraction=fraction, objective=objective
                    )
                rel = relative_metrics(result, baseline)
                accumulator[fraction].append((rel["area"], rel["error_rate"]))
        if not any(accumulator.values()):
            continue  # every family member was degenerate; nothing to report
        trajectories[cf] = [
            {
                "fraction": fraction,
                "area": float(np.mean([p[0] for p in points])),
                "error_rate": float(np.mean([p[1] for p in points])),
            }
            for fraction, points in accumulator.items()
        ]
    return trajectories


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2 (improvements in percent; negative = overhead)."""

    benchmark: str
    cf: float
    lcf_area: float
    lcf_error: float
    ranking_area: float
    ranking_error: float
    complete_area: float
    complete_error: float


def table2_row(
    spec: FunctionSpec,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    objective: str = "area",
) -> Table2Row:
    """Table 2: LC^f-based vs equal-fraction ranking vs complete.

    The ranking fraction is tied to the fraction the LC^f policy decided,
    exactly as the paper compares them.
    """
    from ..core.complexity import spec_complexity_factor

    baseline = run_flow(spec, "conventional", objective=objective)
    lcf_assignment = cfactor_assignment(spec, threshold)
    lcf_fraction = min(1.0, lcf_assignment.fraction_of(spec))
    lcf = run_flow(spec, "cfactor", threshold=threshold, objective=objective)
    ranking = run_flow(spec, "ranking", fraction=lcf_fraction, objective=objective)
    complete = run_flow(spec, "complete", objective=objective)
    rel_lcf = relative_metrics(lcf, baseline)
    rel_rank = relative_metrics(ranking, baseline)
    rel_complete = relative_metrics(complete, baseline)
    return Table2Row(
        benchmark=spec.name,
        cf=spec_complexity_factor(spec),
        lcf_area=rel_lcf["area_improvement_pct"],
        lcf_error=rel_lcf["error_improvement_pct"],
        ranking_area=rel_rank["area_improvement_pct"],
        ranking_error=rel_rank["error_improvement_pct"],
        complete_area=rel_complete["area_improvement_pct"],
        complete_error=rel_complete["error_improvement_pct"],
    )


@dataclass(frozen=True)
class Table3Row:
    """One row of Table 3: bands, achieved rates and gate count."""

    benchmark: str
    gates: int
    exact: ErrorBounds
    signal: ErrorBounds
    border: ErrorBounds
    conventional_rate: float
    conventional_diff_pct: float
    lcf_rate: float
    lcf_diff_pct: float


def table3_row(
    spec: FunctionSpec,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    objective: str = "area",
) -> Table3Row:
    """Table 3: estimate bands plus conventional and LC^f achieved rates.

    The "% Diff." columns report how far above the exact minimum each
    implementation's rate lands, as in the paper.
    """
    exact = exact_error_bounds(spec)
    conventional = run_flow(spec, "conventional", objective=objective)
    lcf = run_flow(spec, "cfactor", threshold=threshold, objective=objective)

    def diff_pct(rate: float) -> float:
        return 100.0 * (rate - exact.lo) / exact.lo if exact.lo else 0.0

    return Table3Row(
        benchmark=spec.name,
        gates=conventional.gates,
        exact=exact,
        signal=signal_probability_bounds(spec),
        border=border_bounds(spec),
        conventional_rate=conventional.error_rate,
        conventional_diff_pct=diff_pct(conventional.error_rate),
        lcf_rate=lcf.error_rate,
        lcf_diff_pct=diff_pct(lcf.error_rate),
    )


def threshold_sweep(
    spec: FunctionSpec,
    thresholds: list[float],
    *,
    objective: str = "area",
) -> list[FlowResult]:
    """LC^f-threshold ablation: results across the threshold knob."""
    return [
        run_flow(spec, "cfactor", threshold=threshold, objective=objective)
        for threshold in thresholds
    ]
