"""Sweeps and table builders for the paper's figures and tables.

Each function here regenerates the data behind one artefact:

* :func:`fraction_sweep` — Figs. 4 and 5 (ranking fraction 0 -> 1);
* :func:`family_tradeoff` — Fig. 6 (area vs error rate per C^f family);
* :func:`table2_row` — Table 2 (LC^f vs ranking vs complete);
* :func:`table3_row` — Table 3 (estimate bands and achieved rates);
* :func:`threshold_sweep` — the LC^f-threshold ablation.

Parallel execution
------------------

Every sweep point is an independent ``run_flow`` call — itself a thin
driver over the stage graph of :mod:`repro.pipeline` — so the sweep
drivers accept a ``jobs`` argument (an integer or ``"auto"``) and fan
the points out over the process-wide warm worker pool of
:mod:`repro.perf.pool` (see :func:`parallel_map`): persistent preloaded
workers, cache pre-seeding, shared-memory task transfer and batched
work-stealing scheduling.  Results always come back in input order and
synthesis is deterministic across processes, so a parallel sweep is
bit-identical to the serial one.  ``jobs <= 1`` runs in-process, which
additionally shares the minimisation cache of :mod:`repro.perf` across
points.

Checkpointed sweeps: pass ``checkpoint_dir`` and every point persists
its per-stage outputs content-addressed (see
:mod:`repro.pipeline.checkpoint`).  An interrupted sweep — or a
re-parameterised one whose early stages are unaffected by the changed
knob — resumes from the last valid stage output of each point instead
of recomputing whole flows.  Worker processes share the directory
safely: keys are content digests and writes are atomic.

Observability: each worker task measures its own tracing spans and
metrics delta and ships them back with the result; the parent merges
them into its tracer / registry, so ``--trace`` and ``--metrics-out``
see the whole fleet, not just the parent process.  A ``progress``
callback (``callback(done, total)``) fires as points complete, and a
worker crash surfaces as :class:`SweepPointError` carrying the failing
point's parameters and the worker's traceback instead of a bare pickled
stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

from ..benchgen.synthetic import generate_spec
from ..core.cfactor import DEFAULT_THRESHOLD, cfactor_assignment
from ..core.estimates import border_bounds, signal_probability_bounds
from ..core.reliability import ErrorBounds, exact_error_bounds
from ..core.spec import FunctionSpec
from ..obs import span
from ..perf.pool import WorkerTaskError, get_pool, pool_enabled, resolve_jobs
from .experiment import FlowResult, relative_metrics, run_flow

__all__ = [
    "SweepPointError",
    "fraction_sweep",
    "family_tradeoff",
    "parallel_map",
    "table2_row",
    "Table2Row",
    "table3_row",
    "Table3Row",
    "threshold_sweep",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

ProgressCallback = Callable[[int, int], None]
"""``callback(done, total)`` — invoked after every completed point."""


class SweepPointError(RuntimeError):
    """A sweep point failed in a worker process.

    Attributes:
        index: position of the failing point in the task list.
        point: the task that failed (e.g. the ``(spec, policy, kwargs)``
            tuple of a flow sweep), so the parameters that triggered the
            crash are on the exception instead of buried in a pickled
            traceback.
        worker_traceback: the worker-side formatted traceback.
    """

    def __init__(self, index: int, point: Any, message: str,
                 worker_traceback: str):
        self.index = index
        self.point = point
        self.worker_traceback = worker_traceback
        super().__init__(
            f"sweep point {index} ({_describe_point(point)}) failed: "
            f"{message}\n--- worker traceback ---\n{worker_traceback}"
        )


def _describe_point(point: Any) -> str:
    """A compact, parameter-first description of one sweep task."""
    if (
        isinstance(point, tuple)
        and len(point) == 3
        and isinstance(point[1], str)
        and isinstance(point[2], dict)
    ):
        spec, policy, kwargs = point
        name = getattr(spec, "name", spec)
        args = ", ".join(f"{key}={value!r}" for key, value in kwargs.items())
        return f"benchmark={name}, policy={policy}, {args}"
    text = repr(point)
    return text if len(text) <= 120 else text[:117] + "..."


def parallel_map(
    func: Callable[[_T], _R],
    tasks: Sequence[_T],
    jobs: int | str,
    *,
    progress: ProgressCallback | None = None,
) -> list[_R]:
    """Map *func* over *tasks*, optionally across warm worker processes.

    Parallel execution runs on the process-wide warm pool of
    :mod:`repro.perf.pool`: workers persist across successive calls (the
    second sweep in a process pays no spawn or import cost), task
    payloads travel zero-copy through shared memory, and points are
    scheduled as work-stealing batches with a bounded in-flight window —
    a thousand-point sweep never holds every payload resident at once.

    Args:
        func: a picklable (module-level) callable.
        jobs: worker-process count, or ``"auto"`` for the CPU count;
            ``<= 1`` runs serially in-process.
        progress: optional ``callback(done, total)`` fired as each task
            completes (in completion order, with ``done`` monotonically
            increasing; results still return in input order).

    Returns:
        Results in input order regardless of completion order, so callers
        see deterministic output either way.

    Raises:
        SweepPointError: when a worker task raises; the failing task's
            parameters and the worker traceback ride on the exception,
            and queued-but-unclaimed work is cancelled.
    """
    total = len(tasks)
    jobs = resolve_jobs(jobs, points=total)
    if jobs <= 1 or total <= 1 or not pool_enabled():
        results = []
        for index, task in enumerate(tasks):
            results.append(func(task))
            if progress is not None:
                progress(index + 1, total)
        return results
    pool = get_pool(jobs)
    try:
        return pool.map(func, tasks, jobs, progress=progress)
    except WorkerTaskError as error:
        raise SweepPointError(
            error.index, tasks[error.index], error.message,
            error.worker_traceback,
        ) from None


def _run_flow_task(task: tuple[FunctionSpec, str, dict]) -> FlowResult:
    """Module-level trampoline so sweep points pickle across processes."""
    spec, policy, kwargs = task
    return run_flow(spec, policy, **kwargs)


def fraction_sweep(
    spec: FunctionSpec,
    fractions: list[float],
    *,
    objective: str = "delay",
    jobs: int = 1,
    progress: ProgressCallback | None = None,
    checkpoint_dir: str | None = None,
) -> list[FlowResult]:
    """Ranking-based results across assignment fractions (Figs. 4-5)."""
    extra = {} if checkpoint_dir is None else {"checkpoint_dir": checkpoint_dir}
    tasks = [
        (spec, "ranking", {"fraction": fraction, "objective": objective, **extra})
        for fraction in fractions
    ]
    with span(
        "sweep.fraction", benchmark=spec.name, points=len(tasks), jobs=jobs
    ):
        return parallel_map(_run_flow_task, tasks, jobs, progress=progress)


def _family_member_task(
    task: tuple[FunctionSpec, tuple[float, ...], str, str | None],
) -> list[tuple[float, float, float]] | None:
    """One family member's full trajectory: ``(fraction, area, error)``.

    Returns None for degenerate (wire-only) members, whose baseline has
    zero area and therefore no overhead signal.
    """
    spec, fractions, objective, checkpoint_dir = task
    extra = {} if checkpoint_dir is None else {"checkpoint_dir": checkpoint_dir}
    baseline = run_flow(spec, "ranking", fraction=0.0, objective=objective, **extra)
    if baseline.area == 0:
        return None
    points: list[tuple[float, float, float]] = []
    for fraction in fractions:
        if fraction == 0.0:
            result = baseline
        else:
            result = run_flow(
                spec, "ranking", fraction=fraction, objective=objective, **extra
            )
        rel = relative_metrics(result, baseline)
        points.append((fraction, rel["area"], rel["error_rate"]))
    return points


def family_tradeoff(
    *,
    num_inputs: int = 11,
    num_outputs: int = 11,
    complexity_factors: list[float] = (0.45, 0.55, 0.65, 0.75, 0.85),
    functions_per_family: int = 10,
    fractions: list[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    dc_fraction: float = 0.6,
    objective: str = "power",
    seed: int = 0,
    jobs: int = 1,
    progress: ProgressCallback | None = None,
    checkpoint_dir: str | None = None,
) -> dict[float, list[dict[str, float]]]:
    """Fig. 6: normalised (area, error rate) trajectories per C^f family.

    With ``jobs > 1`` the family members (each a full baseline-plus-
    fractions trajectory) are distributed over worker processes; the
    aggregation below is order-preserving, so results are identical to the
    serial run.

    Returns:
        Map from family C^f to a list of ``{fraction, area, error_rate}``
        points averaged over the family's functions, normalised to the
        fraction-0 (conventional) point of each function.
    """
    fractions = tuple(fractions)
    members: list[tuple[float, FunctionSpec]] = []
    for cf in complexity_factors:
        for index in range(functions_per_family):
            members.append(
                (
                    cf,
                    generate_spec(
                        f"fam{cf:.2f}_{index}",
                        num_inputs,
                        num_outputs,
                        target_cf=cf,
                        dc_fraction=dc_fraction,
                        seed=seed * 1000 + int(cf * 100) * 10 + index,
                    ),
                )
            )
    with span("sweep.family", members=len(members), jobs=jobs):
        trajectories_raw = parallel_map(
            _family_member_task,
            [(spec, fractions, objective, checkpoint_dir) for _, spec in members],
            jobs,
            progress=progress,
        )
    trajectories: dict[float, list[dict[str, float]]] = {}
    for cf in complexity_factors:
        accumulator: dict[float, list[tuple[float, float]]] = {
            fraction: [] for fraction in fractions
        }
        for (member_cf, _), points in zip(members, trajectories_raw):
            if member_cf != cf or points is None:
                continue
            for fraction, area, error_rate in points:
                accumulator[fraction].append((area, error_rate))
        if not any(accumulator.values()):
            continue  # every family member was degenerate; nothing to report
        trajectories[cf] = [
            {
                "fraction": fraction,
                "area": float(np.mean([p[0] for p in points])),
                "error_rate": float(np.mean([p[1] for p in points])),
            }
            for fraction, points in accumulator.items()
        ]
    return trajectories


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2 (improvements in percent; negative = overhead)."""

    benchmark: str
    cf: float
    lcf_area: float
    lcf_error: float
    ranking_area: float
    ranking_error: float
    complete_area: float
    complete_error: float


def table2_row(
    spec: FunctionSpec,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    objective: str = "area",
    checkpoint_dir: str | None = None,
) -> Table2Row:
    """Table 2: LC^f-based vs equal-fraction ranking vs complete.

    The ranking fraction is tied to the fraction the LC^f policy decided,
    exactly as the paper compares them.
    """
    from ..core.complexity import spec_complexity_factor

    extra = {} if checkpoint_dir is None else {"checkpoint_dir": checkpoint_dir}
    baseline = run_flow(spec, "conventional", objective=objective, **extra)
    lcf_assignment = cfactor_assignment(spec, threshold)
    lcf_fraction = min(1.0, lcf_assignment.fraction_of(spec))
    lcf = run_flow(
        spec, "cfactor", threshold=threshold, objective=objective, **extra
    )
    ranking = run_flow(
        spec, "ranking", fraction=lcf_fraction, objective=objective, **extra
    )
    complete = run_flow(spec, "complete", objective=objective, **extra)
    rel_lcf = relative_metrics(lcf, baseline)
    rel_rank = relative_metrics(ranking, baseline)
    rel_complete = relative_metrics(complete, baseline)
    return Table2Row(
        benchmark=spec.name,
        cf=spec_complexity_factor(spec),
        lcf_area=rel_lcf["area_improvement_pct"],
        lcf_error=rel_lcf["error_improvement_pct"],
        ranking_area=rel_rank["area_improvement_pct"],
        ranking_error=rel_rank["error_improvement_pct"],
        complete_area=rel_complete["area_improvement_pct"],
        complete_error=rel_complete["error_improvement_pct"],
    )


@dataclass(frozen=True)
class Table3Row:
    """One row of Table 3: bands, achieved rates and gate count."""

    benchmark: str
    gates: int
    exact: ErrorBounds
    signal: ErrorBounds
    border: ErrorBounds
    conventional_rate: float
    conventional_diff_pct: float
    lcf_rate: float
    lcf_diff_pct: float


def table3_row(
    spec: FunctionSpec,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    objective: str = "area",
    checkpoint_dir: str | None = None,
) -> Table3Row:
    """Table 3: estimate bands plus conventional and LC^f achieved rates.

    The "% Diff." columns report how far above the exact minimum each
    implementation's rate lands, as in the paper.
    """
    extra = {} if checkpoint_dir is None else {"checkpoint_dir": checkpoint_dir}
    exact = exact_error_bounds(spec)
    conventional = run_flow(spec, "conventional", objective=objective, **extra)
    lcf = run_flow(
        spec, "cfactor", threshold=threshold, objective=objective, **extra
    )

    def diff_pct(rate: float) -> float:
        return 100.0 * (rate - exact.lo) / exact.lo if exact.lo else 0.0

    return Table3Row(
        benchmark=spec.name,
        gates=conventional.gates,
        exact=exact,
        signal=signal_probability_bounds(spec),
        border=border_bounds(spec),
        conventional_rate=conventional.error_rate,
        conventional_diff_pct=diff_pct(conventional.error_rate),
        lcf_rate=lcf.error_rate,
        lcf_diff_pct=diff_pct(lcf.error_rate),
    )


def threshold_sweep(
    spec: FunctionSpec,
    thresholds: list[float],
    *,
    objective: str = "area",
    jobs: int = 1,
    progress: ProgressCallback | None = None,
    checkpoint_dir: str | None = None,
) -> list[FlowResult]:
    """LC^f-threshold ablation: results across the threshold knob."""
    extra = {} if checkpoint_dir is None else {"checkpoint_dir": checkpoint_dir}
    tasks = [
        (spec, "cfactor", {"threshold": threshold, "objective": objective, **extra})
        for threshold in thresholds
    ]
    with span(
        "sweep.threshold", benchmark=spec.name, points=len(tasks), jobs=jobs
    ):
        return parallel_map(_run_flow_task, tasks, jobs, progress=progress)
