"""Sweeps and table builders for the paper's figures and tables.

Each function here regenerates the data behind one artefact:

* :func:`fraction_sweep` — Figs. 4 and 5 (ranking fraction 0 -> 1);
* :func:`family_tradeoff` — Fig. 6 (area vs error rate per C^f family);
* :func:`table2_row` — Table 2 (LC^f vs ranking vs complete);
* :func:`table3_row` — Table 3 (estimate bands and achieved rates);
* :func:`threshold_sweep` — the LC^f-threshold ablation.

Parallel execution
------------------

Every sweep point is an independent ``run_flow`` call, so the sweep
drivers accept a ``jobs`` argument and fan the points out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (see
:func:`parallel_map`).  Results always come back in input order, so a
parallel sweep is bit-identical to the serial one.  ``jobs <= 1`` runs
in-process, which additionally shares the minimisation cache of
:mod:`repro.perf` across points.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from ..benchgen.synthetic import generate_spec
from ..core.cfactor import DEFAULT_THRESHOLD, cfactor_assignment
from ..core.estimates import border_bounds, signal_probability_bounds
from ..core.reliability import ErrorBounds, exact_error_bounds
from ..core.spec import FunctionSpec
from .experiment import FlowResult, relative_metrics, run_flow

__all__ = [
    "fraction_sweep",
    "family_tradeoff",
    "parallel_map",
    "table2_row",
    "Table2Row",
    "table3_row",
    "Table3Row",
    "threshold_sweep",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


def parallel_map(
    func: Callable[[_T], _R], tasks: Sequence[_T], jobs: int
) -> list[_R]:
    """Map *func* over *tasks*, optionally across worker processes.

    Args:
        func: a picklable (module-level) callable.
        jobs: worker-process count; ``<= 1`` runs serially in-process.

    Returns:
        Results in input order regardless of completion order, so callers
        see deterministic output either way.
    """
    if jobs <= 1 or len(tasks) <= 1:
        return [func(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        return list(pool.map(func, tasks))


def _run_flow_task(task: tuple[FunctionSpec, str, dict]) -> FlowResult:
    """Module-level trampoline so sweep points pickle across processes."""
    spec, policy, kwargs = task
    return run_flow(spec, policy, **kwargs)


def fraction_sweep(
    spec: FunctionSpec,
    fractions: list[float],
    *,
    objective: str = "delay",
    jobs: int = 1,
) -> list[FlowResult]:
    """Ranking-based results across assignment fractions (Figs. 4-5)."""
    tasks = [
        (spec, "ranking", {"fraction": fraction, "objective": objective})
        for fraction in fractions
    ]
    return parallel_map(_run_flow_task, tasks, jobs)


def _family_member_task(
    task: tuple[FunctionSpec, tuple[float, ...], str],
) -> list[tuple[float, float, float]] | None:
    """One family member's full trajectory: ``(fraction, area, error)``.

    Returns None for degenerate (wire-only) members, whose baseline has
    zero area and therefore no overhead signal.
    """
    spec, fractions, objective = task
    baseline = run_flow(spec, "ranking", fraction=0.0, objective=objective)
    if baseline.area == 0:
        return None
    points: list[tuple[float, float, float]] = []
    for fraction in fractions:
        if fraction == 0.0:
            result = baseline
        else:
            result = run_flow(spec, "ranking", fraction=fraction, objective=objective)
        rel = relative_metrics(result, baseline)
        points.append((fraction, rel["area"], rel["error_rate"]))
    return points


def family_tradeoff(
    *,
    num_inputs: int = 11,
    num_outputs: int = 11,
    complexity_factors: list[float] = (0.45, 0.55, 0.65, 0.75, 0.85),
    functions_per_family: int = 10,
    fractions: list[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    dc_fraction: float = 0.6,
    objective: str = "power",
    seed: int = 0,
    jobs: int = 1,
) -> dict[float, list[dict[str, float]]]:
    """Fig. 6: normalised (area, error rate) trajectories per C^f family.

    With ``jobs > 1`` the family members (each a full baseline-plus-
    fractions trajectory) are distributed over worker processes; the
    aggregation below is order-preserving, so results are identical to the
    serial run.

    Returns:
        Map from family C^f to a list of ``{fraction, area, error_rate}``
        points averaged over the family's functions, normalised to the
        fraction-0 (conventional) point of each function.
    """
    fractions = tuple(fractions)
    members: list[tuple[float, FunctionSpec]] = []
    for cf in complexity_factors:
        for index in range(functions_per_family):
            members.append(
                (
                    cf,
                    generate_spec(
                        f"fam{cf:.2f}_{index}",
                        num_inputs,
                        num_outputs,
                        target_cf=cf,
                        dc_fraction=dc_fraction,
                        seed=seed * 1000 + int(cf * 100) * 10 + index,
                    ),
                )
            )
    trajectories_raw = parallel_map(
        _family_member_task,
        [(spec, fractions, objective) for _, spec in members],
        jobs,
    )
    trajectories: dict[float, list[dict[str, float]]] = {}
    for cf in complexity_factors:
        accumulator: dict[float, list[tuple[float, float]]] = {
            fraction: [] for fraction in fractions
        }
        for (member_cf, _), points in zip(members, trajectories_raw):
            if member_cf != cf or points is None:
                continue
            for fraction, area, error_rate in points:
                accumulator[fraction].append((area, error_rate))
        if not any(accumulator.values()):
            continue  # every family member was degenerate; nothing to report
        trajectories[cf] = [
            {
                "fraction": fraction,
                "area": float(np.mean([p[0] for p in points])),
                "error_rate": float(np.mean([p[1] for p in points])),
            }
            for fraction, points in accumulator.items()
        ]
    return trajectories


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2 (improvements in percent; negative = overhead)."""

    benchmark: str
    cf: float
    lcf_area: float
    lcf_error: float
    ranking_area: float
    ranking_error: float
    complete_area: float
    complete_error: float


def table2_row(
    spec: FunctionSpec,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    objective: str = "area",
) -> Table2Row:
    """Table 2: LC^f-based vs equal-fraction ranking vs complete.

    The ranking fraction is tied to the fraction the LC^f policy decided,
    exactly as the paper compares them.
    """
    from ..core.complexity import spec_complexity_factor

    baseline = run_flow(spec, "conventional", objective=objective)
    lcf_assignment = cfactor_assignment(spec, threshold)
    lcf_fraction = min(1.0, lcf_assignment.fraction_of(spec))
    lcf = run_flow(spec, "cfactor", threshold=threshold, objective=objective)
    ranking = run_flow(spec, "ranking", fraction=lcf_fraction, objective=objective)
    complete = run_flow(spec, "complete", objective=objective)
    rel_lcf = relative_metrics(lcf, baseline)
    rel_rank = relative_metrics(ranking, baseline)
    rel_complete = relative_metrics(complete, baseline)
    return Table2Row(
        benchmark=spec.name,
        cf=spec_complexity_factor(spec),
        lcf_area=rel_lcf["area_improvement_pct"],
        lcf_error=rel_lcf["error_improvement_pct"],
        ranking_area=rel_rank["area_improvement_pct"],
        ranking_error=rel_rank["error_improvement_pct"],
        complete_area=rel_complete["area_improvement_pct"],
        complete_error=rel_complete["error_improvement_pct"],
    )


@dataclass(frozen=True)
class Table3Row:
    """One row of Table 3: bands, achieved rates and gate count."""

    benchmark: str
    gates: int
    exact: ErrorBounds
    signal: ErrorBounds
    border: ErrorBounds
    conventional_rate: float
    conventional_diff_pct: float
    lcf_rate: float
    lcf_diff_pct: float


def table3_row(
    spec: FunctionSpec,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    objective: str = "area",
) -> Table3Row:
    """Table 3: estimate bands plus conventional and LC^f achieved rates.

    The "% Diff." columns report how far above the exact minimum each
    implementation's rate lands, as in the paper.
    """
    exact = exact_error_bounds(spec)
    conventional = run_flow(spec, "conventional", objective=objective)
    lcf = run_flow(spec, "cfactor", threshold=threshold, objective=objective)

    def diff_pct(rate: float) -> float:
        return 100.0 * (rate - exact.lo) / exact.lo if exact.lo else 0.0

    return Table3Row(
        benchmark=spec.name,
        gates=conventional.gates,
        exact=exact,
        signal=signal_probability_bounds(spec),
        border=border_bounds(spec),
        conventional_rate=conventional.error_rate,
        conventional_diff_pct=diff_pct(conventional.error_rate),
        lcf_rate=lcf.error_rate,
        lcf_diff_pct=diff_pct(lcf.error_rate),
    )


def threshold_sweep(
    spec: FunctionSpec,
    thresholds: list[float],
    *,
    objective: str = "area",
    jobs: int = 1,
) -> list[FlowResult]:
    """LC^f-threshold ablation: results across the threshold knob."""
    tasks = [
        (spec, "cfactor", {"threshold": threshold, "objective": objective})
        for threshold in thresholds
    ]
    return parallel_map(_run_flow_task, tasks, jobs)
