"""CSV export of regenerated figure/table data.

The benchmarks print human-readable tables; this module writes the same
data as machine-readable CSV so the figures can be re-plotted with any
external tool.  ``export_all`` regenerates every figure's data into a
directory (this is what ``repro export`` drives).
"""

from __future__ import annotations

import csv
import os
from pathlib import Path

from ..benchgen import TABLE1, mcnc_benchmark
from ..core.complexity import spec_complexity_factor, spec_expected_complexity_factor
from .experiment import relative_metrics, run_flow
from .sweep import table2_row, table3_row

__all__ = ["export_table1", "export_fraction_sweep", "export_table2", "export_table3", "export_all"]


def _write_csv(path: Path, header: list[str], rows: list[list]) -> None:
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)


def export_table1(directory: Path, names: list[str]) -> Path:
    """Write the Table 1 properties of the chosen benchmarks."""
    rows = []
    for info in TABLE1:
        if info.name not in names:
            continue
        spec = mcnc_benchmark(info.name)
        rows.append([
            info.name, spec.num_inputs, spec.num_outputs,
            round(100 * spec.dc_fraction(), 2),
            round(spec_expected_complexity_factor(spec), 4),
            round(spec_complexity_factor(spec), 4),
        ])
    path = directory / "table1_properties.csv"
    _write_csv(path, ["name", "inputs", "outputs", "dc_percent", "expected_cf", "cf"], rows)
    return path


def export_fraction_sweep(
    directory: Path,
    names: list[str],
    fractions: list[float],
    objective: str = "power",
    jobs: int = 1,
) -> Path:
    """Write the Fig. 4/5 sweep data (normalised metrics per fraction).

    With ``jobs > 1`` each benchmark's fractions fan out over the warm
    worker pool (see :func:`repro.flows.sweep.fraction_sweep`); results
    are bit-identical to the serial export.
    """
    from .sweep import fraction_sweep

    rows = []
    for name in names:
        spec = mcnc_benchmark(name)
        results = fraction_sweep(
            spec, list(fractions), objective=objective, jobs=jobs
        )
        baseline = (
            results[fractions.index(0.0)] if 0.0 in fractions
            else run_flow(spec, "ranking", fraction=0.0, objective=objective)
        )
        for fraction, result in zip(fractions, results):
            rel = relative_metrics(result, baseline)
            rows.append([
                name, fraction,
                round(rel["error_rate"], 5), round(rel["area"], 5),
                round(rel["delay"], 5), round(rel["power"], 5),
            ])
    path = directory / f"fig45_sweep_{objective}.csv"
    _write_csv(
        path,
        ["benchmark", "fraction", "error_norm", "area_norm", "delay_norm", "power_norm"],
        rows,
    )
    return path


def _table2_task(name: str) -> "Table2Row":
    """Module-level trampoline: Table 2 rows pickle across pool workers."""
    return table2_row(mcnc_benchmark(name))


def _table3_task(name: str) -> "Table3Row":
    """Module-level trampoline: Table 3 rows pickle across pool workers."""
    return table3_row(mcnc_benchmark(name))


def export_table2(directory: Path, names: list[str], jobs: int = 1) -> Path:
    """Write Table 2 rows (one benchmark per pool task with ``jobs > 1``)."""
    from .sweep import parallel_map

    rows = []
    for row in parallel_map(_table2_task, names, jobs):
        rows.append([
            row.benchmark, round(row.cf, 4),
            round(row.lcf_area, 2), round(row.lcf_error, 2),
            round(row.ranking_area, 2), round(row.ranking_error, 2),
            round(row.complete_area, 2), round(row.complete_error, 2),
        ])
    path = directory / "table2_assignment.csv"
    _write_csv(
        path,
        ["name", "cf", "lcf_area_pct", "lcf_error_pct",
         "ranking_area_pct", "ranking_error_pct",
         "complete_area_pct", "complete_error_pct"],
        rows,
    )
    return path


def export_table3(directory: Path, names: list[str], jobs: int = 1) -> Path:
    """Write Table 3 rows (one benchmark per pool task with ``jobs > 1``)."""
    from .sweep import parallel_map

    rows = []
    for row in parallel_map(_table3_task, names, jobs):
        rows.append([
            row.benchmark, row.gates,
            round(row.exact.lo, 5), round(row.exact.hi, 5),
            round(row.signal.lo, 5), round(row.signal.hi, 5),
            round(row.border.lo, 5), round(row.border.hi, 5),
            round(row.conventional_rate, 5), round(row.conventional_diff_pct, 2),
            round(row.lcf_rate, 5), round(row.lcf_diff_pct, 2),
        ])
    path = directory / "table3_estimates.csv"
    _write_csv(
        path,
        ["name", "gates", "exact_lo", "exact_hi", "signal_lo", "signal_hi",
         "border_lo", "border_hi", "conv_rate", "conv_diff_pct",
         "lcf_rate", "lcf_diff_pct"],
        rows,
    )
    return path


def export_all(
    directory: str | os.PathLike,
    *,
    names: list[str] | None = None,
    fractions: list[float] | None = None,
    jobs: int = 1,
) -> list[Path]:
    """Regenerate all figure/table CSVs into *directory*.

    ``jobs > 1`` fans the sweep points and per-benchmark table rows out
    over the warm worker pool; the CSVs are bit-identical either way.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    names = names or ["bench", "fout", "p3", "test4", "exam"]
    fractions = fractions or [0.0, 0.25, 0.5, 0.75, 1.0]
    return [
        export_table1(target, names),
        export_fraction_sweep(target, names, fractions, jobs=jobs),
        export_table2(target, names, jobs=jobs),
        export_table3(target, names, jobs=jobs),
    ]
