"""Experiment flows: one call per paper artefact data point.

Every flow is a thin driver over the stage graph of
:mod:`repro.pipeline`; pass ``checkpoint_dir`` to any of them to make
runs resumable (see ``docs/pipeline.md``).
"""

from .experiment import (
    POLICIES,
    FlowResult,
    apply_policy,
    flow_result,
    relative_metrics,
    run_flow,
)
from .export import export_all
from .report import format_table
from .sweep import (
    Table2Row,
    Table3Row,
    family_tradeoff,
    fraction_sweep,
    table2_row,
    table3_row,
    threshold_sweep,
)

__all__ = [
    "POLICIES",
    "FlowResult",
    "apply_policy",
    "flow_result",
    "relative_metrics",
    "run_flow",
    "export_all",
    "format_table",
    "Table2Row",
    "Table3Row",
    "family_tradeoff",
    "fraction_sweep",
    "table2_row",
    "table3_row",
    "threshold_sweep",
]
