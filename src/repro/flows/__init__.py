"""Experiment flows: one call per paper artefact data point."""

from .experiment import POLICIES, FlowResult, apply_policy, relative_metrics, run_flow
from .export import export_all
from .report import format_table
from .sweep import (
    Table2Row,
    Table3Row,
    family_tradeoff,
    fraction_sweep,
    table2_row,
    table3_row,
    threshold_sweep,
)

__all__ = [
    "POLICIES",
    "FlowResult",
    "apply_policy",
    "relative_metrics",
    "run_flow",
    "export_all",
    "format_table",
    "Table2Row",
    "Table3Row",
    "family_tradeoff",
    "fraction_sweep",
    "table2_row",
    "table3_row",
    "threshold_sweep",
]
