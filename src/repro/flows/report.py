"""Report building: error-model summaries and plain-text tables."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["error_model_report", "format_table"]


def error_model_report(
    implemented,
    source,
    netlist=None,
    *,
    distances: Sequence[int] = (2,),
    burst_width: int | None = None,
    samples: int = 20_000,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Error rates of one implementation under several fault models.

    The data behind ``repro report``: the exact single-bit rate (the
    figure every table of the paper uses), exact multi-bit rates for
    each requested Hamming *distance*, optionally an exact burst rate,
    and — when the mapped *netlist* is given — a packed Monte-Carlo
    estimate of the single-bit rate with its standard error, so the
    sampled estimator is visible next to the exhaustive number it
    approximates.

    Exact rows draw error sources from *source*'s care set (the paper's
    convention).  The Monte-Carlo row samples the full vector space
    (no source filter), which coincides with the exact convention when
    the source spec is fully specified.

    Returns:
        One dict per row: ``model`` (label), ``rate``, and for sampled
        rows ``stderr`` / ``samples``.
    """
    from ..faults import BurstInput, MultiBitInput, SingleBitInput

    rows: list[dict[str, object]] = [
        {
            "model": "single_bit (exact)",
            "rate": SingleBitInput().error_rate(implemented, spec=source),
        }
    ]
    for distance in distances:
        rows.append(
            {
                "model": f"multibit k={distance} (exact)",
                "rate": MultiBitInput(distance).error_rate(
                    implemented, spec=source
                ),
            }
        )
    if burst_width is not None:
        rows.append(
            {
                "model": f"burst w={burst_width} (exact)",
                "rate": BurstInput(burst_width).error_rate(
                    implemented, spec=source
                ),
            }
        )
    if netlist is not None:
        from .experiment import sampled_error_rate

        estimate = sampled_error_rate(
            netlist, samples=samples, rng=np.random.default_rng(seed)
        )
        rows.append(
            {
                "model": "single_bit (monte-carlo, all sources)",
                "rate": estimate.rate,
                "stderr": estimate.stderr,
                "samples": estimate.samples,
            }
        )
    return rows


def format_table(
    headers: list[str],
    rows: list[list[object]],
    *,
    precision: int = 3,
) -> str:
    """Render rows as a fixed-width text table.

    Floats are formatted to *precision* decimals; everything else via
    ``str``.  Columns are right-aligned except the first.
    """

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    text_rows = [[render(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in text_rows)) if text_rows
        else len(headers[col])
        for col in range(len(headers))
    ]

    def line(cells: list[str]) -> str:
        parts = []
        for col, cell in enumerate(cells):
            parts.append(cell.ljust(widths[col]) if col == 0 else cell.rjust(widths[col]))
        return "  ".join(parts)

    separator = "  ".join("-" * width for width in widths)
    body = [line(headers), separator]
    body.extend(line(row) for row in text_rows)
    return "\n".join(body)
