"""Plain-text table formatting for benchmark and CLI reports."""

from __future__ import annotations

__all__ = ["format_table"]


def format_table(
    headers: list[str],
    rows: list[list[object]],
    *,
    precision: int = 3,
) -> str:
    """Render rows as a fixed-width text table.

    Floats are formatted to *precision* decimals; everything else via
    ``str``.  Columns are right-aligned except the first.
    """

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    text_rows = [[render(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in text_rows)) if text_rows
        else len(headers[col])
        for col in range(len(headers))
    ]

    def line(cells: list[str]) -> str:
        parts = []
        for col, cell in enumerate(cells):
            parts.append(cell.ljust(widths[col]) if col == 0 else cell.rjust(widths[col]))
        return "  ".join(parts)

    separator = "  ".join("-" * width for width in widths)
    body = [line(headers), separator]
    body.extend(line(row) for row in text_rows)
    return "\n".join(body)
