"""Deterministic stand-ins for the paper's MCNC / synthetic benchmarks.

The paper evaluates on nine MCNC PLA benchmarks with explicitly defined DC
sets plus three 12-input synthetic functions (Table 1).  The original PLA
files are not redistributable here, so each benchmark is replaced by a
*seeded synthetic stand-in* generated to match every property Table 1
reports — input count, output count, %DC, ``E[C^f]`` (via the on/off
balance) and the measured complexity factor ``C^f``.  All of the paper's
analyses are driven by exactly these quantities, so the stand-ins exercise
the same regimes; see DESIGN.md for the substitution rationale.

Stand-ins are generated lazily and cached per process (generation anneals
``C^f`` and takes a moment for the 12-input entries).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.spec import FunctionSpec
from .synthetic import generate_spec

_CACHE_VERSION = 1
"""Bump to invalidate on-disk stand-ins after generator changes."""

__all__ = ["BenchmarkInfo", "TABLE1", "benchmark_names", "mcnc_benchmark"]


@dataclass(frozen=True)
class BenchmarkInfo:
    """One row of Table 1.

    Attributes:
        name: benchmark name as printed in the paper.
        num_inputs / num_outputs: interface shape.
        dc_percent: %DC column (fraction of minterms in the DC set).
        expected_cf: the ``E[C^f]`` column.
        cf: the measured ``C^f`` column (generation target).
        seed: deterministic generation seed.
    """

    name: str
    num_inputs: int
    num_outputs: int
    dc_percent: float
    expected_cf: float
    cf: float
    seed: int


TABLE1: tuple[BenchmarkInfo, ...] = (
    BenchmarkInfo("bench", 6, 8, 68.9, 0.533, 0.540, 101),
    BenchmarkInfo("fout", 6, 10, 41.4, 0.351, 0.338, 102),
    BenchmarkInfo("p3", 8, 14, 79.6, 0.671, 0.805, 103),
    BenchmarkInfo("p1", 8, 18, 77.7, 0.641, 0.788, 104),
    BenchmarkInfo("exp", 8, 18, 77.2, 0.644, 0.788, 105),
    BenchmarkInfo("test4", 8, 30, 71.5, 0.560, 0.557, 106),
    BenchmarkInfo("ex1010", 10, 10, 70.3, 0.540, 0.539, 107),
    BenchmarkInfo("exam", 10, 10, 86.8, 0.768, 0.802, 108),
    BenchmarkInfo("t4", 12, 8, 43.9, 0.477, 0.867, 109),
    BenchmarkInfo("random1", 12, 12, 68.6, 0.520, 0.490, 110),
    BenchmarkInfo("random2", 12, 12, 68.6, 0.520, 0.667, 111),
    BenchmarkInfo("random3", 12, 12, 68.6, 0.520, 0.826, 112),
)
"""The Table 1 benchmark roster (published properties + stand-in seeds)."""

_CACHE: dict[str, FunctionSpec] = {}


def benchmark_names() -> list[str]:
    """All Table 1 benchmark names, in paper order."""
    return [info.name for info in TABLE1]


def benchmark_info(name: str) -> BenchmarkInfo:
    """The Table 1 row for *name*.

    Raises:
        KeyError: for unknown benchmark names.
    """
    for info in TABLE1:
        if info.name == name:
            return info
    raise KeyError(f"unknown benchmark {name!r}; known: {benchmark_names()}")


def _cache_dir() -> Path:
    """On-disk cache directory (override with ``REPRO_CACHE_DIR``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    path = Path(root) if root else Path.home() / ".cache" / "repro-benchgen"
    path.mkdir(parents=True, exist_ok=True)
    return path


def mcnc_benchmark(name: str, *, tolerance: float = 0.015) -> FunctionSpec:
    """The (cached) synthetic stand-in for Table 1 benchmark *name*.

    Generation is deterministic per name; results are memoised in-process
    and on disk (the 12-input entries take a few seconds to anneal).
    """
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    info = benchmark_info(name)
    disk = _cache_dir() / f"{name}-v{_CACHE_VERSION}-t{tolerance:g}.npz"
    if disk.exists():
        phases = np.load(disk)["phases"]
        spec = FunctionSpec(phases, name=name)
    else:
        spec = generate_spec(
            info.name,
            info.num_inputs,
            info.num_outputs,
            target_cf=info.cf,
            dc_fraction=info.dc_percent / 100.0,
            expected_cf=info.expected_cf,
            seed=info.seed,
            tolerance=tolerance,
        )
        np.savez_compressed(disk, phases=spec.phases)
    _CACHE[name] = spec
    return spec
