"""Synthetic benchmark generation with a designated complexity factor.

Sec. 2.2 of the paper observes that i.i.d. random functions ("flipping a
three-sided coin for each minterm") are homogeneous — their complexity
factor concentrates at ``E[C^f] = f0^2 + f1^2 + fDC^2`` — whereas published
benchmarks are more structured (higher ``C^f``).  The paper therefore
generates synthetic benchmarks *with a designated complexity factor*.

This module reproduces that capability with a two-stage construction:

1. **Score mixing.**  Every minterm receives a score blending an i.i.d.
   noise field with a *structured* field (for clustering) or an
   *anti-structured* checkerboard field (for XOR-likeness):

   * the structured field is a random degree-1 pseudo-Boolean polynomial
     ``s(x) = sum_j a_j * (-1)^{x_j}`` — adjacent minterms differ in a
     single term, so thresholding it produces large same-phase clusters;
   * the anti-structured field multiplies a positive field by the parity
     ``(-1)^{popcount(x)}`` — adjacent minterms anti-correlate, driving
     ``C^f`` below the random baseline.

   Minterms are sorted by score and split OFF | DC | ON at the exact
   requested signal probabilities, so ``%DC`` and ``E[C^f]`` hold *by
   construction*; only ``C^f`` depends on the mixing weight.

2. **Bisection + fine-tuning.**  ``C^f`` is monotone in the mixing weight,
   so a short bisection lands near the target; a bounded greedy swap pass
   (exchanging the phases of two minterms keeps the signal probabilities
   exact) then walks ``C^f`` to within tolerance.
"""

from __future__ import annotations

import numpy as np

from ..core.complexity import complexity_factor
from ..core.hamming import same_phase_neighbor_counts
from ..core.spec import FunctionSpec
from ..core.truthtable import DC, OFF, ON

__all__ = ["generate_output", "generate_spec", "care_fractions_from_expected"]


def care_fractions_from_expected(
    dc_fraction: float, expected_cf: float
) -> tuple[float, float]:
    """Solve ``f0^2 + f1^2 + fDC^2 = E[C^f]`` for the care fractions.

    Given the DC fraction and a target expected complexity factor, returns
    ``(f0, f1)`` with ``f0 >= f1`` (benchmarks usually have the smaller
    on-set).  This is how the MCNC stand-ins match both the ``%DC`` and the
    ``E[C^f]`` columns of Table 1 simultaneously.

    Raises:
        ValueError: if no real solution exists (the expected complexity
            factor is inconsistent with the DC fraction).
    """
    care = 1.0 - dc_fraction
    square_sum = expected_cf - dc_fraction**2
    # f0 + f1 = care and f0^2 + f1^2 = square_sum.
    product = (care**2 - square_sum) / 2.0
    disc = care**2 - 4.0 * product
    if square_sum < 0 or disc < -1e-12 or product < -1e-12:
        raise ValueError(
            f"E[C^f]={expected_cf} unreachable with DC fraction {dc_fraction}"
        )
    root = float(np.sqrt(max(disc, 0.0)))
    f0 = (care + root) / 2.0
    f1 = care - f0
    return f0, f1


def _lex_field(num_inputs: int, rng: np.random.Generator) -> np.ndarray:
    """An extreme clustering field: nested half-spaces.

    A *lexicographic* form over a random subset of roughly half the
    variables, with geometrically decaying weights: its level sets nest
    like a binary decision hierarchy, so thresholding carves the cube into
    a half-space containing a quarter-space containing ... — unions of
    large faces.  This reaches near-isoperimetric ``C^f`` (a full-support
    degree-1 field saturates at ``C^f ~ 1 - Theta(1/sqrt(n))``, not
    clustered enough for the highest Table 1 targets), at the price of
    producing structurally simple functions.
    """
    idx = np.arange(1 << num_inputs)
    k = min(num_inputs, max(3, (num_inputs + 1) // 2))
    block_vars = rng.permutation(num_inputs)[:k]
    field = np.zeros(idx.shape, dtype=np.float64)
    for pos, j in enumerate(block_vars):
        field += (2.0 ** (k - 1 - pos)) * ((idx >> int(j)) & 1)
    field += 0.01 * rng.standard_normal(idx.shape)
    return field / max(float(np.std(field)), 1e-12)


def _face_field(num_inputs: int, rng: np.random.Generator) -> np.ndarray:
    """A rich clustering field: a sum of random face indicators.

    Random subcubes (2-4 bound variables) with Gaussian levels produce
    face-aligned, SOP-friendly level sets without the nesting degeneracy of
    the lexicographic field — thresholding yields unions of overlapping
    faces, the structure real PLA benchmarks exhibit.
    """
    idx = np.arange(1 << num_inputs)
    score = np.zeros(idx.shape, dtype=np.float64)
    for _ in range(2 * num_inputs):
        bound = int(rng.integers(2, 5))
        variables = rng.choice(num_inputs, size=bound, replace=False)
        values = rng.integers(0, 2, size=bound)
        mask = np.ones(idx.shape, dtype=bool)
        for j, v in zip(variables, values):
            mask &= ((idx >> int(j)) & 1) == int(v)
        score[mask] += float(rng.standard_normal())
    return score / max(float(np.std(score)), 1e-12)


def _structured_field(
    num_inputs: int, rng: np.random.Generator, weight: float
) -> np.ndarray:
    """Clustering field used at mixing weight *weight*.

    Blends the rich face field with the extreme lexicographic field,
    shifting toward the latter only as the requested clustering grows
    (``s = weight**2``): mid-``C^f`` functions stay structurally rich,
    while near-isoperimetric targets — which genuinely force simple
    functions, compare the paper's t4/random3 rows — go lex-dominated.
    """
    share = min(1.0, max(0.0, weight)) ** 2
    face = _face_field(num_inputs, rng)
    lex = _lex_field(num_inputs, rng)
    return (1.0 - share) * face + share * lex


def _checkerboard_field(num_inputs: int, rng: np.random.Generator) -> np.ndarray:
    """A parity-signed field (neighbours anti-correlate)."""
    idx = np.arange(1 << num_inputs)
    parity = np.zeros(idx.shape, dtype=np.int64)
    for j in range(num_inputs):
        parity ^= (idx >> j) & 1
    magnitude = 1.0 + 0.1 * rng.standard_normal(idx.shape)
    return np.where(parity == 1, magnitude, -magnitude)


def _phases_from_scores(
    scores: np.ndarray, f0: float, f1: float, rng: np.random.Generator
) -> np.ndarray:
    """Split the score-sorted minterms into OFF | DC | ON regions."""
    size = scores.shape[0]
    n_off = int(round(f0 * size))
    n_on = int(round(f1 * size))
    n_on = min(n_on, size - n_off)
    order = np.argsort(scores, kind="stable")
    phases = np.full(size, DC, dtype=np.uint8)
    phases[order[:n_off]] = OFF
    phases[order[size - n_on :]] = ON
    return phases


def _generate_at_weight(
    num_inputs: int,
    weight: float,
    f0: float,
    f1: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """One output at mixing weight ``weight`` in [-1, 1]."""
    noise = rng.standard_normal(1 << num_inputs)
    magnitude = abs(weight)
    if weight >= 0.0:
        field = _structured_field(num_inputs, rng, magnitude)
    else:
        field = _checkerboard_field(num_inputs, rng)
    scores = magnitude * field + (1.0 - magnitude) * noise
    return _phases_from_scores(scores, f0, f1, rng)


def _swap_fine_tune(
    phases: np.ndarray,
    target_cf: float,
    tolerance: float,
    rng: np.random.Generator,
    max_moves: int = 4000,
    batch: int = 128,
) -> np.ndarray:
    """Greedy phase-swap walk pushing ``C^f`` toward the target.

    Swapping the phases of two minterms preserves the phase counts exactly,
    so ``%DC`` and ``E[C^f]`` are invariant.  Every round scores a batch of
    candidate swaps by their exact ``C^f`` delta (computed from the two
    minterms' neighbour phase profiles, vectorised) and applies the one
    that brings ``C^f`` closest to the target; the walk stops when within
    tolerance or when no candidate improves.
    """
    phases = phases.copy()
    n = int(phases.shape[0]).bit_length() - 1
    size = phases.shape[0]
    bits = (1 << np.arange(n)).astype(np.int64)
    current = float(complexity_factor(phases))
    misses = 0
    boundary_pool: np.ndarray | None = None
    for move in range(max_moves):
        error = target_cf - current
        if abs(error) <= tolerance or misses >= 60:
            break
        if error > 0 and move % 32 == 0:
            # Raising C^f: bias the donor side toward *boundary* minterms
            # (few same-phase neighbours) — uniform pairs almost never
            # improve an already clustered function.
            same = same_phase_neighbor_counts(phases)
            cut = np.quantile(same, 0.2)
            boundary_pool = np.flatnonzero(same <= cut)
        if error > 0 and boundary_pool is not None and boundary_pool.size:
            # Both endpoints from the boundary pool: the best cf-raising
            # swaps exchange two mutually misplaced minterms.
            a_idx = rng.choice(boundary_pool, size=batch)
            b_idx = rng.choice(boundary_pool, size=batch)
        else:
            a_idx = rng.integers(size, size=batch)
            b_idx = rng.integers(size, size=batch)
        differ = phases[a_idx] != phases[b_idx]
        # Exclude adjacent pairs: their delta formula needs a correction
        # term, and skipping them costs nothing at these sizes.
        adjacent = np.zeros(batch, dtype=bool)
        neighbors_a = a_idx[:, None] ^ bits
        neighbors_b = b_idx[:, None] ^ bits
        adjacent = np.any(neighbors_a == b_idx[:, None], axis=1)
        valid = differ & ~adjacent
        if not np.any(valid):
            misses += 1
            continue
        phase_a = phases[a_idx][:, None]
        phase_b = phases[b_idx][:, None]
        around_a = phases[neighbors_a]
        around_b = phases[neighbors_b]
        # Directed same-phase pair count change, both endpoints, doubled
        # for the two directions of each unordered pair.
        delta_pairs = 2 * (
            np.count_nonzero(around_a == phase_b, axis=1)
            - np.count_nonzero(around_a == phase_a, axis=1)
            + np.count_nonzero(around_b == phase_a, axis=1)
            - np.count_nonzero(around_b == phase_b, axis=1)
        )
        deltas = delta_pairs / (n * size)
        score = np.where(valid, np.abs(error - deltas), np.inf)
        pick = int(np.argmin(score))
        if score[pick] >= abs(error) - 1e-15:
            misses += 1
            continue
        misses = 0
        a, b = int(a_idx[pick]), int(b_idx[pick])
        phases[a], phases[b] = phases[b], phases[a]
        current += float(deltas[pick])
    return phases


def generate_output(
    num_inputs: int,
    target_cf: float,
    f0: float,
    f1: float,
    rng: np.random.Generator,
    *,
    tolerance: float = 0.01,
    bisection_steps: int = 10,
    fine_tune_moves: int = 4000,
) -> np.ndarray:
    """Generate one output's phase array with ``C^f`` close to the target.

    Args:
        num_inputs: function arity.
        target_cf: designated normalised complexity factor.
        f0: off-set signal probability.
        f1: on-set signal probability (``fDC = 1 - f0 - f1``).
        rng: random generator (consumed deterministically).
        tolerance: acceptable ``|C^f - target|``.
        bisection_steps: weight-bisection iterations before fine-tuning.
        fine_tune_moves: budget for the greedy swap walk.

    Returns:
        A ``uint8`` phase array of length ``2**num_inputs``.
    """
    if not 0.0 <= target_cf <= 1.0:
        raise ValueError(f"target complexity factor {target_cf} outside [0, 1]")
    if f0 < 0 or f1 < 0 or f0 + f1 > 1.0 + 1e-9:
        raise ValueError("signal probabilities must be non-negative and sum <= 1")
    lo, hi = -1.0, 1.0
    best: np.ndarray | None = None
    best_err = float("inf")
    for _ in range(bisection_steps):
        mid = (lo + hi) / 2.0
        candidate = _generate_at_weight(num_inputs, mid, f0, f1, rng)
        cf = complexity_factor(candidate)
        err = abs(cf - target_cf)
        if err < best_err:
            best, best_err = candidate, err
        if err <= tolerance / 2.0:
            break
        if cf < target_cf:
            lo = mid
        else:
            hi = mid
    assert best is not None
    if best_err > tolerance:
        best = _swap_fine_tune(best, target_cf, tolerance, rng, fine_tune_moves)
    return best


def generate_spec(
    name: str,
    num_inputs: int,
    num_outputs: int,
    *,
    target_cf: float,
    dc_fraction: float,
    expected_cf: float | None = None,
    seed: int = 0,
    tolerance: float = 0.01,
) -> FunctionSpec:
    """Generate a multi-output synthetic benchmark.

    Args:
        name: benchmark name for reports.
        num_inputs / num_outputs: interface shape.
        target_cf: designated per-output complexity factor.
        dc_fraction: fraction of each output's minterms that are DC.
        expected_cf: if given, the on/off balance is solved from this
            ``E[C^f]`` (Table 1 column); otherwise the care set is split
            evenly.
        seed: deterministic generation seed.
        tolerance: acceptable per-output ``|C^f - target|``.
    """
    if expected_cf is None:
        f0 = f1 = (1.0 - dc_fraction) / 2.0
    else:
        f0, f1 = care_fractions_from_expected(dc_fraction, expected_cf)
    rng = np.random.default_rng(np.random.SeedSequence([seed, num_inputs, num_outputs]))
    outputs = [
        generate_output(num_inputs, target_cf, f0, f1, rng, tolerance=tolerance)
        for _ in range(num_outputs)
    ]
    return FunctionSpec(np.stack(outputs), name=name)
