"""Benchmark generation: synthetic functions and Table 1 stand-ins."""

from .mcnc import TABLE1, BenchmarkInfo, benchmark_info, benchmark_names, mcnc_benchmark
from .synthetic import care_fractions_from_expected, generate_output, generate_spec

__all__ = [
    "TABLE1",
    "BenchmarkInfo",
    "benchmark_info",
    "benchmark_names",
    "mcnc_benchmark",
    "care_fractions_from_expected",
    "generate_output",
    "generate_spec",
]
