"""The pass manager: compose stages, run them, checkpoint between them.

A :class:`Pipeline` is an ordered list of registered stages (or stage
objects) executed against one :class:`~repro.pipeline.context.FlowContext`.
Before running it validates the wiring — every stage's inputs must be
produced by an earlier stage or present in the initial context — so a
misordered config fails immediately with the offending stage named.

Checkpointing: give the pipeline a
:class:`~repro.pipeline.checkpoint.CheckpointStore` and every stage's
outputs are persisted under a content-addressed key chained from the
initial context fingerprint (see :func:`repro.perf.cache.stage_key`).
On the next run over the same store, stages whose whole producing
history is unchanged are *skipped*: their outputs load from disk, the
``pipeline.stages_skipped`` counter increments and the stage's span
carries ``cached=True`` — so an interrupted or re-parameterised sweep
resumes from the last valid stage output instead of recomputing the
whole flow.

Declarative configs: :meth:`Pipeline.from_config` builds a pipeline from
a plain dict (JSON-compatible)::

    {
      "name": "ranking-flow",
      "params": {"policy": "ranking", "fraction": 0.5, "objective": "area"},
      "stages": ["assign", "espresso", "optimize", "map", "tune", "measure"]
    }

Stage entries are either registry names or
``{"stage": name, "params": {...}}`` objects whose params overlay the
flow parameters for that stage only.  ``repro pipeline run`` executes
such configs from the command line.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Sequence

from ..obs import metrics as obs_metrics
from ..obs import span
from ..perf.cache import stage_key
from .checkpoint import CheckpointStore
from .context import FlowContext
from .stage import Stage, describe_stage, get_stage, params_fingerprint

__all__ = [
    "DEFAULT_STAGES",
    "Pipeline",
    "default_config",
    "load_config",
]

DEFAULT_STAGES = ("assign", "espresso", "optimize", "map", "tune", "measure")
"""The standard six-stage evaluation flow, in execution order."""


class _OverlaidStage:
    """A stage with per-stage parameter overrides from a config entry."""

    def __init__(self, stage: Stage, overrides: dict[str, Any]):
        self._stage = stage
        self.overrides = dict(overrides)
        self.name = stage.name
        self.inputs = stage.inputs
        self.outputs = stage.outputs
        self.params = stage.params
        self.version = stage.version

    def run(self, ctx: FlowContext) -> None:
        saved = ctx.params
        ctx.params = {**saved, **self.overrides}
        try:
            self._stage.run(ctx)
        finally:
            ctx.params = saved


class Pipeline:
    """An ordered, validated, checkpointable sequence of stages.

    Args:
        stages: stage objects or registry names, in execution order.
        name: label used in spans and ``repro pipeline`` output.
        params: default flow parameters; merged under any parameters the
            caller puts on the context (context wins).
        checkpoint: optional store enabling stage-level resume; also
            accepts a directory path.
    """

    def __init__(
        self,
        stages: Sequence[Stage | str],
        *,
        name: str = "pipeline",
        params: dict[str, Any] | None = None,
        checkpoint: CheckpointStore | str | os.PathLike | None = None,
    ):
        self.name = name
        self.params = dict(params or {})
        if checkpoint is not None and not isinstance(checkpoint, CheckpointStore):
            checkpoint = CheckpointStore(checkpoint)
        self.checkpoint = checkpoint
        self.stages: list[Stage] = [
            get_stage(stage) if isinstance(stage, str) else stage
            for stage in stages
        ]
        if not self.stages:
            raise ValueError("a pipeline needs at least one stage")
        seen: set[str] = set()
        for stage in self.stages:
            if stage.name in seen:
                raise ValueError(
                    f"stage {stage.name!r} appears twice in the pipeline"
                )
            seen.add(stage.name)

    # ------------------------------------------------------------- building

    @classmethod
    def from_config(
        cls,
        config: dict[str, Any],
        *,
        checkpoint: CheckpointStore | str | os.PathLike | None = None,
    ) -> "Pipeline":
        """Build a pipeline from a declarative (JSON-compatible) config.

        Raises:
            ValueError: on malformed configs (missing/empty ``stages``,
                unknown entry shapes).
            KeyError: on unknown stage names.
        """
        if not isinstance(config, dict):
            raise ValueError(f"pipeline config must be a dict, got {type(config).__name__}")
        entries = config.get("stages")
        if not entries:
            raise ValueError("pipeline config needs a non-empty 'stages' list")
        stages: list[Stage] = []
        for entry in entries:
            if isinstance(entry, str):
                stages.append(get_stage(entry))
            elif isinstance(entry, dict) and "stage" in entry:
                stage = get_stage(entry["stage"])
                overrides = entry.get("params") or {}
                stages.append(
                    _OverlaidStage(stage, overrides) if overrides else stage
                )
            else:
                raise ValueError(
                    f"bad stage entry {entry!r}: expected a name or "
                    f"{{'stage': name, 'params': {{...}}}}"
                )
        return cls(
            stages,
            name=str(config.get("name", "pipeline")),
            params=config.get("params") or {},
            checkpoint=checkpoint,
        )

    def build_context(self, **artifacts: Any) -> FlowContext:
        """A fresh context seeded with this pipeline's default params."""
        return FlowContext(dict(self.params), **artifacts)

    # ------------------------------------------------------------- running

    def validate(self, initial_keys: Sequence[str]) -> None:
        """Check stage wiring against the initially available artefacts.

        Raises:
            ValueError: naming the first stage whose inputs are neither
                initial artefacts nor outputs of an earlier stage.
        """
        available = set(initial_keys)
        for stage in self.stages:
            missing = [key for key in stage.inputs if key not in available]
            if missing:
                raise ValueError(
                    f"stage {stage.name!r} is missing inputs {missing}; "
                    f"available at that point: {sorted(available)}"
                )
            available.update(stage.outputs)

    def run(
        self,
        ctx: FlowContext | None = None,
        *,
        stop_after: str | None = None,
        **artifacts: Any,
    ) -> FlowContext:
        """Execute the stages in order, returning the final context.

        Args:
            ctx: the context to run against; built from *artifacts* and
                the pipeline's default params when omitted.
            stop_after: stop (successfully) after the named stage — the
                programmatic equivalent of an interrupted run, useful
                for staged debugging and warm-starting checkpoints.

        Raises:
            ValueError: on wiring errors or an unknown ``stop_after``.
        """
        if ctx is None:
            ctx = self.build_context(**artifacts)
        elif artifacts:
            raise ValueError("pass either ctx or initial artifacts, not both")
        for name, default in self.params.items():
            ctx.params.setdefault(name, default)
        if stop_after is not None and stop_after not in {s.name for s in self.stages}:
            raise ValueError(
                f"stop_after={stop_after!r} is not a stage of this pipeline"
            )
        self.validate(ctx.keys())
        obs_metrics.counter("pipeline.runs").inc()
        upstream = ctx.fingerprint() if self.checkpoint is not None else ""
        with span("pipeline.run", pipeline=self.name, stages=len(self.stages)):
            for stage in self.stages:
                cached_outputs = None
                key = ""
                if self.checkpoint is not None:
                    key = stage_key(
                        stage.name,
                        stage.version,
                        self._stage_params_fingerprint(stage, ctx),
                        upstream,
                    )
                    upstream = key
                    cached_outputs = self.checkpoint.load(stage.name, key)
                if cached_outputs is not None:
                    with span("pipeline.stage", stage=stage.name, cached=True):
                        for out_key, value in cached_outputs.items():
                            ctx.set(out_key, value)
                    obs_metrics.counter("pipeline.stages_skipped").inc()
                else:
                    # Per-stage wall time is a metric, not just a span
                    # attribute, so the telemetry ledger gets stage
                    # timings from every run — tracing stays opt-in.
                    stage_start = time.perf_counter()
                    with span("pipeline.stage", stage=stage.name, cached=False):
                        stage.run(ctx)
                    obs_metrics.counter(
                        f"pipeline.stage_seconds.{stage.name}"
                    ).inc(time.perf_counter() - stage_start)
                    obs_metrics.counter(
                        f"pipeline.stage_runs.{stage.name}"
                    ).inc()
                    obs_metrics.counter("pipeline.stages_run").inc()
                    if self.checkpoint is not None:
                        self.checkpoint.store(
                            stage.name,
                            key,
                            {out: ctx.require(out) for out in stage.outputs},
                        )
                if stop_after == stage.name:
                    break
        return ctx

    def _stage_params_fingerprint(self, stage: Stage, ctx: FlowContext) -> str:
        overrides = getattr(stage, "overrides", None)
        if not overrides:
            return params_fingerprint(stage, ctx)
        saved = ctx.params
        ctx.params = {**saved, **overrides}
        try:
            return params_fingerprint(stage, ctx)
        finally:
            ctx.params = saved

    # ------------------------------------------------------------ describe

    def describe(self) -> list[dict[str, Any]]:
        """One dict per stage (name, inputs, outputs, params, version,
        summary)."""
        return [describe_stage(stage) for stage in self.stages]


def default_config(
    policy: str = "conventional",
    *,
    fraction: float = 1.0,
    threshold: float | None = None,
    objective: str = "delay",
) -> dict[str, Any]:
    """The declarative config of the standard six-stage evaluation flow.

    The returned dict is JSON-serialisable; running it through
    :meth:`Pipeline.from_config` reproduces :func:`repro.flows.run_flow`
    bit-identically.
    """
    from ..core.cfactor import DEFAULT_THRESHOLD

    return {
        "name": "default-flow",
        "params": {
            "policy": policy,
            "fraction": fraction,
            "threshold": DEFAULT_THRESHOLD if threshold is None else threshold,
            "objective": objective,
        },
        "stages": list(DEFAULT_STAGES),
    }


def load_config(path: str | os.PathLike) -> dict[str, Any]:
    """Read a JSON pipeline config from *path*.

    Raises:
        ValueError: when the file is not valid JSON or not an object.
    """
    text = Path(path).read_text(encoding="utf-8")
    try:
        config = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: invalid JSON pipeline config: {exc}") from exc
    if not isinstance(config, dict):
        raise ValueError(f"{path}: pipeline config must be a JSON object")
    return config
