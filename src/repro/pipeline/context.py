"""The typed artefact store a pipeline's stages read from and write to.

A :class:`FlowContext` holds the artefacts of one flow execution under
well-known keys — the specs, the DC assignment, the minimised covers,
the logic network, the mapped netlist and the measured results — plus
the flow's parameter dictionary (policy, fraction, threshold, objective,
library, ...).  Stages declare which keys they consume and produce; the
context enforces that only known keys of the expected types are stored,
so a mis-wired stage fails at the ``set`` call instead of corrupting a
downstream computation.

The context also provides the *fingerprint* that anchors checkpoint
keys: a content digest of the artefacts present before the first stage
runs (see :meth:`FlowContext.fingerprint` and
:mod:`repro.pipeline.checkpoint`).
"""

from __future__ import annotations

import pickle
from typing import Any, Iterator

from ..core.assignment import Assignment
from ..core.spec import FunctionSpec
from ..perf.cache import digest_parts

__all__ = ["ARTIFACT_KEYS", "FlowContext"]


def _artifact_types() -> dict[str, type]:
    # Imported lazily so the context module stays importable without
    # dragging the whole synthesis stack in at interpreter start.
    from ..espresso.minimize import MinimizedFunction
    from ..flows.experiment import FlowResult
    from ..synth.compile_ import SynthesisResult
    from ..synth.flexibility import CompleteDcReport
    from ..synth.netlist import MappedNetlist
    from ..synth.network import LogicNetwork

    return {
        "spec": FunctionSpec,
        "assigned_spec": FunctionSpec,
        "assignment": Assignment,
        "covers": MinimizedFunction,
        "network": LogicNetwork,
        "netlist": MappedNetlist,
        "complete_dc_report": CompleteDcReport,
        "implemented": FunctionSpec,
        "synthesis": SynthesisResult,
        "result": FlowResult,
    }


ARTIFACT_KEYS: dict[str, str] = {
    "spec": "FunctionSpec — the original (source) specification",
    "assigned_spec": "FunctionSpec — spec after the DC-assignment policy",
    "assignment": "Assignment — the policy's (output, minterm) decisions",
    "covers": "MinimizedFunction — per-output ESPRESSO covers",
    "network": "LogicNetwork — the multi-level technology-independent network",
    "netlist": "MappedNetlist — the mapped gate-level netlist",
    "complete_dc_report": "CompleteDcReport — SAT-complete DC stage metrics",
    "implemented": "FunctionSpec — the function the netlist realises",
    "synthesis": "SynthesisResult — area/delay/power/error measurements",
    "result": "FlowResult — one experiment data point",
}
"""Human-readable catalogue of the known context keys (docs + CLI)."""


class FlowContext:
    """Artefacts and parameters of one flow execution.

    Args:
        params: flow parameters (``policy``, ``fraction``, ``threshold``,
            ``objective``, ``library``, ``optimize``) consulted by stages
            via :meth:`param`.
        **artifacts: initial artefacts, e.g. ``spec=...``.

    Raises:
        KeyError: on unknown artefact keys.
        TypeError: on artefacts of the wrong type.
    """

    def __init__(self, params: dict[str, Any] | None = None, **artifacts: Any):
        self.params: dict[str, Any] = dict(params or {})
        self._store: dict[str, Any] = {}
        self._types = _artifact_types()
        for key, value in artifacts.items():
            self.set(key, value)

    # ------------------------------------------------------------ artefacts

    def set(self, key: str, value: Any) -> None:
        """Store *value* under the known artefact *key*.

        Raises:
            KeyError: if *key* is not a known artefact key.
            TypeError: if *value* is not of the key's declared type.
        """
        expected = self._types.get(key)
        if expected is None:
            raise KeyError(
                f"unknown context key {key!r}; known keys: "
                f"{sorted(self._types)}"
            )
        if not isinstance(value, expected):
            raise TypeError(
                f"context key {key!r} expects {expected.__name__}, "
                f"got {type(value).__name__}"
            )
        self._store[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        """The artefact under *key*, or *default* when absent."""
        return self._store.get(key, default)

    def require(self, key: str) -> Any:
        """The artefact under *key*.

        Raises:
            KeyError: when the artefact has not been produced yet — the
                error names the missing key so a wiring bug reads as one.
        """
        try:
            return self._store[key]
        except KeyError:
            raise KeyError(
                f"context is missing artefact {key!r}; was its producing "
                f"stage run?"
            ) from None

    def __contains__(self, key: object) -> bool:
        return key in self._store

    def __iter__(self) -> Iterator[str]:
        return iter(self._store)

    def keys(self) -> list[str]:
        """Currently populated artefact keys."""
        return list(self._store)

    # ----------------------------------------------------------- parameters

    def param(self, name: str, default: Any = None) -> Any:
        """The flow parameter *name*, or *default* when unset."""
        return self.params.get(name, default)

    # ---------------------------------------------------------- fingerprint

    def fingerprint(self) -> str:
        """Content digest of the currently stored artefacts.

        Used as the root of the checkpoint key chain: two contexts with
        byte-identical artefacts (including names, which determine
        artefact labels downstream) share a fingerprint, so a resumed
        run finds the previous run's checkpoints; any content difference
        yields a different chain and a clean recompute.
        """
        parts: list[bytes] = []
        for key in sorted(self._store):
            parts.append(key.encode())
            parts.append(_artifact_digest(self._store[key]).encode())
        return digest_parts(b"context", *parts)


def _artifact_digest(value: Any) -> str:
    """A stable content digest of one artefact.

    Specs and assignments get explicit content digests; anything else
    falls back to its pickled bytes, which is stable within a Python
    version — a cross-version mismatch merely costs a checkpoint miss.
    """
    if isinstance(value, FunctionSpec):
        return digest_parts(
            b"spec",
            value.name.encode(),
            repr((value.input_names, value.output_names)).encode(),
            value.phases.tobytes(),
        )
    if isinstance(value, Assignment):
        return digest_parts(
            b"assignment", repr(sorted(value.decisions.items())).encode()
        )
    return digest_parts(b"pickle", pickle.dumps(value, protocol=4))
