"""The built-in stages of the paper's evaluation flow.

Six stages reproduce the fixed recipe that used to be hard-coded across
``flows/experiment.py`` and ``synth/compile_.py``:

``assign``
    Apply a DC-assignment policy (``conventional`` / ``ranking`` /
    ``cfactor`` / ``complete``) to the source spec.
``espresso``
    Two-level minimisation of the assigned spec (the conventional
    assignment of any remaining DCs) and construction of the
    multi-level logic network from the covers.
``optimize``
    Technology-independent multi-level optimisation (disable with the
    ``optimize=False`` flow parameter).
``complete_dc`` (opt-in; not part of the default recipe)
    SAT-complete internal don't-care reassignment of the network —
    simulation proposes per-node DC candidates, shared-solver SAT
    queries confirm them exactly, and the chosen policy re-decides the
    confirmed flexibility (see
    :func:`repro.synth.flexibility.reassign_complete_dcs`).  Inserted
    between ``optimize`` and ``map``; primary outputs are verified
    unchanged, so downstream results stay functionally identical.
``map``
    Subject-graph construction and area-driven tree covering against
    the cell library.
``tune``
    Objective-specific tuning: critical-path upsizing for the ``delay``
    objective (no-op for ``power`` / ``area``).
``measure``
    Care-set equivalence self-check, static timing, power analysis and
    the exact error rate under the configured fault model (default:
    the paper's single-bit input flip against the *source* spec's care
    set; see :mod:`repro.faults`), packaged as a
    :class:`~repro.synth.compile_.SynthesisResult`.

The stage bodies are the canonical implementation: ``run_flow``,
``compile_spec`` and ``compile_network`` are thin drivers that assemble
these stages into a pipeline (see :mod:`repro.pipeline.pipeline`).
"""

from __future__ import annotations

import numpy as np

from ..core.assignment import Assignment
from ..core.cfactor import DEFAULT_THRESHOLD, cfactor_assignment
from ..core.ranking import complete_assignment, ranking_assignment
from ..core.spec import FunctionSpec
from ..espresso.minimize import minimize_spec
from ..obs import metrics as obs_metrics
from ..obs import span
from ..synth.library import generic_70nm_library
from ..synth.mapping import map_graph
from ..synth.network import LogicNetwork
from ..synth.optimize import optimize_network
from ..synth.power import power_analysis
from ..synth.subject import build_subject_graph
from ..synth.timing import static_timing, upsize_critical
from .context import FlowContext
from .stage import register_stage

__all__ = [
    "OBJECTIVES",
    "POLICIES",
    "AssignStage",
    "EspressoStage",
    "OptimizeStage",
    "CompleteDcStage",
    "MapStage",
    "TuneStage",
    "MeasureStage",
    "apply_policy",
    "validate_objective",
]

POLICIES = ("conventional", "ranking", "cfactor", "complete")
"""The four assignment policies of the evaluation."""

OBJECTIVES = ("delay", "power", "area")
"""The synthesis objectives mirroring the paper's compile scripts."""


def apply_policy(
    spec: FunctionSpec,
    policy: str,
    *,
    fraction: float = 1.0,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[FunctionSpec, Assignment]:
    """Produce the (partially) assigned spec for a policy.

    Raises:
        ValueError: on unknown policy names.
    """
    if policy == "conventional":
        assignment = Assignment()
    elif policy == "ranking":
        assignment = ranking_assignment(spec, fraction)
    elif policy == "cfactor":
        assignment = cfactor_assignment(spec, threshold)
    elif policy == "complete":
        assignment = complete_assignment(spec)
    else:
        raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
    assigned = assignment.apply(spec) if len(assignment) else spec
    return assigned, assignment


def validate_objective(objective: str) -> None:
    """Reject unknown synthesis objectives.

    Raises:
        ValueError: when *objective* is not one of :data:`OBJECTIVES`.
    """
    if objective not in OBJECTIVES:
        raise ValueError(
            f"objective must be one of {OBJECTIVES}, got {objective!r}"
        )


@register_stage
class AssignStage:
    """``spec`` -> ``assigned_spec`` + ``assignment`` via the policy."""

    name = "assign"
    inputs = ("spec",)
    outputs = ("assigned_spec", "assignment")
    params = ("policy", "fraction", "threshold")
    version = "1"

    def run(self, ctx: FlowContext) -> None:
        spec = ctx.require("spec")
        policy = ctx.param("policy", "conventional")
        with span("flow.apply_policy", policy=policy):
            assigned, assignment = apply_policy(
                spec,
                policy,
                fraction=ctx.param("fraction", 1.0),
                threshold=ctx.param("threshold", DEFAULT_THRESHOLD),
            )
        ctx.set("assigned_spec", assigned)
        ctx.set("assignment", assignment)


@register_stage
class EspressoStage:
    """``assigned_spec`` -> ``covers`` + ``network`` (two-level minimise)."""

    name = "espresso"
    inputs = ("assigned_spec",)
    outputs = ("covers", "network")
    params = ()
    version = "1"

    def run(self, ctx: FlowContext) -> None:
        assigned = ctx.require("assigned_spec")
        with span("synth.minimize"):
            minimized = minimize_spec(assigned)
        network = LogicNetwork.from_covers(
            list(assigned.input_names),
            minimized.covers,
            list(assigned.output_names),
        )
        ctx.set("covers", minimized)
        ctx.set("network", network)


@register_stage
class OptimizeStage:
    """Multi-level optimisation of ``network`` (in place)."""

    name = "optimize"
    inputs = ("network",)
    outputs = ("network",)
    params = ("optimize",)
    version = "1"

    def run(self, ctx: FlowContext) -> None:
        network = ctx.require("network")
        if ctx.param("optimize", True):
            with span("synth.optimize", nodes=len(network.nodes)):
                optimize_network(network)
        ctx.set("network", network)


@register_stage
class CompleteDcStage:
    """SAT-complete internal-DC reassignment of ``network`` (opt-in).

    Not part of :data:`~repro.pipeline.pipeline.DEFAULT_STAGES` — enable
    it by listing ``complete_dc`` between ``optimize`` and ``map`` in a
    pipeline config (or ``repro pipeline run --complete-dc``).  Per node
    it proposes DC candidates from random simulation, confirms them
    exactly with batched shared-solver SAT queries (``dc_batch``
    candidates per incremental ``solve()``), applies the ``dc_policy``
    assignment and rebuilds the cover; nodes exhausting the query or
    conflict budget fall back to the window-limited extractor.  With
    ``dc_jobs`` > 1 independent nodes are confirmed in parallel on the
    warm worker pool — results stay bit-identical to serial.  Primary
    outputs are verified unchanged (packed compare per rewrite plus a
    final SAT miter), so every downstream artefact stays functionally
    identical and the stage can be toggled without invalidating results.

    Emits ``sat.*`` / ``complete_dc.*`` counters (queries,
    confirmations, refutations, fallbacks, per-stage DC deltas against
    the window baseline) and a ``complete_dc_report`` artefact.
    """

    name = "complete_dc"
    inputs = ("network",)
    outputs = ("network", "complete_dc_report")
    params = (
        "complete_dc",
        "dc_policy",
        "dc_threshold",
        "dc_fraction",
        "dc_max_fanins",
        "dc_vectors",
        "dc_query_budget",
        "dc_conflict_budget",
        "dc_window",
        "dc_seed",
    )
    # dc_jobs / dc_batch are read but deliberately NOT declared above:
    # they are execution knobs whose results are bit-identical to the
    # serial single-query run, so they must not change the checkpoint
    # fingerprint (a jobs=4 resume reuses a jobs=1 checkpoint).
    version = "1"

    def run(self, ctx: FlowContext) -> None:
        from ..synth.flexibility import (
            DEFAULT_BATCH_SIZE,
            CompleteDcReport,
            reassign_complete_dcs,
        )

        network = ctx.require("network")
        if not ctx.param("complete_dc", True):
            ctx.set("network", network)
            ctx.set(
                "complete_dc_report",
                CompleteDcReport(0, 0, 0, 0, 0, 0, 0, float("nan"), float("nan")),
            )
            return
        with span("pipeline.complete_dc", nodes=len(network.nodes)):
            report = reassign_complete_dcs(
                network,
                policy=ctx.param("dc_policy", "cfactor"),
                threshold=ctx.param("dc_threshold", DEFAULT_THRESHOLD),
                fraction=ctx.param("dc_fraction", 1.0),
                max_fanins=ctx.param("dc_max_fanins", 10),
                simulation_vectors=ctx.param("dc_vectors", 256),
                query_budget=ctx.param("dc_query_budget", 256),
                conflict_budget=ctx.param("dc_conflict_budget", 10_000),
                window_levels=ctx.param("dc_window", 2),
                rng=np.random.default_rng(ctx.param("dc_seed", 0)),
                jobs=ctx.param("dc_jobs", 1),
                batch_size=ctx.param("dc_batch", DEFAULT_BATCH_SIZE),
            )
        ctx.set("network", network)
        ctx.set("complete_dc_report", report)


@register_stage
class MapStage:
    """``network`` -> ``netlist`` via area-driven tree covering.

    Area-driven covering for every objective: a constant-load delay DP
    picks oversized cells whose pin capacitance slows the whole netlist
    down (measured), so the delay objective instead sizes the critical
    path of an area-optimal covering — the standard industrial recipe
    (see :class:`TuneStage`).
    """

    name = "map"
    inputs = ("network",)
    outputs = ("netlist",)
    params = ("library",)
    version = "1"

    def run(self, ctx: FlowContext) -> None:
        network = ctx.require("network")
        library = ctx.param("library") or generic_70nm_library()
        with span("synth.subject_graph"):
            graph = build_subject_graph(network)
        with span("synth.map"):
            netlist = map_graph(graph, library, mode="area")
        ctx.set("netlist", netlist)


@register_stage
class TuneStage:
    """Objective tuning: upsize the critical path for ``delay``."""

    name = "tune"
    inputs = ("netlist",)
    outputs = ("netlist",)
    params = ("objective",)
    version = "1"

    def run(self, ctx: FlowContext) -> None:
        netlist = ctx.require("netlist")
        objective = ctx.param("objective", "delay")
        validate_objective(objective)
        if objective == "delay":
            with span("synth.upsize_critical"):
                upsize_critical(netlist, max_rounds=25)
        ctx.set("netlist", netlist)


@register_stage
class MeasureStage:
    """Self-check and measure ``netlist``, producing ``synthesis``.

    The equivalence self-check compares against the *assigned* spec (the
    function the netlist was synthesised from); the error rate draws its
    error sources from the care set of the *source* spec, exactly as the
    paper measures reliability-driven partial assignments.

    The ``fault_model`` parameter (a registry name or spec dict, see
    :mod:`repro.faults`) selects the error semantics and is folded into
    the checkpoint key.  Input-scope models measure the implemented
    truth table against the source care set; node-scope models (e.g.
    ``stuck_at``) measure the optimised logic network instead, where
    internal signals exist.  The default ``single_bit`` model delegates
    to :func:`repro.core.reliability.error_rate` and is bit-identical
    to the historical hard-wired measurement.
    """

    name = "measure"
    inputs = ("netlist", "network", "assigned_spec", "spec")
    outputs = ("implemented", "synthesis")
    params = ("fault_model",)
    version = "2"

    def run(self, ctx: FlowContext) -> None:
        from ..faults import create_fault_model
        from ..synth.compile_ import SynthesisResult

        netlist = ctx.require("netlist")
        network = ctx.require("network")
        assigned = ctx.require("assigned_spec")
        source = ctx.get("spec", assigned)
        model = create_fault_model(ctx.param("fault_model", None) or "single_bit")
        with span("synth.selfcheck"):
            implemented = netlist.to_spec(name=f"{assigned.name}/impl")
            if not assigned.equivalent_within_dc(implemented):
                raise ValueError(
                    f"synthesis self-check failed: netlist does not "
                    f"implement {assigned.name}"
                )
        with span("synth.timing"):
            timing = static_timing(netlist)
        with span("synth.power"):
            power = power_analysis(netlist)
        obs_metrics.counter("synth.networks_compiled").inc()
        obs_metrics.counter("synth.gates_mapped").inc(netlist.num_gates)
        with span("synth.error_rate", fault_model=model.name):
            if model.scope == "node":
                measured_rate = model.network_error_rate(network)
            else:
                measured_rate = model.error_rate(implemented, spec=source)
        synthesis = SynthesisResult(
            netlist=netlist,
            area=netlist.area,
            delay=timing.delay,
            power=power.total,
            num_gates=netlist.num_gates,
            literals=network.num_literals,
            error_rate=measured_rate,
            implemented=implemented,
        )
        ctx.set("implemented", implemented)
        ctx.set("synthesis", synthesis)
