"""Content-addressed stage checkpoints on disk.

A :class:`CheckpointStore` persists the output artefacts of each pipeline
stage under a key derived through :func:`repro.perf.cache.stage_key`: the
digest chains over the initial context fingerprint, every upstream
stage's identity/version and the parameter values each stage depends on.
A resumed run therefore loads exactly the stages whose entire producing
history is unchanged and recomputes from the first divergence — whether
the previous run was interrupted (Ctrl-C, ``kill -9``, an exception) or
re-parameterised (e.g. a new ``objective`` reuses the ``assign`` and
``espresso`` outputs, which don't depend on it).

Entries are pickle files named ``<stage>-<key>.ckpt``.  Writes go
through a temporary file plus :func:`os.replace`, so a process killed
mid-write never leaves a loadable-but-corrupt entry; unreadable entries
are treated as misses and deleted.  Hit/miss/store traffic is exported
to the metrics registry under ``cache.checkpoint_*`` alongside the
minimisation cache's ``cache.*`` counters.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any

from ..obs import metrics as obs_metrics

__all__ = ["CheckpointStore"]

_SUFFIX = ".ckpt"


class CheckpointStore:
    """Pickle-backed store of stage outputs, keyed by content digest.

    Args:
        directory: where entries live; created if missing.  Multiple
            processes may share a directory — keys are content-addressed
            and writes are atomic, so concurrent writers at worst store
            the same bytes twice.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, stage_name: str, key: str) -> Path:
        return self.directory / f"{stage_name}-{key}{_SUFFIX}"

    def load(self, stage_name: str, key: str) -> dict[str, Any] | None:
        """The stored output artefacts for *key*, or None on a miss.

        Corrupt or truncated entries (e.g. from a version skew) count as
        misses and are removed so the slot is rewritten cleanly.
        """
        path = self._path(stage_name, key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            obs_metrics.counter("cache.checkpoint_misses").inc()
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            obs_metrics.counter("cache.checkpoint_misses").inc()
            obs_metrics.counter("cache.checkpoint_corrupt").inc()
            path.unlink(missing_ok=True)
            return None
        if payload.get("key") != key or payload.get("stage") != stage_name:
            obs_metrics.counter("cache.checkpoint_misses").inc()
            obs_metrics.counter("cache.checkpoint_corrupt").inc()
            path.unlink(missing_ok=True)
            return None
        obs_metrics.counter("cache.checkpoint_hits").inc()
        return payload["outputs"]

    def store(self, stage_name: str, key: str, outputs: dict[str, Any]) -> Path:
        """Persist *outputs* (serialised immediately) under *key*.

        Serialising at store time matters: later stages may mutate the
        same artefact objects in place (``optimize`` rewrites the
        network), and the checkpoint must capture this stage's view.
        """
        payload = pickle.dumps(
            {"stage": stage_name, "key": key, "outputs": outputs}, protocol=4
        )
        path = self._path(stage_name, key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        obs_metrics.counter("cache.checkpoint_stores").inc()
        return path

    def __len__(self) -> int:
        return len(list(self.directory.glob(f"*{_SUFFIX}")))

    def entries(self) -> list[str]:
        """Stored entry file names (sorted), for inspection and tests."""
        return sorted(p.name for p in self.directory.glob(f"*{_SUFFIX}"))

    def clear(self) -> None:
        """Delete every stored entry."""
        for path in self.directory.glob(f"*{_SUFFIX}"):
            path.unlink(missing_ok=True)
