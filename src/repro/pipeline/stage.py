"""The ``Stage`` protocol and the process-wide stage registry.

A *stage* is one composable unit of the synthesis flow: it names the
context keys it consumes (``inputs``) and produces (``outputs``), the
flow parameters that change its behaviour (``params``, which feed the
checkpoint key), and does its work in ``run(ctx)`` against a
:class:`~repro.pipeline.context.FlowContext`.

Stages register themselves under their name with :func:`register_stage`
so declarative pipeline configs — and ``repro pipeline run`` — can refer
to them by string.  ``repro info --json`` and ``repro pipeline stages``
list the registry for tooling.
"""

from __future__ import annotations

from typing import Any, Protocol, TypeVar, runtime_checkable

from ..perf.cache import digest_parts
from .context import FlowContext

__all__ = [
    "Stage",
    "describe_stage",
    "get_stage",
    "params_fingerprint",
    "register_stage",
    "registered_stages",
    "stage_names",
]


@runtime_checkable
class Stage(Protocol):
    """What a pipeline stage must provide.

    Attributes:
        name: registry name (``assign``, ``espresso``, ...).
        inputs: context keys the stage reads; the pipeline verifies each
            is produced by an earlier stage or present initially.
        outputs: context keys the stage writes; exactly these are saved
            to (and restored from) a checkpoint.
        params: flow parameter names that affect the stage's output —
            they are folded into its checkpoint key, so changing any of
            them invalidates this stage's checkpoints but not those of
            stages that ignore the parameter.
        version: bumped when the stage's semantics change, invalidating
            old checkpoints.
    """

    name: str
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    params: tuple[str, ...]
    version: str

    def run(self, ctx: FlowContext) -> None:
        """Execute the stage, reading and writing *ctx* artefacts."""
        ...


def params_fingerprint(stage: Stage, ctx: FlowContext) -> str:
    """Digest of the parameter values *stage* depends on.

    Values are rendered through :func:`_param_repr`, which special-cases
    the ``library`` object so two runs against the same cell library
    share checkpoints regardless of object identity.
    """
    parts: list[bytes] = []
    for name in stage.params:
        parts.append(name.encode())
        parts.append(_param_repr(name, ctx.param(name)).encode())
    return digest_parts(b"params", *parts)


def _param_repr(name: str, value: Any) -> str:
    if name == "library":
        if value is None:
            return "library:default"
        cells = ",".join(
            f"{c.name}:{c.area}:{c.pin_cap}:{c.resistance}:{c.intrinsic}:{c.leakage}"
            for c in value.cells
        )
        return (
            f"library:{cells};wire_cap={value.wire_cap};"
            f"input_drive={value.input_drive};output_cap={value.output_cap}"
        )
    return repr(value)


_REGISTRY: dict[str, Stage] = {}

_S = TypeVar("_S")


def register_stage(cls: type[_S]) -> type[_S]:
    """Class decorator: instantiate and register a stage under its name.

    Raises:
        ValueError: if the name is already taken by a different class —
            duplicate registration is almost always an import mistake.
    """
    stage = cls()
    existing = _REGISTRY.get(stage.name)
    if existing is not None and type(existing) is not cls:
        raise ValueError(
            f"stage name {stage.name!r} already registered by "
            f"{type(existing).__name__}"
        )
    _REGISTRY[stage.name] = stage
    return cls


def describe_stage(stage: Stage) -> dict[str, Any]:
    """One JSON-ready dict describing *stage*.

    Carries the declared interface (name, inputs, outputs, params,
    version) plus ``summary`` — the first line of the stage class's
    docstring — so registry listings (``repro pipeline stages``,
    ``Pipeline.describe``) are self-documenting.  Parameter overlays are
    unwrapped to the underlying stage for the docstring.
    """
    target = getattr(stage, "_stage", stage)
    doc = (type(target).__doc__ or "").strip()
    summary = doc.splitlines()[0].strip() if doc else ""
    return {
        "name": stage.name,
        "inputs": list(stage.inputs),
        "outputs": list(stage.outputs),
        "params": list(stage.params),
        "version": stage.version,
        "summary": summary,
    }


def get_stage(name: str) -> Stage:
    """The registered stage called *name*.

    Raises:
        KeyError: for unknown names, listing the registry.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown stage {name!r}; registered stages: {stage_names()}"
        ) from None


def registered_stages() -> dict[str, Stage]:
    """Name-to-stage view of the registry (insertion order)."""
    return dict(_REGISTRY)


def stage_names() -> list[str]:
    """Registered stage names, in registration order."""
    return list(_REGISTRY)
