"""The stage-graph pass manager behind the experiment flows.

The package decomposes the paper's fixed recipe — DC assignment →
ESPRESSO → multi-level optimisation → mapping → objective tuning →
measurement — into composable, checkpointable passes:

* :mod:`repro.pipeline.stage` — the :class:`Stage` protocol and the
  process-wide registry (``assign``, ``espresso``, ``optimize``,
  ``map``, ``tune``, ``measure``);
* :mod:`repro.pipeline.context` — :class:`FlowContext`, the typed
  artefact store stages read from and write to;
* :mod:`repro.pipeline.stages` — the built-in stages, extracted from
  the former ``run_flow`` / ``compile_spec`` monolith;
* :mod:`repro.pipeline.pipeline` — :class:`Pipeline`: wiring
  validation, execution with per-stage spans/metrics, declarative
  (JSON) configs;
* :mod:`repro.pipeline.checkpoint` — :class:`CheckpointStore`,
  content-addressed stage checkpoints enabling interrupted or
  re-parameterised runs to resume from the last valid stage output.

``run_flow``, ``compile_spec``, ``compile_network`` and the sweep
drivers are thin drivers over this package; ``repro pipeline run``
executes declarative configs directly.  See ``docs/pipeline.md``.
"""

from .checkpoint import CheckpointStore
from .context import ARTIFACT_KEYS, FlowContext
from .pipeline import DEFAULT_STAGES, Pipeline, default_config, load_config
from .stage import (
    Stage,
    describe_stage,
    get_stage,
    register_stage,
    registered_stages,
    stage_names,
)
from .stages import (
    OBJECTIVES,
    POLICIES,
    apply_policy,
    validate_objective,
)

__all__ = [
    "ARTIFACT_KEYS",
    "CheckpointStore",
    "DEFAULT_STAGES",
    "FlowContext",
    "OBJECTIVES",
    "POLICIES",
    "Pipeline",
    "Stage",
    "apply_policy",
    "default_config",
    "describe_stage",
    "get_stage",
    "load_config",
    "register_stage",
    "registered_stages",
    "stage_names",
    "validate_objective",
]
