"""Exact single-bit input-error reliability metrics (Sec. 2 and Sec. 5).

Fault model
-----------

The paper considers *input errors*: a single input pin of the block flips,
so the applied vector moves to a 1-Hamming-distance neighbour of the correct
vector.  An error *propagates* (to a given output) when the implemented
output values of the correct and erroneous vectors differ; otherwise it is
*logically masked*.

Two conventions matter and are fixed here once for the whole package:

* **Sources.**  Correct input vectors are drawn from the *care set of the
  original specification* — a vector in the external DC set "can never occur
  in practice" (Sec. 2.1), so errors originating there are not counted.
  Destinations may be any vector (after assignment every vector has a
  value).
* **Units.**  The *error rate* is ``events / (n * 2**n)``: the probability
  that flipping a uniformly random input bit of a uniformly random vector
  changes the output.  Multi-output rates are means over outputs.  With
  sources restricted to the care set the numerator only receives care-source
  events, so the rate is also "care-source events per possible single-bit
  error".

Under these conventions the paper's decomposition holds exactly::

    error_count(g)  =  base_error_count(f)  +  sum over DC minterms x of
                       (off-neighbours(x) if g(x)=1 else on-neighbours(x))

for any completion ``g`` of the spec ``f``, which is what
:func:`min_dc_error_count` / :func:`max_dc_error_count` optimise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hamming import neighbor_phase_counts
from .spec import FunctionSpec
from .truthtable import DC, OFF, ON, neighbor_view, num_inputs_of

__all__ = [
    "base_error_count",
    "min_dc_error_count",
    "max_dc_error_count",
    "exact_error_bounds",
    "error_events",
    "error_rate",
    "weighted_error_rate",
    "multibit_error_rate",
    "spec_error_rate",
    "ErrorBounds",
]


def base_error_count(phases: np.ndarray) -> np.ndarray:
    """Directed count of care–care opposite-phase neighbour pairs.

    This is the paper's ``base-error``: twice the number of unordered
    (on-set, off-set) 1-Hamming-distance pairs.  It is independent of any DC
    assignment.

    Returns:
        int (1-D input) or per-output int array (2-D input).
    """
    n = num_inputs_of(phases)
    count = np.zeros(phases.shape[:-1], dtype=np.int64)
    for bit in range(n):
        nb = neighbor_view(phases, bit)
        count += np.count_nonzero((phases == ON) & (nb == OFF), axis=-1)
        count += np.count_nonzero((phases == OFF) & (nb == ON), axis=-1)
    return count if count.ndim else int(count)


def _dc_neighbor_minmax(phases: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    on_nb, off_nb, _ = neighbor_phase_counts(phases)
    dc = phases == DC
    lo = np.where(dc, np.minimum(on_nb, off_nb), 0)
    hi = np.where(dc, np.maximum(on_nb, off_nb), 0)
    return lo.sum(axis=-1, dtype=np.int64), hi.sum(axis=-1, dtype=np.int64)


def min_dc_error_count(phases: np.ndarray) -> np.ndarray:
    """``min-dc-error``: best-case error events contributed by DC minterms.

    Sum over DC minterms of ``min(on-neighbours, off-neighbours)`` — the
    number of care-source errors landing on the minterm that must propagate
    under the *most favourable* 0/1 assignment.
    """
    lo, _ = _dc_neighbor_minmax(phases)
    return lo if lo.ndim else int(lo)


def max_dc_error_count(phases: np.ndarray) -> np.ndarray:
    """``max-dc-error``: worst-case error events contributed by DC minterms."""
    _, hi = _dc_neighbor_minmax(phases)
    return hi if hi.ndim else int(hi)


@dataclass(frozen=True)
class ErrorBounds:
    """A minimum/maximum error-rate band.

    Attributes:
        lo: lower bound (or estimate of it) on the error rate.
        hi: upper bound (or estimate of it) on the error rate.
    """

    lo: float
    hi: float

    def contains(self, rate: float, *, slack: float = 0.0) -> bool:
        """True if *rate* lies within the band (± *slack*)."""
        return self.lo - slack <= rate <= self.hi + slack

    @property
    def width(self) -> float:
        """Band width ``hi - lo``."""
        return self.hi - self.lo


def exact_error_bounds(spec: FunctionSpec) -> ErrorBounds:
    """Exact min/max achievable error rate over all DC assignments.

    Averages ``(base + min_dc) / (n * 2**n)`` and ``(base + max_dc) /
    (n * 2**n)`` over outputs.  These are the "Exact" columns of Table 3.
    """
    n = spec.num_inputs
    base = base_error_count(spec.phases)
    lo = base + min_dc_error_count(spec.phases)
    hi = base + max_dc_error_count(spec.phases)
    denom = n * spec.num_minterms
    return ErrorBounds(float(np.mean(lo / denom)), float(np.mean(hi / denom)))


def error_events(
    impl_phases: np.ndarray,
    *,
    source_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Count directed error events of an implementation.

    An event is a pair ``(x, j)`` such that ``x`` is an admissible source
    and the implementation value changes when input ``j`` flips.  Entries of
    *impl_phases* that are still DC never produce or absorb events (an
    unassigned minterm is treated as matching everything, which makes the
    count of a partial assignment a lower bound on any completion).

    Args:
        impl_phases: phase array of the implementation (usually fully
            specified).
        source_mask: boolean mask of admissible source minterms, same shape
            as *impl_phases* (default: the implementation's own care set).

    Returns:
        int64 event counts, one per output (scalar for 1-D input).
    """
    n = num_inputs_of(impl_phases)
    if source_mask is None:
        source_mask = impl_phases != DC
    if source_mask.shape != impl_phases.shape:
        raise ValueError("source mask shape mismatch")
    count = np.zeros(impl_phases.shape[:-1], dtype=np.int64)
    for bit in range(n):
        nb = neighbor_view(impl_phases, bit)
        flips = ((impl_phases == ON) & (nb == OFF)) | ((impl_phases == OFF) & (nb == ON))
        count += np.count_nonzero(flips & source_mask, axis=-1)
    return count if count.ndim else int(count)


def error_rate(
    impl: FunctionSpec,
    *,
    spec: FunctionSpec | None = None,
) -> float:
    """Mean single-bit input-error rate of an implementation.

    Args:
        impl: the implemented (normally fully specified) function.
        spec: original specification whose care set defines the admissible
            error sources; defaults to *impl* itself (all-sources when
            *impl* is fully specified).

    Returns:
        events / (n * 2**n), averaged over outputs.
    """
    source = (spec or impl).care_mask()
    events = np.atleast_1d(error_events(impl.phases, source_mask=source))
    return float(np.mean(events / (impl.num_inputs * impl.num_minterms)))


def weighted_error_rate(
    impl: FunctionSpec,
    weights,
    *,
    spec: FunctionSpec | None = None,
) -> float:
    """Error rate under non-uniform per-input error probabilities.

    The paper assumes every input pin fails with the same probability; this
    generalisation weights input *j*'s failures by ``weights[j]`` (e.g.
    derived from upstream logic's derating).  With uniform weights it
    reduces to :func:`error_rate`.

    Args:
        impl: the implemented function.
        weights: one non-negative weight per input (need not be
            normalised).
        spec: original specification providing the error-source care set.

    Raises:
        ValueError: on a wrong-length or all-zero weight vector.
    """
    weights = np.asarray(list(weights), dtype=np.float64)
    n = impl.num_inputs
    if weights.shape != (n,):
        raise ValueError(f"expected {n} weights, got {weights.shape}")
    total = float(weights.sum())
    if total <= 0 or np.any(weights < 0):
        raise ValueError("weights must be non-negative and not all zero")
    source = (spec or impl).care_mask()
    phases = impl.phases
    accumulated = 0.0
    for bit in range(n):
        nb = neighbor_view(phases, bit)
        flips = ((phases == ON) & (nb == OFF)) | ((phases == OFF) & (nb == ON))
        count = np.count_nonzero(flips & source, axis=-1)
        accumulated += float(weights[bit]) * float(np.mean(count))
    return accumulated / (total * impl.num_minterms)


def multibit_error_rate(
    impl: FunctionSpec,
    distance: int,
    *,
    spec: FunctionSpec | None = None,
) -> float:
    """Error rate for *distance*-bit input errors (deprecated).

    .. deprecated::
        The enumeration now lives in the fault-model layer; use
        ``repro.faults.MultiBitInput(distance).error_rate(impl, spec=...)``.
        This shim delegates there (numerically identical) and emits a
        :class:`DeprecationWarning`.

    Raises:
        ValueError: if *distance* is outside ``[1, num_inputs]``.
    """
    import warnings

    from ..faults import MultiBitInput

    warnings.warn(
        "multibit_error_rate is deprecated; use "
        "repro.faults.MultiBitInput(distance).error_rate",
        DeprecationWarning,
        stacklevel=2,
    )
    n = impl.num_inputs
    if not 1 <= distance <= n:
        raise ValueError(f"distance must lie in [1, {n}], got {distance}")
    return MultiBitInput(distance).error_rate(impl, spec=spec)


def spec_error_rate(spec: FunctionSpec) -> float:
    """Error rate of a (possibly partial) specification itself.

    Counts only care→care opposite-phase events; DC minterms contribute
    nothing.  For a fully specified function this equals
    :func:`error_rate`; for a partial assignment it is the floor that any
    completion will add to.
    """
    return error_rate(spec, spec=spec)
