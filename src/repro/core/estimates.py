"""Analytic min-max reliability estimates (Sec. 5 of the paper).

Both estimators predict the band ``[min, max]`` of achievable error rates of
a specification *without* enumerating minterm neighbourhoods:

* the **signal-probability estimate** models the on/off/DC phases of a
  minterm's neighbours as i.i.d. draws with the observed signal
  probabilities; the signed neighbour-balance ``Y = #on - #off`` is then
  approximately Gaussian and ``min(#on, #off) = (n - |Y|) / 2`` has a
  closed-form folded-normal expectation;
* the **border estimate** additionally measures the three *border counts*
  (Fig. 8) — directed 1-Hamming-distance pairs leaving the off-, on- and
  DC-sets — which capture how clustered each set is, and models the
  number of on-set neighbours of a DC minterm as Poisson.

All results are expressed in the package's common error-rate units
(events per ``n * 2**n`` — see :mod:`repro.core.reliability`) so they are
directly comparable with the exact bounds and with measured circuit rates.
Table 3's qualitative claim is that the signal estimate *overshoots* the
exact band while the border estimate *contains* it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .reliability import ErrorBounds
from .spec import FunctionSpec
from .truthtable import DC, OFF, ON, neighbor_view, num_inputs_of, phase_fractions

__all__ = [
    "border_counts",
    "signal_probability_bounds",
    "border_bounds",
    "estimate_report",
    "EstimateReport",
]


def border_counts(phases: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Directed border counts ``(b0, b1, bDC)`` along the last axis.

    ``b0`` counts ordered pairs ``(x_i, x_j)`` with ``x_i`` in the off-set,
    ``x_j`` *not* in the off-set and ``D_H(x_i, x_j) = 1``; ``b1`` and
    ``bDC`` analogously for the on- and DC-set.
    """
    n = num_inputs_of(phases)
    b0 = np.zeros(phases.shape[:-1], dtype=np.int64)
    b1 = np.zeros_like(b0)
    bdc = np.zeros_like(b0)
    for bit in range(n):
        nb = neighbor_view(phases, bit)
        b0 += np.count_nonzero((phases == OFF) & (nb != OFF), axis=-1)
        b1 += np.count_nonzero((phases == ON) & (nb != ON), axis=-1)
        bdc += np.count_nonzero((phases == DC) & (nb != DC), axis=-1)
    return b0, b1, bdc


def _folded_normal_mean(mu: float, sigma: float) -> float:
    """``E[|Y|]`` for ``Y ~ Normal(mu, sigma**2)`` (exact closed form)."""
    if sigma <= 0.0:
        return abs(mu)
    ratio = mu / (sigma * math.sqrt(2.0))
    return sigma * math.sqrt(2.0 / math.pi) * math.exp(-ratio * ratio) + mu * math.erf(ratio)


def _signal_bounds_one(phases: np.ndarray, n: int) -> tuple[float, float]:
    f0, f1, fdc = phase_fractions(phases)
    base_rate = 2.0 * float(f0) * float(f1)
    mu = n * (float(f1) - float(f0))
    var = n * (float(f1) + float(f0) - (float(f1) - float(f0)) ** 2)
    abs_mean = _folded_normal_mean(mu, math.sqrt(max(var, 0.0)))
    min_per_dc = (n - abs_mean) / 2.0
    max_per_dc = (n + abs_mean) / 2.0
    lo = base_rate + float(fdc) * max(min_per_dc, 0.0) / n
    hi = base_rate + float(fdc) * min(max_per_dc, n) / n
    return lo, hi


def signal_probability_bounds(spec: FunctionSpec) -> ErrorBounds:
    """Gaussian signal-probability estimate of the min/max error rate.

    The per-output bands are averaged over outputs, matching how Table 3
    reports one band per benchmark.
    """
    n = spec.num_inputs
    bands = [_signal_bounds_one(spec.phases[out], n) for out in range(spec.num_outputs)]
    lows, highs = zip(*bands)
    return ErrorBounds(float(np.mean(lows)), float(np.mean(highs)))


def _poisson_pmf(k: int, lam: float) -> float:
    if lam <= 0.0:
        return 1.0 if k == 0 else 0.0
    return math.exp(k * math.log(lam) - lam - math.lgamma(k + 1))


def _border_bounds_one(phases: np.ndarray, n: int) -> tuple[float, float]:
    size = phases.shape[-1]
    f0, f1, fdc = (float(v) for v in phase_fractions(phases))
    b0, b1, bdc = (int(v) for v in border_counts(phases))

    on_term = b1 * (f0 / (f0 + fdc)) if (f0 + fdc) > 0 else 0.0
    off_term = b0 * (f1 / (f1 + fdc)) if (f1 + fdc) > 0 else 0.0
    base_rate = (on_term + off_term) / (n * size)

    if fdc == 0.0 or bdc == 0:
        return base_rate, base_rate

    borders_per_dc = bdc / (fdc * size)
    care_borders = b0 + b1
    lam = borders_per_dc * (b1 / care_borders) if care_borders else 0.0

    half = int(borders_per_dc // 2)
    top = int(borders_per_dc)
    min_per_dc = 0.0
    max_per_dc = 0.0
    for i in range(0, top + 1):
        pmf = _poisson_pmf(i, lam)
        if i <= half:
            min_per_dc += i * pmf
            max_per_dc += (borders_per_dc - i) * pmf
        else:
            min_per_dc += (borders_per_dc - i) * pmf
            max_per_dc += i * pmf

    lo = base_rate + fdc * max(min_per_dc, 0.0) / n
    hi = base_rate + fdc * max_per_dc / n
    return lo, hi


def border_bounds(spec: FunctionSpec) -> ErrorBounds:
    """Border-count/Poisson estimate of the min/max error rate.

    Uses formula (1) of the paper for the base error and the Poisson model
    for the DC-neighbour distribution; per-output bands are averaged.
    """
    n = spec.num_inputs
    bands = [_border_bounds_one(spec.phases[out], n) for out in range(spec.num_outputs)]
    lows, highs = zip(*bands)
    return ErrorBounds(float(np.mean(lows)), float(np.mean(highs)))


@dataclass(frozen=True)
class EstimateReport:
    """All three Table 3 bands for one benchmark.

    Attributes:
        exact: enumerated exact min/max achievable error rates.
        signal: Gaussian signal-probability estimate.
        border: border-count/Poisson estimate.
    """

    exact: ErrorBounds
    signal: ErrorBounds
    border: ErrorBounds


def estimate_report(spec: FunctionSpec) -> EstimateReport:
    """Compute exact, signal-based and border-based bands for *spec*."""
    from .reliability import exact_error_bounds

    return EstimateReport(
        exact=exact_error_bounds(spec),
        signal=signal_probability_bounds(spec),
        border=border_bounds(spec),
    )
