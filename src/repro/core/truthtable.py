"""Dense truth-table representation of incompletely specified functions.

Throughout :mod:`repro`, an *n*-input incompletely specified Boolean function
is represented by a dense *phase array*: a ``numpy.uint8`` array of length
``2**n`` whose entry at minterm index ``x`` is one of

* :data:`OFF` (0) — ``x`` is in the off-set,
* :data:`ON` (1) — ``x`` is in the on-set,
* :data:`DC` (2) — ``x`` is in the don't-care set.

Bit ``j`` of the minterm index is the value of input ``j`` (input 0 is the
least significant bit).  Multi-output functions stack one phase array per
output into a 2-D array of shape ``(num_outputs, 2**n)``.

This module provides the low-level operations on phase arrays that the rest
of the package builds on: validation, phase statistics and the *neighbour
view* trick used to reason about 1-Hamming-distance neighbours without
materialising index permutations.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "OFF",
    "ON",
    "DC",
    "PHASE_NAMES",
    "num_inputs_of",
    "validate_phases",
    "neighbor_view",
    "care_mask",
    "phase_fractions",
    "phase_counts",
    "random_phases",
]

OFF: int = 0
"""Phase code for minterms in the off-set."""

ON: int = 1
"""Phase code for minterms in the on-set."""

DC: int = 2
"""Phase code for minterms in the don't-care set."""

PHASE_NAMES: dict[int, str] = {OFF: "off", ON: "on", DC: "dc"}
"""Human-readable names for the phase codes."""


def num_inputs_of(phases: np.ndarray) -> int:
    """Return ``n`` such that the last axis of *phases* has length ``2**n``.

    Raises:
        ValueError: if the last axis length is not a power of two.
    """
    size = phases.shape[-1]
    n = int(size).bit_length() - 1
    if size <= 0 or (1 << n) != size:
        raise ValueError(f"phase array length {size} is not a power of two")
    return n


def validate_phases(phases: np.ndarray) -> np.ndarray:
    """Check that *phases* is a well-formed phase array and return it.

    The array must have a power-of-two last axis and contain only the codes
    :data:`OFF`, :data:`ON` and :data:`DC`.  The input is returned unchanged
    (as ``uint8``) so the function can be used in constructor pipelines.

    Raises:
        ValueError: on malformed shape or out-of-range phase codes.
    """
    arr = np.asarray(phases, dtype=np.uint8)
    num_inputs_of(arr)
    if arr.size and int(arr.max()) > DC:
        bad = int(arr.max())
        raise ValueError(f"phase array contains invalid code {bad}")
    return arr


def neighbor_view(phases: np.ndarray, bit: int) -> np.ndarray:
    """Return the phase array re-indexed by flipping input *bit*.

    ``neighbor_view(p, j)[..., x] == p[..., x ^ (1 << j)]`` for every minterm
    index ``x``.  The result is a view-shaped copy produced by a reshape and
    an axis reversal, which is considerably faster than fancy indexing for
    the dense sweeps used by the complexity and reliability computations.

    Args:
        phases: array whose last axis has length ``2**n``.
        bit: input index in ``[0, n)`` (bit 0 is the least significant).

    Raises:
        ValueError: if *bit* is out of range.
    """
    n = num_inputs_of(phases)
    if not 0 <= bit < n:
        raise ValueError(f"bit {bit} out of range for {n}-input function")
    lead = phases.shape[:-1]
    blocks = phases.reshape(lead + (1 << (n - 1 - bit), 2, 1 << bit))
    return blocks[..., ::-1, :].reshape(phases.shape)


def care_mask(phases: np.ndarray) -> np.ndarray:
    """Boolean mask of minterms in the care set (on-set or off-set)."""
    return phases != DC


def phase_counts(phases: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Count off/on/DC minterms along the last axis.

    Returns:
        ``(n_off, n_on, n_dc)`` arrays, one entry per leading index (scalars
        for 1-D input).
    """
    n_off = np.count_nonzero(phases == OFF, axis=-1)
    n_on = np.count_nonzero(phases == ON, axis=-1)
    n_dc = np.count_nonzero(phases == DC, axis=-1)
    return n_off, n_on, n_dc


def phase_fractions(phases: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Signal probabilities ``(f0, f1, fDC)`` along the last axis.

    These are the quantities the paper calls ``f_0``, ``f_1`` and ``f_DC``:
    the fractions of the ``2**n`` minterms lying in the off-, on- and DC-set.
    """
    size = phases.shape[-1]
    n_off, n_on, n_dc = phase_counts(phases)
    return n_off / size, n_on / size, n_dc / size


def random_phases(
    num_inputs: int,
    num_outputs: int,
    probabilities: tuple[float, float, float],
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw an i.i.d. random phase array ("three-sided coin" of Sec. 2.2).

    Args:
        num_inputs: number of function inputs ``n``.
        num_outputs: number of outputs (rows of the result).
        probabilities: ``(p_off, p_on, p_dc)``; must sum to 1.
        rng: numpy random generator to draw from.

    Returns:
        ``uint8`` array of shape ``(num_outputs, 2**num_inputs)``.
    """
    p_off, p_on, p_dc = probabilities
    total = p_off + p_on + p_dc
    if not np.isclose(total, 1.0):
        raise ValueError(f"phase probabilities sum to {total}, expected 1")
    return rng.choice(
        np.array([OFF, ON, DC], dtype=np.uint8),
        size=(num_outputs, 1 << num_inputs),
        p=[p_off, p_on, p_dc],
    )
