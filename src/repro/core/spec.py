"""The :class:`FunctionSpec` — a multi-output incompletely specified function.

A :class:`FunctionSpec` bundles the phase arrays of every output with input
and output names, and is the object all assignment algorithms, synthesis
flows and estimators in :mod:`repro` operate on.  It is immutable by
convention: transformation methods return new specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .truthtable import (
    DC,
    OFF,
    ON,
    care_mask,
    num_inputs_of,
    phase_fractions,
    validate_phases,
)

__all__ = ["FunctionSpec"]


def _default_names(prefix: str, count: int) -> tuple[str, ...]:
    return tuple(f"{prefix}{i}" for i in range(count))


@dataclass(frozen=True)
class FunctionSpec:
    """An incompletely specified multi-output Boolean function.

    Attributes:
        phases: ``uint8`` array of shape ``(num_outputs, 2**num_inputs)``
            holding :data:`~repro.core.truthtable.OFF` /
            :data:`~repro.core.truthtable.ON` /
            :data:`~repro.core.truthtable.DC` codes.  Bit ``j`` of a minterm
            index is the value of input ``j``.
        name: optional benchmark name used in reports.
        input_names: one label per input (default ``x0, x1, ...``).
        output_names: one label per output (default ``y0, y1, ...``).
    """

    phases: np.ndarray
    name: str = "f"
    input_names: tuple[str, ...] = field(default=())
    output_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        arr = validate_phases(np.atleast_2d(np.asarray(self.phases, dtype=np.uint8)))
        arr = np.ascontiguousarray(arr)
        arr.setflags(write=False)
        object.__setattr__(self, "phases", arr)
        if not self.input_names:
            object.__setattr__(self, "input_names", _default_names("x", self.num_inputs))
        if not self.output_names:
            object.__setattr__(self, "output_names", _default_names("y", self.num_outputs))
        if len(self.input_names) != self.num_inputs:
            raise ValueError(
                f"{len(self.input_names)} input names for {self.num_inputs} inputs"
            )
        if len(self.output_names) != self.num_outputs:
            raise ValueError(
                f"{len(self.output_names)} output names for {self.num_outputs} outputs"
            )

    # ------------------------------------------------------------------ shape

    @property
    def num_inputs(self) -> int:
        """Number of function inputs ``n``."""
        return num_inputs_of(self.phases)

    @property
    def num_outputs(self) -> int:
        """Number of function outputs."""
        return self.phases.shape[0]

    @property
    def num_minterms(self) -> int:
        """``2**num_inputs``."""
        return self.phases.shape[1]

    # ----------------------------------------------------------- constructors

    @classmethod
    def from_sets(
        cls,
        num_inputs: int,
        on_sets: list[list[int]] | list[set[int]],
        dc_sets: list[list[int]] | list[set[int]] | None = None,
        *,
        name: str = "f",
        input_names: tuple[str, ...] = (),
        output_names: tuple[str, ...] = (),
    ) -> "FunctionSpec":
        """Build a spec from explicit on- and DC-minterm lists per output.

        Minterms not listed in either set fall into the off-set.

        Raises:
            ValueError: if a minterm appears in both the on- and DC-set of
                the same output, or is out of range.
        """
        num_outputs = len(on_sets)
        if dc_sets is None:
            dc_sets = [[] for _ in range(num_outputs)]
        if len(dc_sets) != num_outputs:
            raise ValueError("on_sets and dc_sets must have the same length")
        size = 1 << num_inputs
        phases = np.full((num_outputs, size), OFF, dtype=np.uint8)
        for out, (on_set, dc_set) in enumerate(zip(on_sets, dc_sets)):
            on = np.fromiter(on_set, dtype=np.int64) if len(on_set) else np.empty(0, np.int64)
            dc = np.fromiter(dc_set, dtype=np.int64) if len(dc_set) else np.empty(0, np.int64)
            for arr in (on, dc):
                if arr.size and (arr.min() < 0 or arr.max() >= size):
                    raise ValueError(f"minterm out of range for {num_inputs} inputs")
            overlap = np.intersect1d(on, dc)
            if overlap.size:
                raise ValueError(
                    f"output {out}: minterms {overlap.tolist()} in both on- and DC-set"
                )
            phases[out, on] = ON
            phases[out, dc] = DC
        return cls(phases, name=name, input_names=input_names, output_names=output_names)

    @classmethod
    def from_truth_table(
        cls,
        values: np.ndarray,
        *,
        name: str = "f",
        input_names: tuple[str, ...] = (),
        output_names: tuple[str, ...] = (),
    ) -> "FunctionSpec":
        """Build a fully specified spec from boolean/0-1 output values."""
        arr = np.atleast_2d(np.asarray(values))
        phases = np.where(arr.astype(bool), ON, OFF).astype(np.uint8)
        return cls(phases, name=name, input_names=input_names, output_names=output_names)

    # ------------------------------------------------------------------- sets

    def output_phases(self, output: int) -> np.ndarray:
        """Phase array (read-only) of a single output."""
        return self.phases[output]

    def on_set(self, output: int) -> np.ndarray:
        """Sorted minterm indices of the on-set of *output*."""
        return np.flatnonzero(self.phases[output] == ON)

    def off_set(self, output: int) -> np.ndarray:
        """Sorted minterm indices of the off-set of *output*."""
        return np.flatnonzero(self.phases[output] == OFF)

    def dc_set(self, output: int) -> np.ndarray:
        """Sorted minterm indices of the don't-care set of *output*."""
        return np.flatnonzero(self.phases[output] == DC)

    def care_mask(self) -> np.ndarray:
        """Boolean array, True where the output is specified (per output)."""
        return care_mask(self.phases)

    def signal_probabilities(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-output ``(f0, f1, fDC)`` signal probabilities."""
        return phase_fractions(self.phases)

    def dc_fraction(self) -> float:
        """Overall fraction of (output, minterm) entries that are DC.

        This is the "%DC" column of Table 1 (as a fraction, not percent).
        """
        return float(np.count_nonzero(self.phases == DC)) / self.phases.size

    @property
    def is_fully_specified(self) -> bool:
        """True when no output has any DC minterm left."""
        return not bool(np.any(self.phases == DC))

    # ---------------------------------------------------------------- editing

    def with_phases(self, phases: np.ndarray, *, suffix: str = "") -> "FunctionSpec":
        """Return a copy of this spec with the phase array replaced."""
        return replace(
            self,
            phases=phases,
            name=self.name + suffix,
        )

    def assigned(self, values: np.ndarray, *, suffix: str = "/full") -> "FunctionSpec":
        """Return the fully specified spec obtained from 0/1 *values*.

        *values* must agree with this spec on its care set; only DC entries
        may be freely chosen.  This is the canonical way to turn a synthesis
        result back into a spec for error-rate measurement.

        Raises:
            ValueError: if *values* flips any care minterm.
        """
        arr = np.atleast_2d(np.asarray(values)).astype(bool)
        if arr.shape != self.phases.shape:
            raise ValueError(f"value shape {arr.shape} != spec shape {self.phases.shape}")
        new_phases = np.where(arr, ON, OFF).astype(np.uint8)
        care = self.care_mask()
        if np.any(new_phases[care] != self.phases[care]):
            raise ValueError("assignment changes a care minterm")
        return self.with_phases(new_phases, suffix=suffix)

    def single_output(self, output: int) -> "FunctionSpec":
        """Extract one output as a standalone single-output spec."""
        return FunctionSpec(
            self.phases[output : output + 1],
            name=f"{self.name}.{self.output_names[output]}",
            input_names=self.input_names,
            output_names=(self.output_names[output],),
        )

    # ------------------------------------------------------------- evaluation

    def evaluate(self, minterm: int) -> np.ndarray:
        """Phase codes of every output at *minterm*."""
        return self.phases[:, minterm].copy()

    def truth_values(self) -> np.ndarray:
        """Boolean output values of a fully specified spec.

        Raises:
            ValueError: if any DC minterm remains.
        """
        if not self.is_fully_specified:
            raise ValueError("spec still has don't-care minterms")
        return self.phases == ON

    # ------------------------------------------------------------- comparison

    def equivalent_within_dc(self, other: "FunctionSpec") -> bool:
        """True if *other* agrees with this spec on this spec's care set.

        *other* is typically a fully specified implementation; equivalence
        "within the DC set" is the correctness criterion for any synthesis
        result derived from this spec.
        """
        if other.phases.shape != self.phases.shape:
            return False
        care = self.care_mask()
        return bool(np.all(other.phases[care] == self.phases[care]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FunctionSpec):
            return NotImplemented
        return (
            self.phases.shape == other.phases.shape
            and bool(np.all(self.phases == other.phases))
        )

    def __hash__(self) -> int:
        return hash((self.phases.shape, self.phases.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FunctionSpec(name={self.name!r}, inputs={self.num_inputs}, "
            f"outputs={self.num_outputs}, dc={self.dc_fraction():.1%})"
        )
