"""Ranking-based DC assignment (Fig. 3 of the paper).

For every DC minterm the *reliability weight* ``w = |on-neighbours -
off-neighbours|`` measures how many single-bit input errors the minterm can
mask by being assigned to its majority care phase rather than the minority
one.  Minterms with ``w = 0`` are ambiguous (either phase masks equally
many errors) and are never assigned — they stay DC for later conventional
optimisation.  The remaining minterms are sorted by decreasing ``w`` and the
top *fraction* of the list is assigned to the majority phase.

The ranking uses neighbour counts of the *original* specification (the
algorithm in the paper ranks once, up front; decisions do not cascade).
"""

from __future__ import annotations

import numpy as np

from .assignment import Assignment
from .hamming import neighbor_phase_counts
from .spec import FunctionSpec
from .truthtable import DC, OFF, ON

__all__ = ["rank_dc_minterms", "ranking_assignment", "complete_assignment"]


def rank_dc_minterms(spec: FunctionSpec, output: int) -> list[tuple[int, int, int]]:
    """Rank the DC minterms of one output by reliability weight.

    Returns:
        List of ``(minterm, weight, majority_phase)`` tuples sorted by
        decreasing weight (ties broken by ascending minterm index, making
        the ranking deterministic).  Minterms with zero weight are omitted,
        as in Fig. 3.
    """
    phases = spec.output_phases(output)
    on_nb, off_nb, _ = neighbor_phase_counts(phases)
    entries: list[tuple[int, int, int]] = []
    for minterm in np.flatnonzero(phases == DC):
        weight = int(abs(int(on_nb[minterm]) - int(off_nb[minterm])))
        if weight == 0:
            continue
        majority = ON if on_nb[minterm] > off_nb[minterm] else OFF
        entries.append((int(minterm), weight, majority))
    entries.sort(key=lambda item: (-item[1], item[0]))
    return entries


def ranking_assignment(spec: FunctionSpec, fraction: float) -> Assignment:
    """Assign the top *fraction* of rankable DC minterms of every output.

    Args:
        spec: the incompletely specified function.
        fraction: in ``[0, 1]``; the fraction of each output's ranked DC
            list to assign (rounded to the nearest integer count).

    Returns:
        The resulting (partial) :class:`~repro.core.assignment.Assignment`.

    Raises:
        ValueError: if *fraction* is outside ``[0, 1]``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
    assignment = Assignment()
    for output in range(spec.num_outputs):
        ranked = rank_dc_minterms(spec, output)
        count = int(round(fraction * len(ranked)))
        for minterm, _, majority in ranked[:count]:
            assignment.set(output, minterm, majority)
    return assignment


def complete_assignment(spec: FunctionSpec) -> Assignment:
    """Assign *every* DC minterm for reliability ("Complete" in Table 2).

    Every DC minterm goes to its majority care phase; ambiguous minterms
    (equal on- and off-neighbour counts, including isolated DC regions) go
    to the off-set, mirroring the ``else x_i <- 0`` branch of Fig. 7.
    """
    assignment = Assignment()
    for output in range(spec.num_outputs):
        phases = spec.output_phases(output)
        on_nb, off_nb, _ = neighbor_phase_counts(phases)
        for minterm in np.flatnonzero(phases == DC):
            majority = ON if on_nb[minterm] > off_nb[minterm] else OFF
            assignment.set(output, int(minterm), majority)
    return assignment
