"""Don't-care assignment records.

An :class:`Assignment` is a partial map from ``(output, minterm)`` pairs to
0/1 decisions.  The assignment algorithms of this package produce
assignments; :meth:`Assignment.apply` turns a spec plus an assignment into a
new (less incompletely specified) spec, which then flows into conventional
synthesis for the remaining DCs.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np

from .spec import FunctionSpec
from .truthtable import DC, OFF, ON

__all__ = ["Assignment"]


@dataclass
class Assignment:
    """A partial 0/1 assignment of DC minterms.

    Attributes:
        decisions: map from ``(output, minterm)`` to ``ON`` or ``OFF``.
    """

    decisions: dict[tuple[int, int], int] = field(default_factory=dict)

    def set(self, output: int, minterm: int, value: int) -> None:
        """Record the decision *value* (ON/OFF) for one DC minterm.

        Raises:
            ValueError: if *value* is not ON or OFF, or the entry was
                already decided differently.
        """
        if value not in (ON, OFF):
            raise ValueError(f"assignment value must be ON or OFF, got {value}")
        key = (output, minterm)
        previous = self.decisions.get(key)
        if previous is not None and previous != value:
            raise ValueError(
                f"conflicting decisions for output {output}, minterm {minterm}: "
                f"already decided {previous}, now {value}"
            )
        self.decisions[key] = value

    def __len__(self) -> int:
        return len(self.decisions)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self.decisions)

    def items(self) -> Iterable[tuple[tuple[int, int], int]]:
        """Iterate over ``((output, minterm), value)`` pairs."""
        return self.decisions.items()

    def merged(self, other: "Assignment") -> "Assignment":
        """Union of two assignments; neither operand is modified.

        Every decision of *other* goes through :meth:`set`, so a minterm
        decided ``ON`` by one operand and ``OFF`` by the other raises
        instead of silently letting *other* win.

        Raises:
            ValueError: on conflicting decisions, naming the output,
                minterm and both values.
        """
        result = Assignment(dict(self.decisions))
        for (output, minterm), value in other.items():
            result.set(output, minterm, value)
        return result

    def apply(self, spec: FunctionSpec, *, suffix: str = "/assigned") -> FunctionSpec:
        """Return *spec* with the recorded decisions baked in.

        Raises:
            ValueError: if a decision targets a care minterm (the algorithms
                only ever assign DC minterms, so this signals a logic bug).
        """
        phases = np.array(spec.phases, dtype=np.uint8)
        for (output, minterm), value in self.decisions.items():
            if phases[output, minterm] != DC:
                raise ValueError(
                    f"decision for care minterm {minterm} of output {output}"
                )
            phases[output, minterm] = value
        return spec.with_phases(phases, suffix=suffix)

    def fraction_of(self, spec: FunctionSpec) -> float:
        """Fraction of *spec*'s DC entries this assignment decides."""
        total = int(np.count_nonzero(spec.phases == DC))
        return len(self.decisions) / total if total else 0.0
