"""Monte-Carlo estimation of the single-bit input-error rate.

The exact error model of :mod:`repro.core.reliability` enumerates the full
input space — perfect at the paper's benchmark sizes but impossible beyond
~20 inputs.  This module estimates the same quantity by sampling: draw a
random input vector and a random input pin, evaluate the circuit on both
the correct and the corrupted vector, and count output changes.  Works
against any evaluator (network, netlist, or plain function), so it scales
the methodology to circuits of arbitrary width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["MonteCarloEstimate", "estimate_error_rate"]

Evaluator = Callable[[np.ndarray], np.ndarray]
"""Maps boolean inputs (vectors, inputs) -> boolean outputs (outputs, vectors)."""


@dataclass(frozen=True)
class MonteCarloEstimate:
    """A sampled error-rate estimate.

    Attributes:
        rate: estimated mean per-output propagation probability.
        stderr: standard error of the estimate.
        samples: number of (vector, pin) samples used.
    """

    rate: float
    stderr: float
    samples: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval (default 95 %)."""
        return (max(0.0, self.rate - z * self.stderr), min(1.0, self.rate + z * self.stderr))


def estimate_error_rate(
    evaluate: Evaluator,
    num_inputs: int,
    *,
    samples: int = 20_000,
    rng: np.random.Generator | None = None,
    source_filter: Callable[[np.ndarray], np.ndarray] | None = None,
    batch: int = 4096,
) -> MonteCarloEstimate:
    """Sample the single-bit input-error rate of a circuit.

    Args:
        evaluate: circuit evaluator (see :data:`Evaluator`).
        num_inputs: number of circuit inputs.
        samples: total number of (vector, flipped-pin) trials.
        rng: random generator (default: fresh, seeded 0 for determinism).
        source_filter: optional predicate over input batches returning a
            boolean mask of *admissible* error sources (e.g. the original
            care set); inadmissible samples are redrawn conceptually by
            exclusion from both numerator and denominator.
        batch: vectors per evaluation batch.

    Returns:
        A :class:`MonteCarloEstimate`.  With a source filter so tight that
        no admissible vector is ever drawn, the estimate is 0 with
        ``samples == 0``.

    Raises:
        ValueError: on non-positive sample or input counts.
    """
    if num_inputs <= 0:
        raise ValueError("num_inputs must be positive")
    if samples <= 0:
        raise ValueError("samples must be positive")
    rng = rng or np.random.default_rng(0)
    flips = 0
    used = 0
    remaining = samples
    while remaining > 0:
        count = min(batch, remaining)
        remaining -= count
        vectors = rng.random((count, num_inputs)) < 0.5
        pins = rng.integers(num_inputs, size=count)
        corrupted = vectors.copy()
        corrupted[np.arange(count), pins] ^= True
        if source_filter is not None:
            admissible = np.asarray(source_filter(vectors), dtype=bool)
            if not np.any(admissible):
                continue
            vectors = vectors[admissible]
            corrupted = corrupted[admissible]
            count = vectors.shape[0]
        good = np.atleast_2d(evaluate(vectors))
        bad = np.atleast_2d(evaluate(corrupted))
        # Mean over outputs of the per-output propagation indicator.
        flips += float(np.mean(good != bad, axis=0).sum())
        used += count
    if used == 0:
        return MonteCarloEstimate(0.0, 0.0, 0)
    rate = flips / used
    stderr = math.sqrt(max(rate * (1.0 - rate), 1e-12) / used)
    return MonteCarloEstimate(rate, stderr, used)
