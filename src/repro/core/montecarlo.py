"""Monte-Carlo estimation of the input-error rate.

The exact error model of :mod:`repro.core.reliability` enumerates the full
input space — perfect at the paper's benchmark sizes but impossible beyond
~20 inputs.  This module estimates the same quantity by sampling: draw a
random input vector and a random fault (by default the paper's single
pin flip; any input-scope :class:`~repro.faults.FaultModel` can supply
the corruption masks instead), evaluate the circuit on both the correct
and the corrupted vector, and count output changes.  Works against any
evaluator (network, netlist, or plain function), so it scales the
methodology to circuits of arbitrary width.

Sampling runs in the packed domain: input vectors are drawn directly as
uint64 words (64 vectors per word, one row per input) and pin flips are
applied as packed XOR masks.  With a *packed* evaluator (see
:func:`repro.sim.engine.packed_network_evaluator` and friends) the whole
trial loop — generation, evaluation, disagreement counting — stays
bit-parallel; with a plain boolean evaluator the same packed draws are
unpacked at the evaluator boundary, so both evaluator kinds see
*identical* vectors under a fixed seed and produce identical estimates.

Sample accounting
-----------------

``samples`` is the target number of **admissible** trials.  Without a
``source_filter`` exactly ``samples`` trials are used.  With a filter,
batches are redrawn until the admissible count reaches ``samples`` or
``max_draw_factor * samples`` raw draws have been spent — so a filter
that rejects entire batches no longer silently shrinks the trial budget;
only a pathologically tight filter (admissibility below
``1 / max_draw_factor``) returns fewer used samples than requested, and
an unsatisfiable one returns a zero estimate with ``samples == 0``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..sim import packed as pk

__all__ = ["MonteCarloEstimate", "estimate_error_rate"]

Evaluator = Callable[[np.ndarray], np.ndarray]
"""Maps boolean inputs (vectors, inputs) -> boolean outputs (outputs, vectors)."""

PackedEvaluator = Callable[[np.ndarray, int], np.ndarray]
"""Maps packed inputs ((inputs, words) uint64, num_vectors) -> packed
outputs ((outputs, words) uint64)."""


@dataclass(frozen=True)
class MonteCarloEstimate:
    """A sampled error-rate estimate.

    Attributes:
        rate: estimated mean per-output propagation probability.
        stderr: standard error of the estimate.
        samples: number of (vector, pin) samples used.
    """

    rate: float
    stderr: float
    samples: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval (default 95 %)."""
        return (max(0.0, self.rate - z * self.stderr), min(1.0, self.rate + z * self.stderr))


def estimate_error_rate(
    evaluate: Evaluator | None,
    num_inputs: int,
    *,
    samples: int = 20_000,
    rng: np.random.Generator | None = None,
    source_filter: Callable[[np.ndarray], np.ndarray] | None = None,
    batch: int = 4096,
    packed_evaluate: PackedEvaluator | None = None,
    max_draw_factor: int = 64,
    fault_model=None,
) -> MonteCarloEstimate:
    """Sample the input-error rate of a circuit under a fault model.

    Args:
        evaluate: boolean circuit evaluator (see :data:`Evaluator`); may
            be ``None`` when *packed_evaluate* is given.
        num_inputs: number of circuit inputs.
        samples: target number of admissible (vector, fault) trials
            (see "Sample accounting" in the module docstring).
        rng: random generator (default: fresh, seeded 0 for determinism).
        source_filter: optional predicate over boolean input batches
            returning a mask of *admissible* error sources (e.g. the
            original care set); inadmissible draws are excluded from both
            numerator and denominator and replacement batches are drawn.
        batch: vectors per evaluation batch.
        packed_evaluate: packed circuit evaluator (see
            :data:`PackedEvaluator`); when given, evaluation stays in the
            packed domain end to end and *evaluate* is ignored.
        max_draw_factor: raw-draw budget per requested sample when a
            *source_filter* is active.
        fault_model: an input-scope :class:`~repro.faults.FaultModel`
            (or declarative spec for one) that generates the packed
            corruption masks; default: the single-bit pin flip, whose
            mask generation — and therefore RNG consumption — is
            identical to the historical inline draw, so existing seeded
            estimates are unchanged.

    Returns:
        A :class:`MonteCarloEstimate`.  With a source filter so tight that
        no admissible vector is ever drawn within the draw budget, the
        estimate is 0 with ``samples == 0``.

    Raises:
        ValueError: on non-positive sample or input counts, when no
            evaluator is supplied, or for a node-scope *fault_model*.
    """
    if num_inputs <= 0:
        raise ValueError("num_inputs must be positive")
    if samples <= 0:
        raise ValueError("samples must be positive")
    if evaluate is None and packed_evaluate is None:
        raise ValueError("an evaluator is required (evaluate or packed_evaluate)")
    if fault_model is not None:
        from ..faults import create_fault_model

        fault_model = create_fault_model(fault_model)
        if fault_model.scope != "input":
            raise ValueError(
                f"fault model {fault_model.name!r} has scope "
                f"{fault_model.scope!r}; input-vector sampling needs an "
                f"input-scope model"
            )
    rng = rng or np.random.default_rng(0)
    word_max = np.iinfo(np.uint64).max
    disagreements = 0  # differing (output, vector) table entries
    num_outputs = 1
    used = 0
    drawn = 0
    max_draws = samples if source_filter is None else samples * max_draw_factor
    while used < samples and drawn < max_draws:
        count = min(batch, samples - used)
        drawn += count
        words = pk.num_words(count)
        # Vectors drawn directly as packed words; pin flips as XOR masks.
        vector_words = rng.integers(
            0, word_max, size=(num_inputs, words), dtype=np.uint64, endpoint=True
        )
        pk.zero_tail(vector_words, count)
        if fault_model is None:
            # Inline single-bit draw, kept verbatim for seed stability
            # (SingleBitInput.corruption_words replicates it exactly).
            pins = rng.integers(num_inputs, size=count)
            onehot = np.zeros((count, num_inputs), dtype=bool)
            onehot[np.arange(count), pins] = True
            masks = pk.pack_matrix(onehot)
        else:
            masks = fault_model.corruption_words(rng, num_inputs, count)
        corrupted_words = vector_words ^ masks
        admissible = None
        if source_filter is not None:
            vectors = pk.unpack_matrix(vector_words, count).T
            admissible = np.asarray(source_filter(vectors), dtype=bool)
            if not np.any(admissible):
                continue
        if packed_evaluate is not None:
            good = np.atleast_2d(np.asarray(packed_evaluate(vector_words, count)))
            bad = np.atleast_2d(np.asarray(packed_evaluate(corrupted_words, count)))
            diff = good ^ bad
            if admissible is None:
                used += count
            else:
                admissible_words = pk.pack_bool(admissible)
                diff &= admissible_words
                used += pk.popcount(admissible_words)
            num_outputs = diff.shape[0]
            disagreements += pk.popcount(diff)
        else:
            vectors = pk.unpack_matrix(vector_words, count).T
            bad_vectors = pk.unpack_matrix(corrupted_words, count).T
            if admissible is not None:
                vectors = vectors[admissible]
                bad_vectors = bad_vectors[admissible]
            good = np.atleast_2d(evaluate(vectors))
            bad = np.atleast_2d(evaluate(bad_vectors))
            num_outputs = good.shape[0]
            disagreements += int(np.count_nonzero(good != bad))
            used += vectors.shape[0]
    if used == 0:
        return MonteCarloEstimate(0.0, 0.0, 0)
    rate = disagreements / (num_outputs * used)
    stderr = math.sqrt(max(rate * (1.0 - rate), 1e-12) / used)
    return MonteCarloEstimate(rate, stderr, used)
